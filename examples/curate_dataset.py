"""Run the PyraNet curation pipeline and inspect the layers.

Simulates the GitHub scrape and the Fig. 2 commercial-LLM generation
pipeline, pushes everything through the filters / dedup / syntax-check
/ labelling stages, prints the pyramid and the per-stage trace, and
saves the dataset as JSONL.

    python examples/curate_dataset.py
    python examples/curate_dataset.py --parallel --report-json report.json
    python examples/curate_dataset.py --store-dir pyranet_store
    python examples/curate_dataset.py --stream --workers 4

All examples share one CLI (see ``_cli.py``): ``--report-json PATH``
writes the full machine-readable pipeline report (funnel counters,
layer sizes, and the per-stage trace with wall times, drop reasons, and
cache hit rates) so runs can be diffed between revisions;
``--trace-json PATH`` writes the merged run report (spans + metrics)
from the unified observability layer; ``--parallel`` runs per-file
stages on a thread pool; ``--store-dir PATH`` additionally writes the
dataset as a sharded, content-addressed store (see :mod:`repro.store`)
and demonstrates an indexed layer read plus curriculum serving straight
off the shards; ``--cache-dir PATH`` persists the syntax-check /
ranking / description results on disk so a second run over the same
corpus serves them from the cache instead of recomputing; ``--resume RUN_ID`` journals progress so a killed run
picks up from its last checkpoint; ``--fault-plan PATH`` injects a
deterministic fault schedule (resilience drills); ``--stream`` curates
through the memory-bounded streaming path (the scrape is consumed
lazily, output is byte-identical) and ``--workers N`` fans its fused
stage workers out over an N-process pool; ``--families`` writes the
run's design-family report (near-duplicate variant graphs with
detection evidence) as ``families.json`` next to the store.
"""

import random

import _cli
from repro.corpus import (
    GitHubScrapeSimulator,
    SimulatedCommercialLLM,
    build_keyword_database,
)
from repro.dataset import (
    CurationPipeline,
    StreamingCurationPipeline,
    chain_batches,
    generated_batches,
    raw_file_batches,
    save_jsonl,
)
from repro.eval import render_pyramid
from repro.pipeline import ParallelExecutor, ResultCache
from repro.store import SamplingService, ShardWriter, StoreReader


def main() -> None:
    args = _cli.build_parser(
        "Run the PyraNet curation pipeline", default_seed=7).parse_args()
    obs = _cli.observability_from(args)
    print("1) Scraping (simulated GitHub population)…")
    scraper = GitHubScrapeSimulator(seed=args.seed)
    if args.stream:
        raw_files = None
        print("   streaming: the 500-file scrape is consumed lazily "
              "in step 3, one batch at a time")
    else:
        raw_files = scraper.scrape(500)
        print(f"   collected {len(raw_files)} files, e.g. "
              f"{raw_files[0].path!r}")

    print("\n2) Generating extra samples with the commercial LLM "
          "(Fig. 2 pipeline)…")
    db = build_keyword_database()
    stats = db.funnel_stats()
    print(f"   keyword DB: {stats['keywords']} keywords -> "
          f"{stats['expanded_keywords']} expanded keywords")
    llm = SimulatedCommercialLLM(seed=args.seed + 1)
    rng = random.Random(args.seed + 2)
    generated = []
    for _ in range(12):
        entry = db.sample(rng)
        generated.extend(llm.generate_batch(entry, n_queries=10))
    print(f"   generated {len(generated)} samples "
          "(10 temperature-varied queries per prompt)")

    print("\n3) Curating (filters -> dedup -> syntax check -> labels)…")
    executor = _cli.executor_from(args) or ParallelExecutor.serial()
    resilience = _cli.resilience_from(args, obs=obs)
    cache = _cli.cache_from(args, obs)
    if args.stream:
        mode = executor.describe()
        print(f"   streaming curate path ({mode['mode']} workers, "
              "bounded batches; output is byte-identical to the "
              "in-memory pipeline)")
        if cache is not None:
            print(f"    (--cache-dir {args.cache_dir}: the streaming "
                  "path has no per-record cache; ignored)")
        source = chain_batches(
            raw_file_batches(scraper.iter_scrape(500, batch_size=128)),
            generated_batches(generated, batch_size=128),
        )
        result = StreamingCurationPipeline(
            seed=args.seed, batch_size=128, executor=executor,
            obs=obs, resilience=resilience,
        ).run_stream(source, source_token=f"curate-example:{args.seed}")
    else:
        result = CurationPipeline(seed=args.seed, executor=executor,
                                  obs=obs, cache=cache,
                                  resilience=resilience).run(raw_files,
                                                             generated)
    if resilience is not None:
        print("    resilience:", resilience.summary())
    if cache is not None and not args.stream:
        disk = cache.stats()["disk"]
        print(f"    cache dir {args.cache_dir}: "
              f"{disk['hits']} disk hits, {disk['misses']} misses, "
              f"{disk['entries']} entries on disk")
    for line in result.report.summary_lines():
        print("   ", line)

    print("\n   per-stage trace:")
    for line in result.report.trace.summary_lines():
        print("   ", line)

    print()
    print(render_pyramid("PyraNet layer pyramid",
                         result.dataset.layer_sizes()))

    print("complexity mix:", result.dataset.complexity_histogram())

    entry = next(e for e in result.dataset if e.layer == 1)
    print("\nA Layer-1 entry:")
    print("  ranking    :", entry.ranking, "/ 20")
    print("  complexity :", entry.complexity.label)
    print("  description:", entry.description[:100], "…")
    print("  code       :", entry.code.splitlines()[1][:70], "…")

    path = "pyranet_dataset.jsonl"
    n = save_jsonl(result.dataset, path)
    print(f"\nsaved {n} entries to {path}")

    _cli.write_report(args, result.report)

    family_report = result.report.families
    if family_report is not None and family_report.n_families:
        print(f"\ndesign families: {family_report.n_families} families, "
              f"{family_report.n_variants} near-duplicate variant(s); "
              f"size histogram {family_report.size_histogram()}")
        biggest = max(family_report.families, key=lambda fam: fam.size)
        print(f"  e.g. {biggest.family_id}: canonical "
              f"{biggest.canonical_path or biggest.canonical_entry_id!r} "
              f"+ {len(biggest.variants)} variant(s), evidence "
              f"{[ev.kind for ev in biggest.variants[0].evidence]}")

    if args.store_dir:
        print(f"\n4) Sharding into the content-addressed store "
              f"({args.store_dir})…")
        manifest = ShardWriter(args.store_dir, obs=obs).write(result.dataset)
        print(f"   {manifest.n_entries} entries -> "
              f"{len(manifest.shards)} shards, "
              f"{manifest.total_raw_bytes} raw bytes -> "
              f"{manifest.total_bytes} compressed")

        reader = StoreReader(args.store_dir, cache=ResultCache(), obs=obs)
        layer1 = reader.select(layer=1)
        print(f"   select(layer=1): {len(layer1)} entries from "
              f"{len(reader.opened_shards)}/{len(manifest.shards)} shards "
              "(manifest index skipped the rest)")

        service = SamplingService(reader, seed=args.seed)
        phases = service.curriculum_phases()
        print(f"   curriculum off the shards: {len(phases)} phases, "
              f"first {[p.label for p in phases[:4]]}")

        print("   families facet:", manifest.facets()["families"])

        split = service.split(eval_fraction=0.1)
        print(f"   family-atomic split: {split.n_train} train / "
              f"{split.n_eval} eval rows over {split.n_groups} groups "
              "(no family straddles the split)")

    if args.families:
        if family_report is None:
            print("\n(--families: this run produced no family report; "
                  "ignored)")
        else:
            from pathlib import Path

            target = (Path(args.store_dir) if args.store_dir
                      else Path(".")) / "families.json"
            target.write_text(family_report.to_json(indent=2) + "\n",
                              encoding="utf-8")
            print(f"\nwrote family report to {target} "
                  f"({family_report.n_families} families)")

    _cli.write_trace(args, obs, example="curate_dataset")


if __name__ == "__main__":
    main()
