"""Run the PyraNet curation pipeline and inspect the layers.

Simulates the GitHub scrape and the Fig. 2 commercial-LLM generation
pipeline, pushes everything through the filters / dedup / syntax-check
/ labelling stages, prints the pyramid and the per-stage trace, and
saves the dataset as JSONL.

    python examples/curate_dataset.py
    python examples/curate_dataset.py --parallel --report-json report.json
    python examples/curate_dataset.py --store-dir pyranet_store

``--report-json PATH`` writes the full machine-readable pipeline report
(funnel counters, layer sizes, and the per-stage trace with wall times,
drop reasons, and cache hit rates) so runs can be diffed between
revisions.  ``--parallel`` runs per-file stages on a thread pool.
``--store-dir PATH`` additionally writes the dataset as a sharded,
content-addressed store (see :mod:`repro.store`) and demonstrates an
indexed layer read plus curriculum serving straight off the shards.
"""

import argparse
import random

from repro.corpus import (
    GitHubScrapeSimulator,
    SimulatedCommercialLLM,
    build_keyword_database,
)
from repro.dataset import CurationPipeline, save_jsonl
from repro.eval import render_pyramid
from repro.pipeline import ParallelExecutor, ResultCache
from repro.store import SamplingService, ShardWriter, StoreReader


def main() -> None:
    parser = argparse.ArgumentParser(
        description="Run the PyraNet curation pipeline")
    parser.add_argument(
        "--report-json", metavar="PATH", default=None,
        help="write the pipeline report (funnel + layers + per-stage "
             "trace) as JSON to PATH")
    parser.add_argument(
        "--parallel", action="store_true",
        help="run per-file stages on a thread pool")
    parser.add_argument(
        "--store-dir", metavar="PATH", default=None,
        help="also write the dataset as a sharded, content-addressed "
             "store at PATH and demo an indexed read")
    args = parser.parse_args()
    print("1) Scraping (simulated GitHub population)…")
    scraper = GitHubScrapeSimulator(seed=7)
    raw_files = scraper.scrape(500)
    print(f"   collected {len(raw_files)} files, e.g. "
          f"{raw_files[0].path!r}")

    print("\n2) Generating extra samples with the commercial LLM "
          "(Fig. 2 pipeline)…")
    db = build_keyword_database()
    stats = db.funnel_stats()
    print(f"   keyword DB: {stats['keywords']} keywords -> "
          f"{stats['expanded_keywords']} expanded keywords")
    llm = SimulatedCommercialLLM(seed=8)
    rng = random.Random(9)
    generated = []
    for _ in range(12):
        entry = db.sample(rng)
        generated.extend(llm.generate_batch(entry, n_queries=10))
    print(f"   generated {len(generated)} samples "
          "(10 temperature-varied queries per prompt)")

    print("\n3) Curating (filters -> dedup -> syntax check -> labels)…")
    executor = (ParallelExecutor(mode="thread") if args.parallel
                else ParallelExecutor.serial())
    result = CurationPipeline(seed=7, executor=executor).run(
        raw_files, generated)
    for line in result.report.summary_lines():
        print("   ", line)

    print("\n   per-stage trace:")
    for line in result.report.trace.summary_lines():
        print("   ", line)

    print()
    print(render_pyramid("PyraNet layer pyramid",
                         result.dataset.layer_sizes()))

    print("complexity mix:", result.dataset.complexity_histogram())

    entry = next(e for e in result.dataset if e.layer == 1)
    print("\nA Layer-1 entry:")
    print("  ranking    :", entry.ranking, "/ 20")
    print("  complexity :", entry.complexity.label)
    print("  description:", entry.description[:100], "…")
    print("  code       :", entry.code.splitlines()[1][:70], "…")

    path = "pyranet_dataset.jsonl"
    n = save_jsonl(result.dataset, path)
    print(f"\nsaved {n} entries to {path}")

    if args.report_json:
        with open(args.report_json, "w", encoding="utf-8") as handle:
            handle.write(result.report.to_json(indent=2))
        print(f"wrote pipeline report to {args.report_json}")

    if args.store_dir:
        print(f"\n4) Sharding into the content-addressed store "
              f"({args.store_dir})…")
        manifest = ShardWriter(args.store_dir).write(result.dataset)
        print(f"   {manifest.n_entries} entries -> "
              f"{len(manifest.shards)} shards, "
              f"{manifest.total_raw_bytes} raw bytes -> "
              f"{manifest.total_bytes} compressed")

        reader = StoreReader(args.store_dir, cache=ResultCache())
        layer1 = reader.select(layer=1)
        print(f"   select(layer=1): {len(layer1)} entries from "
              f"{len(reader.opened_shards)}/{len(manifest.shards)} shards "
              "(manifest index skipped the rest)")

        service = SamplingService(reader, seed=7)
        phases = service.curriculum_phases()
        print(f"   curriculum off the shards: {len(phases)} phases, "
              f"first {[p.label for p in phases[:4]]}")


if __name__ == "__main__":
    main()
