"""Weighted fine-tuning on the numpy transformer substrate.

Demonstrates that the PyraNet loss-weighting machinery is model-
agnostic: the same Trainer that drives the retrieval model fine-tunes
a real (tiny) neural LM, and per-sample loss weights visibly steer
what the network learns.

    python examples/train_transformer.py
    python examples/train_transformer.py --seed 2 --report-json losses.json

Shared flags (see ``_cli.py``): ``--report-json`` writes the held-in
loss table; ``--trace-json`` writes the merged run report with one span
per training configuration.
"""

import _cli
from repro.model import TinyTransformer, TransformerConfig, TrainingExample

CLEAN = TrainingExample(
    description="a two input and gate",
    code=("module and_gate(input a, input b, output y);\n"
          "  assign y = a & b;\nendmodule"),
    ranking=20,
)
JUNK = TrainingExample(
    description="a two input and gate",
    code=("module zz1(input a, input b, output y);\n"
          "  assign y = a | b;  // wrong operator\nendmodule"),
    ranking=3,
)


def train(weight_clean: float, weight_junk: float,
          seed: int = 0) -> TinyTransformer:
    model = TinyTransformer(config=TransformerConfig(
        d_model=32, n_heads=2, n_layers=1, d_ff=64, max_len=96,
        learning_rate=3e-3, seed=seed))
    for _ in range(40):
        model.train_batch([CLEAN], weight_clean)
        model.train_batch([JUNK], weight_junk)
    return model


def main() -> None:
    args = _cli.build_parser(
        "Weighted fine-tuning on the numpy transformer").parse_args()
    obs = _cli.observability_from(args)
    _cli.note_unused_store(args)
    _cli.note_unused_cache(args)
    if args.parallel:
        print("(--parallel: gradient steps are sequential; ignored)")

    print("Training two transformers on the same mixed-quality stream…")
    print("  A: PyraNet-style weights (clean 1.0, junk 0.1)")
    with obs.span("example.train", config="weighted"):
        weighted = train(1.0, 0.1, seed=args.seed)
    print("  B: uniform weights       (clean 1.0, junk 1.0)")
    with obs.span("example.train", config="uniform"):
        uniform = train(1.0, 1.0, seed=args.seed)

    loss_w_clean = weighted.sequence_loss(CLEAN)
    loss_w_junk = weighted.sequence_loss(JUNK)
    loss_u_clean = uniform.sequence_loss(CLEAN)
    loss_u_junk = uniform.sequence_loss(JUNK)

    print("\nheld-in cross-entropy (lower = better fit):")
    print(f"                   clean-code   junk-code")
    print(f"  weighted (A)  :    {loss_w_clean:6.3f}      {loss_w_junk:6.3f}")
    print(f"  uniform  (B)  :    {loss_u_clean:6.3f}      {loss_u_junk:6.3f}")

    margin_weighted = loss_w_junk - loss_w_clean
    margin_uniform = loss_u_junk - loss_u_clean
    print(f"\npreference margin for clean code: "
          f"weighted {margin_weighted:+.3f} vs uniform "
          f"{margin_uniform:+.3f}")
    if margin_weighted > margin_uniform:
        print("loss weighting steered the network toward the "
              "high-quality sample, as the PyraNet recipe intends.")

    _cli.write_report(args, {
        "weighted": {"clean": loss_w_clean, "junk": loss_w_junk},
        "uniform": {"clean": loss_u_clean, "junk": loss_u_junk},
        "margin_weighted": margin_weighted,
        "margin_uniform": margin_uniform,
    })
    _cli.write_trace(args, obs, example="train_transformer")


if __name__ == "__main__":
    main()
