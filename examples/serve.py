"""Serve PyraNet: curation, fine-tuning and evaluation as HTTP jobs.

Starts the persistent job service and blocks until interrupted::

    python examples/serve.py --port 8642 --workers 2 \
        --queue-dir .pyranet-service

Then drive it with curl (every endpoint speaks plain JSON)::

    # liveness + queue/metric snapshot
    curl -s localhost:8642/healthz

    # curate a dataset into a named store (returns {"job_id": ...})
    curl -s -X POST localhost:8642/jobs -d '{
        "type": "curate",
        "params": {"seed": 7, "store": "demo"},
        "idempotency_key": "curate-demo-7"}'

    # poll it, read its run report, then query the store
    curl -s localhost:8642/jobs/<job_id>
    curl -s localhost:8642/jobs/<job_id>/report
    curl -s localhost:8642/stores/demo/facets
    curl -s "localhost:8642/stores/demo/sample?n=3&layer=2"

    # evaluate a recipe trained on that store
    curl -s -X POST localhost:8642/jobs -d '{
        "type": "eval",
        "params": {"recipe": "architecture", "store": "demo",
                   "n_problems": 8},
        "idempotency_key": "eval-demo-7"}'

    # graceful stop: in-flight jobs finish, queue state is journaled
    curl -s -X POST localhost:8642/shutdown

The queue is crash-safe: kill this process however you like (including
``kill -9`` mid-curation) and restart it on the same ``--queue-dir`` —
interrupted jobs are re-queued and *resume* from their checkpoint
journals, landing byte-identical results.  Resubmitting a finished
idempotency key returns the finished job instead of re-running it.

On SIGINT/SIGTERM the service drains in-flight jobs and journals a
clean shutdown before exiting.
"""

import signal
import sys
import threading

import _cli
from repro.obs import Observability
from repro.service import PyraNetService, serve


def main() -> None:
    parser = _cli.add_service_flags(_cli.build_parser(
        "Serve PyraNet curation/finetune/eval as HTTP jobs"))
    args = parser.parse_args()
    _cli.note_unused_stream(args)
    _cli.note_unused_store(args)
    _cli.note_unused_cache(args)

    # Always live (never the no-op handle): /healthz and /report serve
    # these metrics, traced or not.
    obs = Observability()
    service = PyraNetService(
        args.queue_dir,
        n_workers=args.workers or 2,
        obs=obs,
        resilience=_cli.resilience_from(args, obs=obs),
        executor=_cli.executor_from(args),
    )
    server = serve(service, host=args.host, port=args.port)

    stopping = threading.Event()

    def _graceful(signum, frame) -> None:
        if stopping.is_set():  # second signal: exit hard
            sys.exit(1)
        stopping.set()
        print(f"\nsignal {signum}: draining in-flight jobs…", flush=True)
        # Stop from a helper thread: server.shutdown() must not be
        # called from the serve_forever thread it is stopping.
        threading.Thread(target=_stop, daemon=True).start()

    def _stop() -> None:
        service.stop(reason="signal")
        server.shutdown()

    signal.signal(signal.SIGINT, _graceful)
    signal.signal(signal.SIGTERM, _graceful)

    # The E2E test (and shell scripts) parse this line for the port.
    print(f"pyranet service listening on http://{args.host}:{server.port}",
          flush=True)
    print(f"service root: {args.queue_dir} "
          f"(workers={service.pool.n_workers})", flush=True)
    counts = service.queue.counts()
    if sum(counts.values()):
        print(f"resumed queue: {counts}", flush=True)
    try:
        server.serve_forever()
    finally:
        if not stopping.is_set():
            service.stop(reason="exit")
        server.server_close()
        counts = service.queue.counts()
        print(f"stopped; queue journaled: {counts}", flush=True)
        _cli.write_report(args, {"queue": counts,
                                 "port": server.port})
        _cli.write_trace(args, obs, example="serve")


if __name__ == "__main__":
    main()
