"""Evaluate a model on the VerilogEval-style suites via EvalConfig.

The whole declarative surface of an evaluation run — sample count,
temperature, seed, stimulus width, repair budget — travels as one
frozen :class:`repro.eval.EvalConfig`, printed (and written with
``--report-json``) alongside the results so a run is reproducible from
its own artifact.

    python examples/evaluate.py
    python examples/evaluate.py --suite human --n-problems 12
    python examples/evaluate.py --repair-budget 2 --report-json out.json

``--repair-budget N`` switches to the pass@k(repair_budget) scenario:
every failed sample gets up to N feedback-driven repair iterations
(compiler diagnostics for syntax damage, counterexample vectors for
functional damage), and the report adds the per-iteration fix-rate
curve.
"""

import _cli
from repro.core import PyraNet


def main() -> None:
    parser = _cli.build_parser(
        "Evaluate pass@k under one EvalConfig", default_seed=0)
    parser.add_argument(
        "--suite", choices=("machine", "human"), default="machine",
        help="problem suite (default machine)")
    parser.add_argument(
        "--n-problems", type=int, default=16, metavar="N",
        help="problems to evaluate (default 16)")
    parser.add_argument(
        "--n-samples", type=int, default=5, metavar="N",
        help="completions per problem (default 5)")
    parser.add_argument(
        "--repair-budget", type=int, default=0, metavar="R",
        help="repair iterations per failed sample "
             "(default 0 = classic single-shot pass@k)")
    args = parser.parse_args()
    obs = _cli.observability_from(args)
    _cli.note_unused_store(args)
    _cli.note_unused_families(args)
    _cli.note_unused_stream(args)

    pyranet = PyraNet(seed=args.seed, n_samples=args.n_samples,
                      n_test_vectors=12, obs=obs,
                      executor=_cli.executor_from(args),
                      resilience=_cli.resilience_from(args, obs),
                      cache_dir=args.cache_dir)
    model = pyranet.base_model("codellama-7b-instruct-sim")
    config = pyranet.eval_config(repair_budget=args.repair_budget)
    print("eval config:", config.to_json())

    if args.repair_budget > 0:
        report = pyranet.evaluate_repair(
            model, suite=args.suite, repair_budget=args.repair_budget,
            n_problems=args.n_problems)
        print(f"\npass@k with repair budget {args.repair_budget}:")
        for budget in range(args.repair_budget + 1):
            row = report.summary(ks=config.ks, budget=budget)
            print(f"  r={budget}: " + "  ".join(
                f"{key}={value:5.1f}" for key, value in row.items()))
        curve = [round(rate, 3) for rate in report.fix_rate_curve()]
        print("fix-rate curve:", curve)
        payload = report.to_dict()
    else:
        report = pyranet.evaluate(model, suite=args.suite,
                                  n_problems=args.n_problems)
        print(f"\n{report.suite} suite, {len(report.results)} problems:")
        for key, value in report.summary(config.ks).items():
            print(f"  {key} = {value:5.1f}")
        payload = report.to_dict()

    payload["config"] = config.to_dict()
    _cli.write_report(args, payload)
    _cli.write_trace(args, obs, example="evaluate")


if __name__ == "__main__":
    main()
