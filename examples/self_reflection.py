"""OriGen-style self-reflection: compiler feedback drives repair.

Breaks a known-good design three different ways, shows the compiler
diagnostics for each, and lets the repair loop fix them — then verifies
the repaired code is still *functionally* correct by simulating it
against the design's golden model.

    python examples/self_reflection.py
    python examples/self_reflection.py --seed 5 --report-json repairs.json

Shared flags (see ``_cli.py``): ``--report-json`` writes the per-attempt
outcomes; ``--trace-json`` writes the merged run report with one span
per repair attempt.
"""

import random

import _cli
from repro.corpus import mutate
from repro.corpus.templates import generate_design
from repro.eval.functional import run_functional_test
from repro.model.repair import repair
from repro.verilog import check


def main() -> None:
    args = _cli.build_parser(
        "Compiler-feedback repair loop demo", default_seed=11).parse_args()
    obs = _cli.observability_from(args)
    _cli.note_unused_store(args)
    _cli.note_unused_cache(args)

    design = generate_design("updown_counter", random.Random(3),
                             params={"WIDTH": 4})
    print("reference design:", design.spec.module_name,
          f"({design.spec.family})")
    assert check(design.source).status == "clean"

    rng = random.Random(args.seed)
    attempts = []
    for attempt in range(3):
        broken = mutate.break_syntax(design.source, rng)
        report = check(broken.source)
        if report.status != "syntax":
            continue
        print(f"\n--- damage {attempt + 1}: {broken.applied} ---")
        print("compiler says:", report.syntax_errors[0])

        with obs.span("example.repair", attempt=attempt,
                      damage=str(broken.applied)) as span:
            outcome = repair(broken.source)
            span.meta["fixed"] = outcome.fixed
        obs.counter("example.repairs_attempted").inc()
        if outcome.fixed:
            obs.counter("example.repairs_fixed").inc()
        print("repair actions:", outcome.actions or "(none)")
        print("fixed:", outcome.fixed,
              "| final status:", outcome.final_status)
        record = {
            "attempt": attempt,
            "damage": str(broken.applied),
            "fixed": outcome.fixed,
            "final_status": outcome.final_status,
        }
        if outcome.fixed:
            functional = run_functional_test(
                outcome.code, design.spec, n_vectors=24)
            print("functional after repair:",
                  "PASS" if functional.passed else
                  f"FAIL ({functional.detail})")
            record["functional_pass"] = functional.passed
        attempts.append(record)

    _cli.write_report(args, {"design": design.spec.module_name,
                             "attempts": attempts})
    _cli.write_trace(args, obs, example="self_reflection")


if __name__ == "__main__":
    main()
