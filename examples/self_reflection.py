"""OriGen-style self-reflection: compiler feedback drives repair.

Breaks a known-good design three different ways, shows the compiler
diagnostics for each, and lets the repair loop fix them — then verifies
the repaired code is still *functionally* correct by simulating it
against the design's golden model.

    python examples/self_reflection.py
"""

import random

from repro.corpus import mutate
from repro.corpus.templates import generate_design
from repro.eval.functional import run_functional_test
from repro.model.repair import repair
from repro.verilog import check


def main() -> None:
    design = generate_design("updown_counter", random.Random(3),
                             params={"WIDTH": 4})
    print("reference design:", design.spec.module_name,
          f"({design.spec.family})")
    assert check(design.source).status == "clean"

    rng = random.Random(11)
    for attempt in range(3):
        broken = mutate.break_syntax(design.source, rng)
        report = check(broken.source)
        if report.status != "syntax":
            continue
        print(f"\n--- damage {attempt + 1}: {broken.applied} ---")
        print("compiler says:", report.syntax_errors[0])

        outcome = repair(broken.source)
        print("repair actions:", outcome.actions or "(none)")
        print("fixed:", outcome.fixed,
              "| final status:", outcome.final_status)
        if outcome.fixed:
            functional = run_functional_test(
                outcome.code, design.spec, n_vectors=24)
            print("functional after repair:",
                  "PASS" if functional.passed else
                  f"FAIL ({functional.detail})")


if __name__ == "__main__":
    main()
