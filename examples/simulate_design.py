"""Drive the four-state Verilog simulator directly.

Shows the substrate the evaluation platform is built on: compile a
small SoC-flavoured design (a FIFO-buffered pulse generator with an
FSM) and interact with it cycle by cycle from Python — poke inputs,
clock it, peek anywhere in the hierarchy.

    python examples/simulate_design.py
    python examples/simulate_design.py --report-json waveform.json

Shared flags (see ``_cli.py``): ``--report-json`` writes the pulse
waveform trace; ``--trace-json`` writes the merged run report with the
compile and simulate spans.  ``--seed`` varies the queued pulse widths.
"""

import random

import _cli
from repro.verilog import Simulator

DESIGN = """
// A pulse FIFO: writes queue pulse widths; the player FSM pops one
// width at a time and holds 'pulse' high for that many cycles.
module pulse_fifo #(
  parameter DEPTH = 4,
  parameter W = 4
) (
  input  clk,
  input  rst,
  input  wr,
  input  [W-1:0] width,
  output reg pulse,
  output busy,
  output full
);

  reg [W-1:0] mem [0:DEPTH-1];
  reg [2:0] wp, rp;
  wire [2:0] count = wp - rp;
  wire empty = (count == 0);
  assign full = (count == DEPTH);

  localparam IDLE = 1'b0;
  localparam PLAY = 1'b1;
  reg state;
  reg [W-1:0] remaining;
  assign busy = (state == PLAY);

  always @(posedge clk) begin
    if (rst) begin
      wp <= 0;
      rp <= 0;
      state <= IDLE;
      pulse <= 1'b0;
      remaining <= 0;
    end else begin
      if (wr && !full) begin
        mem[wp[1:0]] <= width;
        wp <= wp + 1'b1;
      end
      case (state)
        IDLE: begin
          pulse <= 1'b0;
          if (!empty) begin
            remaining <= mem[rp[1:0]];
            rp <= rp + 1'b1;
            state <= PLAY;
          end
        end
        PLAY: begin
          pulse <= 1'b1;
          if (remaining <= 1)
            state <= IDLE;
          else
            remaining <= remaining - 1'b1;
        end
      endcase
    end
  end

endmodule
"""


def main() -> None:
    args = _cli.build_parser(
        "Drive the four-state Verilog simulator directly",
        default_seed=0).parse_args()
    obs = _cli.observability_from(args)
    _cli.note_unused_store(args)
    _cli.note_unused_families(args)
    _cli.note_unused_cache(args)
    if args.parallel:
        print("(--parallel: simulation is cycle-sequential; ignored)")

    with obs.span("example.compile", top="pulse_fifo"):
        sim = Simulator(DESIGN, top="pulse_fifo")
    print("inputs :", sim.input_names)
    print("outputs:", sim.output_names)

    # Reset.
    sim.poke("clk", 0)
    sim.poke("rst", 1)
    sim.poke("wr", 0)
    sim.poke("width", 0)
    sim.clock("clk", 2)
    sim.poke("rst", 0)

    # Queue three pulse widths (seed-varied).  The player starts as
    # soon as the first entry lands, so tracing starts here too.
    rng = random.Random(args.seed)
    widths = [rng.randint(1, 4) for _ in range(3)]
    trace = []
    with obs.span("example.simulate", widths=widths) as span:
        for width in widths:
            sim.poke("wr", 1)
            sim.poke("width", width)
            sim.clock("clk")
            trace.append(sim.peek_int("pulse"))
        sim.poke("wr", 0)

        print("\ncycle | pulse busy | fsm state  remaining")
        for cycle in range(14):
            sim.clock("clk")
            pulse = sim.peek_int("pulse")
            busy = sim.peek_int("busy")
            state = sim.peek_int("state")       # peek internal registers
            remaining = sim.peek("remaining")   # may be x before first load
            trace.append(pulse)
            print(f"{cycle:5d} |   {pulse}    {busy}   |    "
                  f"{'PLAY' if state else 'IDLE'}     "
                  f"{remaining.to_bit_string()}")
        span.meta["n_cycles"] = len(trace)

    print("\npulse waveform:", "".join("▇" if p else "_" for p in trace))
    expected = sum(widths)
    print(f"high cycles: {sum(trace)} (expected {expected} across "
          "three pulses)")

    _cli.write_report(args, {"widths": widths, "pulse_trace": trace,
                             "high_cycles": sum(trace),
                             "expected": expected})
    _cli.write_trace(args, obs, example="simulate_design")


if __name__ == "__main__":
    main()
