"""Drive the four-state Verilog simulator directly.

Shows the substrate the evaluation platform is built on: compile a
small SoC-flavoured design (a FIFO-buffered pulse generator with an
FSM) and interact with it cycle by cycle from Python — poke inputs,
clock it, peek anywhere in the hierarchy.

    python examples/simulate_design.py
"""

from repro.verilog import Simulator

DESIGN = """
// A pulse FIFO: writes queue pulse widths; the player FSM pops one
// width at a time and holds 'pulse' high for that many cycles.
module pulse_fifo #(
  parameter DEPTH = 4,
  parameter W = 4
) (
  input  clk,
  input  rst,
  input  wr,
  input  [W-1:0] width,
  output reg pulse,
  output busy,
  output full
);

  reg [W-1:0] mem [0:DEPTH-1];
  reg [2:0] wp, rp;
  wire [2:0] count = wp - rp;
  wire empty = (count == 0);
  assign full = (count == DEPTH);

  localparam IDLE = 1'b0;
  localparam PLAY = 1'b1;
  reg state;
  reg [W-1:0] remaining;
  assign busy = (state == PLAY);

  always @(posedge clk) begin
    if (rst) begin
      wp <= 0;
      rp <= 0;
      state <= IDLE;
      pulse <= 1'b0;
      remaining <= 0;
    end else begin
      if (wr && !full) begin
        mem[wp[1:0]] <= width;
        wp <= wp + 1'b1;
      end
      case (state)
        IDLE: begin
          pulse <= 1'b0;
          if (!empty) begin
            remaining <= mem[rp[1:0]];
            rp <= rp + 1'b1;
            state <= PLAY;
          end
        end
        PLAY: begin
          pulse <= 1'b1;
          if (remaining <= 1)
            state <= IDLE;
          else
            remaining <= remaining - 1'b1;
        end
      endcase
    end
  end

endmodule
"""


def main() -> None:
    sim = Simulator(DESIGN, top="pulse_fifo")
    print("inputs :", sim.input_names)
    print("outputs:", sim.output_names)

    # Reset.
    sim.poke("clk", 0)
    sim.poke("rst", 1)
    sim.poke("wr", 0)
    sim.poke("width", 0)
    sim.clock("clk", 2)
    sim.poke("rst", 0)

    # Queue three pulse widths: 3, 1, 2 cycles.  The player starts as
    # soon as the first entry lands, so tracing starts here too.
    trace = []
    for width in (3, 1, 2):
        sim.poke("wr", 1)
        sim.poke("width", width)
        sim.clock("clk")
        trace.append(sim.peek_int("pulse"))
    sim.poke("wr", 0)

    print("\ncycle | pulse busy | fsm state  remaining")
    for cycle in range(14):
        sim.clock("clk")
        pulse = sim.peek_int("pulse")
        busy = sim.peek_int("busy")
        state = sim.peek_int("state")       # peek internal registers
        remaining = sim.peek("remaining")   # may be x before first load
        trace.append(pulse)
        print(f"{cycle:5d} |   {pulse}    {busy}   |    "
              f"{'PLAY' if state else 'IDLE'}     {remaining.to_bit_string()}")

    print("\npulse waveform:", "".join("▇" if p else "_" for p in trace))
    expected = 3 + 1 + 2
    print(f"high cycles: {sum(trace)} (expected {expected} across "
          "three pulses)")


if __name__ == "__main__":
    main()
