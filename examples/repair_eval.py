"""The agentic repair loop, end to end: budget sweep + trajectory data.

Two demonstrations of :mod:`repro.repairloop`:

1. **pass@k(repair_budget)** — evaluate one model at several repair
   budgets and watch pass@1 climb monotonically as failed samples get
   feedback-driven retries (compiler diagnostics, then counterexample
   vectors, drive each fix).
2. **Repair-trajectory corpus** — break clean designs, drive the loop
   until they are fixed, and stream the resulting broken→fixed pairs
   through curation into a store whose facets carry the ``repair``
   origin (CraftRTL-style targeted repair data).

    python examples/repair_eval.py
    python examples/repair_eval.py --budgets 0,1,2,4 --store-dir ./store
"""

import _cli
from repro.core import PyraNet
from repro.corpus import repair_trajectories, repair_trajectory_batches


def main() -> None:
    parser = _cli.build_parser(
        "Repair-budget sweep + repair-trajectory corpus",
        default_seed=0)
    parser.add_argument(
        "--budgets", default="0,1,2", metavar="R,R,...",
        help="comma-separated repair budgets to sweep (default 0,1,2)")
    parser.add_argument(
        "--n-problems", type=int, default=12, metavar="N",
        help="problems per evaluation (default 12)")
    parser.add_argument(
        "--n-candidates", type=int, default=24, metavar="N",
        help="mutated designs for the trajectory corpus (default 24)")
    args = parser.parse_args()
    obs = _cli.observability_from(args)
    budgets = [int(token) for token in args.budgets.split(",")]

    pyranet = PyraNet(seed=args.seed, n_samples=4, n_test_vectors=12,
                      obs=obs, executor=_cli.executor_from(args),
                      cache_dir=args.cache_dir)
    model = pyranet.base_model("codellama-7b-instruct-sim")

    print(f"1) pass@1 vs repair budget ({args.n_problems} problems)")
    sweep = []
    for budget in budgets:
        report = pyranet.evaluate_repair(
            model, repair_budget=budget, n_problems=args.n_problems)
        rate = report.pass_at(1)
        sweep.append({"budget": budget, "pass@1": round(rate, 1)})
        print(f"   r={budget}: pass@1 = {rate:5.1f}")

    print(f"\n2) repair-trajectory corpus "
          f"({args.n_candidates} broken candidates)")
    trajectories = repair_trajectories(
        n_candidates=args.n_candidates, seed=args.seed, budget=2,
        executor=_cli.executor_from(args), obs=obs,
        resilience=_cli.resilience_from(args, obs))
    summary = trajectories.summary()
    print(f"   fixed {summary['n_fixed']}/{summary['n_candidates']} "
          f"(fix rate {summary['fix_rate']:.2f}, "
          f"{summary['total_iterations']} loop iterations)")

    store_facets = None
    if args.store_dir:
        from repro.dataset.streaming import StreamingCurationPipeline

        pipeline = StreamingCurationPipeline(seed=args.seed, obs=obs)
        outcome = pipeline.curate_to_store(
            repair_trajectory_batches(
                n_candidates=args.n_candidates, seed=args.seed,
                budget=2),
            args.store_dir, source_token=f"repair:{args.seed}")
        store_facets = outcome.manifest.facets()
        print(f"   stored {store_facets['n_entries']} entries at "
              f"{args.store_dir}; origins = {store_facets['origins']}")
    else:
        print("   (pass --store-dir to shard the pairs into a store)")

    _cli.write_report(args, {
        "sweep": sweep,
        "trajectories": summary,
        "store_facets": store_facets,
    })
    _cli.write_trace(args, obs, example="repair_eval")


if __name__ == "__main__":
    main()
