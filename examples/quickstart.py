"""Quickstart: build PyraNet, fine-tune a model, evaluate pass@k.

Runs the whole reproduction at small scale in about a minute::

    python examples/quickstart.py
    python examples/quickstart.py --seed 3 --parallel \
        --trace-json run.json --store-dir pyranet_store

Shared flags (see ``_cli.py``): ``--trace-json`` writes the merged
run report — one JSON document with spans and metrics from curation,
the store, fine-tuning and evaluation; ``--report-json`` writes the
tuned model's evaluation report; ``--store-dir`` round-trips the
curated dataset through the sharded store before fine-tuning;
``--cache-dir`` persists curation and evaluation stage results on disk
so a re-run over the same corpus skips the recomputation.
"""

import _cli
from repro import PyraNet


def main() -> None:
    args = _cli.build_parser(
        "Build PyraNet, fine-tune, evaluate pass@k").parse_args()
    pyranet = PyraNet(seed=args.seed, n_samples=5, n_test_vectors=12,
                      executor=_cli.executor_from(args),
                      obs=_cli.observability_from(args),
                      cache_dir=args.cache_dir)

    print("1) Building the PyraNet dataset "
          "(simulated scrape + LLM generation + curation)…")
    dataset = pyranet.build_dataset(
        n_github_files=300, n_llm_prompts=10, n_queries_per_prompt=5)
    for line in pyranet.curation.report.summary_lines():
        print("   ", line)

    train_data = None
    if args.store_dir:
        print(f"\n   sharding into {args.store_dir} and serving the "
              "curriculum off the store…")
        manifest = pyranet.save_store(args.store_dir)
        print(f"   {manifest.n_entries} entries -> "
              f"{len(manifest.shards)} shards")
        train_data = pyranet.load_store(args.store_dir, seed=args.seed,
                                        obs=pyranet.obs)

    print("\n2) Evaluating the un-tuned base model (CodeLlama-7B "
          "stand-in)…")
    base = pyranet.base_model("codellama-7b-instruct-sim")
    report_base = pyranet.evaluate(base, suite="machine", n_problems=16)
    print("    baseline            :", report_base.summary())

    print("\n3) Fine-tuning with the full PyraNet recipe "
          "(loss weighting + curriculum)…")
    tuned = pyranet.finetune("codellama-7b-instruct-sim",
                             recipe="architecture", dataset=train_data)
    report_tuned = pyranet.evaluate(tuned, suite="machine",
                                    n_problems=16)
    print("    pyranet-architecture:", report_tuned.summary())

    print("\n4) One generated completion:")
    problem = pyranet.problems("machine")[2]
    print("    prompt  :", problem.description[:90], "…")
    code = tuned.generate(problem.description, temperature=0.2,
                          module_header=problem.module_header)
    for line in code.splitlines()[:12]:
        print("   |", line)

    improvement = (report_tuned.pass_at(5) - report_base.pass_at(5))
    print(f"\npass@5 improvement over baseline: {improvement:+.1f} points")

    _cli.write_report(args, report_tuned)
    _cli.write_trace(args, pyranet.obs, example="quickstart")


if __name__ == "__main__":
    main()
