"""Quickstart: build PyraNet, fine-tune a model, evaluate pass@k.

Runs the whole reproduction at small scale in about a minute::

    python examples/quickstart.py
"""

from repro import PyraNet

def main() -> None:
    pyranet = PyraNet(seed=0, n_samples=5, n_test_vectors=12)

    print("1) Building the PyraNet dataset "
          "(simulated scrape + LLM generation + curation)…")
    dataset = pyranet.build_dataset(
        n_github_files=300, n_llm_prompts=10, n_queries_per_prompt=5)
    for line in pyranet.curation.report.summary_lines():
        print("   ", line)

    print("\n2) Evaluating the un-tuned base model (CodeLlama-7B "
          "stand-in)…")
    base = pyranet.base_model("codellama-7b-instruct-sim")
    report_base = pyranet.evaluate(base, suite="machine", n_problems=16)
    print("    baseline            :", report_base.summary())

    print("\n3) Fine-tuning with the full PyraNet recipe "
          "(loss weighting + curriculum)…")
    tuned = pyranet.finetune("codellama-7b-instruct-sim",
                             recipe="architecture")
    report_tuned = pyranet.evaluate(tuned, suite="machine",
                                    n_problems=16)
    print("    pyranet-architecture:", report_tuned.summary())

    print("\n4) One generated completion:")
    problem = pyranet.problems("machine")[2]
    print("    prompt  :", problem.description[:90], "…")
    code = tuned.generate(problem.description, temperature=0.2,
                          module_header=problem.module_header)
    for line in code.splitlines()[:12]:
        print("   |", line)

    improvement = (report_tuned.pass_at(5) - report_base.pass_at(5))
    print(f"\npass@5 improvement over baseline: {improvement:+.1f} points")


if __name__ == "__main__":
    main()
