"""Formally check Verilog designs — equivalence, properties, the tier.

Shows the BDD-based checker behind the verified tier, solver-free and
importable on its own:

* prove a rewritten adder equivalent to its reference;
* catch an operator-swap mutant, replay its counterexample in the
  event-driven simulator, and watch the two designs disagree;
* check boolean properties (including from all initial states);
* run the curation verdict (``verify_code``) over a small corpus and
  print the verified-tier yield, memoised so repeated elaborations
  are free.

    python examples/formal_check.py
    python examples/formal_check.py --report-json formal.json

Shared flags (see ``_cli.py``): ``--report-json`` writes the verdicts
document; ``--trace-json`` the merged run report; ``--seed`` varies
the mutant pick.  ``--cache-dir`` persists the elaboration memo, so a
re-run re-elaborates nothing.
"""

import random

import _cli
from repro.dataset.corrupt import operator_mutants
from repro.pipeline.diskcache import DiskCache
from repro.verilog import Simulator
from repro.verilog.formal import (
    ElaborationMemo,
    check_equivalence,
    check_properties,
    verify_code,
)

REFERENCE = """
module addsat(input [3:0] a, input [3:0] b, output [3:0] y);
  wire [4:0] wide;
  assign wide = a + b;
  assign y = wide[4] ? 4'hF : wide[3:0];
endmodule
"""

# The same saturating adder, restructured around a compare.
REWRITE = """
module addsat(input [3:0] a, input [3:0] b, output [3:0] y);
  wire [4:0] sum;
  assign sum = {1'b0, a} + {1'b0, b};
  assign y = (sum > 5'd15) ? 4'd15 : sum[3:0];
endmodule
"""

COUNTER = """
module counter(input clk, input rst, output reg [3:0] q);
  initial q = 0;
  always @(posedge clk) begin
    if (rst) q <= 0;
    else q <= q + 1;
  end
endmodule
"""


def main() -> None:
    args = _cli.build_parser(
        "Formally check Verilog designs (equivalence, properties, "
        "the verified tier)", default_seed=0).parse_args()
    obs = _cli.observability_from(args)
    _cli.note_unused_store(args)
    _cli.note_unused_families(args)
    report = {}

    # 1. Equivalence of a rewrite ----------------------------------------
    with obs.span("example.equivalence"):
        verdict = check_equivalence(REFERENCE, REWRITE)
    print(f"rewrite vs reference : {verdict.status} "
          f"({verdict.n_bdd_nodes} BDD nodes)")
    report["rewrite"] = verdict.to_dict()

    # 2. A mutant, caught and replayed -----------------------------------
    rng = random.Random(args.seed)
    mutants = operator_mutants(REFERENCE)
    mutant = mutants[rng.randrange(len(mutants))]
    with obs.span("example.mutant"):
        caught = check_equivalence(REFERENCE, mutant)
    print(f"operator mutant      : {caught.status} — {caught.detail}")
    if caught.counterexample:
        cex = caught.counterexample
        values = []
        for source in (REFERENCE, mutant):
            sim = Simulator(source)
            for name, value in cex["cycles"][0].items():
                sim.poke(name, value)
            values.append(sim.peek_int(cex["output"]))
        print(f"  replayed inputs {cex['cycles'][0]} -> "
              f"reference y={values[0]}, mutant y={values[1]}")
    report["mutant"] = caught.to_dict()

    # 3. Properties, including from all initial states -------------------
    props = check_properties(COUNTER, ["q <= 4'd15"], bound=3)
    print(f"counter invariant    : {props.status} "
          f"({props.properties[0]['assertion']!r})")
    report["properties"] = props.to_dict()

    # 4. The curation verdict over a tiny corpus, memoised ---------------
    disk = None
    if args.cache_dir:
        disk = DiskCache(f"{args.cache_dir}/formal-elab", obs=obs)
    memo = ElaborationMemo(disk=disk, obs=obs)
    corpus = {
        "saturating adder": REFERENCE,
        "counter": COUNTER,
        "mutant": mutant,
        "latch (outside the subset)": (
            "module latch1(input en, input d, output reg q);\n"
            "  always @(*) if (en) q = d;\nendmodule\n"),
    }
    print("\nverified-tier verdicts (two passes, memoised):")
    verdicts = {}
    for _ in range(2):  # the second pass re-elaborates nothing
        for name, source in corpus.items():
            memo.elaborate(source)
            ok, detail = verify_code(source)
            verdicts[name] = {"verified": ok, "detail": detail}
    for name, entry in verdicts.items():
        flag = "PASS" if entry["verified"] else "fail"
        print(f"  {flag}  {name:28s} {entry['detail']}")
    hits, misses = memo.stats()
    print(f"\nelaboration memo: {hits} hits / {misses} misses"
          + (" (misses persist under --cache-dir)" if disk else ""))
    report["verdicts"] = verdicts
    report["memo"] = {"hits": hits, "misses": misses}

    _cli.write_report(args, report)
    _cli.write_trace(args, obs, example="formal_check")


if __name__ == "__main__":
    main()
