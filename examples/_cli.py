"""Shared command-line conventions for the example scripts.

Every ``examples/*.py`` accepts the same five flags:

``--seed N``
    master seed for whatever the script randomises;
``--report-json PATH``
    write the script's machine-readable result (a
    :class:`repro.obs.Reportable` document where one exists, a plain
    JSON summary otherwise);
``--trace-json PATH``
    write the run's merged :class:`repro.obs.RunReport` — spans,
    counters, histograms — as one schema-versioned JSON artifact;
``--parallel``
    run fan-out-capable stages on a thread pool;
``--store-dir PATH``
    write/read the sharded dataset store where the script has one
    (scripts with nothing to store say so and continue).

Keeping the surface identical means any example can be diffed against
any other run with the same tooling:

    python examples/quickstart.py --seed 7 --trace-json run.json
"""

import argparse
import json
from pathlib import Path
from typing import Any, Dict, Optional

from repro.obs import Observability
from repro.pipeline import ParallelExecutor


def build_parser(description: str,
                 default_seed: int = 0) -> argparse.ArgumentParser:
    """The shared parser: same five flags on every example."""
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument(
        "--seed", type=int, default=default_seed, metavar="N",
        help=f"master seed (default {default_seed})")
    parser.add_argument(
        "--report-json", metavar="PATH", default=None,
        help="write the script's machine-readable result as JSON")
    parser.add_argument(
        "--trace-json", metavar="PATH", default=None,
        help="write the merged run report (spans + metrics) as JSON")
    parser.add_argument(
        "--parallel", action="store_true",
        help="run fan-out-capable stages on a thread pool")
    parser.add_argument(
        "--store-dir", metavar="PATH", default=None,
        help="write/read the sharded dataset store at PATH")
    return parser


def executor_from(args: argparse.Namespace) -> Optional[ParallelExecutor]:
    """A thread-pool executor under ``--parallel``, else None (caller
    default)."""
    return ParallelExecutor(mode="thread") if args.parallel else None


def observability_from(args: argparse.Namespace) -> Observability:
    """A live handle when ``--trace-json`` asks for telemetry, the
    shared no-op otherwise — so un-traced runs pay nothing."""
    return Observability() if args.trace_json else Observability.noop()


def write_json(path: str, payload: Dict[str, Any],
               label: str = "report") -> None:
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    print(f"wrote {label} to {path}")


def write_report(args: argparse.Namespace, payload: Any) -> None:
    """Honour ``--report-json``: a Reportable's ``to_dict()`` or any
    JSON-able mapping."""
    if not args.report_json:
        return
    if hasattr(payload, "to_dict"):
        payload = payload.to_dict()
    write_json(args.report_json, payload)


def write_trace(args: argparse.Namespace, obs: Observability,
                **meta: Any) -> None:
    """Honour ``--trace-json``: one merged RunReport artifact."""
    if not args.trace_json:
        return
    report = obs.run_report(meta={"seed": args.seed, **meta})
    Path(args.trace_json).write_text(report.to_json(indent=2) + "\n",
                                     encoding="utf-8")
    print(f"wrote run trace to {args.trace_json} "
          f"({len(report.spans)} spans)")


def note_unused_store(args: argparse.Namespace) -> None:
    """For scripts with no dataset to shard: acknowledge the flag."""
    if args.store_dir:
        print(f"(--store-dir {args.store_dir}: this example has no "
              "dataset store to write; ignored)")
