"""Shared command-line conventions for the example scripts.

Every ``examples/*.py`` accepts the same flags:

``--seed N``
    master seed for whatever the script randomises;
``--report-json PATH``
    write the script's machine-readable result (a
    :class:`repro.obs.Reportable` document where one exists, a plain
    JSON summary otherwise);
``--trace-json PATH``
    write the run's merged :class:`repro.obs.RunReport` — spans,
    counters, histograms — as one schema-versioned JSON artifact;
``--parallel``
    run fan-out-capable stages on a thread pool;
``--stream``
    curate through the memory-bounded streaming path where the script
    has one (byte-identical output; scripts without a streaming path
    say so and continue);
``--workers N``
    with ``--stream``, fan the fused stage workers out over an
    N-process pool (default: in-process serial);
``--store-dir PATH``
    write/read the sharded dataset store where the script has one
    (scripts with nothing to store say so and continue);
``--families``
    write the curation run's design-family report as ``families.json``
    next to the store (or the working directory without ``--store-dir``;
    scripts that run no curation say so and continue);
``--cache-dir PATH``
    persist content-addressed stage results (syntax checks, rankings,
    simulation outcomes) under PATH, so re-running the script over an
    unchanged corpus serves them from disk instead of recomputing
    (scripts with no cached stages say so and continue);
``--resume RUN_ID``
    journal pipeline progress under ``.pyranet-runs/RUN_ID`` and, when
    a journal already exists there, resume the killed run
    byte-identically instead of starting over;
``--fault-plan PATH``
    load a :class:`repro.resilience.FaultPlan` JSON schedule and inject
    it into the run (resilience drills: transient faults, delays,
    simulated crashes).

Service scripts (``serve.py``) additionally take the flags added by
:func:`add_service_flags` — ``--port`` (0 = OS-assigned) and
``--queue-dir`` (the persistent service root; reopening it resumes the
same queue), with ``--workers`` doubling as the worker-pool width.

Keeping the surface identical means any example can be diffed against
any other run with the same tooling:

    python examples/quickstart.py --seed 7 --trace-json run.json
"""

import argparse
import json
from pathlib import Path
from typing import Any, Dict, Optional

from repro.obs import Observability
from repro.pipeline import DiskCache, ParallelExecutor, ResultCache
from repro.resilience import Checkpointer, FaultPlan, Resilience


def build_parser(description: str,
                 default_seed: int = 0) -> argparse.ArgumentParser:
    """The shared parser: the same flag set on every example."""
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument(
        "--seed", type=int, default=default_seed, metavar="N",
        help=f"master seed (default {default_seed})")
    parser.add_argument(
        "--report-json", metavar="PATH", default=None,
        help="write the script's machine-readable result as JSON")
    parser.add_argument(
        "--trace-json", metavar="PATH", default=None,
        help="write the merged run report (spans + metrics) as JSON")
    parser.add_argument(
        "--parallel", action="store_true",
        help="run fan-out-capable stages on a thread pool")
    parser.add_argument(
        "--stream", action="store_true",
        help="use the memory-bounded streaming curate path "
             "(byte-identical output)")
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="with --stream: fan fused stage workers out over an "
             "N-process pool")
    parser.add_argument(
        "--store-dir", metavar="PATH", default=None,
        help="write/read the sharded dataset store at PATH")
    parser.add_argument(
        "--families", action="store_true",
        help="write the design-family report (families.json) next to "
             "the store (scripts without a curation run say so and "
             "continue)")
    parser.add_argument(
        "--cache-dir", metavar="PATH", default=None,
        help="persist content-addressed stage results under PATH; "
             "re-runs over an unchanged corpus skip recomputation")
    parser.add_argument(
        "--resume", metavar="RUN_ID", default=None,
        help="journal progress under .pyranet-runs/RUN_ID and resume "
             "a killed run from its checkpoint journal")
    parser.add_argument(
        "--fault-plan", metavar="PATH", default=None,
        help="inject the FaultPlan JSON schedule at PATH into the run")
    return parser


def add_service_flags(parser: argparse.ArgumentParser,
                      default_port: int = 8642) -> argparse.ArgumentParser:
    """The extra flags a long-running service script needs on top of
    :func:`build_parser` (which already provides ``--workers``)."""
    parser.add_argument(
        "--port", type=int, default=default_port, metavar="N",
        help=f"HTTP listen port; 0 = OS-assigned (default "
             f"{default_port})")
    parser.add_argument(
        "--host", default="127.0.0.1", metavar="ADDR",
        help="HTTP listen address (default 127.0.0.1)")
    parser.add_argument(
        "--queue-dir", metavar="PATH", default=".pyranet-service",
        help="service root: queue journal, per-job checkpoints and "
             "named stores live here; reopening it resumes the same "
             "queue (default .pyranet-service)")
    return parser


def executor_from(args: argparse.Namespace) -> Optional[ParallelExecutor]:
    """A process pool under ``--workers N`` (N > 1), a thread pool
    under ``--parallel``, else None (caller default)."""
    workers = getattr(args, "workers", None)
    if workers is not None and workers > 1:
        return ParallelExecutor(mode="process", max_workers=workers)
    return ParallelExecutor(mode="thread") if args.parallel else None


def note_unused_stream(args: argparse.Namespace) -> None:
    """For scripts with no streaming curate path: acknowledge the flag."""
    if getattr(args, "stream", False):
        print("(--stream: this example has no streaming curate path; "
              "ignored)")


def resilience_from(args: argparse.Namespace,
                    obs: Optional[Observability] = None,
                    ) -> Optional[Resilience]:
    """A :class:`Resilience` runtime when ``--resume`` or
    ``--fault-plan`` ask for one, else None (resilience off — the
    pipeline takes its single no-op path)."""
    checkpointer = None
    if args.resume:
        checkpointer = Checkpointer(
            Path(".pyranet-runs") / args.resume)
    fault_plan = None
    if args.fault_plan:
        fault_plan = FaultPlan.from_json(
            Path(args.fault_plan).read_text(encoding="utf-8"))
    if checkpointer is None and fault_plan is None:
        return None
    return Resilience(checkpointer=checkpointer, fault_plan=fault_plan,
                      obs=obs)


def cache_from(args: argparse.Namespace, obs: Observability,
               name: str = "curation") -> Optional[ResultCache]:
    """A :class:`ResultCache` with a persistent disk tier under
    ``--cache-dir`` (namespaced per cache name so curation and eval
    entries never share a directory), else None (caller default — a
    private in-memory cache)."""
    if not args.cache_dir:
        return None
    return ResultCache(
        name=name, registry=obs.registry,
        disk=DiskCache(Path(args.cache_dir) / name, obs=obs))


def observability_from(args: argparse.Namespace) -> Observability:
    """A live handle when ``--trace-json`` asks for telemetry, the
    shared no-op otherwise — so un-traced runs pay nothing."""
    return Observability() if args.trace_json else Observability.noop()


def write_json(path: str, payload: Dict[str, Any],
               label: str = "report") -> None:
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    print(f"wrote {label} to {path}")


def write_report(args: argparse.Namespace, payload: Any) -> None:
    """Honour ``--report-json``: a Reportable's ``to_dict()`` or any
    JSON-able mapping."""
    if not args.report_json:
        return
    if hasattr(payload, "to_dict"):
        payload = payload.to_dict()
    write_json(args.report_json, payload)


def write_trace(args: argparse.Namespace, obs: Observability,
                **meta: Any) -> None:
    """Honour ``--trace-json``: one merged RunReport artifact."""
    if not args.trace_json:
        return
    report = obs.run_report(meta={"seed": args.seed, **meta})
    Path(args.trace_json).write_text(report.to_json(indent=2) + "\n",
                                     encoding="utf-8")
    print(f"wrote run trace to {args.trace_json} "
          f"({len(report.spans)} spans)")


def note_unused_store(args: argparse.Namespace) -> None:
    """For scripts with no dataset to shard: acknowledge the flag."""
    if args.store_dir:
        print(f"(--store-dir {args.store_dir}: this example has no "
              "dataset store to write; ignored)")


def note_unused_cache(args: argparse.Namespace) -> None:
    """For scripts with no cached stages: acknowledge the flag."""
    if args.cache_dir:
        print(f"(--cache-dir {args.cache_dir}: this example has no "
              "cached stages to persist; ignored)")


def note_unused_families(args: argparse.Namespace) -> None:
    """For scripts with no curation run: acknowledge the flag."""
    if getattr(args, "families", False):
        print("(--families: this example runs no curation, so there is "
              "no family report to write; ignored)")
