"""Shared fixtures for the benchmark suite.

Scale is controlled by ``REPRO_BENCH_SCALE`` (default "standard"):

* ``fast``     — small corpus, few samples; smoke-checks the shapes;
* ``standard`` — the scale the committed EXPERIMENTS.md numbers used;
* ``full``     — bigger corpus and more samples (slowest, tightest).

Expensive artefacts (the curated dataset, Table I rows) are computed
once per session and shared across benchmark modules.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import pytest

from repro.core.pyranet import PyraNet, TableOneRow, run_table1


@dataclass(frozen=True)
class BenchScale:
    name: str
    n_github_files: int
    n_llm_prompts: int
    n_queries: int
    n_samples: int
    n_test_vectors: int
    n_problems: int | None


_SCALES = {
    "fast": BenchScale("fast", 250, 10, 5, 5, 12, 16),
    "standard": BenchScale("standard", 700, 25, 7, 8, 14, None),
    "full": BenchScale("full", 2000, 38, 10, 15, 24, None),
}


@pytest.fixture(scope="session")
def scale() -> BenchScale:
    name = os.environ.get("REPRO_BENCH_SCALE", "standard")
    if name not in _SCALES:
        raise ValueError(
            f"REPRO_BENCH_SCALE={name!r}; choose from {sorted(_SCALES)}"
        )
    return _SCALES[name]


@pytest.fixture(scope="session")
def pyranet(scale: BenchScale) -> PyraNet:
    """A PyraNet driver with the curated dataset built."""
    driver = PyraNet(
        seed=0,
        n_samples=scale.n_samples,
        n_test_vectors=scale.n_test_vectors,
    )
    driver.build_dataset(
        n_github_files=scale.n_github_files,
        n_llm_prompts=scale.n_llm_prompts,
        n_queries_per_prompt=scale.n_queries,
    )
    return driver


_TABLE1_CACHE: dict = {}


@pytest.fixture(scope="session")
def table1_rows(pyranet: PyraNet, scale: BenchScale) -> list:
    """Table I rows, computed once and reused by Table III."""
    key = scale.name
    if key not in _TABLE1_CACHE:
        _TABLE1_CACHE[key] = run_table1(
            pyranet, n_problems=scale.n_problems
        )
    return _TABLE1_CACHE[key]
