"""Ablations of PyraNet's design choices (DESIGN.md §ablations).

Each bench isolates one knob the paper fixes and shows the shape that
justifies the published choice:

* **weight schedule** — the paper's descending weights vs uniform vs
  inverse (rewarding junk);
* **curriculum order** — Basic→Expert vs shuffled vs Expert→Basic;
* **Layer 6 inclusion** — weight 0.1 vs dropping the layer entirely;
* **dedup threshold** — corpus-level sweep of the Jaccard cutoff;
* **self-reflection** — OriGen's repair loop on top of a noisy model.
"""

from __future__ import annotations

import pytest

from repro.baselines.origen import SelfReflectiveModel
from repro.dataset.dedup import deduplicate
from repro.finetune.curriculum import curriculum_phases
from repro.finetune.trainer import (
    Trainer,
    finetune_anti_curriculum,
    finetune_pyranet_architecture,
    finetune_weighting_only,
)
from repro.finetune.weighting import (
    inverse_schedule,
    no_layer6_schedule,
    paper_schedule,
    uniform_schedule,
)
from repro.model.generator import CODELLAMA_7B, ConditionalCodeModel


def _fresh_model(pyranet):
    return ConditionalCodeModel(CODELLAMA_7B, seed=pyranet.seed + 1)


def _score(pyranet, model, scale) -> float:
    report = pyranet.evaluate(model, "machine",
                              n_problems=scale.n_problems)
    return sum(report.summary().values())


def test_ablation_weight_schedule(benchmark, pyranet, scale, capsys):
    def run():
        results = {}
        for schedule in (paper_schedule(), uniform_schedule(),
                         inverse_schedule()):
            model = _fresh_model(pyranet)
            trainer = Trainer(schedule=schedule)
            trainer.run(model, curriculum_phases(pyranet.dataset,
                                                 seed=pyranet.seed))
            results[schedule.name] = _score(pyranet, model, scale)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print("Ablation — loss-weight schedule (sum of pass@{1,5,10} "
              "on Machine):")
        for name, score in results.items():
            print(f"  {name:>8}: {score:6.1f}")
    # The paper's descending weights beat rewarding junk.
    assert results["paper"] > results["inverse"]
    # And do at least as well as uniform (the Table I dataset-vs-
    # architecture gap, with ordering held fixed).
    assert results["paper"] >= results["uniform"] - 5.0


def test_ablation_curriculum_order(benchmark, pyranet, scale, capsys):
    def run():
        results = {}
        model = _fresh_model(pyranet)
        finetune_pyranet_architecture(model, pyranet.dataset,
                                      seed=pyranet.seed)
        results["curriculum"] = _score(pyranet, model, scale)
        model = _fresh_model(pyranet)
        finetune_weighting_only(model, pyranet.dataset,
                                seed=pyranet.seed)
        results["shuffled"] = _score(pyranet, model, scale)
        model = _fresh_model(pyranet)
        finetune_anti_curriculum(model, pyranet.dataset,
                                 seed=pyranet.seed)
        results["anti"] = _score(pyranet, model, scale)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print("Ablation — curriculum order (sum of pass@{1,5,10}):")
        for name, score in results.items():
            print(f"  {name:>10}: {score:6.1f}")
    # Order effects are second-order next to weighting (the paper also
    # treats curriculum as a refinement): curriculum must not lose to
    # the anti-curriculum by more than noise, and stays within noise of
    # shuffled complexity order.
    assert results["curriculum"] >= results["anti"] - 8.0
    assert results["curriculum"] >= results["shuffled"] - 18.0


def test_ablation_layer6(benchmark, pyranet, scale, capsys):
    def run():
        results = {}
        for schedule in (paper_schedule(), no_layer6_schedule()):
            model = _fresh_model(pyranet)
            trainer = Trainer(schedule=schedule)
            trainer.run(model, curriculum_phases(pyranet.dataset,
                                                 seed=pyranet.seed))
            results[schedule.name] = _score(pyranet, model, scale)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print("Ablation — Layer 6 at weight 0.1 vs excluded:")
        for name, score in results.items():
            print(f"  {name:>10}: {score:6.1f}")
    # Down-weighted Layer 6 should be roughly neutral: the paper keeps
    # it because weighting already neutralises its noise.
    assert abs(results["paper"] - results["no-layer6"]) < 25.0


def test_ablation_dedup_threshold(benchmark, pyranet, capsys):
    codes = [entry.code for entry in pyranet.dataset.entries]
    # Re-introduce duplicates so the sweep has something to remove.
    corpus = codes + codes[: len(codes) // 2]

    def run():
        sweep = {}
        for threshold in (0.5, 0.7, 0.8, 0.9, 0.99):
            report = deduplicate(corpus, threshold=threshold)
            sweep[threshold] = len(report.kept_indices)
        return sweep

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(f"Ablation — Jaccard threshold sweep over "
              f"{len(corpus)} files (kept):")
        for threshold, kept in sweep.items():
            print(f"  θ={threshold:4.2f}: keep {kept}")
    kept_counts = list(sweep.values())
    # Monotone: stricter similarity requirement keeps more files.
    assert kept_counts == sorted(kept_counts)
    # Exact duplicates die at every threshold.
    assert sweep[0.99] <= len(codes)
    # Aggressive thresholds over-merge distinct designs.
    assert sweep[0.5] < sweep[0.9]


def test_ablation_self_reflection(benchmark, pyranet, scale, capsys):
    def run():
        model = _fresh_model(pyranet)
        finetune_pyranet_architecture(model, pyranet.dataset,
                                      seed=pyranet.seed)
        plain = pyranet.evaluate(model, "machine",
                                 n_problems=scale.n_problems)
        wrapped = SelfReflectiveModel(model)
        reflective = pyranet.evaluate(wrapped, "machine",
                                      n_problems=scale.n_problems)
        return plain, reflective, wrapped

    plain, reflective, wrapped = benchmark.pedantic(
        run, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print("Ablation — OriGen-style self-reflection on top of "
              "PyraNet-Architecture:")
        print(f"  without repair loop: {plain.summary()}")
        print(f"  with repair loop   : {reflective.summary()} "
              f"(repairs {wrapped.repairs_succeeded}/"
              f"{wrapped.repairs_attempted})")
    # Repair can only help (it touches only non-compiling samples); the
    # paper predicts extra gains from adding OriGen's loop to PyraNet.
    assert sum(reflective.summary().values()) >= (
        sum(plain.summary().values()) - 2.0)
    syntax_failures = plain.failure_histogram().get("parse", 0)
    if syntax_failures > 3:
        assert wrapped.repairs_attempted > 0
