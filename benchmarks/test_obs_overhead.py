"""Observability overhead — the cost of telemetry on a real run.

Runs the same curation twice per round, once with a live
:class:`Observability` (registry + tracer collecting every span,
counter, and published trace) and once with the no-op handle the
un-instrumented path resolves to, and compares wall times.  The
contract claimed in DESIGN.md is that instrumentation is priced per
*stage and pool chunk*, never per record, so the live handle must stay
within 5% of the no-op path.

Medians over several interleaved rounds are compared (interleaving
cancels machine drift); the per-round ratios land in the benchmark
JSON via ``extra_info`` so later PRs can watch the trajectory.
"""

from __future__ import annotations

import statistics
import time

from repro.corpus.github_sim import GitHubScrapeSimulator
from repro.dataset.pipeline import CurationPipeline
from repro.obs import Observability
from repro.pipeline import ParallelExecutor

#: Acceptance bound: live telemetry within 5% of the no-op path.
MAX_OVERHEAD = 0.05

ROUNDS = 5


def _curate_once(raw_files, obs):
    started = time.perf_counter()
    result = CurationPipeline(
        seed=0, executor=ParallelExecutor(mode="thread", max_workers=4),
        obs=obs,
    ).run(raw_files)
    return time.perf_counter() - started, result


def test_obs_overhead_under_five_percent(benchmark, scale, capsys):
    raw_files = GitHubScrapeSimulator(seed=0).scrape(scale.n_github_files)

    # Warm both paths once (imports, pool spin-up, allocator noise).
    _curate_once(raw_files, Observability.noop())
    _curate_once(raw_files, Observability())

    noop_times, live_times = [], []
    live_spans = 0
    for _ in range(ROUNDS):
        noop_s, noop_result = _curate_once(raw_files, Observability.noop())
        obs = Observability()
        live_s, live_result = _curate_once(raw_files, obs)
        noop_times.append(noop_s)
        live_times.append(live_s)
        live_spans = len(obs.tracer)
        # Telemetry must never change the data.
        assert [e.to_dict() for e in live_result.dataset] == [
            e.to_dict() for e in noop_result.dataset]

    noop_med = statistics.median(noop_times)
    live_med = statistics.median(live_times)
    overhead = live_med / noop_med - 1.0

    benchmark.extra_info["n_files"] = len(raw_files)
    benchmark.extra_info["noop_median_s"] = round(noop_med, 4)
    benchmark.extra_info["live_median_s"] = round(live_med, 4)
    benchmark.extra_info["overhead"] = round(overhead, 4)
    benchmark.extra_info["spans_per_run"] = live_spans

    # One timed pass for pytest-benchmark's own stats (live path).
    benchmark.pedantic(_curate_once, args=(raw_files, Observability()),
                       rounds=1, iterations=1)

    with capsys.disabled():
        print()
        print("Observability overhead (curation, thread x4)")
        print(f"  corpus          : {len(raw_files)} files")
        print(f"  noop median     : {noop_med:8.3f} s over {ROUNDS} rounds")
        print(f"  live median     : {live_med:8.3f} s "
              f"({live_spans} spans/run)")
        print(f"  overhead        : {100 * overhead:+.2f}% "
              f"(bound {100 * MAX_OVERHEAD:.0f}%)")

    assert overhead < MAX_OVERHEAD, (
        f"live observability costs {100 * overhead:.1f}% "
        f"(> {100 * MAX_OVERHEAD:.0f}%) over the no-op path")
