"""Service load generator — jobs/s, latency percentiles, client scaling.

Boots the real HTTP service (socket, worker threads, durable queue
journal) and drives it with N concurrent closed-loop clients, each
submitting ``probe`` jobs over HTTP and polling to completion.  Numbers
emitted to ``BENCH_service.json`` (uploaded as a CI artifact):

* **jobs/s** — completed jobs per wall second at each client count;
* **p50 / p99 latency** — submit-to-done, as one client experiences it;
* **client scaling** — throughput at 1 client vs the widest point;
* **overhead split** — mean in-worker handler wall time vs end-to-end
  latency (the difference is queueing + HTTP + polling overhead).

Deliberately free of ``pytest-benchmark``: the CI smoke job runs this
file both as a test and as a plain script (``python
benchmarks/test_service.py --quick``) in environments where only the
core test deps are installed.
"""

from __future__ import annotations

import argparse
import json
import statistics
import threading
import time
from pathlib import Path
from typing import Any, Dict, List

REPORT_PATH = "BENCH_service.json"

#: Digest-chain length per probe job (the simulated unit of work).
SPIN = 200

#: Floors asserted at every preset — deliberately loose (CI boxes are
#: slow and shared); the JSON artifact carries the real trajectory.
JOBS_PER_S_FLOOR = 2.0
P99_CEILING_S = 10.0

#: preset -> (jobs per client, client counts, worker threads).
PRESETS = {
    "quick": (6, (1, 4), 4),
    "standard": (20, (1, 2, 4, 8), 4),
    "full": (40, (1, 2, 4, 8, 16), 8),
}


def percentile(samples: List[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100])."""
    ordered = sorted(samples)
    index = max(0, min(len(ordered) - 1,
                       round(q / 100.0 * (len(ordered) - 1))))
    return ordered[index]


def drive_clients(base_url: str, n_clients: int,
                  jobs_per_client: int) -> Dict[str, Any]:
    """N closed-loop HTTP clients, each submit->wait ``jobs_per_client``
    times; returns wall time and per-job latencies."""
    from repro.service import ServiceClient

    barrier = threading.Barrier(n_clients + 1)
    latencies: List[List[float]] = [[] for _ in range(n_clients)]
    errors: List[BaseException] = []

    def client_loop(index: int) -> None:
        client = ServiceClient(base_url, timeout=30.0)
        barrier.wait()
        for number in range(jobs_per_client):
            started = time.perf_counter()
            sub = client.submit(
                "probe", {"spin": SPIN},
                idempotency_key=f"bench-{n_clients}c-{index}-{number}")
            record = client.wait(sub["job_id"], timeout=60, poll=0.002)
            latencies[index].append(time.perf_counter() - started)
            if record["status"] != "done":
                errors.append(RuntimeError(
                    f"job failed under load: {record['error']}"))
                return

    threads = [threading.Thread(target=client_loop, args=(i,),
                                name=f"bench-client-{i}")
               for i in range(n_clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    wall_s = time.perf_counter() - started
    if errors:
        raise errors[0]
    flat = [sample for per_client in latencies for sample in per_client]
    return {
        "clients": n_clients,
        "jobs": len(flat),
        "wall_s": round(wall_s, 3),
        "jobs_per_s": round(len(flat) / wall_s, 2),
        "latency_p50_s": round(percentile(flat, 50), 4),
        "latency_p99_s": round(percentile(flat, 99), 4),
        "latency_mean_s": round(statistics.fmean(flat), 4),
    }


def run_service_benchmark(preset: str,
                          workdir: Path) -> Dict[str, Any]:
    from repro.obs import Observability
    from repro.service import PyraNetService, serve_in_thread

    jobs_per_client, client_counts, n_workers = PRESETS[preset]
    obs = Observability()
    service = PyraNetService(workdir / "svc", n_workers=n_workers,
                             obs=obs, poll_interval=0.002)
    server, thread = serve_in_thread(service)
    base_url = f"http://127.0.0.1:{server.port}"
    try:
        # Warm-up: one job end to end before the clock starts.
        warm = drive_clients(base_url, 1, 1)
        points = [drive_clients(base_url, n, jobs_per_client)
                  for n in client_counts]
        # One real eval job through the EvalConfig-routed payload
        # (repair_budget included) — the service path PRs are
        # accountable for, not just probe overhead.
        from repro.service import ServiceClient

        eval_client = ServiceClient(base_url, timeout=120.0)
        started = time.perf_counter()
        sub = eval_client.submit(
            "eval", {"suite": "machine", "n_problems": 2,
                     "n_samples": 2, "seed": 0, "repair_budget": 1},
            idempotency_key="bench-eval")
        record = eval_client.wait(sub["job_id"], timeout=120, poll=0.01)
        eval_job = {
            "wall_s": round(time.perf_counter() - started, 3),
            "status": record["status"],
            "repair_budget": record["result"].get("repair_budget"),
            "fix_rate_curve": record["result"].get("fix_rate_curve"),
        }
    finally:
        server.shutdown()
        server.server_close()
        service.stop(drain_queue=True)
        thread.join(timeout=10)

    registry = obs.registry
    handler_hist = registry.histogram("service.job.latency_s")
    handler_mean_s = (handler_hist.total / handler_hist.count
                      if handler_hist.count else 0.0)
    widest = points[-1]
    return {
        "schema": "pyranet-bench-service/v1",
        "preset": preset,
        "spin": SPIN,
        "workers": n_workers,
        "warmup_s": warm["wall_s"],
        "points": points,
        "eval_job": eval_job,
        "scaling": {
            "clients": [point["clients"] for point in points],
            "jobs_per_s": [point["jobs_per_s"] for point in points],
            "throughput_ratio": round(
                widest["jobs_per_s"] / points[0]["jobs_per_s"], 2),
        },
        "overhead": {
            "handler_mean_s": round(handler_mean_s, 4),
            "end_to_end_mean_s": widest["latency_mean_s"],
        },
        "counters": {
            name: registry.counter(name).value
            for name in ("service.jobs.submitted",
                         "service.jobs.finished",
                         "service.jobs.failed",
                         "service.http.requests",
                         "service.http.errors")
        },
        "floors": {"jobs_per_s": JOBS_PER_S_FLOOR,
                   "p99_s": P99_CEILING_S},
    }


def summary_lines(payload: Dict[str, Any]) -> list:
    lines = [
        f"Service load benchmark (preset {payload['preset']}, "
        f"{payload['workers']} workers, spin {payload['spin']})",
    ]
    for point in payload["points"]:
        lines.append(
            f"  {point['clients']:>2} client(s): "
            f"{point['jobs_per_s']:7.1f} jobs/s   "
            f"p50 {point['latency_p50_s'] * 1000:7.1f} ms   "
            f"p99 {point['latency_p99_s'] * 1000:7.1f} ms "
            f"({point['jobs']} jobs in {point['wall_s']:.2f}s)")
    overhead = payload["overhead"]
    lines.append(
        f"  handler mean {overhead['handler_mean_s'] * 1000:.1f} ms vs "
        f"end-to-end mean {overhead['end_to_end_mean_s'] * 1000:.1f} ms")
    lines.append(
        f"  throughput scaling 1 -> {payload['points'][-1]['clients']} "
        f"clients: {payload['scaling']['throughput_ratio']:.2f}x")
    eval_job = payload["eval_job"]
    lines.append(
        f"  eval job (repair_budget={eval_job['repair_budget']}): "
        f"{eval_job['status']} in {eval_job['wall_s']:.2f}s")
    return lines


def check_floors(payload: Dict[str, Any]) -> None:
    assert payload["eval_job"]["status"] == "done", (
        "EvalConfig-routed eval job failed")
    assert payload["counters"]["service.jobs.failed"] == 0, (
        "jobs failed under load")
    assert payload["counters"]["service.http.errors"] == 0, (
        "HTTP errors under load")
    wide = [point for point in payload["points"]
            if point["clients"] >= 4]
    assert wide, "no measurement at >= 4 concurrent clients"
    for point in wide:
        assert point["jobs_per_s"] >= JOBS_PER_S_FLOOR, (
            f"{point['clients']} clients: {point['jobs_per_s']} jobs/s "
            f"below floor {JOBS_PER_S_FLOOR}")
        assert point["latency_p99_s"] <= P99_CEILING_S, (
            f"{point['clients']} clients: p99 "
            f"{point['latency_p99_s']}s above ceiling {P99_CEILING_S}s")


def write_report(payload: Dict[str, Any],
                 path: str = REPORT_PATH) -> None:
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")


def test_service_load(scale, tmp_path, capsys):
    preset = {"fast": "quick", "standard": "standard",
              "full": "full"}[scale.name]
    payload = run_service_benchmark(preset, tmp_path)
    write_report(payload)
    with capsys.disabled():
        print()
        for line in summary_lines(payload):
            print(line)
    check_floors(payload)


def main() -> None:
    import tempfile

    parser = argparse.ArgumentParser(
        description="Load-test the job service over HTTP; write "
                    "BENCH_service.json")
    parser.add_argument("--quick", action="store_true",
                        help="small load (CI smoke scale)")
    parser.add_argument("--full", action="store_true",
                        help="widest client sweep")
    parser.add_argument("--json", default=REPORT_PATH, metavar="PATH",
                        help=f"report path (default {REPORT_PATH})")
    args = parser.parse_args()
    preset = ("full" if args.full
              else "quick" if args.quick else "standard")
    with tempfile.TemporaryDirectory() as workdir:
        payload = run_service_benchmark(preset, Path(workdir))
    for line in summary_lines(payload):
        print(line)
    write_report(payload, args.json)
    print(f"wrote {args.json}")
    check_floors(payload)


if __name__ == "__main__":
    main()
