"""Curation throughput — the staged pipeline engine's perf baseline.

Runs the same curation three ways — serial executor, thread-pool
executor, and serial again over a warm result cache — and records the
wall times, per-stage split, and cache hit rate into the benchmark JSON
(``--benchmark-json``) via ``extra_info``, so later PRs have a
trajectory to beat.  Also asserts the engine's contract: every mode
produces the identical dataset.
"""

from __future__ import annotations

from repro.corpus.github_sim import GitHubScrapeSimulator
from repro.dataset.pipeline import CurationPipeline
from repro.pipeline import ParallelExecutor, ResultCache


def _curate(raw_files, executor=None, cache=None):
    pipeline = CurationPipeline(seed=0, executor=executor, cache=cache)
    return pipeline.run(raw_files)


def test_pipeline_throughput(benchmark, scale, capsys):
    raw_files = GitHubScrapeSimulator(seed=0).scrape(scale.n_github_files)

    serial = benchmark.pedantic(
        _curate, args=(raw_files,), rounds=1, iterations=1
    )
    parallel = _curate(
        raw_files, executor=ParallelExecutor(mode="thread", max_workers=4)
    )
    cache = ResultCache()
    _curate(raw_files, cache=cache)  # cold fill
    warm = _curate(raw_files, cache=cache)

    serial_s = serial.report.trace.wall_time_s
    parallel_s = parallel.report.trace.wall_time_s
    warm_s = warm.report.trace.wall_time_s
    # Per-stage deltas from the warm run only — the engine-level cache
    # stats are cumulative across the cold fill too.
    warm_hits = sum(m.cache_hits for m in warm.report.trace.stages)
    warm_misses = sum(m.cache_misses for m in warm.report.trace.stages)
    hit_rate = warm_hits / max(warm_hits + warm_misses, 1)

    benchmark.extra_info["n_files"] = len(raw_files)
    benchmark.extra_info["serial_s"] = round(serial_s, 4)
    benchmark.extra_info["parallel_s"] = round(parallel_s, 4)
    benchmark.extra_info["warm_cache_s"] = round(warm_s, 4)
    benchmark.extra_info["warm_cache_hit_rate"] = round(hit_rate, 4)
    benchmark.extra_info["stage_wall_s"] = {
        metrics.name: round(metrics.wall_time_s, 4)
        for metrics in serial.report.trace.stages
    }

    with capsys.disabled():
        print()
        print("Curation pipeline throughput (staged engine)")
        print(f"  corpus            : {len(raw_files)} files -> "
              f"{len(serial.dataset)} entries")
        print(f"  serial            : {serial_s:8.3f} s")
        print(f"  thread x4         : {parallel_s:8.3f} s")
        print(f"  warm result cache : {warm_s:8.3f} s "
              f"(hit rate {100 * hit_rate:.0f}%)")
        slowest = max(serial.report.trace.stages,
                      key=lambda metrics: metrics.wall_time_s)
        print(f"  slowest stage     : {slowest.name} "
              f"({slowest.wall_time_s:.3f} s)")

    # Same records whatever the execution strategy.
    for other in (parallel, warm):
        assert [e.to_dict() for e in other.dataset] == [
            e.to_dict() for e in serial.dataset]
        assert other.report.funnel == serial.report.funnel
    # The warm pass re-runs only dedup/assembly; per-file work all hits.
    assert hit_rate > 0.9
    assert warm_s < serial_s
