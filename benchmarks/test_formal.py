"""Formal-tier hot paths: memoized elaboration, checking, scoring.

Three numbers this PR is accountable for, emitted to
``BENCH_formal.json`` (uploaded as a CI artifact):

* **Memoized elaboration** — the digest-keyed
  :class:`~repro.verilog.formal.ElaborationMemo` against re-parsing and
  re-elaborating every source, asserted at **>= 5x** warm-over-cold.
  The *zero re-elaboration* guarantee itself is asserted exactly via
  the memo's hit/miss counters (one miss per distinct source, ever).
* **Formal check throughput** — ``verify_design`` over elaborated
  designs (designs per second) plus a combinational equivalence-check
  rate; recorded for trajectory, no floor (BDD costs are by nature
  design-dependent).
* **Vectorised score mapping** — the numpy penalty→score path in
  ``repro.dataset.ranking`` against the scalar fallback, mapping-only
  (linting dominates end-to-end and is measured separately by the
  pipeline benchmarks).

Deliberately free of ``pytest-benchmark``: the CI smoke job runs this
file both as a test and as a plain script (``python
benchmarks/test_formal.py --quick``).
"""

from __future__ import annotations

import argparse
import json
import random
import time
from pathlib import Path
from typing import Any, Dict, List

from repro.corpus.templates import generate_design
from repro.dataset.ranking import _scores_from_penalties, score_from_penalty
from repro.verilog.formal import (
    ElaborationMemo,
    check_equivalence,
    verify_design,
)
from repro.verilog.formal.memo import _elaborate_source

#: Hard floor for the memoized parse/elaborate path (acceptance
#: criterion): a warm pass must beat re-elaboration by at least this.
MEMO_SPEEDUP_FLOOR = 5.0

REPORT_PATH = "BENCH_formal.json"

#: Template families whose generated designs elaborate cleanly.
_FAMILIES = ("half_adder", "mod_n_counter", "ripple_carry_adder", "alu")


def _corpus(n_designs: int) -> List[str]:
    sources = []
    for i in range(n_designs):
        family = _FAMILIES[i % len(_FAMILIES)]
        sources.append(generate_design(family, random.Random(i)).source)
    return sources


def run_formal_benchmark(n_designs: int, n_passes: int = 3) -> Dict[str, Any]:
    """Measure the three numbers at ``n_designs`` corpus scale."""
    sources = _corpus(n_designs)
    n_distinct = len(set(sources))  # template seeds can collide

    # -- memoized elaboration ------------------------------------------
    started = time.perf_counter()
    for source in sources:
        _elaborate_source(source, None, None)
    unmemoized_s = time.perf_counter() - started

    memo = ElaborationMemo()
    started = time.perf_counter()
    for source in sources:
        memo.elaborate(source)
    cold_s = time.perf_counter() - started

    started = time.perf_counter()
    for _ in range(n_passes):
        for source in sources:
            memo.elaborate(source)
    warm_s = (time.perf_counter() - started) / n_passes

    hits, misses = memo.stats()
    # Counter-exact: one miss per distinct source, everything else hits.
    assert misses == n_distinct, (hits, misses, n_distinct)
    assert hits == n_designs * (n_passes + 1) - n_distinct, (hits, misses)

    # -- formal check throughput ---------------------------------------
    designs = [memo.elaborate(source) for source in sources]
    started = time.perf_counter()
    n_verified = sum(
        1 for design in designs
        if verify_design(design, bound=2).status == "verified")
    verify_s = time.perf_counter() - started

    started = time.perf_counter()
    # Inside the formal subset (a bit-sliced carry bus would read and
    # write one signal, which the loop check conservatively rejects).
    adder = (
        "module add8(input [7:0] a, input [7:0] b, input cin,\n"
        "            output [8:0] y);\n"
        "  assign y = a + b + cin;\n"
        "endmodule\n")
    n_equiv_checks = max(4, n_designs // 16)
    for _ in range(n_equiv_checks):
        report = check_equivalence(adder, adder)
        assert report.status == "equivalent"
    equiv_s = time.perf_counter() - started

    # -- vectorised score mapping --------------------------------------
    rng = random.Random(7)
    n_rows = 50_000
    penalties = [rng.uniform(0.0, 12.0) for _ in range(n_rows)]
    failed = [rng.random() < 0.1 for _ in range(n_rows)]
    started = time.perf_counter()
    vectorised = _scores_from_penalties(penalties, failed)
    vector_s = time.perf_counter() - started
    started = time.perf_counter()
    scalar = [0 if f else score_from_penalty(p)
              for p, f in zip(penalties, failed)]
    scalar_s = time.perf_counter() - started
    assert vectorised == scalar  # bit-for-bit parity, not just speed

    return {
        "schema": "pyranet-bench-formal/v1",
        "n_designs": n_designs,
        "n_passes": n_passes,
        "memo": {
            "unmemoized_s": round(unmemoized_s, 4),
            "cold_s": round(cold_s, 4),
            "warm_s": round(warm_s, 4),
            "speedup": round(unmemoized_s / warm_s, 2),
            "floor": MEMO_SPEEDUP_FLOOR,
            "hits": hits,
            "misses": misses,
        },
        "check": {
            "verify_s": round(verify_s, 4),
            "verify_per_s": round(len(designs) / verify_s, 1),
            "n_verified": n_verified,
            "equivalence_s": round(equiv_s, 4),
            "equivalence_per_s": round(n_equiv_checks / equiv_s, 1),
        },
        "scoring": {
            "n_rows": n_rows,
            "vector_s": round(vector_s, 4),
            "scalar_s": round(scalar_s, 4),
            "speedup": round(scalar_s / vector_s, 2),
        },
    }


def summary_lines(payload: Dict[str, Any]) -> list:
    memo = payload["memo"]
    check = payload["check"]
    scoring = payload["scoring"]
    return [
        "Formal-tier benchmark "
        f"({payload['n_designs']} designs x {payload['n_passes']} passes)",
        f"  elaborate, no memo: {memo['unmemoized_s']:8.3f} s",
        f"  memo cold pass    : {memo['cold_s']:8.3f} s",
        f"  memo warm pass    : {memo['warm_s']:8.3f} s  "
        f"({memo['speedup']:.1f}x, floor {memo['floor']:.0f}x; "
        f"{memo['misses']} misses / {memo['hits']} hits)",
        f"  verify_design     : {check['verify_s']:8.3f} s  "
        f"({check['verify_per_s']:.1f}/s, "
        f"{check['n_verified']} verified)",
        f"  check_equivalence : {check['equivalence_s']:8.3f} s  "
        f"({check['equivalence_per_s']:.1f}/s)",
        f"  score mapping     : {scoring['scalar_s']:8.4f} s scalar vs "
        f"{scoring['vector_s']:8.4f} s vectorised "
        f"({scoring['speedup']:.1f}x on {scoring['n_rows']} rows)",
    ]


def check_floors(payload: Dict[str, Any]) -> None:
    memo = payload["memo"]
    assert memo["speedup"] >= MEMO_SPEEDUP_FLOOR, (
        f"memoized elaboration regressed: {memo['speedup']}x "
        f"< floor {MEMO_SPEEDUP_FLOOR}x")


def write_report(payload: Dict[str, Any],
                 path: str = REPORT_PATH) -> None:
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")


def test_formal_bench(scale, capsys, tmp_path):
    payload = run_formal_benchmark(max(32, scale.n_github_files // 8))
    payload["scale"] = scale.name
    write_report(payload)
    with capsys.disabled():
        print()
        for line in summary_lines(payload):
            print(line)
    check_floors(payload)


def main() -> None:
    parser = argparse.ArgumentParser(
        description="Benchmark the formal tier's memoized elaboration, "
                    "check throughput, and vectorised scoring; write "
                    "BENCH_formal.json")
    parser.add_argument(
        "--quick", action="store_true",
        help="small corpus (CI smoke scale)")
    parser.add_argument(
        "--n-designs", type=int, default=None, metavar="N",
        help="explicit design count (overrides --quick)")
    parser.add_argument(
        "--json", default=REPORT_PATH, metavar="PATH",
        help=f"report path (default {REPORT_PATH})")
    args = parser.parse_args()
    n_designs = args.n_designs or (32 if args.quick else 96)
    payload = run_formal_benchmark(n_designs)
    payload["scale"] = "quick" if args.quick else "cli"
    for line in summary_lines(payload):
        print(line)
    write_report(payload, args.json)
    print(f"wrote {args.json}")
    check_floors(payload)


if __name__ == "__main__":
    main()
