"""Fig. 3 — the ranking prompt/response exchange.

The paper's example: a clean half adder is sent to the judge with the
"act as a teacher" pre-prompt and receives "Score: 20 out of 20."
This bench reproduces the exchange verbatim through the simulated
commercial LLM and checks the judge's discrimination: the exemplar
scores 20, degraded variants score lower, and syntactically broken
code scores 0.
"""

from __future__ import annotations

import random

from repro.corpus.llm_sim import SimulatedCommercialLLM
from repro.corpus import mutate
from repro.dataset.ranking import (
    format_ranking_prompt,
    format_ranking_response,
    score_code,
)

#: The exact code of the paper's Fig. 3.
FIG3_HALF_ADDER = """\
module halfAdder(
 input A,
 input B,
 output Sum,
 output Cout
 );

 assign Sum = A ^ B;
 assign Cout = A & B;
 endmodule
"""


def test_fig3(benchmark, capsys):
    llm = SimulatedCommercialLLM(seed=0)
    score = benchmark.pedantic(
        lambda: llm.rank(FIG3_HALF_ADDER), rounds=1, iterations=1
    )
    exchange = llm.exchanges[-1]
    with capsys.disabled():
        print()
        print("Fig. 3 — ranking prompt and response (reproduction)")
        print("  prompt head :",
              exchange.prompt.splitlines()[0][:72], "...")
        print("  response    :", exchange.response)

    # The paper's exemplar scores 20 out of 20.
    assert score == 20
    assert exchange.response == format_ranking_response(20)
    assert exchange.prompt == format_ranking_prompt(FIG3_HALF_ADDER)
    assert "Act as a teacher" in exchange.prompt
    assert "Just give me the score only." in exchange.prompt

    # Discrimination: damage lowers the score monotonically in kind.
    rng = random.Random(3)
    degraded = mutate.degrade_style(FIG3_HALF_ADDER, rng, 0.9).source
    degraded_score = score_code(degraded)
    broken = mutate.break_syntax(FIG3_HALF_ADDER, rng).source
    broken_score = score_code(broken)
    assert degraded_score <= score
    assert broken_score == 0
