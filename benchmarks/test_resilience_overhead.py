"""Resilience overhead — the cost of the retry/quarantine guards when
nothing actually fails.

Runs the same curation twice per round, once with no resilience handle
(the disabled shared instance: stage functions run bare) and once with
an enabled :class:`Resilience` — default retry policy, per-stage
breakers, no checkpointer, no fault plan — and compares wall times.
The DESIGN.md contract is that a fault-free run pays only the guard
wrapper per record, never a backoff sleep or a journal write, so the
protected path must stay within 5% of the bare one.

Medians over interleaved rounds are compared (interleaving cancels
machine drift); per-round numbers land in the benchmark JSON via
``extra_info`` so later PRs can watch the trajectory.
"""

from __future__ import annotations

import statistics
import time

from repro.corpus.github_sim import GitHubScrapeSimulator
from repro.dataset.pipeline import CurationPipeline
from repro.pipeline import ParallelExecutor
from repro.resilience import Resilience

#: Acceptance bound: the no-fault guarded path within 5% of the bare one.
MAX_OVERHEAD = 0.05

ROUNDS = 5


def _curate_once(raw_files, resilience):
    started = time.perf_counter()
    result = CurationPipeline(
        seed=0, executor=ParallelExecutor(mode="thread", max_workers=4),
        resilience=resilience,
    ).run(raw_files)
    return time.perf_counter() - started, result


def test_resilience_overhead_under_five_percent(benchmark, scale, capsys):
    raw_files = GitHubScrapeSimulator(seed=0).scrape(scale.n_github_files)

    # Warm both paths once (imports, pool spin-up, allocator noise).
    _curate_once(raw_files, None)
    _curate_once(raw_files, Resilience())

    bare_times, guarded_times = [], []
    last_summary = {}
    for _ in range(ROUNDS):
        bare_s, bare_result = _curate_once(raw_files, None)
        res = Resilience()
        guarded_s, guarded_result = _curate_once(raw_files, res)
        bare_times.append(bare_s)
        guarded_times.append(guarded_s)
        last_summary = res.summary()
        # The guards must never change the data, and with no faults
        # scheduled they must never fire.
        assert [e.to_dict() for e in guarded_result.dataset] == [
            e.to_dict() for e in bare_result.dataset]
        assert last_summary["retries"] == 0
        assert last_summary["quarantined"] == 0

    bare_med = statistics.median(bare_times)
    guarded_med = statistics.median(guarded_times)
    overhead = guarded_med / bare_med - 1.0

    benchmark.extra_info["n_files"] = len(raw_files)
    benchmark.extra_info["bare_median_s"] = round(bare_med, 4)
    benchmark.extra_info["guarded_median_s"] = round(guarded_med, 4)
    benchmark.extra_info["overhead"] = round(overhead, 4)

    # One timed pass for pytest-benchmark's own stats (guarded path).
    benchmark.pedantic(_curate_once, args=(raw_files, Resilience()),
                       rounds=1, iterations=1)

    with capsys.disabled():
        print()
        print("Resilience overhead (curation, thread x4, no faults)")
        print(f"  corpus          : {len(raw_files)} files")
        print(f"  bare median     : {bare_med:8.3f} s over {ROUNDS} rounds")
        print(f"  guarded median  : {guarded_med:8.3f} s "
              f"(summary {last_summary})")
        print(f"  overhead        : {100 * overhead:+.2f}% "
              f"(bound {100 * MAX_OVERHEAD:.0f}%)")

    assert overhead < MAX_OVERHEAD, (
        f"no-fault resilience costs {100 * overhead:.1f}% "
        f"(> {100 * MAX_OVERHEAD:.0f}%) over the bare path"
    )
