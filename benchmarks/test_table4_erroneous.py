"""Table IV — fine-tuning on the erroneous (label-shuffled) dataset.

The paper's dataset-quality verification: shuffle codes, descriptions,
and rankings across rows, fine-tune CodeLlama-7B on the distorted
dataset, and compare with the correctly-labelled one.

Shape assertions: the erroneous model is much worse than the correct
one on every suite, and no better than (roughly) the un-tuned baseline
— matching the paper's conclusion that mismatched labels destroy the
fine-tuning signal.
"""

from __future__ import annotations

from repro.core.pyranet import run_table4
from repro.eval.report import render_table
from repro.model.generator import CODELLAMA_7B


def test_table4(benchmark, pyranet, scale, capsys):
    results = benchmark.pedantic(
        lambda: run_table4(pyranet, CODELLAMA_7B.name,
                           n_problems=scale.n_problems),
        rounds=1, iterations=1,
    )
    rows = [results["erroneous"], results["correct"]]
    with capsys.disabled():
        print()
        print(render_table(
            "Table IV — results for erroneous dataset (reproduction)",
            rows))

    erroneous = results["erroneous"].cells()
    correct = results["correct"].cells()
    # Correct labels beat shuffled labels decisively in aggregate…
    assert sum(correct) > sum(erroneous) + 10.0
    # …and on most individual columns.
    better = sum(1 for c, e in zip(correct, erroneous) if c >= e)
    assert better >= 5, (correct, erroneous)
