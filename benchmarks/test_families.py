"""Family clustering: throughput and the zero-recompute guarantee.

Two numbers this PR is accountable for, emitted to
``BENCH_families.json`` (uploaded as a CI artifact):

* **Families/s** — wall-clock of the family-aware dedup
  (:func:`~repro.dataset.families.build_family_artifacts`) over the
  seeded 500-file scrape, and the marginal cost over plain dedup.
  Clustering rides the signatures dedup already computes, so the
  overhead floor is deliberately tight (<= 2x plain dedup — typically
  well under 1.3x; the extra work is band-key unions and evidence
  strings, never hashing).
* **Zero recompute** — asserted *counter-exactly*, not by timing: the
  family-aware run performs precisely as many signature calls and
  shingle digests as plain dedup (``MinHasher`` counts both).

Deliberately free of ``pytest-benchmark``: the CI smoke job runs this
file both as a test and as a plain script (``python
benchmarks/test_families.py --quick``).
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path
from typing import Any, Dict

from repro.corpus.github_sim import GitHubScrapeSimulator
from repro.dataset.dedup import MinHasher, deduplicate
from repro.dataset.families import build_family_artifacts, module_names

#: Hard ceiling on the marginal cost of clustering over plain dedup.
OVERHEAD_CEILING = 2.0

REPORT_PATH = "BENCH_families.json"


def run_families_benchmark(n_files: int) -> Dict[str, Any]:
    raw_files = GitHubScrapeSimulator(seed=0).scrape(n_files)
    corpus = [f.content for f in raw_files]

    plain_hasher = MinHasher(64)
    started = time.perf_counter()
    deduplicate(corpus, threshold=0.8, hasher=plain_hasher)
    plain_s = time.perf_counter() - started

    def meta_for(index: int) -> Dict[str, Any]:
        return {"path": raw_files[index].path, "origin": "github",
                "modules": module_names(corpus[index])}

    family_hasher = MinHasher(64)
    started = time.perf_counter()
    report, index = build_family_artifacts(
        corpus, list(range(len(corpus))), meta_for,
        threshold=0.8, seed=0, hasher=family_hasher)
    family_s = time.perf_counter() - started

    # The zero-recompute guarantee, counter-exact: family clustering
    # hashed nothing plain dedup did not.
    assert family_hasher.n_signature_calls == plain_hasher.n_signature_calls
    assert family_hasher.n_shingles_hashed == plain_hasher.n_shingles_hashed

    return {
        "schema": "pyranet-bench-families/v1",
        "n_files": n_files,
        "families": {
            "wall_s": round(family_s, 4),
            "families_per_s": round(index.n_families / family_s, 1),
            "n_families": index.n_families,
            "n_variants": index.n_variants,
            "overhead_vs_plain_dedup": round(family_s / plain_s, 2),
            "overhead_ceiling": OVERHEAD_CEILING,
        },
        "plain_dedup": {
            "wall_s": round(plain_s, 4),
            "n_removed": report.n_removed,
        },
        "zero_recompute": {
            "signature_calls": family_hasher.n_signature_calls,
            "shingles_hashed": family_hasher.n_shingles_hashed,
            "counter_exact": True,
        },
    }


def summary_lines(payload: Dict[str, Any]) -> list:
    fam = payload["families"]
    return [
        f"Family clustering benchmark ({payload['n_files']} files)",
        f"  plain dedup       : {payload['plain_dedup']['wall_s']:8.3f} s",
        f"  dedup + families  : {fam['wall_s']:8.3f} s  "
        f"({fam['overhead_vs_plain_dedup']:.2f}x, "
        f"ceiling {fam['overhead_ceiling']:.1f}x)",
        f"  families/s        : {fam['families_per_s']:8.1f}  "
        f"({fam['n_families']} families, {fam['n_variants']} variants)",
        f"  zero recompute    : "
        f"{payload['zero_recompute']['signature_calls']} signature "
        f"calls, {payload['zero_recompute']['shingles_hashed']} "
        f"shingle digests (counter-exact match with plain dedup)",
    ]


def check_floors(payload: Dict[str, Any]) -> None:
    fam = payload["families"]
    assert fam["n_families"] > 0, "seeded scrape produced no families"
    assert fam["overhead_vs_plain_dedup"] <= OVERHEAD_CEILING, (
        f"family clustering overhead {fam['overhead_vs_plain_dedup']}x "
        f"> ceiling {OVERHEAD_CEILING}x — it must ride dedup's "
        "signatures, not recompute")


def write_report(payload: Dict[str, Any],
                 path: str = REPORT_PATH) -> None:
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")


def test_family_throughput(scale, capsys):
    payload = run_families_benchmark(max(scale.n_github_files, 500))
    payload["scale"] = scale.name
    write_report(payload)
    with capsys.disabled():
        print()
        for line in summary_lines(payload):
            print(line)
    check_floors(payload)


def main() -> None:
    parser = argparse.ArgumentParser(
        description="Benchmark family clustering over the seeded "
                    "scrape; write BENCH_families.json")
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke scale (the seeded 500-file scrape)")
    parser.add_argument(
        "--n-files", type=int, default=None, metavar="N",
        help="explicit corpus size (overrides --quick)")
    parser.add_argument(
        "--json", default=REPORT_PATH, metavar="PATH",
        help=f"report path (default {REPORT_PATH})")
    args = parser.parse_args()
    n_files = args.n_files or (500 if args.quick else 1000)
    payload = run_families_benchmark(n_files)
    payload["scale"] = "quick" if args.quick else "cli"
    for line in summary_lines(payload):
        print(line)
    write_report(payload, args.json)
    print(f"wrote {args.json}")
    check_floors(payload)


if __name__ == "__main__":
    main()
