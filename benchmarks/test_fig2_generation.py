"""Fig. 2 — the commercial-LLM generation pipeline.

Keywords → expanded keywords → crafted prompts → 10 temperature-varied
queries per prompt.  This bench runs the pipeline and reports the
funnel: how many keywords/expansions exist, how many samples each
prompt yields, and what fraction survive the syntax filter at each
temperature band (low temperatures should be markedly cleaner).
"""

from __future__ import annotations

import random
from collections import defaultdict

from repro.corpus.keywords import build_keyword_database, craft_prompt
from repro.corpus.llm_sim import SimulatedCommercialLLM
from repro.verilog import check


def _run_pipeline(n_prompts: int = 12, n_queries: int = 10):
    db = build_keyword_database()
    llm = SimulatedCommercialLLM(seed=42)
    rng = random.Random(7)
    samples = []
    for _ in range(n_prompts):
        entry = db.sample(rng)
        samples.extend(llm.generate_batch(entry, n_queries=n_queries))
    return db, samples


def test_fig2(benchmark, capsys):
    db, samples = benchmark.pedantic(
        _run_pipeline, rounds=1, iterations=1
    )
    stats = db.funnel_stats()

    by_band = defaultdict(lambda: [0, 0])  # band -> [clean, total]
    for sample in samples:
        band = "low" if sample.temperature < 0.7 else (
            "mid" if sample.temperature < 1.1 else "high")
        source = sample.design.source
        status = check(source).status
        by_band[band][1] += 1
        if status == "clean":
            by_band[band][0] += 1

    with capsys.disabled():
        print()
        print("Fig. 2 — Verilog generation via commercial LLM "
              "(reproduction)")
        print(f"  keyword database : {stats['keywords']} keywords")
        print(f"  expanded keywords: {stats['expanded_keywords']} "
              f"({stats['combinational']} combinational, "
              f"{stats['sequential']} sequential)")
        print(f"  queries issued   : {len(samples)} "
              f"(10 per prompt, temperature sweep)")
        for band in ("low", "mid", "high"):
            clean, total = by_band[band]
            if total:
                print(f"  {band:>4} temperature: {clean}/{total} "
                      f"compile clean ({100 * clean / total:.0f}%)")

    assert stats["keywords"] >= 10
    assert stats["expanded_keywords"] >= 30
    assert stats["combinational"] > 0 and stats["sequential"] > 0
    assert len(samples) == 12 * 10
    # Prompts are detailed design descriptions.
    prompt = craft_prompt(db.entries[0], random.Random(0))
    assert "Verilog" in prompt and "style" in prompt
    # Low-temperature samples compile clean more often than high.
    low_clean, low_total = by_band["low"]
    high_clean, high_total = by_band["high"]
    assert low_clean / low_total > high_clean / high_total
