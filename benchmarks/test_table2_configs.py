"""Table II — pre-trained LLM architectures and fine-tuning settings.

A configuration report rather than a measurement: emits the published
architecture table alongside the parameters of the simulated stand-ins
actually used, and sanity-checks the registry's internal consistency.
"""

from __future__ import annotations

from repro.model.registry import (
    PUBLISHED_CONFIGS,
    build_registry,
    render_table2,
)


def test_table2(benchmark, capsys):
    table = benchmark.pedantic(render_table2, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(table)

    registry = build_registry()
    assert len(registry) == 3
    names = [entry.published.model for entry in registry]
    assert names == [c.model for c in PUBLISHED_CONFIGS]
    for entry in registry:
        pub = entry.published
        assert pub.learning_rate == 2e-4  # constant across the paper
        assert pub.head_size == 128
        assert entry.substrate.d_model % entry.substrate.n_heads == 0
    # The published rows match the paper's Table II.
    by_model = {c.model: c for c in PUBLISHED_CONFIGS}
    assert by_model["CodeLlama-7b-Instruct"].layers == 32
    assert by_model["CodeLlama-13b-Instruct"].layers == 40
    assert by_model["DeepSeek-Coder-7B-Instruct-v1.5"].layers == 30
    assert by_model["DeepSeek-Coder-7B-Instruct-v1.5"].context_size == 4000
