"""Table III — PyraNet gains vs baseline models and SOTA.

Derived from the Table I runs: per-column deltas of each PyraNet
variant against its own baseline and against the relevant SOTA recipe
(MG-Verilog for CodeLlama, RTLCoder/OriGen for DeepSeek-Coder).

Shape assertions:

* every "vs Baseline" delta is positive in aggregate;
* PyraNet-Architecture beats the RTLCoder recipe (clearly) and is at
  least competitive with OriGen-without-self-reflection (the paper
  reports small single-digit margins there).
"""

from __future__ import annotations

from repro.core.pyranet import gains
from repro.eval.report import render_gains_table
from repro.model.generator import CODELLAMA_7B, CODELLAMA_13B, DEEPSEEK_7B


def _row(rows, needle):
    for row in rows:
        if needle in row.label:
            return row
    raise AssertionError(f"row {needle!r} missing")


def test_table3(benchmark, table1_rows, capsys):
    rows = benchmark.pedantic(lambda: table1_rows, rounds=1, iterations=1)

    entries = []
    mg = _row(rows, "mgverilog")
    rtl = _row(rows, "rtlcoder")
    origen = _row(rows, "origen")
    for profile in (CODELLAMA_7B.name, CODELLAMA_13B.name):
        base = _row(rows, f"{profile} baseline")
        for recipe in ("dataset", "architecture"):
            row = _row(rows, f"{profile} {recipe}")
            entries.append((row.label, "vs Baseline", gains(row, base)))
            entries.append((row.label, "vs MG-Verilog", gains(row, mg)))
    ds_base = _row(rows, f"{DEEPSEEK_7B.name} baseline")
    for recipe in ("dataset", "architecture"):
        row = _row(rows, f"{DEEPSEEK_7B.name} {recipe}")
        entries.append((row.label, "vs Baseline", gains(row, ds_base)))
        entries.append((row.label, "vs RTL-Coder", gains(row, rtl)))
        entries.append((row.label, "vs OriGen", gains(row, origen)))

    with capsys.disabled():
        print()
        print(render_gains_table(
            "Table III — PyraNet gains vs baseline and SOTA "
            "(reproduction)", entries))

    # Every PyraNet variant improves on its own baseline in aggregate.
    for label, vs_label, deltas in entries:
        if vs_label == "vs Baseline":
            assert sum(deltas) > 0, (label, deltas)
    # Architecture beats the RTLCoder recipe on DeepSeek.
    arch_vs_rtl = [d for label, vs, d in entries
                   if "architecture" in label and vs == "vs RTL-Coder"]
    assert arch_vs_rtl and sum(arch_vs_rtl[0]) > 0
    # Architecture is at least competitive with OriGen (paper: +2..+4).
    arch_vs_origen = [d for label, vs, d in entries
                      if "architecture" in label and vs == "vs OriGen"]
    assert arch_vs_origen and sum(arch_vs_origen[0]) > -6.0
