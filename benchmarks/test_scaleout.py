"""Streaming curate path: memory boundedness and shard-parallel speedup.

Numbers this PR is accountable for, emitted to ``BENCH_scaleout.json``
(uploaded as a CI artifact) so later PRs have a trajectory to beat:

* **Golden byte-identity** — the streamed pipeline's output (dataset
  rows, layer assignment, drop histogram, dedup keep/drop decisions)
  checksummed against the in-memory pipeline on a seeded corpus
  (5 000 files at standard scale).  Asserted exactly, always.
* **Flat RSS** — parent-process peak RSS of a streaming curate with
  disk spill, measured in *fresh subprocesses* (``VmHWM`` is monotone
  per process, so each point needs its own process) at two corpus
  sizes 4x apart.  Asserted: growing the corpus 4x grows peak RSS by
  at most :data:`RSS_GROWTH_CEILING`.  At full scale the large point
  is the paper-shaped 1M-file synthetic scrape.
* **Shard-parallel speedup** — the same streaming run with 4 process
  workers vs in-process serial, asserted at
  >= :data:`SPEEDUP_FLOOR` x — *gated on ``os.cpu_count() >= 4``*
  (a 1-core CI box records the ratio but cannot meaningfully assert
  it).

Deliberately free of ``pytest-benchmark``: the CI smoke job runs this
file both as a test and as a plain script (``python
benchmarks/test_scaleout.py --quick``) in environments where only the
core test deps are installed.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import Any, Dict

SEED = 0
BATCH_SIZE = 256
N_PARTITIONS = 8
#: Duplicate-candidate window for the synthetic scrape's streaming
#: form — without it the *source* holds every eligible file forever.
CANDIDATE_WINDOW = 4096

#: Peak-RSS growth allowed for a 4x corpus (hard floor; 1.0 = flat).
RSS_GROWTH_CEILING = 1.6
#: Speedup floor for 4 process workers (asserted only with >= 4 CPUs).
SPEEDUP_FLOOR = 2.0
SPEEDUP_WORKERS = 4

REPORT_PATH = "BENCH_scaleout.json"

#: (golden_n, rss_small_n, rss_large_n, speedup_n) per preset.
PRESETS = {
    "quick": (1200, 1500, 6000, 1500),
    "standard": (5000, 10_000, 40_000, 6000),
    "full": (5000, 250_000, 1_000_000, 50_000),
}


# -- child process: one measurement, fresh VmHWM -----------------------


def _result_checksum(result) -> str:
    """One digest over everything the pipelines must agree on."""
    payload = {
        "rows": [entry.to_dict() for entry in result.dataset],
        "layers": result.report.layers.sizes,
        "drops": dict(result.report.funnel.removed),
        "funnel": {
            "collected": result.report.funnel.collected,
            "after_dedup": result.report.funnel.after_dedup,
            "after_syntax": result.report.funnel.after_syntax,
        },
        "stage_drops": {
            stage.name: dict(stage.drops)
            for stage in result.report.trace.stages
        },
    }
    return hashlib.blake2b(
        json.dumps(payload, sort_keys=True).encode("utf-8"),
        digest_size=16).hexdigest()


def run_measurement(spec: Dict[str, Any]) -> Dict[str, Any]:
    """Run one curate in THIS process and report wall/RSS/checksum.

    Invoked via ``--measure`` in a fresh subprocess per data point so
    peak-RSS readings never contaminate each other.
    """
    import time

    from repro.corpus.github_sim import GitHubScrapeSimulator
    from repro.dataset.pipeline import CurationPipeline
    from repro.dataset.streaming import (
        StreamingCurationPipeline,
        raw_file_batches,
    )
    from repro.obs import rss_peak_bytes
    from repro.pipeline import ParallelExecutor

    n_files = spec["n_files"]
    mode = spec["mode"]
    started = time.perf_counter()
    if mode == "mem":
        raw_files = GitHubScrapeSimulator(seed=SEED).scrape(n_files)
        result = CurationPipeline(seed=SEED).run(raw_files)
        n_entries = len(result.dataset)
        checksum = _result_checksum(result)
    else:
        workers = spec.get("workers", 1)
        executor = (ParallelExecutor(mode="process", max_workers=workers)
                    if workers > 1 else None)
        scraper = GitHubScrapeSimulator(seed=SEED)
        window = spec.get("candidate_window")
        source = raw_file_batches(scraper.iter_scrape(
            n_files, batch_size=BATCH_SIZE, candidate_window=window))
        with tempfile.TemporaryDirectory() as workdir:
            pipeline = StreamingCurationPipeline(
                seed=SEED, batch_size=BATCH_SIZE,
                n_partitions=N_PARTITIONS, executor=executor,
                spill_dir=Path(workdir) / "spill")
            if spec.get("to_store", False):
                out = pipeline.curate_to_store(
                    source, Path(workdir) / "store",
                    source_token=f"scaleout:{n_files}")
                n_entries = out.manifest.n_entries
                checksum = None
            else:
                result = pipeline.run_stream(
                    source, source_token=f"scaleout:{n_files}")
                n_entries = len(result.dataset)
                checksum = _result_checksum(result)
    wall_s = time.perf_counter() - started
    return {
        "mode": mode,
        "n_files": n_files,
        "n_entries": n_entries,
        "wall_s": round(wall_s, 3),
        "rss_peak_bytes": rss_peak_bytes(),
        "checksum": checksum,
    }


def measure_in_subprocess(spec: Dict[str, Any]) -> Dict[str, Any]:
    """One data point in a fresh interpreter (fresh ``VmHWM``)."""
    root = Path(__file__).resolve().parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(root / "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    proc = subprocess.run(
        [sys.executable, str(Path(__file__).resolve()),
         "--measure", json.dumps(spec)],
        capture_output=True, text=True, env=env, cwd=str(root))
    if proc.returncode != 0:
        raise RuntimeError(
            f"measurement child failed for {spec}:\n{proc.stderr}")
    return json.loads(proc.stdout.strip().splitlines()[-1])


# -- the benchmark ------------------------------------------------------


def run_scaleout_benchmark(preset: str) -> Dict[str, Any]:
    golden_n, rss_small_n, rss_large_n, speedup_n = PRESETS[preset]

    # 1) Golden byte-identity: in-memory vs streamed, same seed.
    mem = measure_in_subprocess({"mode": "mem", "n_files": golden_n})
    streamed = measure_in_subprocess(
        {"mode": "stream", "n_files": golden_n})

    # 2) Flat RSS: the shard-parallel deployment — streaming-to-store
    #    with disk spill, a bounded source, and process workers (the
    #    partition pair state lives in the workers; with a serial
    #    executor it transits the parent O(n/partitions) at a time).
    #    Two corpus sizes 4x apart, each in a fresh process, because
    #    VmHWM is monotone within one.
    rss_points = [
        measure_in_subprocess({
            "mode": "stream", "n_files": n, "to_store": True,
            "candidate_window": CANDIDATE_WINDOW, "workers": 2,
        })
        for n in (rss_small_n, rss_large_n)
    ]
    rss_growth = (rss_points[1]["rss_peak_bytes"]
                  / rss_points[0]["rss_peak_bytes"])

    # 3) Shard-parallel speedup: serial vs 4 process workers.
    serial = measure_in_subprocess({
        "mode": "stream", "n_files": speedup_n, "to_store": True,
        "candidate_window": CANDIDATE_WINDOW, "workers": 1,
    })
    parallel = measure_in_subprocess({
        "mode": "stream", "n_files": speedup_n, "to_store": True,
        "candidate_window": CANDIDATE_WINDOW,
        "workers": SPEEDUP_WORKERS,
    })
    n_cpus = os.cpu_count() or 1

    return {
        "schema": "pyranet-bench-scaleout/v1",
        "preset": preset,
        "n_cpus": n_cpus,
        "golden": {
            "n_files": golden_n,
            "n_entries": mem["n_entries"],
            "mem_checksum": mem["checksum"],
            "stream_checksum": streamed["checksum"],
            "identical": mem["checksum"] == streamed["checksum"],
            "mem_wall_s": mem["wall_s"],
            "stream_wall_s": streamed["wall_s"],
            "mem_rss_peak_bytes": mem["rss_peak_bytes"],
            "stream_rss_peak_bytes": streamed["rss_peak_bytes"],
        },
        "rss": {
            "small": rss_points[0],
            "large": rss_points[1],
            "corpus_growth": round(rss_large_n / rss_small_n, 2),
            "rss_growth": round(rss_growth, 3),
            "ceiling": RSS_GROWTH_CEILING,
        },
        "speedup": {
            "n_files": speedup_n,
            "workers": SPEEDUP_WORKERS,
            "serial_wall_s": serial["wall_s"],
            "parallel_wall_s": parallel["wall_s"],
            "speedup": round(serial["wall_s"] / parallel["wall_s"], 2),
            "floor": SPEEDUP_FLOOR,
            "gated": n_cpus < SPEEDUP_WORKERS,
        },
    }


def summary_lines(payload: Dict[str, Any]) -> list:
    golden, rss, speed = (payload["golden"], payload["rss"],
                          payload["speedup"])
    mb = 1024 * 1024
    gate = (" (not asserted: "
            f"{payload['n_cpus']} CPU(s))" if speed["gated"] else "")
    return [
        f"Scale-out benchmark (preset {payload['preset']})",
        f"  golden identity   : {golden['identical']} "
        f"({golden['n_files']} files -> {golden['n_entries']} entries; "
        f"mem {golden['mem_wall_s']:.1f}s, "
        f"stream {golden['stream_wall_s']:.1f}s)",
        f"  RSS small/large   : "
        f"{rss['small']['rss_peak_bytes'] / mb:7.1f} MB @ "
        f"{rss['small']['n_files']} files / "
        f"{rss['large']['rss_peak_bytes'] / mb:7.1f} MB @ "
        f"{rss['large']['n_files']} files",
        f"  RSS growth        : {rss['rss_growth']:.2f}x for a "
        f"{rss['corpus_growth']:.0f}x corpus "
        f"(ceiling {rss['ceiling']:.1f}x)",
        f"  speedup @ {speed['workers']} procs : "
        f"{speed['speedup']:.2f}x "
        f"(serial {speed['serial_wall_s']:.1f}s -> "
        f"parallel {speed['parallel_wall_s']:.1f}s, "
        f"floor {speed['floor']:.1f}x){gate}",
    ]


def check_floors(payload: Dict[str, Any]) -> None:
    golden, rss, speed = (payload["golden"], payload["rss"],
                          payload["speedup"])
    assert golden["identical"], (
        "streamed output diverged from the in-memory pipeline: "
        f"{golden['stream_checksum']} != {golden['mem_checksum']}")
    assert rss["rss_growth"] <= RSS_GROWTH_CEILING, (
        f"streaming RSS is not flat: {rss['rss_growth']}x growth for a "
        f"{rss['corpus_growth']}x corpus (ceiling {RSS_GROWTH_CEILING}x)")
    if not speed["gated"]:
        assert speed["speedup"] >= SPEEDUP_FLOOR, (
            f"shard-parallel speedup regressed: {speed['speedup']}x "
            f"< floor {SPEEDUP_FLOOR}x at {speed['workers']} workers")


def write_report(payload: Dict[str, Any],
                 path: str = REPORT_PATH) -> None:
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")


def test_scaleout(scale, capsys):
    preset = {"fast": "quick", "standard": "standard",
              "full": "full"}[scale.name]
    payload = run_scaleout_benchmark(preset)
    write_report(payload)
    with capsys.disabled():
        print()
        for line in summary_lines(payload):
            print(line)
    check_floors(payload)


def main() -> None:
    parser = argparse.ArgumentParser(
        description="Benchmark the streaming curate path (flat RSS, "
                    "shard-parallel speedup); write BENCH_scaleout.json")
    parser.add_argument(
        "--quick", action="store_true",
        help="small corpus (CI smoke scale)")
    parser.add_argument(
        "--full", action="store_true",
        help="paper-shaped scale: the 1M-file synthetic scrape")
    parser.add_argument(
        "--json", default=REPORT_PATH, metavar="PATH",
        help=f"report path (default {REPORT_PATH})")
    parser.add_argument(
        "--measure", default=None, metavar="SPEC",
        help=argparse.SUPPRESS)  # internal: child data point
    args = parser.parse_args()
    if args.measure:
        print(json.dumps(run_measurement(json.loads(args.measure))))
        return
    preset = ("full" if args.full
              else "quick" if args.quick else "standard")
    payload = run_scaleout_benchmark(preset)
    for line in summary_lines(payload):
        print(line)
    write_report(payload, args.json)
    print(f"wrote {args.json}")
    check_floors(payload)


if __name__ == "__main__":
    main()
