"""Fig. 1 — the PyraNet architecture: dataset pyramid, weight schedule,
and curriculum trace.

Fig. 1-a is the six-layer pyramid; Fig. 1-b annotates each layer with
its loss weight and the fine-tuning walk (top layer first, Basic →
Expert inside each).  This bench regenerates all three views from the
curated dataset and asserts the pyramid's qualitative shape: Layer 1
is a thin apex, Layers 2–3 carry the bulk of the clean data, Layers
4–5 are small, and Layer 6 (dependency-only) is the largest stratum —
the proportions the paper reports (235 / 150,279 / 105,973 / 5,015 /
275 / 430,461).
"""

from __future__ import annotations

from repro.eval.report import render_pyramid
from repro.finetune.curriculum import curriculum_phases
from repro.finetune.weighting import paper_schedule


def test_fig1(benchmark, pyranet, capsys):
    sizes = benchmark.pedantic(
        lambda: pyranet.dataset.layer_sizes(), rounds=1, iterations=1
    )
    schedule = paper_schedule()
    phases = curriculum_phases(pyranet.dataset)
    with capsys.disabled():
        print()
        print(render_pyramid(
            "Fig. 1-a — PyraNet dataset pyramid (reproduction)", sizes))
        print("Fig. 1-b — loss-weight schedule:",
              ", ".join(schedule.as_rows()))
        print("Fig. 1-b — curriculum walk:",
              " -> ".join(p.label for p in phases[:12]),
              "..." if len(phases) > 12 else "")

    total = sum(sizes.values())
    assert total > 0
    layer = {n: sizes.get(n, 0) for n in range(1, 7)}
    # Apex is small relative to the bulk layers.
    assert layer[1] < layer[2]
    # Layers 2 and 3 carry most of the clean data.
    clean_total = sum(layer[n] for n in range(1, 6))
    assert layer[2] + layer[3] > 0.55 * max(clean_total, 1)
    # Layers 4-5 are the thin low-quality tail.
    assert layer[4] + layer[5] <= layer[2] + layer[3]
    # Layer 6 (dependency-only) is the largest single stratum.
    assert layer[6] >= max(layer[n] for n in range(1, 6)) * 0.5
    # The curriculum walk is sorted: layers ascend, complexity ascends
    # within each layer.
    seen = [(p.layer, int(p.complexity)) for p in phases]
    assert seen == sorted(seen)
