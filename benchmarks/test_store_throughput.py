"""Store throughput — the sharded store's perf baseline.

Writes the curated dataset through :class:`ShardWriter`, reads it back
three ways (streaming, materialised, warm cache), and records write/read
MB/s, warm-index ``select()`` latency, and a streaming peak-memory proxy
(tracemalloc peak while iterating vs while materialising) into the
benchmark JSON via ``extra_info``, so later PRs have a trajectory to
beat.  Also asserts the store contract: the round-trip is lossless and
the index keeps layer reads below full-scan cost.
"""

from __future__ import annotations

import time
import tracemalloc

from repro.pipeline import ResultCache
from repro.store import ShardWriter, StoreReader


def _mb(n_bytes: int) -> float:
    return n_bytes / (1024.0 * 1024.0)


def test_store_throughput(benchmark, pyranet, tmp_path, capsys):
    dataset = pyranet.dataset
    store_dir = tmp_path / "store"

    writer = ShardWriter(store_dir, max_shard_bytes=16 * 1024)
    write_start = time.perf_counter()
    manifest = benchmark.pedantic(
        writer.write, args=(dataset,), rounds=1, iterations=1
    )
    write_s = time.perf_counter() - write_start

    # Cold streaming read (one shard in memory at a time).
    start = time.perf_counter()
    reader = StoreReader(store_dir)
    n_streamed = sum(1 for _ in reader.iter_entries())
    read_s = time.perf_counter() - start
    assert n_streamed == len(dataset)

    # Warm-index select latency: cache holds decoded shards, the second
    # select touches no disk.
    cached = StoreReader(store_dir, cache=ResultCache())
    layer = manifest.trainable_layers()[0]
    cached.select(layer=layer)  # cold fill
    start = time.perf_counter()
    selected = cached.select(layer=layer)
    warm_select_s = time.perf_counter() - start
    assert [e.entry_id for e in selected] \
        == [e.entry_id for e in dataset.layer(layer)]

    # Streaming memory proxy: tracemalloc peak while iterating without
    # retaining vs while materialising every entry.
    tracemalloc.start()
    for _ in StoreReader(store_dir).iter_entries():
        pass
    _, stream_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    tracemalloc.start()
    materialised = StoreReader(store_dir).read_all()
    _, full_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert len(materialised) == len(dataset)

    raw_mb = _mb(manifest.total_raw_bytes)
    benchmark.extra_info["n_entries"] = manifest.n_entries
    benchmark.extra_info["n_shards"] = len(manifest.shards)
    benchmark.extra_info["raw_mb"] = round(raw_mb, 3)
    benchmark.extra_info["compressed_mb"] = round(_mb(manifest.total_bytes), 3)
    benchmark.extra_info["write_mb_s"] = round(raw_mb / max(write_s, 1e-9), 2)
    benchmark.extra_info["read_mb_s"] = round(raw_mb / max(read_s, 1e-9), 2)
    benchmark.extra_info["warm_select_ms"] = round(warm_select_s * 1000.0, 3)
    benchmark.extra_info["stream_peak_mb"] = round(_mb(stream_peak), 3)
    benchmark.extra_info["full_read_peak_mb"] = round(_mb(full_peak), 3)

    with capsys.disabled():
        print()
        print("Sharded store throughput")
        print(f"  dataset           : {manifest.n_entries} entries, "
              f"{raw_mb:.2f} MB raw -> {_mb(manifest.total_bytes):.2f} MB "
              f"in {len(manifest.shards)} shards")
        print(f"  write             : {raw_mb / max(write_s, 1e-9):8.1f} MB/s")
        print(f"  stream read       : {raw_mb / max(read_s, 1e-9):8.1f} MB/s")
        print(f"  warm select(L{layer})   : {warm_select_s * 1e3:8.3f} ms")
        print(f"  peak traced mem   : {_mb(stream_peak):.2f} MB streaming "
              f"vs {_mb(full_peak):.2f} MB materialised")

    # Contract: compression helps, the warm select is sub-full-scan
    # fast, and streaming holds less than the whole dataset.
    assert manifest.total_bytes < manifest.total_raw_bytes
    assert warm_select_s < read_s
    assert stream_peak < full_peak
