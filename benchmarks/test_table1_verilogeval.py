"""Table I — PyraNet vs SOTA on VerilogEval (Machine + Human).

Regenerates the paper's main table: three base models × {baseline,
PyraNet-Dataset, PyraNet-Architecture} plus the MG-Verilog, RTLCoder,
and OriGen recipes, reporting pass@{1,5,10} on both suites.

Shape assertions (the reproduction contract — absolute values differ
because the substrate is a simulator, not an H100 fine-tune):

* within every base model and every column:
  PyraNet-Architecture ≥ PyraNet-Dataset ≥ baseline;
* pass@1 ≤ pass@5 ≤ pass@10 everywhere;
* Machine ≥ Human for every model (VerilogEval's persistent gap).
"""

from __future__ import annotations

import pytest

from repro.eval.report import render_table
from repro.model.generator import CODELLAMA_7B, CODELLAMA_13B, DEEPSEEK_7B


def _row(rows, needle):
    for row in rows:
        if needle in row.label:
            return row
    raise AssertionError(f"row {needle!r} missing")


def test_table1(benchmark, table1_rows, capsys):
    rows = benchmark.pedantic(lambda: table1_rows, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(render_table(
            "Table I — PyraNet vs SOTA models on VerilogEval "
            "(reproduction)", rows))

    for profile in (CODELLAMA_7B.name, CODELLAMA_13B.name,
                    DEEPSEEK_7B.name):
        base = _row(rows, f"{profile} baseline")
        dataset = _row(rows, f"{profile} dataset")
        arch = _row(rows, f"{profile} architecture")
        # Monotone improvement, column by column (small tolerance for
        # sampling noise on individual cells).
        for b, d, a in zip(base.cells(), dataset.cells(), arch.cells()):
            assert d >= b - 3.0, (profile, "dataset < baseline", b, d)
            assert a >= d - 3.0, (profile, "arch < dataset", d, a)
        # Aggregate improvement must be strict.
        assert sum(dataset.cells()) > sum(base.cells())
        assert sum(arch.cells()) > sum(dataset.cells())

    for row in rows:
        cells = row.cells()
        machine, human = cells[:3], cells[3:]
        assert machine[0] <= machine[1] + 1e-9 <= machine[2] + 1e-9
        assert human[0] <= human[1] + 1e-9 <= human[2] + 1e-9

    # Machine phrasing is consistently easier than human phrasing for
    # the model/recipe grid (SOTA recipe rows are exempt: at reduced
    # problem counts the two suites sample different family subsets).
    for profile in (CODELLAMA_7B.name, CODELLAMA_13B.name,
                    DEEPSEEK_7B.name):
        for recipe in ("baseline", "dataset", "architecture"):
            row = _row(rows, f"{profile} {recipe}")
            cells = row.cells()
            assert sum(cells[:3]) >= sum(cells[3:]) - 10.0, row.label
