"""Dedup hot path: signature throughput and warm persistent-cache runs.

Two numbers this PR is accountable for, emitted to ``BENCH_dedup.json``
(uploaded as a CI artifact) so later PRs have a trajectory to beat:

* **Signature throughput** — the rewritten MinHash signing (one blake2b
  per shingle + universal-hash lanes) against the legacy scheme it
  replaced (one salted blake2b per ``(shingle, salt)`` pair), asserted
  at **>= 5x** and typically >30x.
* **Warm re-run speedup** — curation over an unchanged corpus with a
  persistent :class:`~repro.pipeline.DiskCache`: the second run serves
  syntax/rank/describe results from disk instead of recomputing.
  Target 10x; the hard floor here is deliberately loose (2x) because
  CI wall-clock is noisy — the *zero recompute* guarantee itself is
  asserted exactly, via cache counters, in
  ``tests/pipeline/test_warm_runs.py``.

Deliberately free of ``pytest-benchmark``: the CI smoke job runs this
file both as a test and as a plain script (``python
benchmarks/test_dedup_throughput.py --quick``) in environments where
only the core test deps are installed.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import tempfile
import time
from pathlib import Path
from typing import Any, Dict

from repro.corpus.github_sim import GitHubScrapeSimulator
from repro.dataset.dedup import MinHasher, deduplicate, tokenize_for_dedup
from repro.dataset.pipeline import CurationPipeline
from repro.pipeline import DiskCache, ResultCache

#: Hard floor for the signature rewrite (acceptance criterion).
SIGNATURE_SPEEDUP_FLOOR = 5.0
#: Aspirational target recorded in the JSON; see module docstring.
WARM_SPEEDUP_TARGET = 10.0
#: Hard floor for the warm re-run (kept loose: CI timing is noisy).
WARM_SPEEDUP_FLOOR = 2.0

REPORT_PATH = "BENCH_dedup.json"


def _legacy_hash64(text: str, salt: int) -> int:
    digest = hashlib.blake2b(
        text.encode("utf-8", "replace"), digest_size=8,
        salt=salt.to_bytes(8, "little"),
    ).digest()
    return int.from_bytes(digest, "little")


class LegacySaltedMinHasher(MinHasher):
    """The pre-rewrite baseline: one salted digest per (shingle, salt)."""

    def signature(self, shingles):
        if not shingles:
            return tuple([0] * self.n_perm)
        return tuple(
            min(_legacy_hash64(s, salt) for s in shingles)
            for salt in range(self.n_perm)
        )


def run_dedup_benchmark(n_files: int, cache_root: Path) -> Dict[str, Any]:
    """Measure both numbers at ``n_files`` corpus scale."""
    raw_files = GitHubScrapeSimulator(seed=0).scrape(n_files)
    corpus = [f.content for f in raw_files]
    shingle_sets = [tokenize_for_dedup(code) for code in corpus]
    n_shingles = sum(len(s) for s in shingle_sets)

    new_hasher, legacy_hasher = MinHasher(64), LegacySaltedMinHasher(64)
    started = time.perf_counter()
    new_signatures = [new_hasher.signature(s) for s in shingle_sets]
    new_s = time.perf_counter() - started
    started = time.perf_counter()
    legacy_signatures = [legacy_hasher.signature(s) for s in shingle_sets]
    legacy_s = time.perf_counter() - started
    assert len(new_signatures) == len(legacy_signatures) == n_files

    started = time.perf_counter()
    report = deduplicate(corpus, threshold=0.8)
    dedup_s = time.perf_counter() - started

    def curate_once() -> float:
        cache = ResultCache(name="curation",
                            disk=DiskCache(cache_root / "curation"))
        started = time.perf_counter()
        CurationPipeline(seed=0, cache=cache).run(raw_files)
        return time.perf_counter() - started

    cold_s = curate_once()
    warm_s = curate_once()

    return {
        "schema": "pyranet-bench-dedup/v1",
        "n_files": n_files,
        "n_shingles": n_shingles,
        "signature": {
            "legacy_s": round(legacy_s, 4),
            "new_s": round(new_s, 4),
            "speedup": round(legacy_s / new_s, 2),
            "floor": SIGNATURE_SPEEDUP_FLOOR,
            "shingles_per_s": round(n_shingles / new_s, 1),
        },
        "dedup": {
            "wall_s": round(dedup_s, 4),
            "n_kept": len(report.kept_indices),
            "n_removed": report.n_removed,
            "candidate_pairs_checked": report.candidate_pairs_checked,
        },
        "warm_run": {
            "cold_s": round(cold_s, 4),
            "warm_s": round(warm_s, 4),
            "speedup": round(cold_s / warm_s, 2),
            "target": WARM_SPEEDUP_TARGET,
            "floor": WARM_SPEEDUP_FLOOR,
        },
    }


def summary_lines(payload: Dict[str, Any]) -> list:
    sig, warm = payload["signature"], payload["warm_run"]
    return [
        "Dedup hot-path benchmark "
        f"({payload['n_files']} files, {payload['n_shingles']} shingles)",
        f"  legacy signatures : {sig['legacy_s']:8.3f} s",
        f"  rewritten         : {sig['new_s']:8.3f} s  "
        f"({sig['speedup']:.1f}x, floor {sig['floor']:.0f}x)",
        f"  full deduplicate  : {payload['dedup']['wall_s']:8.3f} s  "
        f"({payload['dedup']['n_removed']} removed)",
        f"  curation cold     : {warm['cold_s']:8.3f} s",
        f"  curation warm     : {warm['warm_s']:8.3f} s  "
        f"({warm['speedup']:.1f}x, target {warm['target']:.0f}x)",
    ]


def check_floors(payload: Dict[str, Any]) -> None:
    sig, warm = payload["signature"], payload["warm_run"]
    assert sig["speedup"] >= SIGNATURE_SPEEDUP_FLOOR, (
        f"signature rewrite regressed: {sig['speedup']}x "
        f"< floor {SIGNATURE_SPEEDUP_FLOOR}x")
    assert warm["speedup"] >= WARM_SPEEDUP_FLOOR, (
        f"warm persistent-cache run regressed: {warm['speedup']}x "
        f"< floor {WARM_SPEEDUP_FLOOR}x")


def write_report(payload: Dict[str, Any],
                 path: str = REPORT_PATH) -> None:
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")


def test_dedup_throughput(scale, capsys, tmp_path):
    payload = run_dedup_benchmark(scale.n_github_files, tmp_path)
    payload["scale"] = scale.name
    write_report(payload)
    with capsys.disabled():
        print()
        for line in summary_lines(payload):
            print(line)
    check_floors(payload)


def main() -> None:
    parser = argparse.ArgumentParser(
        description="Benchmark the dedup hot path and the persistent "
                    "cache's warm re-run; write BENCH_dedup.json")
    parser.add_argument(
        "--quick", action="store_true",
        help="small corpus (CI smoke scale)")
    parser.add_argument(
        "--n-files", type=int, default=None, metavar="N",
        help="explicit corpus size (overrides --quick)")
    parser.add_argument(
        "--json", default=REPORT_PATH, metavar="PATH",
        help=f"report path (default {REPORT_PATH})")
    args = parser.parse_args()
    n_files = args.n_files or (250 if args.quick else 700)
    with tempfile.TemporaryDirectory() as cache_root:
        payload = run_dedup_benchmark(n_files, Path(cache_root))
    payload["scale"] = "quick" if args.quick else "cli"
    for line in summary_lines(payload):
        print(line)
    write_report(payload, args.json)
    print(f"wrote {args.json}")
    check_floors(payload)


if __name__ == "__main__":
    main()
