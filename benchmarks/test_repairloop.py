"""Repair loop: fix-rate vs budget curve and loop throughput.

Two numbers this PR is accountable for, emitted to
``BENCH_repairloop.json`` (uploaded as a CI artifact):

* **Fix rate vs budget** — the repair-trajectory source run at repair
  budgets r ∈ {0, 1, 2, 4} over the same mutated candidate set.  The
  curve must be monotone non-decreasing (more budget never loses a
  fix), r=0 must fix nothing, and by r=4 at least
  :data:`FIX_RATE_FLOOR` of the initially-broken candidates must be
  repaired (syntax damage is rule-fixable; only functional corruption
  legitimately resists the rule-based repairer).
* **Loop throughput** — committed repair iterations per second at the
  r=2 point (check + propose + re-check per iteration), the unit cost
  a corpus-scale trajectory run pays.

Deliberately free of ``pytest-benchmark``: the CI smoke job runs this
file both as a test and as a plain script (``python
benchmarks/test_repairloop.py --quick``).
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path
from typing import Any, Dict, List

from repro.corpus.repair_source import repair_trajectories

#: Budgets the fix-rate curve sweeps.
BUDGETS = (0, 1, 2, 4)
#: Hard floor for the r=4 fix rate over initially-broken candidates.
FIX_RATE_FLOOR = 0.5
#: Hard floor for committed iterations per second (CI smoke machines).
ITERATIONS_PER_S_FLOOR = 5.0

REPORT_PATH = "BENCH_repairloop.json"


def run_repairloop_benchmark(n_candidates: int,
                             seed: int = 0) -> Dict[str, Any]:
    """Sweep the budget axis over one candidate set."""
    curve: List[Dict[str, Any]] = []
    iterations_per_s = 0.0
    for budget in BUDGETS:
        started = time.perf_counter()
        result = repair_trajectories(
            n_candidates=n_candidates, seed=seed, budget=budget)
        wall_s = time.perf_counter() - started
        summary = result.summary()
        point = {
            "budget": budget,
            "fix_rate": summary["fix_rate"],
            "n_fixed": summary["n_fixed"],
            "n_records": summary["n_records"],
            "total_iterations": summary["total_iterations"],
            "wall_s": round(wall_s, 3),
        }
        if budget == 2 and summary["total_iterations"]:
            iterations_per_s = round(
                summary["total_iterations"] / wall_s, 2)
        curve.append(point)
    return {
        "schema": "pyranet-bench-repairloop/v1",
        "n_candidates": n_candidates,
        "seed": seed,
        "curve": curve,
        "iterations_per_s": iterations_per_s,
        "floors": {"fix_rate_at_max_budget": FIX_RATE_FLOOR,
                   "iterations_per_s": ITERATIONS_PER_S_FLOOR},
    }


def summary_lines(payload: Dict[str, Any]) -> list:
    lines = [
        f"Repair-loop benchmark ({payload['n_candidates']} mutated "
        f"candidates, seed {payload['seed']})",
    ]
    for point in payload["curve"]:
        lines.append(
            f"  r={point['budget']}: fix rate {point['fix_rate']:5.2f} "
            f"({point['n_fixed']:>2} fixed, "
            f"{point['total_iterations']:>3} iterations, "
            f"{point['wall_s']:6.2f}s)")
    lines.append(
        f"  loop throughput at r=2: "
        f"{payload['iterations_per_s']:.1f} iterations/s "
        f"(floor {payload['floors']['iterations_per_s']:.0f})")
    return lines


def check_floors(payload: Dict[str, Any]) -> None:
    rates = [point["fix_rate"] for point in payload["curve"]]
    assert rates == sorted(rates), (
        f"fix rate not monotone in budget: {rates}")
    assert rates[0] == 0.0, (
        f"budget 0 repaired something: {rates[0]}")
    assert rates[-1] >= FIX_RATE_FLOOR, (
        f"r={BUDGETS[-1]} fix rate {rates[-1]} below floor "
        f"{FIX_RATE_FLOOR}")
    assert payload["iterations_per_s"] >= ITERATIONS_PER_S_FLOOR, (
        f"loop throughput {payload['iterations_per_s']} it/s below "
        f"floor {ITERATIONS_PER_S_FLOOR}")


def write_report(payload: Dict[str, Any],
                 path: str = REPORT_PATH) -> None:
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")


def test_repairloop_bench(scale, capsys):
    n_candidates = {"fast": 24, "standard": 48, "full": 96}[scale.name]
    payload = run_repairloop_benchmark(n_candidates)
    payload["scale"] = scale.name
    write_report(payload)
    with capsys.disabled():
        print()
        for line in summary_lines(payload):
            print(line)
    check_floors(payload)


def main() -> None:
    parser = argparse.ArgumentParser(
        description="Benchmark the repair loop's fix-rate/budget curve "
                    "and iteration throughput; write "
                    "BENCH_repairloop.json")
    parser.add_argument("--quick", action="store_true",
                        help="small candidate set (CI smoke scale)")
    parser.add_argument(
        "--n-candidates", type=int, default=None, metavar="N",
        help="explicit candidate count (overrides --quick)")
    parser.add_argument(
        "--json", default=REPORT_PATH, metavar="PATH",
        help=f"report path (default {REPORT_PATH})")
    args = parser.parse_args()
    n_candidates = args.n_candidates or (24 if args.quick else 48)
    payload = run_repairloop_benchmark(n_candidates)
    payload["scale"] = "quick" if args.quick else "cli"
    for line in summary_lines(payload):
        print(line)
    write_report(payload, args.json)
    print(f"wrote {args.json}")
    check_floors(payload)


if __name__ == "__main__":
    main()
