"""Model registry: the Table II configuration report.

Table II lists the pre-trained architectures and fine-tuning settings
(layers, heads, head size, context size, learning rate, epochs).  The
registry records those published values alongside the parameters of
the simulated substrate that stands in for each model, so the Table II
bench can print both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .generator import CODELLAMA_7B, CODELLAMA_13B, DEEPSEEK_7B, ModelProfile
from .tinyformer import TransformerConfig


@dataclass(frozen=True)
class PublishedConfig:
    """The paper's Table II row for one base model."""

    model: str
    layers: int
    n_heads: int
    head_size: int
    context_size: int
    learning_rate: float
    epochs: str


#: Table II as published.
PUBLISHED_CONFIGS: List[PublishedConfig] = [
    PublishedConfig("CodeLlama-7b-Instruct", 32, 32, 128, 100_000,
                    2e-4, "1, 2, 3"),
    PublishedConfig("CodeLlama-13b-Instruct", 40, 40, 128, 100_000,
                    2e-4, "1, 2, 3"),
    PublishedConfig("DeepSeek-Coder-7B-Instruct-v1.5", 30, 30, 128, 4_000,
                    2e-4, "1, 2, 3"),
]


@dataclass(frozen=True)
class RegistryEntry:
    """Pairs a published config with its simulation stand-in."""

    published: PublishedConfig
    profile: ModelProfile
    substrate: TransformerConfig


def build_registry() -> List[RegistryEntry]:
    """The three base models used throughout the experiments."""
    substrate = TransformerConfig(d_model=64, n_heads=4, n_layers=2,
                                  d_ff=128, max_len=192,
                                  learning_rate=2e-4)
    profiles = [CODELLAMA_7B, CODELLAMA_13B, DEEPSEEK_7B]
    return [
        RegistryEntry(published=config, profile=profile,
                      substrate=substrate)
        for config, profile in zip(PUBLISHED_CONFIGS, profiles)
    ]


def render_table2() -> str:
    """Render Table II (published values + substrate parameters)."""
    lines = [
        "Table II — pre-trained LLM architectures and fine-tuning info",
        "-" * 98,
        f"{'Model':<34} {'Layers':>6} {'Heads':>6} {'HeadSz':>6} "
        f"{'Context':>8} {'LR':>8} {'Epochs':>8}   Simulated profile",
        "-" * 98,
    ]
    for entry in build_registry():
        pub = entry.published
        lines.append(
            f"{pub.model:<34} {pub.layers:>6} {pub.n_heads:>6} "
            f"{pub.head_size:>6} {pub.context_size:>8} "
            f"{pub.learning_rate:>8.0e} {pub.epochs:>8}   "
            f"{entry.profile.name}"
        )
    lines.append("-" * 98)
    cfg = build_registry()[0].substrate
    lines.append(
        "substrate transformer: "
        f"d_model={cfg.d_model}, heads={cfg.n_heads}, "
        f"layers={cfg.n_layers}, d_ff={cfg.d_ff}, "
        f"context={cfg.max_len}, lr={cfg.learning_rate:.0e}"
    )
    return "\n".join(lines)
