"""A small causal transformer LM in pure numpy, with manual backprop.

This is the neural counterpart of the retrieval model: a real
decoder-only transformer (token+positional embeddings, pre-norm blocks
with multi-head causal self-attention and GELU MLPs, weight-tied output
head, Adam) whose cross-entropy supports **per-sample loss weights** —
the exact mechanism the paper's loss-weighting recipe needs.  It
implements :class:`~.interfaces.FineTunable`, so the same Trainer that
drives the retrieval model drives this network; unit tests and the
weighting ablation use it to show the machinery is substrate-agnostic.

It trains description→code sequences of the form::

    <bos> description tokens … <sep> code tokens … <eos>

with the loss applied to the code region only.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .interfaces import FineTunable, TrainStats, TrainingExample
from .tokenizer import Vocabulary, detokenize, tokenize_code, tokenize_text

_SEP = "<sep>"


def _gelu(x: np.ndarray) -> np.ndarray:
    return 0.5 * x * (1.0 + np.tanh(
        math.sqrt(2.0 / math.pi) * (x + 0.044715 * x ** 3)))


def _gelu_grad(x: np.ndarray) -> np.ndarray:
    tanh_arg = math.sqrt(2.0 / math.pi) * (x + 0.044715 * x ** 3)
    tanh_val = np.tanh(tanh_arg)
    sech2 = 1.0 - tanh_val ** 2
    inner = math.sqrt(2.0 / math.pi) * (1.0 + 3 * 0.044715 * x ** 2)
    return 0.5 * (1.0 + tanh_val) + 0.5 * x * sech2 * inner


class _Adam:
    """Adam over a dict of parameter arrays."""

    def __init__(self, params: Dict[str, np.ndarray], lr: float = 2e-4,
                 beta1: float = 0.9, beta2: float = 0.999,
                 eps: float = 1e-8) -> None:
        self.params = params
        self.lr = lr
        self.beta1, self.beta2, self.eps = beta1, beta2, eps
        self.m = {k: np.zeros_like(v) for k, v in params.items()}
        self.v = {k: np.zeros_like(v) for k, v in params.items()}
        self.t = 0

    def step(self, grads: Dict[str, np.ndarray]) -> None:
        self.t += 1
        bias1 = 1.0 - self.beta1 ** self.t
        bias2 = 1.0 - self.beta2 ** self.t
        for key, grad in grads.items():
            if grad is None:
                continue
            param = self.params[key]
            m = self.m[key]
            v = self.v[key]
            m *= self.beta1
            m += (1 - self.beta1) * grad
            v *= self.beta2
            v += (1 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


@dataclass
class TransformerConfig:
    """Hyper-parameters (Table II analogue for the tiny substrate)."""

    d_model: int = 64
    n_heads: int = 4
    n_layers: int = 2
    d_ff: int = 128
    max_len: int = 192
    learning_rate: float = 2e-4
    seed: int = 0

    @property
    def head_size(self) -> int:
        return self.d_model // self.n_heads


class TinyTransformer(FineTunable):
    """Decoder-only LM with weighted cross-entropy fine-tuning."""

    def __init__(
        self,
        vocab: Optional[Vocabulary] = None,
        config: Optional[TransformerConfig] = None,
    ) -> None:
        self.config = config or TransformerConfig()
        self.vocab = vocab or Vocabulary()
        self.vocab.add(_SEP)
        self._rng = np.random.default_rng(self.config.seed)
        self._params: Dict[str, np.ndarray] = {}
        self._capacity = 0
        self._grow_embeddings()
        cfg = self.config
        scale = 0.02
        for layer in range(cfg.n_layers):
            p = f"l{layer}."
            for name, shape in [
                ("wq", (cfg.d_model, cfg.d_model)),
                ("wk", (cfg.d_model, cfg.d_model)),
                ("wv", (cfg.d_model, cfg.d_model)),
                ("wo", (cfg.d_model, cfg.d_model)),
                ("w1", (cfg.d_model, cfg.d_ff)),
                ("w2", (cfg.d_ff, cfg.d_model)),
            ]:
                self._params[p + name] = (
                    self._rng.standard_normal(shape) * scale
                ).astype(np.float64)
            self._params[p + "b1"] = np.zeros(cfg.d_ff)
            self._params[p + "b2"] = np.zeros(cfg.d_model)
            self._params[p + "ln1g"] = np.ones(cfg.d_model)
            self._params[p + "ln1b"] = np.zeros(cfg.d_model)
            self._params[p + "ln2g"] = np.ones(cfg.d_model)
            self._params[p + "ln2b"] = np.zeros(cfg.d_model)
        self._params["lnfg"] = np.ones(cfg.d_model)
        self._params["lnfb"] = np.zeros(cfg.d_model)
        self._opt = _Adam(self._params, lr=cfg.learning_rate)
        self.trained_examples = 0

    # -- embedding growth (open vocabulary) --------------------------------

    def _grow_embeddings(self) -> None:
        """(Re)allocate embeddings when the vocabulary grows."""
        needed = max(len(self.vocab), 8)
        if needed <= self._capacity:
            return
        new_capacity = max(needed * 2, 64)
        cfg = self.config
        emb = (self._rng.standard_normal((new_capacity, cfg.d_model))
               * 0.02)
        pos = (self._rng.standard_normal((cfg.max_len, cfg.d_model))
               * 0.02)
        if "emb" in self._params:
            old = self._params["emb"]
            emb[: old.shape[0]] = old
            pos = self._params["pos"]
        self._params["emb"] = emb
        self._params["pos"] = pos
        self._capacity = new_capacity
        if hasattr(self, "_opt"):
            # Re-seat optimizer state for the grown embedding.
            old_m = self._opt.m.get("emb")
            old_v = self._opt.v.get("emb")
            self._opt.params = self._params
            self._opt.m["emb"] = np.zeros_like(emb)
            self._opt.v["emb"] = np.zeros_like(emb)
            if old_m is not None:
                self._opt.m["emb"][: old_m.shape[0]] = old_m
                self._opt.v["emb"][: old_v.shape[0]] = old_v
            self._opt.m.setdefault("pos", np.zeros_like(pos))
            self._opt.v.setdefault("pos", np.zeros_like(pos))

    # -- encoding ------------------------------------------------------------

    def encode_example(self, example: TrainingExample) -> List[int]:
        tokens = (["<bos>"] + tokenize_text(example.description)[:48]
                  + [_SEP]
                  + tokenize_code(example.code, keep_newlines=False)
                  + ["<eos>"])
        ids = self.vocab.encode(tokens, grow=True)
        self._grow_embeddings()
        return ids[: self.config.max_len]

    # -- forward/backward ------------------------------------------------------

    def _layernorm(self, x, gamma, beta):
        mu = x.mean(-1, keepdims=True)
        var = x.var(-1, keepdims=True)
        std = np.sqrt(var + 1e-5)
        norm = (x - mu) / std
        return norm * gamma + beta, (norm, std, gamma)

    @staticmethod
    def _layernorm_backward(dout, cache):
        norm, std, gamma = cache
        d = norm.shape[-1]
        dgamma = (dout * norm).sum(axis=tuple(range(dout.ndim - 1)))
        dbeta = dout.sum(axis=tuple(range(dout.ndim - 1)))
        dnorm = dout * gamma
        dx = (dnorm - dnorm.mean(-1, keepdims=True)
              - norm * (dnorm * norm).mean(-1, keepdims=True)) / std
        return dx, dgamma, dbeta

    def _forward(self, ids: Sequence[int]):
        """Forward pass for one sequence; returns logits and caches."""
        cfg = self.config
        T = len(ids)
        x = self._params["emb"][list(ids)] + self._params["pos"][:T]
        caches = []
        mask = np.triu(np.full((T, T), -1e9), k=1)
        for layer in range(cfg.n_layers):
            p = f"l{layer}."
            ln1, ln1_cache = self._layernorm(
                x, self._params[p + "ln1g"], self._params[p + "ln1b"])
            q = ln1 @ self._params[p + "wq"]
            k = ln1 @ self._params[p + "wk"]
            v = ln1 @ self._params[p + "wv"]
            H, hs = cfg.n_heads, cfg.head_size
            qh = q.reshape(T, H, hs).transpose(1, 0, 2)
            kh = k.reshape(T, H, hs).transpose(1, 0, 2)
            vh = v.reshape(T, H, hs).transpose(1, 0, 2)
            scores = qh @ kh.transpose(0, 2, 1) / math.sqrt(hs) + mask
            scores -= scores.max(-1, keepdims=True)
            attn = np.exp(scores)
            attn /= attn.sum(-1, keepdims=True)
            ctx = attn @ vh
            ctx2 = ctx.transpose(1, 0, 2).reshape(T, cfg.d_model)
            attn_out = ctx2 @ self._params[p + "wo"]
            x1 = x + attn_out
            ln2, ln2_cache = self._layernorm(
                x1, self._params[p + "ln2g"], self._params[p + "ln2b"])
            h_pre = ln2 @ self._params[p + "w1"] + self._params[p + "b1"]
            h_act = _gelu(h_pre)
            ff_out = h_act @ self._params[p + "w2"] + self._params[p + "b2"]
            x2 = x1 + ff_out
            caches.append((ln1, ln1_cache, qh, kh, vh, attn, ctx2,
                           x, x1, ln2, ln2_cache, h_pre, h_act))
            x = x2
        final, final_cache = self._layernorm(
            x, self._params["lnfg"], self._params["lnfb"])
        logits = final @ self._params["emb"][: len(self.vocab)].T
        return logits, (caches, final, final_cache, ids)

    def _backward(self, dlogits, cache, grads):
        cfg = self.config
        caches, final, final_cache, ids = cache
        T = len(ids)
        emb_head = self._params["emb"][: len(self.vocab)]
        dfinal = dlogits @ emb_head
        demb_head = dlogits.T @ final
        grads["emb"][: len(self.vocab)] += demb_head
        dx, dg, db = self._layernorm_backward(dfinal, final_cache)
        grads["lnfg"] += dg
        grads["lnfb"] += db
        for layer in range(cfg.n_layers - 1, -1, -1):
            p = f"l{layer}."
            (ln1, ln1_cache, qh, kh, vh, attn, ctx2,
             x_in, x1, ln2, ln2_cache, h_pre, h_act) = caches[layer]
            # FF branch.
            dff_out = dx
            grads[p + "w2"] += h_act.T @ dff_out
            grads[p + "b2"] += dff_out.sum(0)
            dh_act = dff_out @ self._params[p + "w2"].T
            dh_pre = dh_act * _gelu_grad(h_pre)
            grads[p + "w1"] += ln2.T @ dh_pre
            grads[p + "b1"] += dh_pre.sum(0)
            dln2 = dh_pre @ self._params[p + "w1"].T
            dx1_from_ln2, dg2, db2 = self._layernorm_backward(
                dln2, ln2_cache)
            grads[p + "ln2g"] += dg2
            grads[p + "ln2b"] += db2
            dx1 = dx + dx1_from_ln2
            # Attention branch.
            dattn_out = dx1
            grads[p + "wo"] += ctx2.T @ dattn_out
            dctx2 = dattn_out @ self._params[p + "wo"].T
            H, hs = cfg.n_heads, cfg.head_size
            dctx = dctx2.reshape(T, H, hs).transpose(1, 0, 2)
            dattn = dctx @ vh.transpose(0, 2, 1)
            dvh = attn.transpose(0, 2, 1) @ dctx
            dscores = attn * (dattn - (dattn * attn).sum(-1, keepdims=True))
            dscores /= math.sqrt(hs)
            dqh = dscores @ kh
            dkh = dscores.transpose(0, 2, 1) @ qh
            dq = dqh.transpose(1, 0, 2).reshape(T, cfg.d_model)
            dk = dkh.transpose(1, 0, 2).reshape(T, cfg.d_model)
            dv = dvh.transpose(1, 0, 2).reshape(T, cfg.d_model)
            grads[p + "wq"] += ln1.T @ dq
            grads[p + "wk"] += ln1.T @ dk
            grads[p + "wv"] += ln1.T @ dv
            dln1 = (dq @ self._params[p + "wq"].T
                    + dk @ self._params[p + "wk"].T
                    + dv @ self._params[p + "wv"].T)
            dx_from_ln1, dg1, db1 = self._layernorm_backward(
                dln1, ln1_cache)
            grads[p + "ln1g"] += dg1
            grads[p + "ln1b"] += db1
            dx = dx1 + dx_from_ln1
        grads["emb"][list(ids)] += dx
        grads["pos"][:T] += dx

    # -- training ------------------------------------------------------------

    def train_step(self, ids: Sequence[int], weight: float) -> float:
        """One weighted SGD step on one sequence; returns the loss."""
        if len(ids) < 2 or weight <= 0:
            return 0.0
        logits, cache = self._forward(ids[:-1])
        targets = np.array(ids[1:])
        T = len(targets)
        # Loss over the code region only (after <sep>).
        sep_id = self.vocab.token_to_id.get(_SEP, -1)
        sep_positions = [i for i, t in enumerate(ids) if t == sep_id]
        start = sep_positions[0] if sep_positions else 0
        token_mask = np.zeros(T)
        token_mask[start:] = 1.0
        if token_mask.sum() == 0:
            token_mask[:] = 1.0
        logits = logits - logits.max(-1, keepdims=True)
        exp = np.exp(logits)
        probs = exp / exp.sum(-1, keepdims=True)
        picked = probs[np.arange(T), targets]
        loss = -(np.log(picked + 1e-12) * token_mask).sum() / token_mask.sum()
        dlogits = probs
        dlogits[np.arange(T), targets] -= 1.0
        dlogits *= (weight * token_mask / token_mask.sum())[:, None]
        grads = {key: np.zeros_like(value)
                 for key, value in self._params.items()}
        self._backward(dlogits, cache, grads)
        self._opt.step(grads)
        return float(loss)

    def train_batch(
        self, examples: List[TrainingExample], loss_weight: float
    ) -> TrainStats:
        stats = TrainStats()
        for example in examples:
            ids = self.encode_example(example)
            self.train_step(ids, loss_weight)
            stats.examples += 1
            stats.tokens += len(ids)
            stats.effective_weight += loss_weight
            self.trained_examples += 1
        return stats

    # -- evaluation helpers -----------------------------------------------------

    def sequence_loss(self, example: TrainingExample) -> float:
        """Held-out weighted-CE loss of one example (no update)."""
        ids = self.encode_example(example)
        if len(ids) < 2:
            return 0.0
        logits, _ = self._forward(ids[:-1])
        targets = np.array(ids[1:])
        T = len(targets)
        logits = logits - logits.max(-1, keepdims=True)
        exp = np.exp(logits)
        probs = exp / exp.sum(-1, keepdims=True)
        picked = probs[np.arange(T), targets]
        return float(-np.log(picked + 1e-12).mean())

    # -- generation ------------------------------------------------------------

    def generate(
        self,
        description: str,
        temperature: float = 0.8,
        rng: Optional[random.Random] = None,
        module_header: Optional[str] = None,
        max_tokens: int = 96,
    ) -> str:
        """Autoregressive sampling: description → code tokens."""
        rng = rng or random.Random(0)
        prompt = (["<bos>"] + tokenize_text(description)[:48] + [_SEP])
        ids = self.vocab.encode(prompt, grow=False)
        out_tokens: List[str] = []
        eos = self.vocab.EOS
        for _ in range(max_tokens):
            window = ids[-self.config.max_len:]
            logits, _ = self._forward(window)
            last = logits[-1] / max(temperature, 1e-3)
            last = last - last.max()
            probs = np.exp(last)
            probs /= probs.sum()
            choice = rng.choices(
                range(len(probs)), weights=probs.tolist(), k=1
            )[0]
            if choice == eos:
                break
            ids.append(choice)
            token = self.vocab.id_to_token[choice]
            if not (token.startswith("<") and token.endswith(">")):
                out_tokens.append(token)
        return detokenize(out_tokens)
