"""Compiler-feedback syntax repair (OriGen's self-reflection mechanism).

OriGen's second LoRA model consumes compiler error reports and rewrites
the code.  Our stand-in is a rule-based fixer driven by the diagnostics
of :func:`repro.verilog.check`: each iteration reads the first syntax
error and applies the matching textual remedy (insert the missing
semicolon, close an unbalanced ``begin``, restore a dropped
``endmodule``, strip garbage bytes, fix keyword typos), then re-checks.
It repairs exactly the classes of damage LLM sampling and the corpus
mutators introduce, and reports what it did.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..verilog import check
from ..verilog.syntax_checker import CheckResult

_KEYWORD_TYPOS = {
    "begn": "begin", "bgin": "begin", "endmodul": "endmodule",
    "modul": "module", "asign": "assign", "alway": "always",
    "endcas": "endcase",
}

_GARBAGE_RE = re.compile(r"[@#%$&]{2,}|[^\x09\x0a\x0d\x20-\x7e]+")


@dataclass
class RepairResult:
    """Outcome of a repair session."""

    code: str
    fixed: bool
    iterations: int = 0
    actions: List[str] = field(default_factory=list)
    final_status: str = "syntax"


def _insert_semicolon(code: str, line: int) -> Optional[str]:
    """Insert ``;`` at the end of the line before the error."""
    lines = code.split("\n")
    for candidate in (line - 2, line - 1):
        if 0 <= candidate < len(lines):
            text = lines[candidate].rstrip()
            if text and not text.endswith((";", "begin", "end", "(",
                                           ",")):
                lines[candidate] = text + ";"
                return "\n".join(lines)
    return None


def _fix_keyword_typos(code: str) -> Optional[str]:
    fixed = code
    for typo, correct in _KEYWORD_TYPOS.items():
        fixed = re.sub(rf"\b{typo}\b", correct, fixed)
    return fixed if fixed != code else None


def _strip_garbage(code: str) -> Optional[str]:
    cleaned = _GARBAGE_RE.sub(" ", code)
    return cleaned if cleaned != code else None


def _balance_endmodule(code: str) -> Optional[str]:
    opens = len(re.findall(r"\bmodule\b", code))
    closes = len(re.findall(r"\bendmodule\b", code))
    if opens > closes:
        return code.rstrip() + "\n" + "endmodule\n" * (opens - closes)
    return None


def _balance_begin_end(code: str) -> Optional[str]:
    opens = len(re.findall(r"\bbegin\b", code))
    closes = len(re.findall(r"\bend\b(?!module|case|function|task|generate)",
                            code))
    if opens > closes:
        # Close before the final endmodule when present.
        index = code.rfind("endmodule")
        filler = "end\n" * (opens - closes)
        if index >= 0:
            return code[:index] + filler + code[index:]
        return code + filler
    return None


def _close_dangling_paren(code: str, line: int) -> Optional[str]:
    opens = code.count("(")
    closes = code.count(")")
    if opens > closes:
        lines = code.split("\n")
        target = min(max(line - 1, 0), len(lines) - 1)
        lines[target] = lines[target] + ")" * (opens - closes)
        return "\n".join(lines)
    return None


def repair(code: str, max_iterations: int = 4) -> RepairResult:
    """Iteratively repair ``code`` using compiler feedback.

    Returns the best attempt; ``fixed`` is True when the final check
    reports no syntax errors (dependency issues are acceptable — they
    are not the repair model's job).
    """
    result = RepairResult(code=code, fixed=False)
    current = code
    for iteration in range(max_iterations):
        report: CheckResult = check(current)
        if report.status != "syntax":
            result.code = current
            result.fixed = True
            result.iterations = iteration
            result.final_status = report.status
            return result
        error = report.syntax_errors[0]
        attempt = self_reflect_once(current, error.message, error.line)
        if attempt is None or attempt[0] == current:
            break
        current, action = attempt
        result.actions.append(action)
    final = check(current)
    result.code = current
    result.fixed = final.status != "syntax"
    result.iterations = max_iterations
    result.final_status = final.status
    return result


def self_reflect_once(
    code: str, error_message: str, error_line: int
) -> Optional[Tuple[str, str]]:
    """One repair step from one compiler diagnostic."""
    message = error_message.lower()
    candidates: List[Tuple[str, Optional[str]]] = []
    if "';'" in message or "expected ';'" in message:
        candidates.append(("insert_semicolon",
                           _insert_semicolon(code, error_line)))
    if "unexpected" in message or "expected" in message:
        candidates.append(("fix_typos", _fix_keyword_typos(code)))
        candidates.append(("balance_begin_end", _balance_begin_end(code)))
        candidates.append(("close_paren",
                           _close_dangling_paren(code, error_line)))
    if "end of file" in message or "eof" in message:
        candidates.append(("balance_begin_end", _balance_begin_end(code)))
        candidates.append(("append_endmodule", _balance_endmodule(code)))
    candidates.append(("strip_garbage", _strip_garbage(code)))
    candidates.append(("append_endmodule", _balance_endmodule(code)))
    candidates.append(("insert_semicolon",
                       _insert_semicolon(code, error_line)))
    for action, attempt in candidates:
        if attempt is not None and attempt != code:
            return attempt, action
    return None
