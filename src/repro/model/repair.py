"""Compiler-feedback syntax repair (OriGen's self-reflection mechanism).

OriGen's second LoRA model consumes compiler error reports and rewrites
the code.  Our stand-in is a rule-based fixer driven by the diagnostics
of :func:`repro.verilog.check`: each iteration reads the first syntax
error and applies the matching textual remedy (insert the missing
semicolon, close an unbalanced ``begin``, restore a dropped
``endmodule``, strip garbage bytes, fix keyword typos), then re-checks.
It repairs exactly the classes of damage LLM sampling and the corpus
mutators introduce, and reports what it did.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..obs.reportable import report_json, strip_schema
from ..verilog import check
from ..verilog.syntax_checker import CheckResult

_KEYWORD_TYPOS = {
    "begn": "begin", "bgin": "begin", "endmodul": "endmodule",
    "modul": "module", "asign": "assign", "alway": "always",
    "endcas": "endcase",
}

_GARBAGE_RE = re.compile(r"[@#%$&]{2,}|[^\x09\x0a\x0d\x20-\x7e]+")


@dataclass
class RepairResult:
    """Outcome of a repair session (:class:`~repro.obs.Reportable`)."""

    schema = "pyranet/repair-result/v1"

    code: str
    fixed: bool
    iterations: int = 0
    actions: List[str] = field(default_factory=list)
    final_status: str = "syntax"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "fixed": self.fixed,
            "iterations": self.iterations,
            "actions": list(self.actions),
            "final_status": self.final_status,
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return report_json(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RepairResult":
        data = strip_schema(data)
        return cls(
            code=data["code"],
            fixed=data["fixed"],
            iterations=data.get("iterations", 0),
            actions=list(data.get("actions", [])),
            final_status=data.get("final_status", "syntax"),
        )


#: Line endings a ``;`` must never be appended after.
_NO_SEMI_SUFFIXES = (";", "begin", "end", "(", ",")


def _insert_semicolon(code: str, line: int,
                      column: int = 0) -> Optional[str]:
    """Insert ``;`` where the diagnostic's span says the parser choked.

    With a real column (> 1) the offending token sits mid-line, so the
    missing ``;`` belongs immediately before it — which also repairs a
    single-line module whose error is reported on line 1, where the old
    fixed ``(line-2, line-1)`` candidates had nowhere to go.  With no
    column (or a token at the start of the line) the statement that
    lost its ``;`` ended on the nearest preceding non-blank line.
    """
    lines = code.split("\n")
    if not (1 <= line <= len(lines)):
        return None
    index = line - 1
    text = lines[index]
    if column > 1:
        head = text[:column - 1].rstrip()
        if head and not head.endswith(_NO_SEMI_SUFFIXES):
            lines[index] = head + "; " + text[column - 1:]
            return "\n".join(lines)
    for candidate in range(index - 1, -1, -1):
        previous = lines[candidate].rstrip()
        if not previous:
            continue  # blank line: keep walking up to the statement
        if previous.endswith(_NO_SEMI_SUFFIXES):
            return None
        lines[candidate] = previous + ";"
        return "\n".join(lines)
    return None


def _fix_keyword_typos(code: str) -> Optional[str]:
    fixed = code
    for typo, correct in _KEYWORD_TYPOS.items():
        fixed = re.sub(rf"\b{typo}\b", correct, fixed)
    return fixed if fixed != code else None


def _strip_garbage(code: str) -> Optional[str]:
    cleaned = _GARBAGE_RE.sub(" ", code)
    return cleaned if cleaned != code else None


def _balance_endmodule(code: str) -> Optional[str]:
    opens = len(re.findall(r"\bmodule\b", code))
    closes = len(re.findall(r"\bendmodule\b", code))
    if opens > closes:
        return code.rstrip() + "\n" + "endmodule\n" * (opens - closes)
    return None


def _balance_begin_end(code: str) -> Optional[str]:
    opens = len(re.findall(r"\bbegin\b", code))
    closes = len(re.findall(r"\bend\b(?!module|case|function|task|generate)",
                            code))
    if opens > closes:
        # Close before the final endmodule when present.
        index = code.rfind("endmodule")
        filler = "end\n" * (opens - closes)
        if index >= 0:
            return code[:index] + filler + code[index:]
        return code + filler
    return None


def _close_dangling_paren(code: str, line: int) -> Optional[str]:
    opens = code.count("(")
    closes = code.count(")")
    if opens > closes:
        lines = code.split("\n")
        target = min(max(line - 1, 0), len(lines) - 1)
        lines[target] = lines[target] + ")" * (opens - closes)
        return "\n".join(lines)
    return None


def repair(code: str, max_iterations: int = 4) -> RepairResult:
    """Iteratively repair ``code`` using compiler feedback.

    Returns the best attempt; ``fixed`` is True when the final check
    reports no syntax errors (dependency issues are acceptable — they
    are not the repair model's job).
    """
    result = RepairResult(code=code, fixed=False)
    current = code
    for iteration in range(max_iterations):
        report: CheckResult = check(current)
        if report.status != "syntax":
            result.code = current
            result.fixed = True
            result.iterations = iteration
            result.final_status = report.status
            return result
        error = report.syntax_errors[0]
        attempt = self_reflect_once(current, error.message, error.line,
                                    getattr(error, "column", 0))
        if attempt is None or attempt[0] == current:
            break
        current, action = attempt
        result.actions.append(action)
    final = check(current)
    result.code = current
    result.fixed = final.status != "syntax"
    result.iterations = max_iterations
    result.final_status = final.status
    return result


def self_reflect_once(
    code: str, error_message: str, error_line: int,
    error_column: int = 0,
) -> Optional[Tuple[str, str]]:
    """One repair step from one compiler diagnostic."""
    message = error_message.lower()
    candidates: List[Tuple[str, Optional[str]]] = []
    if "';'" in message or "expected ';'" in message:
        candidates.append(("insert_semicolon",
                           _insert_semicolon(code, error_line,
                                             error_column)))
    if "unexpected" in message or "expected" in message:
        candidates.append(("fix_typos", _fix_keyword_typos(code)))
        candidates.append(("balance_begin_end", _balance_begin_end(code)))
        candidates.append(("close_paren",
                           _close_dangling_paren(code, error_line)))
    if "end of file" in message or "eof" in message:
        candidates.append(("balance_begin_end", _balance_begin_end(code)))
        candidates.append(("append_endmodule", _balance_endmodule(code)))
    candidates.append(("strip_garbage", _strip_garbage(code)))
    candidates.append(("append_endmodule", _balance_endmodule(code)))
    candidates.append(("insert_semicolon",
                       _insert_semicolon(code, error_line, error_column)))
    for action, attempt in candidates:
        if attempt is not None and attempt != code:
            return attempt, action
    return None
