"""Model-facing training/generation interfaces.

The fine-tuning machinery (:mod:`repro.finetune`) is generic over any
model implementing :class:`FineTunable` — the description-conditioned
retrieval model used for the paper-scale experiments, and the numpy
transformer used to demonstrate the same machinery over a real neural
substrate.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class TrainingExample:
    """One (description, code) fine-tuning pair with its PyraNet labels."""

    description: str
    code: str
    layer: int = 0
    complexity: int = 0
    ranking: int = 10


@dataclass
class TrainStats:
    """What one training call consumed."""

    examples: int = 0
    tokens: int = 0
    effective_weight: float = 0.0

    def merge(self, other: "TrainStats") -> "TrainStats":
        return TrainStats(
            examples=self.examples + other.examples,
            tokens=self.tokens + other.tokens,
            effective_weight=self.effective_weight + other.effective_weight,
        )


class FineTunable(abc.ABC):
    """A model that can be fine-tuned with per-sample loss weights and
    queried for code generation."""

    @abc.abstractmethod
    def train_batch(
        self, examples: List[TrainingExample], loss_weight: float
    ) -> TrainStats:
        """Consume ``examples`` at ``loss_weight`` (1.0 = full)."""

    def finish_phase(self) -> None:
        """Hook called between fine-tuning phases (layers/tiers)."""

    @abc.abstractmethod
    def generate(
        self,
        description: str,
        temperature: float = 0.8,
        rng: Optional[random.Random] = None,
        module_header: Optional[str] = None,
    ) -> str:
        """Generate Verilog for ``description``.

        ``module_header`` is the interface stub evaluation hands to the
        model (VerilogEval's completion format).
        """
