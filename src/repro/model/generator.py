"""The description-conditioned code-generation model.

:class:`ConditionalCodeModel` is the trainable stand-in for a
fine-tuned code LLM.  It is *not* a template lookup of the corpus
generators — it never sees the family registry — but a retrieval-
augmented generator over whatever (description, code) pairs it was
trained on:

* **Memory**: every training pair becomes a memory item carrying its
  loss weight and a recency stamp.  Per-sample loss weights multiply
  retrieval propensity exactly as they scale gradient contributions in
  weighted SGD; recency decay gives presentation *order* (curriculum)
  a real effect, mirroring the recency bias of sequential fine-tuning.
* **Fluency model**: a weighted n-gram LM trained on the same stream
  scores retrieved exemplars, so both components respond to weighting.
* **Generation**: sample an exemplar by softmax over
  ``similarity^sharpness × weight × recency × fluency``, then *adapt*
  it to the requested interface (module rename, parameter-default
  rewriting from quantities in the description, positional port
  renaming).  Adaptation is deliberately shallow — the model can
  retarget an interface but cannot invent missing behaviour, exactly
  the failure profile of mid-size code LLMs.
* **Base-model imperfection**: each :class:`ModelProfile` (the
  CodeLlama-7B/13B / DeepSeek-Coder stand-ins) carries copy-noise
  rates: a chance per generation of introducing a functional slip or a
  syntax slip.  Fine-tuning dilutes (never erases) that noise through
  the pretrain/fine-tune mass ratio.

The pass@k sensitivities the paper's experiments rely on all emerge
from these mechanics: training-data quality changes what is retrieved;
loss weighting shifts retrieval toward clean strata; curriculum order
changes recency; shuffled (erroneous) labels destroy the
description→code alignment retrieval depends on.
"""

from __future__ import annotations

import math
import random
import re
from collections import Counter
from functools import lru_cache
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..corpus import mutate
from ..verilog.parser import ParseError, parse
from .interfaces import FineTunable, TrainStats, TrainingExample
from .ngram import NGramLM
from .tokenizer import tokenize_text


@dataclass(frozen=True)
class ModelProfile:
    """Characteristics of a simulated base LLM."""

    name: str
    copy_noise: float
    syntax_noise: float
    retrieval_sharpness: float
    pretrain_size: int
    pretrain_bug_rate: float
    pretrain_seed: int = 7


#: Stand-ins for the paper's base models.  The ordering of their
#: imperfection rates reproduces the observed baseline ordering
#: (13B > DeepSeek-7B > 7B on VerilogEval-Machine).
CODELLAMA_7B = ModelProfile(
    name="codellama-7b-instruct-sim", copy_noise=0.32, syntax_noise=0.05,
    retrieval_sharpness=1.0, pretrain_size=28, pretrain_bug_rate=0.12,
)
CODELLAMA_13B = ModelProfile(
    name="codellama-13b-instruct-sim", copy_noise=0.22, syntax_noise=0.03,
    retrieval_sharpness=1.25, pretrain_size=33, pretrain_bug_rate=0.08,
)
DEEPSEEK_7B = ModelProfile(
    name="deepseek-coder-7b-instruct-sim", copy_noise=0.20,
    syntax_noise=0.03, retrieval_sharpness=1.2, pretrain_size=31,
    pretrain_bug_rate=0.10,
)

PROFILES: Dict[str, ModelProfile] = {
    profile.name: profile
    for profile in (CODELLAMA_7B, CODELLAMA_13B, DEEPSEEK_7B)
}


@dataclass
class _MemoryItem:
    features: Counter
    norm: float
    code: str
    weight: float
    stamp: int
    ranking: int = 10
    #: Well-formedness prior (see :meth:`_coherence_prior`).
    coherence: float = 1.0


#: Description phrases that imply parameter values, mapped to the
#: parameter names the corpus idiom uses.
_PARAM_HINTS: List[Tuple[str, str]] = [
    (r"(\d+)\s*-\s*bit", "WIDTH"),
    (r"(\d+)x\d+", "WIDTH"),
    (r"modulo[- ](\d+)", "MODULO"),
    (r"depth\s+(\d+)", "DEPTH"),
    (r"(\d+)[- ]entry", "DEPTH"),
    (r"divide[- ]by[- ](\d+)", "DIVIDE_BY"),
    (r"(\d+)[- ]to[- ]1", "INPUTS"),
    (r"1[- ]to[- ](\d+)", "OUTPUTS"),
    (r"(\d+)[- ]input", "INPUTS"),
]


def extract_param_hints(description: str) -> Dict[str, int]:
    """Quantities stated in a description, keyed by parameter name."""
    hints: Dict[str, int] = {}
    lowered = description.lower()
    for pattern, param in _PARAM_HINTS:
        match = re.search(pattern, lowered)
        if match and param not in hints:
            hints[param] = int(match.group(1))
    return hints


def _port_feature_tokens(code_or_header: Optional[str]) -> List[str]:
    """Interface features: ``port:<name>`` tokens from a module header.

    Port names are strongly family-specific (``cout``, ``sin``,
    ``duty`` …), so indexing them aligns paraphrased human prompts —
    which still come with the target interface — to the right training
    exemplars, just as a real model attends to the header it is asked
    to complete.
    """
    if not code_or_header:
        return []
    parsed = _parse_header(code_or_header)
    if parsed is None:
        return []
    _, ports = parsed
    return [f"port:{name}" for name, _ in ports]


def _featurize(
    text: str, extra_tokens: Optional[List[str]] = None
) -> Tuple[Counter, float]:
    counts = Counter(tokenize_text(text))
    for token in extra_tokens or ():
        counts[token] += 2  # interface tokens are strong evidence
    norm = math.sqrt(sum(c * c for c in counts.values())) or 1.0
    return counts, norm


def description_code_coherence(description: str, code: str) -> float:
    """How well a (description, code) pair agrees lexically.

    Aligned pairs share vocabulary (a counter's description mentions
    counting; its identifiers contain ``count``); label-shuffled pairs
    do not.  Fine-tuning on incoherent pairs teaches a model that the
    prompt does not constrain the completion — the mechanism behind
    the paper's Table IV collapse — so the model tracks the running
    coherence of its training stream (see ``_confusion``).
    """
    desc = Counter(t for t in tokenize_text(description) if len(t) > 2)
    words: Counter = Counter()
    for ident in re.findall(r"[a-zA-Z_][a-zA-Z0-9_]*", code):
        for word in re.split(r"[_0-9]+", ident.lower()):
            if len(word) > 2:
                words[word] += 1
    if not desc or not words:
        return 0.0
    dot = sum(v * words.get(k, 0) for k, v in desc.items())
    norm_d = math.sqrt(sum(v * v for v in desc.values()))
    norm_c = math.sqrt(sum(v * v for v in words.values()))
    return dot / (norm_d * norm_c)


def _cosine(a: Counter, a_norm: float, b: Counter, b_norm: float) -> float:
    if len(b) < len(a):
        a, a_norm, b, b_norm = b, b_norm, a, a_norm
    dot = sum(count * b.get(token, 0) for token, count in a.items())
    return dot / (a_norm * b_norm)


class ConditionalCodeModel(FineTunable):
    """Retrieval-augmented description→Verilog generator.

    Args:
        profile: base-model characteristics.
        seed: seeds the pretraining memory.
        recency_decay: strength of the recency boost (0 disables the
            order sensitivity).
        top_k: retrieval candidates considered per generation.
    """

    def __init__(
        self,
        profile: ModelProfile = CODELLAMA_7B,
        seed: int = 0,
        recency_decay: float = 1.0,
        top_k: int = 8,
    ) -> None:
        self.profile = profile
        self.recency_decay = recency_decay
        self.top_k = top_k
        self._memory: List[_MemoryItem] = []
        self._lm = NGramLM(order=3)
        self._step = 0
        self._pretrain_mass = 0.0
        self._finetune_mass = 0.0
        #: Running weighted description↔code coherence of the training
        #: stream (pretraining counts as aligned).
        self._coherence_sum = 0.0
        self._coherence_weight = 0.0
        self._seed = seed
        self._build_pretraining_memory()

    # -- pretraining ---------------------------------------------------------

    def _build_pretraining_memory(self) -> None:
        """Seed the memory with generic, partly-buggy exemplars.

        This models what an instruction-tuned code LLM already knows
        about Verilog before any domain fine-tuning: the common
        textbook designs, remembered imperfectly.
        """
        from ..corpus.templates import family_names, generate_design

        rng = random.Random(self.profile.pretrain_seed + self._seed)
        names = family_names()
        basic_first = sorted(
            names,
            key=lambda n: ("basic" not in _family_hint(n), n),
        )
        chosen = basic_first[: self.profile.pretrain_size]
        for family in chosen:
            design = generate_design(family, rng)
            source = design.source
            if rng.random() < self.profile.pretrain_bug_rate:
                source = mutate.corrupt_function(source, rng).source
            elif rng.random() < 0.5:
                source = mutate.degrade_style(source, rng, 0.4).source
            self._add_memory(design.description, source, weight=1.0,
                             ranking=12)
            self._lm.train(source, 1.0)
            self._pretrain_mass += 1.0
            self._coherence_sum += description_code_coherence(
                design.description, source)
            self._coherence_weight += 1.0

    # -- FineTunable ---------------------------------------------------------

    def train_batch(
        self, examples: List[TrainingExample], loss_weight: float
    ) -> TrainStats:
        stats = TrainStats()
        if loss_weight <= 0:
            return stats
        for example in examples:
            self._step += 1
            self._add_memory(
                example.description, example.code, weight=loss_weight,
                ranking=example.ranking,
            )
            stats.tokens += self._lm.train(example.code, loss_weight)
            stats.examples += 1
            stats.effective_weight += loss_weight
            self._finetune_mass += loss_weight * max(example.ranking, 1) / 20.0
            self._coherence_sum += loss_weight * description_code_coherence(
                example.description, example.code)
            self._coherence_weight += loss_weight
        return stats

    def finish_phase(self) -> None:
        """Phase boundary: mild count decay (recency in the LM)."""
        self._lm.decay(0.97)

    def generate(
        self,
        description: str,
        temperature: float = 0.8,
        rng: Optional[random.Random] = None,
        module_header: Optional[str] = None,
    ) -> str:
        rng = rng or random.Random(0)
        if self._memory and rng.random() < self._confusion():
            # A model fine-tuned on incoherent (description, code)
            # pairs has learned that prompts do not constrain output:
            # its conditional distribution is close to its marginal.
            exemplar = rng.choice(self._memory)
        else:
            exemplar = self._retrieve(description, temperature, rng,
                                      module_header)
        if exemplar is None:
            return self._fallback(module_header)
        code = self._adapt(exemplar.code, description, module_header)
        noise = self._effective_noise()
        if rng.random() < noise:
            code = mutate.corrupt_function(code, rng).source
        if rng.random() < self._effective_syntax_noise():
            code = mutate.break_syntax(code, rng).source
        return code

    # -- internals -----------------------------------------------------------

    def _add_memory(self, description: str, code: str, weight: float,
                    ranking: int) -> None:
        features, norm = _featurize(
            description, _port_feature_tokens(code)
        )
        self._memory.append(_MemoryItem(
            features=features, norm=norm, code=code,
            weight=weight, stamp=self._step, ranking=ranking,
            coherence=self._coherence_prior(code),
        ))

    @staticmethod
    def _coherence_prior(code: str) -> float:
        """How strongly the base model would reproduce this exemplar.

        Pretrained code LLMs overwhelmingly prefer self-contained,
        syntactically coherent completions; fragments with dangling
        references or parse damage are out-of-distribution and get
        sampled proportionally less even when they appeared in
        fine-tuning data.  The prior uses the model's own notion of
        coherence (a compile check), not dataset labels.
        """
        return _coherence_prior_cached(code)

    def _effective_noise(self) -> float:
        """Copy noise diluted by fine-tuning mass (never below 30% of
        the base rate — LoRA does not rewrite the base model)."""
        share = self._pretrain_mass / max(
            self._pretrain_mass + self._finetune_mass, 1e-9
        )
        return self.profile.copy_noise * max(share, 0.30)

    def _effective_syntax_noise(self) -> float:
        share = self._pretrain_mass / max(
            self._pretrain_mass + self._finetune_mass, 1e-9
        )
        return self.profile.syntax_noise * max(share, 0.25)

    def _confusion(self) -> float:
        """Probability that conditioning is ignored at generation.

        Zero while the training stream's mean coherence stays in the
        aligned regime (~0.5 for this corpus); grows toward 0.85 as
        the stream approaches the fully-shuffled regime (~0.2).
        """
        if self._coherence_weight <= 0:
            return 0.0
        mean = self._coherence_sum / self._coherence_weight
        return min(max((0.45 - mean) / 0.30, 0.0), 0.85)

    def _recency(self, stamp: int) -> float:
        if self._step == 0 or self.recency_decay <= 0:
            return 1.0
        age = (self._step - stamp) / max(self._step, 1)
        return math.exp(-self.recency_decay * age)

    def _retrieve(
        self,
        description: str,
        temperature: float,
        rng: random.Random,
        module_header: Optional[str] = None,
    ) -> Optional[_MemoryItem]:
        if not self._memory:
            return None
        features, norm = _featurize(
            description, _port_feature_tokens(module_header)
        )
        scored: List[Tuple[float, _MemoryItem]] = []
        for item in self._memory:
            similarity = _cosine(features, norm, item.features, item.norm)
            if similarity <= 0:
                continue
            score = (
                (similarity ** self.profile.retrieval_sharpness)
                * item.weight
                * self._recency(item.stamp)
                * item.coherence
            )
            if score > 0:
                scored.append((score, item))
        if not scored:
            return rng.choice(self._memory)
        scored.sort(key=lambda pair: -pair[0])
        top = scored[: self.top_k]
        # LLM sampling temperature maps onto a sharper retrieval
        # softmax: token-level temperature perturbs code mildly, it
        # does not make the model forget which design was asked for.
        retrieval_temp = temperature * 0.35
        if retrieval_temp <= 0.05:
            return top[0][1]
        inv = 1.0 / retrieval_temp
        weights = [score ** inv for score, _ in top]
        total = sum(weights)
        if total <= 0:
            return top[0][1]
        roll = rng.random() * total
        cumulative = 0.0
        for weight, (_, item) in zip(weights, top):
            cumulative += weight
            if roll < cumulative:
                return item
        return top[-1][1]

    # -- adaptation ------------------------------------------------------------

    def _adapt(
        self,
        code: str,
        description: str,
        module_header: Optional[str],
    ) -> str:
        hints = extract_param_hints(description)
        adapted = code
        for param, value in hints.items():
            adapted = re.sub(
                rf"(parameter\s+{param}\s*=\s*)\d+",
                lambda m: f"{m.group(1)}{value}",
                adapted,
            )
        if not module_header:
            return adapted
        required = _parse_header(module_header)
        if required is None:
            return adapted
        req_name, req_ports = required
        exemplar = _parse_header(adapted)
        if exemplar is None:
            return adapted
        ex_name, ex_ports = exemplar
        if ex_name != req_name:
            adapted = re.sub(
                rf"\bmodule\s+{re.escape(ex_name)}\b",
                f"module {req_name}", adapted, count=1,
            )
        ex_names = [p[0] for p in ex_ports]
        req_names = [p[0] for p in req_ports]
        if set(ex_names) != set(req_names):
            by_dir_ex = _group_by_direction(ex_ports)
            by_dir_req = _group_by_direction(req_ports)
            if all(
                len(by_dir_ex.get(d, [])) == len(by_dir_req.get(d, []))
                for d in ("input", "output", "inout")
            ):
                for direction in by_dir_ex:
                    for (old, _), (new, _) in zip(
                        by_dir_ex[direction], by_dir_req.get(direction, [])
                    ):
                        if old != new:
                            adapted = re.sub(
                                rf"\b{re.escape(old)}\b", new, adapted
                            )
        return adapted

    def _fallback(self, module_header: Optional[str]) -> str:
        if module_header:
            return module_header + "\nendmodule\n"
        return "module top_module();\nendmodule\n"


def _parse_header(code: str) -> Optional[Tuple[str, List[Tuple[str, str]]]]:
    """(module name, [(port, direction)]) of the first module."""
    try:
        tree = parse(code if "endmodule" in code
                     else code + "\nendmodule\n")
    except ParseError:
        return None
    if not tree.modules:
        return None
    module = tree.modules[0]
    ports = [(p.name, p.direction or "input") for p in module.ports]
    return module.name, ports


def _group_by_direction(
    ports: Sequence[Tuple[str, str]]
) -> Dict[str, List[Tuple[str, str]]]:
    grouped: Dict[str, List[Tuple[str, str]]] = {}
    for name, direction in ports:
        grouped.setdefault(direction, []).append((name, direction))
    return grouped


def _family_hint(family_name: str) -> str:
    from ..corpus.templates import get_family

    return get_family(family_name).complexity_hint


@lru_cache(maxsize=65536)
def _coherence_prior_cached(code: str) -> float:
    """Cached compile-status prior (the same corpus trains many
    models; checking each file once is enough)."""
    from ..verilog import check

    status = check(code).status
    if status == "clean":
        return 1.0
    if status == "dependency":
        return 0.45
    return 0.15
