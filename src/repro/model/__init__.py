"""Trainable models: the retrieval-augmented conditional generator,
the numpy transformer, tokenizers, the weighted n-gram LM, and the
compiler-feedback repair loop."""

from .interfaces import FineTunable, TrainStats, TrainingExample
from .tokenizer import Vocabulary, detokenize, tokenize_code, tokenize_text
from .ngram import NGramLM
from .generator import (
    CODELLAMA_7B,
    CODELLAMA_13B,
    DEEPSEEK_7B,
    PROFILES,
    ConditionalCodeModel,
    ModelProfile,
    extract_param_hints,
)
from .tinyformer import TinyTransformer, TransformerConfig
from .repair import RepairResult, repair
from .registry import PUBLISHED_CONFIGS, build_registry, render_table2

__all__ = [
    "FineTunable", "TrainStats", "TrainingExample",
    "Vocabulary", "detokenize", "tokenize_code", "tokenize_text",
    "NGramLM",
    "ConditionalCodeModel", "ModelProfile", "PROFILES",
    "CODELLAMA_7B", "CODELLAMA_13B", "DEEPSEEK_7B",
    "extract_param_hints",
    "TinyTransformer", "TransformerConfig",
    "RepairResult", "repair",
    "PUBLISHED_CONFIGS", "build_registry", "render_table2",
]
