"""Weighted n-gram language model over Verilog tokens.

A back-off n-gram LM whose counts are *sample-weighted*: training on an
example with loss weight ``w`` adds ``w`` to every n-gram count it
contains, exactly how per-sample loss weights scale gradient
contributions in SGD.  Perplexity over held-out clean code is the
model-quality metric used by unit tests and ablations to confirm that
loss weighting shifts the model toward high-quality strata.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .tokenizer import tokenize_code

_BOS = "<bos>"
_EOS = "<eos>"


@dataclass
class NGramLM:
    """Back-off n-gram model with add-k smoothing and weighted counts.

    Args:
        order: n-gram order (3 = trigram).
        add_k: smoothing constant.
    """

    order: int = 3
    add_k: float = 0.05
    #: context tuple -> {token -> weighted count}
    counts: Dict[Tuple[str, ...], Dict[str, float]] = field(
        default_factory=dict)
    #: context tuple -> total weighted count
    totals: Dict[Tuple[str, ...], float] = field(default_factory=dict)
    vocab: Dict[str, float] = field(default_factory=dict)
    trained_tokens: float = 0.0

    def _contexts(self, history: Sequence[str]) -> Iterable[Tuple[str, ...]]:
        """Longest-to-shortest back-off contexts for a history."""
        max_len = min(self.order - 1, len(history))
        for length in range(max_len, -1, -1):
            yield tuple(history[len(history) - length:])

    def train(self, code: str, weight: float = 1.0) -> int:
        """Accumulate weighted counts from one code sample.

        Returns the number of tokens consumed.
        """
        if weight <= 0:
            return 0
        tokens = [_BOS] + tokenize_code(code, keep_newlines=False) + [_EOS]
        for index in range(1, len(tokens)):
            token = tokens[index]
            self.vocab[token] = self.vocab.get(token, 0.0) + weight
            history = tokens[max(0, index - self.order + 1):index]
            for context in self._contexts(history):
                bucket = self.counts.setdefault(context, {})
                bucket[token] = bucket.get(token, 0.0) + weight
                self.totals[context] = self.totals.get(context, 0.0) + weight
        self.trained_tokens += weight * (len(tokens) - 1)
        return len(tokens) - 1

    def decay(self, factor: float) -> None:
        """Multiply every count by ``factor`` (recency weighting).

        Called between training phases so later material carries more
        influence — the mechanism that makes presentation *order*
        (curriculum) matter in a count-based model.
        """
        if not 0.0 < factor <= 1.0:
            raise ValueError(f"decay factor must be in (0, 1], got {factor}")
        if factor == 1.0:
            return
        for bucket in self.counts.values():
            for token in bucket:
                bucket[token] *= factor
        for context in self.totals:
            self.totals[context] *= factor
        for token in self.vocab:
            self.vocab[token] *= factor

    # -- probability ------------------------------------------------------------

    def prob(self, token: str, history: Sequence[str]) -> float:
        """Back-off probability of ``token`` after ``history``.

        An untrained model is uniform over a nominal 256-symbol
        alphabet, so its perplexity is meaningfully high rather than 1.
        """
        vocab_size = len(self.vocab) or 256
        for context in self._contexts(history):
            total = self.totals.get(context, 0.0)
            if total <= 0:
                continue
            bucket = self.counts.get(context, {})
            count = bucket.get(token, 0.0)
            return (count + self.add_k) / (
                total + self.add_k * vocab_size
            )
        return 1.0 / vocab_size

    def log_likelihood(self, code: str) -> Tuple[float, int]:
        """Summed log2 probability and token count of ``code``."""
        tokens = [_BOS] + tokenize_code(code, keep_newlines=False) + [_EOS]
        total = 0.0
        for index in range(1, len(tokens)):
            history = tokens[max(0, index - self.order + 1):index]
            total += math.log2(max(self.prob(tokens[index], history),
                                   1e-12))
        return total, len(tokens) - 1

    def perplexity(self, code: str) -> float:
        """Per-token perplexity of ``code`` under the model."""
        log_likelihood, n_tokens = self.log_likelihood(code)
        if n_tokens == 0:
            return float("inf")
        return 2 ** (-log_likelihood / n_tokens)

    def corpus_perplexity(self, codes: Sequence[str]) -> float:
        total_ll = 0.0
        total_tokens = 0
        for code in codes:
            log_likelihood, n_tokens = self.log_likelihood(code)
            total_ll += log_likelihood
            total_tokens += n_tokens
        if total_tokens == 0:
            return float("inf")
        return 2 ** (-total_ll / total_tokens)

    # -- sampling ------------------------------------------------------------

    def sample(
        self,
        rng: random.Random,
        max_tokens: int = 400,
        temperature: float = 1.0,
        prefix: Optional[Sequence[str]] = None,
    ) -> List[str]:
        """Sample a token sequence (for demonstration/ablation use)."""
        history: List[str] = [_BOS] + list(prefix or [])
        out: List[str] = list(prefix or [])
        for _ in range(max_tokens):
            context_hist = history[-(self.order - 1):] if self.order > 1 else []
            distribution = self._distribution(context_hist, temperature)
            if not distribution:
                break
            tokens, weights = zip(*distribution)
            token = rng.choices(tokens, weights=weights, k=1)[0]
            if token == _EOS:
                break
            out.append(token)
            history.append(token)
        return out

    def _distribution(
        self, history: Sequence[str], temperature: float
    ) -> List[Tuple[str, float]]:
        for context in self._contexts(history):
            bucket = self.counts.get(context)
            if bucket:
                if temperature <= 0:
                    best = max(bucket.items(), key=lambda kv: kv[1])
                    return [best]
                inv = 1.0 / max(temperature, 1e-6)
                return [(t, c ** inv) for t, c in bucket.items()]
        return []
