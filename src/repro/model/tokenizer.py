"""Verilog-aware tokenization for the model substrate.

Two tokenizers live here:

* :func:`tokenize_code` — splits Verilog into lexical tokens (robust
  to broken code: unknown bytes become single-character tokens), with
  :func:`detokenize` reconstructing compilable text;
* :func:`tokenize_text` — lowercased word tokens for natural-language
  descriptions (retrieval features).

:class:`Vocabulary` maps tokens to dense ids for the n-gram LM and the
numpy transformer.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

_CODE_TOKEN_RE = re.compile(
    r"""
      [a-zA-Z_$][a-zA-Z0-9_$]*        # identifiers / keywords
    | \d+\s*'\s*[sS]?[bodhBODH][0-9a-fA-F_xXzZ?]+   # sized literals
    | '[sS]?[bodhBODH][0-9a-fA-F_xXzZ?]+            # unsized based
    | \d+\.\d+                        # reals
    | \d+                             # integers
    | "(?:[^"\\]|\\.)*"               # strings
    | <<<|>>>|===|!==|<<|>>|<=|>=|==|!=|&&|\|\||\*\*|~&|~\||~\^|\^~|\+:|-:
    | [-+*/%<>!~&|^(){}\[\],;:?=.@\#]
    | \n
    """,
    re.VERBOSE,
)

#: Tokens after which no space is needed.
_NO_SPACE_AFTER = frozenset("([{#.~!@")
#: Tokens before which no space is needed.
_NO_SPACE_BEFORE = frozenset(")]},;:.([")


def tokenize_code(code: str, keep_newlines: bool = True) -> List[str]:
    """Tokenize Verilog text; comments are dropped.

    Unknown characters are skipped (they only occur in corrupted files,
    which the LM never needs to reproduce byte-exactly).
    """
    text = re.sub(r"//[^\n]*", "", code)
    text = re.sub(r"/\*.*?\*/", " ", text, flags=re.S)
    tokens = _CODE_TOKEN_RE.findall(text)
    if not keep_newlines:
        tokens = [t for t in tokens if t != "\n"]
    else:
        # Collapse runs of newlines to one.
        collapsed: List[str] = []
        for token in tokens:
            if token == "\n" and collapsed and collapsed[-1] == "\n":
                continue
            collapsed.append(token)
        tokens = collapsed
    return tokens


def detokenize(tokens: Sequence[str]) -> str:
    """Reassemble tokens into compilable Verilog text.

    Spacing is conservative: a space between every pair of tokens
    except around brackets/punctuation, which keeps the output valid
    (Verilog is whitespace-insensitive beyond token boundaries).
    """
    out: List[str] = []
    indent = 0
    at_line_start = True
    for token in tokens:
        if token == "\n":
            out.append("\n")
            at_line_start = True
            continue
        if token in ("end", "endmodule", "endcase", "endfunction",
                     "endtask", "endgenerate"):
            indent = max(indent - 1, 0)
        if at_line_start:
            out.append("  " * indent)
            at_line_start = False
        elif out and out[-1] not in ("\n",) and not (
            out[-1].endswith(tuple(_NO_SPACE_AFTER))
            and len(out[-1]) == 1
        ) and token not in _NO_SPACE_BEFORE:
            out.append(" ")
        out.append(token)
        if token in ("begin", "module", "case", "casez", "casex",
                     "function", "task", "generate"):
            if token != "module":
                indent += 1
    return "".join(out)


_WORD_RE = re.compile(r"[a-z0-9]+(?:'[a-z]+)?")

#: Stop words excluded from description features.
_STOP_WORDS = frozenset(
    """a an the and or of to in on for with that this is are be it its
    module verilog design implement implementing implementation write
    code should when while which each all any""".split()
)


def tokenize_text(text: str) -> List[str]:
    """Lowercased word tokens for descriptions, stop words removed."""
    words = _WORD_RE.findall(text.lower())
    return [w for w in words if w not in _STOP_WORDS]


@dataclass
class Vocabulary:
    """Token ↔ id mapping with special tokens.

    id 0 is <pad>, 1 is <bos>, 2 is <eos>, 3 is <unk>.
    """

    token_to_id: Dict[str, int] = field(default_factory=dict)
    id_to_token: List[str] = field(default_factory=list)

    PAD, BOS, EOS, UNK = 0, 1, 2, 3

    def __post_init__(self) -> None:
        if not self.id_to_token:
            for special in ("<pad>", "<bos>", "<eos>", "<unk>"):
                self._add(special)

    def _add(self, token: str) -> int:
        index = len(self.id_to_token)
        self.token_to_id[token] = index
        self.id_to_token.append(token)
        return index

    def add(self, token: str) -> int:
        """Add (or look up) ``token``; returns its id."""
        existing = self.token_to_id.get(token)
        if existing is not None:
            return existing
        return self._add(token)

    def __len__(self) -> int:
        return len(self.id_to_token)

    def encode(self, tokens: Iterable[str], grow: bool = False) -> List[int]:
        """Map tokens to ids; unknown tokens become <unk> unless
        ``grow`` is set."""
        ids: List[int] = []
        for token in tokens:
            if grow:
                ids.append(self.add(token))
            else:
                ids.append(self.token_to_id.get(token, self.UNK))
        return ids

    def decode(self, ids: Iterable[int]) -> List[str]:
        tokens: List[str] = []
        for index in ids:
            if 0 <= index < len(self.id_to_token):
                token = self.id_to_token[index]
                if token.startswith("<") and token.endswith(">"):
                    continue
                tokens.append(token)
        return tokens

    @classmethod
    def build(cls, token_lists: Iterable[Sequence[str]],
              min_count: int = 1) -> "Vocabulary":
        """Build a vocabulary from corpora."""
        counts: Dict[str, int] = {}
        for tokens in token_lists:
            for token in tokens:
                counts[token] = counts.get(token, 0) + 1
        vocab = cls()
        for token, count in sorted(counts.items()):
            if count >= min_count:
                vocab.add(token)
        return vocab
