"""PyraNet reproduction.

A full from-scratch reproduction of *PyraNet: A Multi-Layered
Hierarchical Dataset for Verilog* (DAC 2025): the six-layer dataset and
its curation pipeline, the loss-weighting + curriculum fine-tuning
recipe, a VerilogEval-style evaluation platform, the compared baselines
(RTLCoder, OriGen, MG-Verilog, MEV-LLM), and every substrate they need
— including a four-state event-driven Verilog simulator.

Quickstart::

    from repro import PyraNet

    pn = PyraNet(seed=0)
    pn.build_dataset(n_github_files=400)
    model = pn.finetune("codellama-7b-instruct-sim", recipe="architecture")
    print(pn.evaluate(model, suite="machine").summary())
"""

from .core.pyranet import PyraNet, run_table1, run_table4, gains

__version__ = "1.0.0"

__all__ = ["PyraNet", "run_table1", "run_table4", "gains", "__version__"]
