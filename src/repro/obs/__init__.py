"""Unified observability: metrics, tracing, and the one run report.

The telemetry layer the rest of the system records into:

* :class:`MetricRegistry` — named counters / gauges / histograms (with
  bounded, deterministically-seeded reservoirs) plus JSON-able
  annotations;
* :class:`Tracer` / :class:`SpanContext` — nested wall+CPU spans with
  a picklable context that survives thread- and process-pool hops
  (workers record locally; the parent absorbs);
* :class:`RunReport` — spans + metrics + run meta merged into one
  schema-versioned JSON document;
* :class:`Observability` — the registry+tracer handle every subsystem
  accepts as an optional ``obs`` argument; :func:`resolve` maps None to
  a shared no-op instance so instrumentation has one code path;
* :class:`Reportable` — the shared ``to_dict``/``to_json``/
  ``from_dict``+``schema`` contract all report classes follow.
"""

from .context import NOOP, Observability, resolve
from .proc import rss_peak_bytes
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    NullRegistry,
)
from .report import RUN_REPORT_SCHEMA, RunReport
from .reportable import (
    Reportable,
    report_json,
    strip_schema,
    warn_deprecated,
)
from .tracing import NullTracer, Span, SpanContext, Tracer, worker_tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "NOOP",
    "NullRegistry",
    "NullTracer",
    "Observability",
    "RUN_REPORT_SCHEMA",
    "Reportable",
    "RunReport",
    "Span",
    "SpanContext",
    "Tracer",
    "report_json",
    "resolve",
    "rss_peak_bytes",
    "strip_schema",
    "warn_deprecated",
    "worker_tracer",
]
