"""The one reporting contract every run artefact follows.

Before this module, each subsystem grew its own report class with its
own serialisation quirks (different ``to_json`` defaults, ad-hoc
``from_*`` names).  :class:`Reportable` pins the shared surface:

* a ``schema`` class attribute (``"pyranet/<kind>/v<n>"``) naming the
  document shape and version;
* ``to_dict()`` → plain JSON-able dict;
* ``to_json(indent=None)`` → ``json.dumps(..., sort_keys=True)``;
* ``from_dict(data)`` classmethod that round-trips ``to_dict`` output
  (and tolerates the ``schema`` key, present or not).

Legacy payload shapes are *not* changed — ``schema`` lives on the
class, not inside pre-existing ``to_dict`` outputs, so committed JSON
artefacts stay byte-identical (golden-tested in
``tests/obs/test_reportable.py``).  Divergent old signatures keep
working through :func:`warn_deprecated` shims.
"""

from __future__ import annotations

import json
import warnings
from typing import Any, Dict, Optional, Protocol, runtime_checkable

#: Namespace prefix shared by every schema identifier.
SCHEMA_PREFIX = "pyranet"


@runtime_checkable
class Reportable(Protocol):
    """Structural type for run artefacts (``isinstance`` checks methods
    only; the ``schema`` attribute is asserted separately in tests)."""

    def to_dict(self) -> Dict[str, Any]: ...

    def to_json(self, indent: Optional[int] = None) -> str: ...

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Reportable": ...


def report_json(data: Dict[str, Any], indent: Optional[int] = None) -> str:
    """The canonical report serialisation: sorted keys, optional indent."""
    return json.dumps(data, indent=indent, sort_keys=True)


def strip_schema(data: Dict[str, Any]) -> Dict[str, Any]:
    """``data`` without its ``schema`` key (for ``from_dict`` parsers
    written before the key existed)."""
    if "schema" in data:
        data = {key: value for key, value in data.items()
                if key != "schema"}
    return data


def warn_deprecated(message: str) -> None:
    """Emit the standard deprecation warning for a shimmed signature."""
    warnings.warn(message, DeprecationWarning, stacklevel=3)
