"""Process-wide metric instruments: counters, gauges, histograms.

:class:`MetricRegistry` is the single mutable home for run telemetry.
Every instrument is created-or-fetched by name (``registry.counter(
"cache.eval.hits")``), locks its own updates, and snapshots into plain
JSON-able dicts, so one registry can be hammered from stage threads and
still serialise a consistent view into a
:class:`~repro.obs.report.RunReport`.

Three instrument kinds plus an annotation store:

* :class:`Counter` — monotonically increasing int (``inc``);
* :class:`Gauge` — last-write-wins scalar (``set``), stored untouched
  so ints stay ints across a JSON round-trip;
* :class:`Histogram` — count/sum/min/max plus a bounded reservoir
  (Vitter's algorithm R with a per-name seed, so the sample kept for a
  given observation sequence is deterministic);
* annotations — named JSON-able values for structured context that is
  not a number (stage lists, executor descriptions, run meta).

:class:`NullRegistry` is the zero-cost stand-in: same API, no state.
It exists so instrumented code has exactly one code path and the
overhead benchmark (``benchmarks/test_obs_overhead.py``) can price the
real registry against it.
"""

from __future__ import annotations

import hashlib
import random
import threading
from typing import Any, Dict, List, Optional

#: Default bound on histogram reservoirs.
DEFAULT_RESERVOIR = 256


class Counter:
    """A monotonically increasing integer, safe to bump from any thread."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    @property
    def value(self) -> int:
        return self._value

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    def reset(self) -> None:
        with self._lock:
            self._value = 0


class Gauge:
    """A last-write-wins scalar.

    The value is stored exactly as given (no float coercion), so a
    gauge set to an int serialises as an int — required for the
    byte-identical legacy-trace views built from the registry.
    """

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._value: Any = 0
        self._lock = threading.Lock()

    @property
    def value(self) -> Any:
        return self._value

    def set(self, value: Any) -> None:
        with self._lock:
            self._value = value


def _reservoir_seed(name: str, seed: int) -> int:
    """Per-instrument RNG seed: stable in the name, mixed with the
    registry seed, independent of creation order."""
    digest = hashlib.blake2b(
        f"{seed}:{name}".encode("utf-8", "replace"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little")


class Histogram:
    """Streaming summary plus a bounded reservoir of raw observations.

    The reservoir holds the first ``max_samples`` observations, then
    replaces entries with decreasing probability (algorithm R) using an
    RNG seeded from the instrument name — two runs observing the same
    sequence keep byte-identical samples.
    """

    __slots__ = ("name", "max_samples", "_count", "_sum", "_min", "_max",
                 "_samples", "_rng", "_lock")

    def __init__(self, name: str = "",
                 max_samples: int = DEFAULT_RESERVOIR,
                 seed: int = 0) -> None:
        if max_samples <= 0:
            raise ValueError("max_samples must be positive")
        self.name = name
        self.max_samples = max_samples
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._samples: List[float] = []
        self._rng = random.Random(_reservoir_seed(name, seed))
        self._lock = threading.Lock()

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._sum

    def observe(self, value: float) -> None:
        with self._lock:
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value
            if len(self._samples) < self.max_samples:
                self._samples.append(value)
            else:
                slot = self._rng.randrange(self._count)
                if slot < self.max_samples:
                    self._samples[slot] = value

    def percentile(self, q: float) -> Optional[float]:
        """Approximate q-th percentile (0–100) from the reservoir."""
        with self._lock:
            samples = sorted(self._samples)
        if not samples:
            return None
        rank = max(0, min(len(samples) - 1,
                          round(q / 100.0 * (len(samples) - 1))))
        return samples[rank]

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
                "max_samples": self.max_samples,
                "samples": list(self._samples),
            }


class MetricRegistry:
    """Named instruments, created on first touch, snapshotted as one dict.

    Args:
        seed: mixed into every histogram's reservoir seed so a whole
            run's sampling is reproducible from one number.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._lock = threading.Lock()
        self._counters: "Dict[str, Counter]" = {}
        self._gauges: "Dict[str, Gauge]" = {}
        self._histograms: "Dict[str, Histogram]" = {}
        self._annotations: "Dict[str, Any]" = {}

    # -- instrument access ---------------------------------------------

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name)
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name)
            return instrument

    def histogram(self, name: str,
                  max_samples: int = DEFAULT_RESERVOIR) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(
                    name, max_samples=max_samples, seed=self.seed)
            return instrument

    def annotate(self, name: str, value: Any) -> None:
        """Record a JSON-able context value (last write wins)."""
        with self._lock:
            self._annotations[name] = value

    def annotation(self, name: str, default: Any = None) -> Any:
        with self._lock:
            return self._annotations.get(name, default)

    # -- views ---------------------------------------------------------

    def counters(self, prefix: str = "") -> Dict[str, int]:
        """Counter values, optionally restricted to a name prefix."""
        with self._lock:
            return {name: c.value for name, c in self._counters.items()
                    if name.startswith(prefix)}

    def to_dict(self) -> Dict[str, Any]:
        """A consistent JSON-able snapshot of every instrument."""
        with self._lock:
            return {
                "counters": {name: c.value
                             for name, c in self._counters.items()},
                "gauges": {name: g.value
                           for name, g in self._gauges.items()},
                "histograms": {name: h.snapshot()
                               for name, h in self._histograms.items()},
                "annotations": dict(self._annotations),
            }


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: Any) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


class NullRegistry(MetricRegistry):
    """Same API as :class:`MetricRegistry`; records nothing.

    Shared no-op instruments are handed out for every name, so
    instrumented hot paths cost one dict lookup and a dead call.
    """

    def __init__(self) -> None:
        super().__init__()
        self._null_counter = _NullCounter("null")
        self._null_gauge = _NullGauge("null")
        self._null_histogram = _NullHistogram("null")

    def counter(self, name: str) -> Counter:
        return self._null_counter

    def gauge(self, name: str) -> Gauge:
        return self._null_gauge

    def histogram(self, name: str,
                  max_samples: int = DEFAULT_RESERVOIR) -> Histogram:
        return self._null_histogram

    def annotate(self, name: str, value: Any) -> None:
        pass
