"""Span-based tracing with cross-worker context propagation.

A :class:`Span` is one named, timed region of a run — wall time from
``time.perf_counter``, CPU time from ``time.process_time``, a free-form
``meta`` dict, and parent/child links.  :class:`Tracer` hands out spans
via a context manager and keeps a per-thread stack, so nesting falls
out of lexical structure::

    with tracer.span("curate.dedup") as span:
        span.meta["n_in"] = len(records)
        ...

Crossing an executor boundary breaks the ambient stack, so parents can
also be named explicitly with a :class:`SpanContext` — a tiny picklable
(trace_id, span_id) pair.  A thread worker opens spans on the shared
tracer with ``parent=ctx``; a process worker builds its own
:class:`Tracer` around the shipped context (see :func:`worker_tracer`),
records locally, and the parent process absorbs the exported span dicts
with :meth:`Tracer.absorb`.  Either way the merged span list reconnects
into one tree under the original trace id.

:class:`NullTracer` is the no-op twin used by disabled observability.
"""

from __future__ import annotations

import os
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Optional


@dataclass(frozen=True)
class SpanContext:
    """The serialisable identity of a span: enough to parent under it
    from another thread or process."""

    trace_id: str
    span_id: str

    def to_dict(self) -> Dict[str, str]:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_dict(cls, data: Dict[str, str]) -> "SpanContext":
        return cls(trace_id=data["trace_id"], span_id=data["span_id"])


class Span:
    """One timed region.  Mutable while open; frozen facts after."""

    __slots__ = ("name", "span_id", "parent_id", "trace_id", "meta",
                 "start_s", "wall_time_s", "cpu_time_s", "status",
                 "_wall0", "_cpu0")

    def __init__(self, name: str, span_id: str, trace_id: str,
                 parent_id: Optional[str],
                 start_s: float,
                 meta: Optional[Dict[str, Any]] = None) -> None:
        self.name = name
        self.span_id = span_id
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.meta: Dict[str, Any] = dict(meta) if meta else {}
        #: start offset, seconds since the owning tracer's epoch.
        self.start_s = start_s
        self.wall_time_s = 0.0
        self.cpu_time_s = 0.0
        self.status = "ok"
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()

    def _finish(self, error: bool) -> None:
        self.wall_time_s = time.perf_counter() - self._wall0
        self.cpu_time_s = time.process_time() - self._cpu0
        if error:
            self.status = "error"

    @property
    def context(self) -> SpanContext:
        return SpanContext(trace_id=self.trace_id, span_id=self.span_id)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "start_s": round(self.start_s, 9),
            "wall_time_s": self.wall_time_s,
            "cpu_time_s": self.cpu_time_s,
            "status": self.status,
            "meta": dict(self.meta),
        }


class Tracer:
    """Creates, nests, collects, and merges spans for one run.

    Args:
        trace_id: share one id across every tracer participating in a
            run (workers inherit it through :class:`SpanContext`).
        id_prefix: span-id namespace; worker tracers use a pid-derived
            prefix so ids never collide across processes.
        parent: default parent for root-level spans — the shipped
            context when this tracer lives inside a worker.
    """

    def __init__(self, trace_id: Optional[str] = None,
                 id_prefix: str = "s",
                 parent: Optional[SpanContext] = None) -> None:
        self.trace_id = trace_id or uuid.uuid4().hex[:16]
        self.id_prefix = id_prefix
        self.root_parent = parent
        self.epoch = time.perf_counter()
        self._lock = threading.Lock()
        self._counter = 0
        self._finished: List[Dict[str, Any]] = []
        self._local = threading.local()

    # -- internals -----------------------------------------------------

    def _next_id(self) -> str:
        with self._lock:
            self._counter += 1
            return f"{self.id_prefix}{self._counter:04d}"

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # -- the public surface --------------------------------------------

    @contextmanager
    def span(self, name: str, parent: Optional[SpanContext] = None,
             **meta: Any) -> Iterator[Span]:
        """Open a span; nests under the calling thread's innermost open
        span unless ``parent`` overrides it explicitly."""
        stack = self._stack()
        if parent is not None and parent.span_id:
            parent_id: Optional[str] = parent.span_id
        elif stack:
            parent_id = stack[-1].span_id
        elif self.root_parent is not None:
            parent_id = self.root_parent.span_id
        else:
            parent_id = None
        span = Span(
            name=name,
            span_id=self._next_id(),
            trace_id=self.trace_id,
            parent_id=parent_id,
            start_s=time.perf_counter() - self.epoch,
            meta=meta,
        )
        stack.append(span)
        try:
            yield span
        except BaseException:
            span._finish(error=True)
            raise
        else:
            span._finish(error=False)
        finally:
            stack.pop()
            with self._lock:
                self._finished.append(span.to_dict())

    def current_context(self) -> SpanContext:
        """The innermost open span on this thread (or the tracer root)."""
        stack = self._stack()
        if stack:
            return stack[-1].context
        if self.root_parent is not None:
            return self.root_parent
        return SpanContext(trace_id=self.trace_id, span_id="")

    def export(self) -> List[Dict[str, Any]]:
        """Finished spans as plain dicts (completion order)."""
        with self._lock:
            return [dict(span) for span in self._finished]

    def absorb(self, spans: Iterable[Dict[str, Any]]) -> None:
        """Merge spans exported by another tracer (e.g. a process
        worker) into this one's finished list."""
        with self._lock:
            self._finished.extend(dict(span) for span in spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._finished)


class _NullSpan(Span):
    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(name="", span_id="", trace_id="", parent_id=None,
                         start_s=0.0)


class NullTracer(Tracer):
    """Same API as :class:`Tracer`; keeps nothing."""

    def __init__(self) -> None:
        super().__init__(trace_id="null")

    @contextmanager
    def span(self, name: str, parent: Optional[SpanContext] = None,
             **meta: Any) -> Iterator[Span]:
        yield _NullSpan()

    def export(self) -> List[Dict[str, Any]]:
        return []

    def absorb(self, spans: Iterable[Dict[str, Any]]) -> None:
        pass

    def __len__(self) -> int:
        return 0


def worker_tracer(context: SpanContext) -> Tracer:
    """A tracer for worker-process code: same trace id, pid-namespaced
    span ids, root spans parented under the shipped ``context``."""
    return Tracer(
        trace_id=context.trace_id,
        id_prefix=f"w{os.getpid():x}-",
        parent=context if context.span_id else None,
    )
