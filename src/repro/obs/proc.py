"""Process-level resource probes.

The streaming curate path claims a flat memory profile; that claim
should be *observable* in every run report, not just asserted in one
benchmark.  :func:`rss_peak_bytes` reads the process's resident-set
high-water mark — ``VmHWM`` from ``/proc/self/status`` on Linux, with a
portable ``resource.getrusage`` fallback elsewhere — and
:class:`~repro.obs.Observability` samples it into the
``proc.rss_peak_bytes`` gauge at every span exit.

The value is a per-process *high-water* mark: it is monotone within a
process, so comparing two in-process phases shows growth, but comparing
two corpus sizes requires a fresh process per measurement
(``benchmarks/test_scaleout.py`` re-invokes itself for exactly this
reason).
"""

from __future__ import annotations

import sys
from typing import Optional

_PROC_STATUS = "/proc/self/status"


def _rss_peak_from_proc() -> Optional[int]:
    try:
        with open(_PROC_STATUS, "rb") as handle:
            for line in handle:
                if line.startswith(b"VmHWM:"):
                    # "VmHWM:    123456 kB"
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        return None
    return None


def _rss_peak_from_rusage() -> Optional[int]:
    try:
        import resource
    except ImportError:
        return None
    try:
        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    except (OSError, ValueError):
        return None
    if peak <= 0:
        return None
    # ru_maxrss is bytes on macOS, kibibytes on Linux and the BSDs.
    return int(peak) if sys.platform == "darwin" else int(peak) * 1024


def rss_peak_bytes() -> Optional[int]:
    """Peak resident set size of this process in bytes, or ``None``
    when the platform exposes neither probe."""
    peak = _rss_peak_from_proc()
    if peak is not None:
        return peak
    return _rss_peak_from_rusage()
