"""Observability: one handle bundling a registry and a tracer.

Everything instrumented takes an optional ``obs`` argument; passing one
:class:`Observability` down a whole run (the :class:`~repro.core.PyraNet`
facade does this automatically) is what makes a single merged
:class:`~repro.obs.report.RunReport` possible.  Code that receives no
``obs`` falls back to the shared no-op instance (:func:`NOOP`), so
instrumentation has exactly one code path and near-zero disabled cost.

:meth:`Observability.publish_trace` is the bridge from the legacy
per-pipeline instrumentation: it folds a finished
``PipelineTrace``-shaped object into the registry (per-stage gauges +
annotations for the latest run, cumulative counters across runs), from
which :meth:`repro.pipeline.PipelineTrace.from_registry` can rebuild
the legacy document byte-for-byte — the trace is now a *view* over the
registry, not a second bookkeeping system.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Optional

from .proc import rss_peak_bytes
from .registry import MetricRegistry, NullRegistry
from .report import RunReport
from .tracing import NullTracer, Tracer


class Observability:
    """A registry + tracer pair owning one run's telemetry.

    Args:
        registry: metric store; a fresh :class:`MetricRegistry` by
            default.
        tracer: span collector; a fresh :class:`Tracer` by default.
        run_id: stable name for the run; defaults to the trace id.
    """

    def __init__(self, registry: Optional[MetricRegistry] = None,
                 tracer: Optional[Tracer] = None,
                 run_id: Optional[str] = None) -> None:
        self.registry = registry if registry is not None else MetricRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self.run_id = run_id or self.tracer.trace_id

    @classmethod
    def noop(cls) -> "Observability":
        """A zero-cost instance: null registry, null tracer."""
        return cls(registry=NullRegistry(), tracer=NullTracer(),
                   run_id="noop")

    @property
    def enabled(self) -> bool:
        return not isinstance(self.registry, NullRegistry)

    # -- convenience passthroughs --------------------------------------

    def span(self, name: str, **meta: Any):
        if not self.enabled:
            return self.tracer.span(name, **meta)
        return self._sampled_span(name, meta)

    @contextmanager
    def _sampled_span(self, name: str, meta: Dict[str, Any]):
        """A tracer span that samples ``proc.rss_peak_bytes`` at exit.

        Sampling at span boundaries makes the memory high-water mark a
        standard gauge in every :class:`RunReport` — the streaming
        path's flat-RSS property is observable wherever observability
        is on, at the cost of one ``/proc`` read per span exit."""
        with self.tracer.span(name, **meta) as span:
            try:
                yield span
            finally:
                peak = rss_peak_bytes()
                if peak is not None:
                    self.registry.gauge("proc.rss_peak_bytes").set(peak)

    def counter(self, name: str):
        return self.registry.counter(name)

    def gauge(self, name: str):
        return self.registry.gauge(name)

    def histogram(self, name: str, max_samples: int = 256):
        return self.registry.histogram(name, max_samples=max_samples)

    def annotate(self, name: str, value: Any) -> None:
        self.registry.annotate(name, value)

    # -- legacy-trace publishing ---------------------------------------

    def publish_trace(self, trace: Any) -> None:
        """Fold a finished ``PipelineTrace``-shaped object into the
        registry.

        Latest-run view (gauges + annotations, overwritten per run)::

            pipeline.<name>.wall_time_s          gauge
            pipeline.<name>.meta                 annotation (dict)
            pipeline.<name>.stages               annotation (name list)
            pipeline.<name>.stage.<s>.n_in/…     gauges
            pipeline.<name>.stage.<s>.drops      annotation (dict)

        Cumulative across runs (counters + histograms)::

            pipeline.<name>.runs                 counter
            pipeline.<name>.drop.<reason>        counters
            pipeline.stage_wall_s                histogram
        """
        registry = self.registry
        prefix = f"pipeline.{trace.pipeline or 'anonymous'}"
        registry.gauge(f"{prefix}.wall_time_s").set(trace.wall_time_s)
        registry.annotate(f"{prefix}.meta", dict(trace.meta))
        registry.annotate(f"{prefix}.stages",
                          [metrics.name for metrics in trace.stages])
        registry.counter(f"{prefix}.runs").inc()
        wall_histogram = registry.histogram("pipeline.stage_wall_s")
        for metrics in trace.stages:
            stage = f"{prefix}.stage.{metrics.name}"
            registry.gauge(f"{stage}.n_in").set(metrics.n_in)
            registry.gauge(f"{stage}.n_out").set(metrics.n_out)
            registry.gauge(f"{stage}.wall_time_s").set(metrics.wall_time_s)
            registry.gauge(f"{stage}.cache_hits").set(metrics.cache_hits)
            registry.gauge(f"{stage}.cache_misses").set(metrics.cache_misses)
            registry.annotate(f"{stage}.drops", dict(metrics.drops))
            wall_histogram.observe(metrics.wall_time_s)
            for reason, count in metrics.drops.items():
                registry.counter(f"{prefix}.drop.{reason}").inc(count)

    # -- the merged artefact -------------------------------------------

    def run_report(self, meta: Optional[Dict[str, Any]] = None) -> RunReport:
        """Everything this handle has collected, as one
        :class:`RunReport`."""
        return RunReport(
            run_id=self.run_id,
            meta=dict(meta) if meta else {},
            spans=self.tracer.export(),
            metrics=self.registry.to_dict(),
        )


#: Shared no-op instance used wherever no ``obs`` was supplied.
_NOOP = Observability.noop()


def NOOP() -> Observability:
    """The shared disabled instance (stateless, safe to share)."""
    return _NOOP


def resolve(obs: Optional[Observability]) -> Observability:
    """``obs`` itself, or the shared no-op when None."""
    return obs if obs is not None else _NOOP
