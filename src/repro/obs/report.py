"""RunReport: the single artefact a whole run serialises into.

One JSON document with a pinned, versioned schema that merges the
three telemetry surfaces the subsystems used to keep apart:

* ``spans`` — the full span list (pipeline stages, store reads,
  fine-tuning phases, eval fan-out, worker chunks) as exported by the
  run's :class:`~repro.obs.tracing.Tracer`;
* ``metrics`` — the :class:`~repro.obs.registry.MetricRegistry`
  snapshot: counters, gauges, histograms, annotations;
* ``meta`` — run-level context (seed, entry point, CLI args).

Convenience views answer the questions the document exists for —
"where did the time go" (:meth:`span_tree`, :meth:`summary_lines`),
"which stage dropped my entries" (:meth:`drop_histogram`), and "did the
caches work" (:meth:`cache_stats`) — without callers re-deriving the
joins.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .reportable import report_json, strip_schema

#: Bumped when the document shape changes incompatibly.
RUN_REPORT_SCHEMA = "pyranet/run-report/v1"


@dataclass
class RunReport:
    """Spans + metrics + context for one run, under one schema."""

    schema = RUN_REPORT_SCHEMA

    run_id: str = ""
    meta: Dict[str, Any] = field(default_factory=dict)
    spans: List[Dict[str, Any]] = field(default_factory=list)
    metrics: Dict[str, Any] = field(default_factory=dict)

    # -- views ---------------------------------------------------------

    def span_names(self) -> List[str]:
        return [span["name"] for span in self.spans]

    def find_spans(self, prefix: str) -> List[Dict[str, Any]]:
        """Spans whose name starts with ``prefix``."""
        return [span for span in self.spans
                if span["name"].startswith(prefix)]

    def worker_spans(self) -> List[Dict[str, Any]]:
        """Spans recorded inside executor workers (thread or process)."""
        return [span for span in self.spans
                if span["name"].startswith("worker[")]

    def subsystems(self) -> List[str]:
        """Distinct first components of span names, sorted."""
        return sorted({span["name"].split(".", 1)[0].split("[", 1)[0]
                       for span in self.spans})

    def drop_histogram(self) -> Dict[str, int]:
        """Drop reasons summed across every instrumented pipeline."""
        histogram: Dict[str, int] = {}
        for name, count in self.metrics.get("counters", {}).items():
            if ".drop." in name:
                reason = name.split(".drop.", 1)[1]
                histogram[reason] = histogram.get(reason, 0) + count
        return histogram

    def cache_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-cache hit/miss counters, keyed by cache name."""
        stats: Dict[str, Dict[str, int]] = {}
        for name, count in self.metrics.get("counters", {}).items():
            if not name.startswith("cache."):
                continue
            cache_name, _, kind = name[len("cache."):].rpartition(".")
            if kind in ("hits", "misses"):
                stats.setdefault(cache_name, {})[kind] = count
        return stats

    def span_tree(self) -> Dict[Optional[str], List[Dict[str, Any]]]:
        """Spans grouped by ``parent_id`` (None = roots)."""
        tree: Dict[Optional[str], List[Dict[str, Any]]] = {}
        for span in self.spans:
            tree.setdefault(span.get("parent_id"), []).append(span)
        return tree

    def summary_lines(self, max_depth: int = 3) -> List[str]:
        """An indented wall-time tree of the run's spans."""
        tree = self.span_tree()
        known = {span["span_id"] for span in self.spans}
        lines = [f"run {self.run_id or '<anonymous>'}: "
                 f"{len(self.spans)} spans"]

        def walk(parent: Optional[str], depth: int) -> None:
            if depth >= max_depth:
                return
            for span in sorted(tree.get(parent, []),
                               key=lambda item: item["start_s"]):
                lines.append(
                    f"{'  ' * (depth + 1)}{span['name']:<28} "
                    f"{span['wall_time_s'] * 1000.0:9.1f} ms"
                )
                walk(span["span_id"], depth + 1)

        walk(None, 0)
        # Orphans: spans whose recorded parent never reached this
        # report (e.g. a worker chunk whose stage span was filtered).
        for span in self.spans:
            parent = span.get("parent_id")
            if parent is not None and parent not in known:
                lines.append(f"  (orphan) {span['name']}")
        return lines

    # -- serialisation -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": self.schema,
            "run_id": self.run_id,
            "meta": dict(self.meta),
            "spans": [dict(span) for span in self.spans],
            "metrics": dict(self.metrics),
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return report_json(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunReport":
        data = strip_schema(data)
        return cls(
            run_id=data.get("run_id", ""),
            meta=dict(data.get("meta", {})),
            spans=[dict(span) for span in data.get("spans", [])],
            metrics=dict(data.get("metrics", {})),
        )

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        return cls.from_dict(json.loads(text))
