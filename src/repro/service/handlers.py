"""Job-type adapters: every existing workload as a queue-drainable job.

Each handler is a thin, *idempotent* function over one of the repo's
one-shot entry points — :func:`repro.dataset.pipeline.build_pyranet`,
:meth:`repro.core.PyraNet.finetune`, :meth:`repro.core.PyraNet.evaluate`
— plus a ``probe`` type whose only work is a seeded digest chain (the
load-generator's measuring stick for pure service overhead).

Idempotency and resumability are structural, not per-handler effort:

* every job owns a private checkpoint directory
  (``<jobs_root>/<job_id>/checkpoint``), so its curation/eval pipeline
  journals batches through :mod:`repro.resilience` and a re-run after
  a worker death *resumes* — replaying committed batches byte-identical
  instead of recomputing them;
* all outputs are deterministic functions of the job parameters (seeded
  corpora, content-addressed store shards, manifest-written-last), so
  even a full re-run lands the same bytes in the same places.

Handlers receive ``(job, ctx, obs)`` where ``obs`` is a *per-execution*
:class:`~repro.obs.Observability` handle — its merged RunReport becomes
the job's ``/jobs/<id>/report`` payload.
"""

from __future__ import annotations

import hashlib
import re
from collections.abc import MutableMapping
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Optional

from ..obs import Observability
from ..pipeline import ParallelExecutor
from ..resilience import Checkpointer, FaultPlan, Resilience
from .jobs import (
    Job,
    get_job_type,
    job_type_names,
    params_digest,
    register_job_type,
    unregister_job_type,
)

#: Store names are path components; anything else is rejected.
_STORE_NAME = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


@dataclass
class JobContext:
    """What every handler may touch: the service's on-disk layout plus
    shared execution machinery.

    Args:
        jobs_root: per-job scratch homes (``<jobs_root>/<job_id>/`` —
            checkpoint journal, any intermediate artifacts).
        stores_root: named sharded stores (``<stores_root>/<name>/``),
            the read side the query/sample endpoints serve.
        fault_plan: deterministic fault schedule injected into every
            job's resilience runtime (drills; ``None`` in production).
        executor: intra-job fan-out for curation/eval stages; ``None``
            keeps each subsystem's default.
        durable: fsync job checkpoints (matches the queue's setting).
    """

    jobs_root: Path
    stores_root: Path
    fault_plan: Optional[FaultPlan] = None
    executor: Optional[ParallelExecutor] = None
    durable: bool = True

    def job_dir(self, job_id: str) -> Path:
        path = self.jobs_root / job_id
        path.mkdir(parents=True, exist_ok=True)
        return path

    def store_dir(self, name: str) -> Path:
        if not _STORE_NAME.match(name or ""):
            raise ValueError(
                f"invalid store name {name!r} (want "
                "[A-Za-z0-9][A-Za-z0-9._-]{0,63})")
        return self.stores_root / name

    def job_resilience(self, job: Job, obs: Observability) -> Resilience:
        """The per-job resilience runtime: a private checkpoint journal
        (what makes a killed job resume byte-identical) plus the
        service-wide fault plan."""
        checkpointer = Checkpointer(self.job_dir(job.job_id) / "checkpoint",
                                    durable=self.durable)
        return Resilience(checkpointer=checkpointer,
                          fault_plan=self.fault_plan, obs=obs)


def dataset_digest(dataset: Any) -> str:
    """One digest over every row of a curated dataset — the cheap
    byte-identity witness job results carry."""
    digest = hashlib.blake2b(digest_size=16)
    for entry in dataset:
        digest.update(repr(sorted(entry.to_dict().items()))
                      .encode("utf-8", "replace"))
    return digest.hexdigest()


# -- the job types ------------------------------------------------------


def run_curate_job(job: Job, ctx: JobContext,
                   obs: Observability) -> Dict[str, Any]:
    """``curate``: synthesize + curate a PyraNet dataset, optionally
    sharding it into a named store.

    Params: ``n_github_files``, ``n_llm_prompts``,
    ``n_queries_per_prompt``, ``dedup_threshold``, ``seed``, and
    ``store`` (a store name to write; omit for curate-and-report-only).
    """
    from ..dataset.pipeline import build_pyranet
    from ..store import write_store

    p = job.params
    seed = int(p.get("seed", 0))
    outcome = build_pyranet(
        n_github_files=int(p.get("n_github_files", 120)),
        n_llm_prompts=int(p.get("n_llm_prompts", 4)),
        n_queries_per_prompt=int(p.get("n_queries_per_prompt", 4)),
        seed=seed,
        dedup_threshold=float(p.get("dedup_threshold", 0.8)),
        keep_variants=bool(p.get("keep_variants", False)),
        executor=ctx.executor,
        obs=obs,
        resilience=ctx.job_resilience(job, obs),
    )
    dataset = outcome.dataset
    summary: Dict[str, Any] = {
        "n_entries": len(dataset),
        "layers": {str(layer): count for layer, count
                   in sorted(dataset.layer_sizes().items())},
        "dataset_digest": dataset_digest(dataset),
    }
    family_report = outcome.report.families
    if family_report is not None:
        summary["families"] = {
            "n_families": family_report.n_families,
            "n_variants": family_report.n_variants,
        }
    store = p.get("store")
    if store:
        manifest = write_store(
            dataset, ctx.store_dir(store),
            meta={"seed": seed, "job_id": job.job_id,
                  "source": "service.curate"},
            obs=obs)
        summary["store"] = store
        summary["n_shards"] = len(manifest.shards)
        summary["manifest_digest"] = hashlib.blake2b(
            manifest.to_json(indent=2).encode("utf-8"),
            digest_size=16).hexdigest()
    return summary


def _facade(job: Job, ctx: JobContext, obs: Observability):
    from ..core import PyraNet

    p = job.params
    return PyraNet(
        seed=int(p.get("seed", 0)),
        n_samples=int(p.get("n_samples", 4)),
        n_test_vectors=int(p.get("n_test_vectors", 12)),
        executor=ctx.executor,
        obs=obs,
        resilience=ctx.job_resilience(job, obs),
    )


def _store_service(name: str, ctx: JobContext, obs: Observability, seed: int):
    from ..core import PyraNet

    return PyraNet.load_store(ctx.store_dir(name), seed=seed, obs=obs)


def run_finetune_job(job: Job, ctx: JobContext,
                     obs: Observability) -> Dict[str, Any]:
    """``finetune``: train a recipe over a named store.

    Params: ``store`` (required), ``profile``, ``recipe``, ``epochs``,
    ``seed``.  Models are in-memory stand-ins, so the result is the
    training summary, not a weights artifact.
    """
    from ..model.generator import CODELLAMA_7B

    p = job.params
    store = p.get("store")
    if not store:
        raise ValueError("finetune job needs params['store']")
    pn = _facade(job, ctx, obs)
    source = _store_service(store, ctx, obs, seed=int(p.get("seed", 0)))
    profile = p.get("profile", CODELLAMA_7B.name)
    recipe = p.get("recipe", "architecture")
    pn.finetune(profile, recipe=recipe, dataset=source,
                epochs=int(p.get("epochs", 1)))
    return {
        "profile": profile,
        "recipe": recipe,
        "epochs": int(p.get("epochs", 1)),
        "store": store,
        "n_entries": len(source),
        "layers_trained": source.trainable_layers(),
    }


def run_eval_job(job: Job, ctx: JobContext,
                 obs: Observability) -> Dict[str, Any]:
    """``eval``: the VerilogEval-style loop over a suite.

    Params: ``suite`` (``machine``/``human``), ``profile``, ``recipe``
    (``baseline`` needs no dataset; any other recipe requires
    ``store``), ``n_problems``, ``n_samples``, ``seed``, and
    ``repair_budget`` — nonzero runs the repair-retry scenario
    (:func:`repro.eval.repair_eval.evaluate_with_repair`) and the
    summary gains the fix-rate curve.  The payload is resolved into
    one :class:`~repro.eval.EvalConfig` (echoed under ``config``);
    ``repair_budget=0`` results are byte-identical to the pre-config
    route.
    """
    import json

    from ..model.generator import CODELLAMA_7B

    p = job.params
    pn = _facade(job, ctx, obs)
    profile = p.get("profile", CODELLAMA_7B.name)
    recipe = p.get("recipe", "baseline")
    if recipe == "baseline":
        model = pn.base_model(profile)
    else:
        store = p.get("store")
        if not store:
            raise ValueError(
                f"eval job with recipe {recipe!r} needs params['store']")
        source = _store_service(store, ctx, obs,
                                seed=int(p.get("seed", 0)))
        model = pn.finetune(profile, recipe=recipe, dataset=source)
    n_problems = p.get("n_problems")
    budget = int(p.get("repair_budget", 0))
    config = pn.eval_config(model_name=f"{profile}:{recipe}",
                            repair_budget=budget)
    if budget > 0:
        report = pn.evaluate_repair(
            model, suite=p.get("suite", "machine"),
            repair_budget=budget,
            n_problems=(int(n_problems) if n_problems is not None
                        else None),
            model_name=config.model_name)
        results = [result.to_dict() for result in report.results]
    else:
        report = pn.evaluate(
            model, suite=p.get("suite", "machine"),
            n_problems=(int(n_problems) if n_problems is not None
                        else None),
            model_name=config.model_name)
        results = [result.to_dict() for result in report.results]
    # Digest over the deterministic core (per-problem outcomes), not
    # the trace (wall times) — the byte-identity witness for resumes.
    report_digest = hashlib.blake2b(
        json.dumps(results, sort_keys=True).encode("utf-8"),
        digest_size=16).hexdigest()
    summary = {
        "suite": report.suite,
        "model": report.model_name,
        "summary": report.summary((1, 5, 10)),
        "n_problems": len(results),
        "results": results,
        "report_digest": report_digest,
    }
    if budget > 0:
        summary["config"] = config.to_dict()
        summary["repair_budget"] = budget
        summary["fix_rate_curve"] = [
            round(rate, 4) for rate in report.fix_rate_curve()]
    return summary


def run_probe_job(job: Job, ctx: JobContext,
                  obs: Observability) -> Dict[str, Any]:
    """``probe``: a no-I/O digest chain — the benchmark's unit of pure
    service overhead.  Params: ``spin`` (chain length), anything else
    is folded into the digest."""
    p = job.params
    spin = max(0, int(p.get("spin", 0)))
    digest = params_digest(p).encode("ascii")
    for _ in range(spin):
        digest = hashlib.blake2b(digest, digest_size=16).hexdigest() \
            .encode("ascii")
    obs.counter("service.probe.spins").inc(spin)
    return {"digest": digest.decode("ascii"), "spin": spin}


def run_repair_job(job: Job, ctx: JobContext,
                   obs: Observability) -> Dict[str, Any]:
    """``repair``: manufacture repair-trajectory training data.

    Runs the :mod:`repro.repairloop` over mutated synthetic designs
    (:func:`repro.corpus.repair_trajectories`), streams the fixed
    broken→fixed pairs through the streaming curation path, and —
    with a ``store`` param — lands them in a named sharded store whose
    facets carry the ``repair`` origin.

    Params: ``n_candidates``, ``seed``, ``budget``,
    ``n_test_vectors``, ``functional_fraction``, ``dedup_threshold``,
    and ``store`` (omit for run-and-report-only).
    """
    from ..corpus.repair_source import repair_trajectories
    from ..dataset.streaming import StreamingCurationPipeline

    p = job.params
    seed = int(p.get("seed", 0))
    trajectories = repair_trajectories(
        n_candidates=int(p.get("n_candidates", 32)),
        seed=seed,
        budget=int(p.get("budget", 2)),
        n_test_vectors=int(p.get("n_test_vectors", 8)),
        functional_fraction=float(p.get("functional_fraction", 0.25)),
        executor=ctx.executor,
        obs=obs,
        resilience=Resilience(
            checkpointer=Checkpointer(
                ctx.job_dir(job.job_id) / "repair-checkpoint",
                durable=ctx.durable),
            fault_plan=ctx.fault_plan, obs=obs),
    )
    summary: Dict[str, Any] = trajectories.summary()
    pipeline = StreamingCurationPipeline(
        dedup_threshold=float(p.get("dedup_threshold", 0.8)),
        seed=seed, executor=ctx.executor, obs=obs,
        resilience=ctx.job_resilience(job, obs))
    token = f"repair:{job.job_id}:{params_digest(p)}"
    store = p.get("store")
    if store:
        outcome = pipeline.curate_to_store(
            iter([trajectories.records] if trajectories.records else []),
            ctx.store_dir(store), source_token=token,
            store_meta={"seed": seed, "job_id": job.job_id,
                        "source": "service.repair"})
        facets = outcome.manifest.facets()
        summary["store"] = store
        summary["n_entries"] = facets["n_entries"]
        summary["origins"] = facets["origins"]
        summary["n_shards"] = len(outcome.manifest.shards)
    else:
        result = pipeline.run_stream(
            iter([trajectories.records] if trajectories.records else []),
            source_token=token)
        summary["n_entries"] = len(result.dataset)
        summary["dataset_digest"] = dataset_digest(result.dataset)
    return summary


def run_formal_job(job: Job, ctx: JobContext,
                   obs: Observability) -> Dict[str, Any]:
    """``formal``: (re)compute the verified tier over a named store.

    Streams the store through batched reads, runs the bounded formal
    check on every clean 20/20 row (the only rows the tier admits),
    and rewrites the store with the verdicts persisted — shard facets
    and the manifest's ``verified`` facet update with it.  Elaboration
    is memoised in a job-local :class:`~repro.pipeline.diskcache.DiskCache`
    keyed by source digest, so a resumed or repeated job re-elaborates
    nothing (``formal.memo.hit``/``miss`` counters are exact).

    Params: ``store`` (required), ``bound`` (cycles for sequential
    designs), ``batch_size`` (rows per batched read).
    """
    from ..pipeline import ResultCache
    from ..pipeline.diskcache import DiskCache
    from ..store import StoreReader, write_store
    from ..verilog.formal import verify_design
    from ..verilog.formal.memo import ElaborationMemo

    p = job.params
    store = p.get("store")
    if not store:
        raise ValueError("formal job needs params['store']")
    bound = int(p.get("bound", 2))
    batch_size = int(p.get("batch_size", 256))
    store_dir = ctx.store_dir(store)
    reader = StoreReader(store_dir, cache=ResultCache(), obs=obs)
    manifest = reader.manifest
    disk = DiskCache(ctx.job_dir(job.job_id) / "elab-cache", obs=obs)
    memo = ElaborationMemo(disk=disk, obs=obs)
    stats = {"n_entries": 0, "n_checked": 0, "n_verified": 0}

    def verified_entries():
        for batch in reader.iter_batches(size=batch_size):
            for entry in batch:
                stats["n_entries"] += 1
                if entry.ranking == 20 and entry.compile_status.value \
                        == "clean":
                    stats["n_checked"] += 1
                    try:
                        design = memo.elaborate(entry.code)
                        report = verify_design(design, bound=bound)
                        verdict = report.status == "verified"
                        detail = (report.detail if verdict else
                                  f"{report.status}: {report.detail}")
                    except Exception as exc:
                        verdict = False
                        detail = f"error: {type(exc).__name__}: {exc}"
                    entry.verified = verdict
                    entry.verified_detail = detail
                    if verdict:
                        stats["n_verified"] += 1
                else:
                    entry.verified = False
                    entry.verified_detail = ""
                yield entry

    meta = dict(manifest.meta or {})
    meta.update({"job_id": job.job_id, "source": "service.formal"})
    new_manifest = write_store(verified_entries(), store_dir,
                               meta=meta, obs=obs)
    hits, misses = memo.stats()
    obs.counter("service.formal.checked").inc(stats["n_checked"])
    obs.counter("service.formal.verified").inc(stats["n_verified"])
    return {
        "store": store,
        "bound": bound,
        "n_entries": stats["n_entries"],
        "n_checked": stats["n_checked"],
        "n_verified": stats["n_verified"],
        "memo": {"hits": hits, "misses": misses},
        "verified_facet": new_manifest.verified_summary(),
        "n_shards": len(new_manifest.shards),
        "manifest_digest": hashlib.blake2b(
            new_manifest.to_json(indent=2).encode("utf-8"),
            digest_size=16).hexdigest(),
    }


# -- registration -------------------------------------------------------


class _RunnerView(MutableMapping):
    """``HANDLERS``: the historical name→runner mapping, now a live
    view over the :func:`repro.service.jobs.register_job_type`
    registry.  Mutation flows through (``HANDLERS[name] = fn`` is
    :func:`register_job_type` without a schema; ``pop`` unregisters),
    so code written against either surface sees one set of types."""

    def __getitem__(self, name: str):
        job_type = get_job_type(name)
        if job_type is None:
            raise KeyError(name)
        return job_type.runner

    def __setitem__(self, name: str, runner) -> None:
        register_job_type(name, runner)

    def __delitem__(self, name: str) -> None:
        unregister_job_type(name)

    def __iter__(self):
        return iter(job_type_names())

    def __len__(self) -> int:
        return len(job_type_names())

    def __repr__(self) -> str:
        return f"HANDLERS({job_type_names()})"


#: name -> handler; extend via :func:`register_handler` (or, with a
#: payload schema, :func:`repro.service.jobs.register_job_type`).
HANDLERS: MutableMapping = _RunnerView()


def register_handler(
    name: str,
    handler: Callable[[Job, JobContext, Observability], Dict[str, Any]],
) -> None:
    """Make ``name`` submittable as a job type (schema-less; prefer
    :func:`repro.service.jobs.register_job_type` for new types)."""
    register_job_type(name, handler)


_COMMON_SCHEMA = {
    "seed": {"type": "int", "doc": "master seed"},
}

register_job_type("curate", run_curate_job, payload_schema={
    **_COMMON_SCHEMA,
    "n_github_files": {"type": "int"},
    "n_llm_prompts": {"type": "int"},
    "n_queries_per_prompt": {"type": "int"},
    "dedup_threshold": {"type": "float"},
    "keep_variants": {"type": "bool",
                      "doc": "keep near-duplicates as family-tagged rows"},
    "store": {"type": "str", "doc": "store name to shard into"},
})
register_job_type("finetune", run_finetune_job, payload_schema={
    **_COMMON_SCHEMA,
    "store": {"type": "str", "required": True},
    "profile": {"type": "str"},
    "recipe": {"type": "str"},
    "epochs": {"type": "int"},
})
register_job_type("eval", run_eval_job, payload_schema={
    **_COMMON_SCHEMA,
    "suite": {"type": "str"},
    "profile": {"type": "str"},
    "recipe": {"type": "str"},
    "store": {"type": "str"},
    "n_problems": {"type": "int"},
    "n_samples": {"type": "int"},
    "n_test_vectors": {"type": "int"},
    "repair_budget": {"type": "int",
                      "doc": "repair retries per failed sample"},
})
register_job_type("probe", run_probe_job, payload_schema={
    "spin": {"type": "int", "doc": "digest-chain length"},
})
register_job_type("formal", run_formal_job, payload_schema={
    **_COMMON_SCHEMA,
    "store": {"type": "str", "required": True,
              "doc": "store whose verified tier to (re)compute"},
    "bound": {"type": "int", "doc": "cycles checked for sequential designs"},
    "batch_size": {"type": "int", "doc": "rows per batched store read"},
})
register_job_type("repair", run_repair_job, payload_schema={
    **_COMMON_SCHEMA,
    "n_candidates": {"type": "int"},
    "budget": {"type": "int", "doc": "repair iterations per candidate"},
    "n_test_vectors": {"type": "int"},
    "functional_fraction": {"type": "float"},
    "dedup_threshold": {"type": "float"},
    "store": {"type": "str", "doc": "store name to shard into"},
})
