"""Job-type adapters: every existing workload as a queue-drainable job.

Each handler is a thin, *idempotent* function over one of the repo's
one-shot entry points — :func:`repro.dataset.pipeline.build_pyranet`,
:meth:`repro.core.PyraNet.finetune`, :meth:`repro.core.PyraNet.evaluate`
— plus a ``probe`` type whose only work is a seeded digest chain (the
load-generator's measuring stick for pure service overhead).

Idempotency and resumability are structural, not per-handler effort:

* every job owns a private checkpoint directory
  (``<jobs_root>/<job_id>/checkpoint``), so its curation/eval pipeline
  journals batches through :mod:`repro.resilience` and a re-run after
  a worker death *resumes* — replaying committed batches byte-identical
  instead of recomputing them;
* all outputs are deterministic functions of the job parameters (seeded
  corpora, content-addressed store shards, manifest-written-last), so
  even a full re-run lands the same bytes in the same places.

Handlers receive ``(job, ctx, obs)`` where ``obs`` is a *per-execution*
:class:`~repro.obs.Observability` handle — its merged RunReport becomes
the job's ``/jobs/<id>/report`` payload.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Optional

from ..obs import Observability
from ..pipeline import ParallelExecutor
from ..resilience import Checkpointer, FaultPlan, Resilience
from .jobs import Job, params_digest

#: Store names are path components; anything else is rejected.
_STORE_NAME = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


@dataclass
class JobContext:
    """What every handler may touch: the service's on-disk layout plus
    shared execution machinery.

    Args:
        jobs_root: per-job scratch homes (``<jobs_root>/<job_id>/`` —
            checkpoint journal, any intermediate artifacts).
        stores_root: named sharded stores (``<stores_root>/<name>/``),
            the read side the query/sample endpoints serve.
        fault_plan: deterministic fault schedule injected into every
            job's resilience runtime (drills; ``None`` in production).
        executor: intra-job fan-out for curation/eval stages; ``None``
            keeps each subsystem's default.
        durable: fsync job checkpoints (matches the queue's setting).
    """

    jobs_root: Path
    stores_root: Path
    fault_plan: Optional[FaultPlan] = None
    executor: Optional[ParallelExecutor] = None
    durable: bool = True

    def job_dir(self, job_id: str) -> Path:
        path = self.jobs_root / job_id
        path.mkdir(parents=True, exist_ok=True)
        return path

    def store_dir(self, name: str) -> Path:
        if not _STORE_NAME.match(name or ""):
            raise ValueError(
                f"invalid store name {name!r} (want "
                "[A-Za-z0-9][A-Za-z0-9._-]{0,63})")
        return self.stores_root / name

    def job_resilience(self, job: Job, obs: Observability) -> Resilience:
        """The per-job resilience runtime: a private checkpoint journal
        (what makes a killed job resume byte-identical) plus the
        service-wide fault plan."""
        checkpointer = Checkpointer(self.job_dir(job.job_id) / "checkpoint",
                                    durable=self.durable)
        return Resilience(checkpointer=checkpointer,
                          fault_plan=self.fault_plan, obs=obs)


def dataset_digest(dataset: Any) -> str:
    """One digest over every row of a curated dataset — the cheap
    byte-identity witness job results carry."""
    digest = hashlib.blake2b(digest_size=16)
    for entry in dataset:
        digest.update(repr(sorted(entry.to_dict().items()))
                      .encode("utf-8", "replace"))
    return digest.hexdigest()


# -- the job types ------------------------------------------------------


def run_curate_job(job: Job, ctx: JobContext,
                   obs: Observability) -> Dict[str, Any]:
    """``curate``: synthesize + curate a PyraNet dataset, optionally
    sharding it into a named store.

    Params: ``n_github_files``, ``n_llm_prompts``,
    ``n_queries_per_prompt``, ``dedup_threshold``, ``seed``, and
    ``store`` (a store name to write; omit for curate-and-report-only).
    """
    from ..dataset.pipeline import build_pyranet
    from ..store import write_store

    p = job.params
    seed = int(p.get("seed", 0))
    outcome = build_pyranet(
        n_github_files=int(p.get("n_github_files", 120)),
        n_llm_prompts=int(p.get("n_llm_prompts", 4)),
        n_queries_per_prompt=int(p.get("n_queries_per_prompt", 4)),
        seed=seed,
        dedup_threshold=float(p.get("dedup_threshold", 0.8)),
        executor=ctx.executor,
        obs=obs,
        resilience=ctx.job_resilience(job, obs),
    )
    dataset = outcome.dataset
    summary: Dict[str, Any] = {
        "n_entries": len(dataset),
        "layers": {str(layer): count for layer, count
                   in sorted(dataset.layer_sizes().items())},
        "dataset_digest": dataset_digest(dataset),
    }
    store = p.get("store")
    if store:
        manifest = write_store(
            dataset, ctx.store_dir(store),
            meta={"seed": seed, "job_id": job.job_id,
                  "source": "service.curate"},
            obs=obs)
        summary["store"] = store
        summary["n_shards"] = len(manifest.shards)
        summary["manifest_digest"] = hashlib.blake2b(
            manifest.to_json(indent=2).encode("utf-8"),
            digest_size=16).hexdigest()
    return summary


def _facade(job: Job, ctx: JobContext, obs: Observability):
    from ..core import PyraNet

    p = job.params
    return PyraNet(
        seed=int(p.get("seed", 0)),
        n_samples=int(p.get("n_samples", 4)),
        n_test_vectors=int(p.get("n_test_vectors", 12)),
        executor=ctx.executor,
        obs=obs,
        resilience=ctx.job_resilience(job, obs),
    )


def _store_service(name: str, ctx: JobContext, obs: Observability, seed: int):
    from ..core import PyraNet

    return PyraNet.load_store(ctx.store_dir(name), seed=seed, obs=obs)


def run_finetune_job(job: Job, ctx: JobContext,
                     obs: Observability) -> Dict[str, Any]:
    """``finetune``: train a recipe over a named store.

    Params: ``store`` (required), ``profile``, ``recipe``, ``epochs``,
    ``seed``.  Models are in-memory stand-ins, so the result is the
    training summary, not a weights artifact.
    """
    from ..model.generator import CODELLAMA_7B

    p = job.params
    store = p.get("store")
    if not store:
        raise ValueError("finetune job needs params['store']")
    pn = _facade(job, ctx, obs)
    source = _store_service(store, ctx, obs, seed=int(p.get("seed", 0)))
    profile = p.get("profile", CODELLAMA_7B.name)
    recipe = p.get("recipe", "architecture")
    pn.finetune(profile, recipe=recipe, dataset=source,
                epochs=int(p.get("epochs", 1)))
    return {
        "profile": profile,
        "recipe": recipe,
        "epochs": int(p.get("epochs", 1)),
        "store": store,
        "n_entries": len(source),
        "layers_trained": source.trainable_layers(),
    }


def run_eval_job(job: Job, ctx: JobContext,
                 obs: Observability) -> Dict[str, Any]:
    """``eval``: the VerilogEval-style loop over a suite.

    Params: ``suite`` (``machine``/``human``), ``profile``, ``recipe``
    (``baseline`` needs no dataset; any other recipe requires
    ``store``), ``n_problems``, ``n_samples``, ``seed``.
    """
    import json

    from ..model.generator import CODELLAMA_7B

    p = job.params
    pn = _facade(job, ctx, obs)
    profile = p.get("profile", CODELLAMA_7B.name)
    recipe = p.get("recipe", "baseline")
    if recipe == "baseline":
        model = pn.base_model(profile)
    else:
        store = p.get("store")
        if not store:
            raise ValueError(
                f"eval job with recipe {recipe!r} needs params['store']")
        source = _store_service(store, ctx, obs,
                                seed=int(p.get("seed", 0)))
        model = pn.finetune(profile, recipe=recipe, dataset=source)
    n_problems = p.get("n_problems")
    report = pn.evaluate(
        model, suite=p.get("suite", "machine"),
        n_problems=int(n_problems) if n_problems is not None else None,
        model_name=f"{profile}:{recipe}")
    results = [result.to_dict() for result in report.results]
    # Digest over the deterministic core (per-problem outcomes), not
    # the trace (wall times) — the byte-identity witness for resumes.
    report_digest = hashlib.blake2b(
        json.dumps(results, sort_keys=True).encode("utf-8"),
        digest_size=16).hexdigest()
    return {
        "suite": report.suite,
        "model": report.model_name,
        "summary": report.summary((1, 5, 10)),
        "n_problems": len(results),
        "results": results,
        "report_digest": report_digest,
    }


def run_probe_job(job: Job, ctx: JobContext,
                  obs: Observability) -> Dict[str, Any]:
    """``probe``: a no-I/O digest chain — the benchmark's unit of pure
    service overhead.  Params: ``spin`` (chain length), anything else
    is folded into the digest."""
    p = job.params
    spin = max(0, int(p.get("spin", 0)))
    digest = params_digest(p).encode("ascii")
    for _ in range(spin):
        digest = hashlib.blake2b(digest, digest_size=16).hexdigest() \
            .encode("ascii")
    obs.counter("service.probe.spins").inc(spin)
    return {"digest": digest.decode("ascii"), "spin": spin}


#: name -> handler; extend via :func:`register_handler`.
HANDLERS: Dict[str, Callable[[Job, JobContext, Observability],
                             Dict[str, Any]]] = {
    "curate": run_curate_job,
    "finetune": run_finetune_job,
    "eval": run_eval_job,
    "probe": run_probe_job,
}


def register_handler(
    name: str,
    handler: Callable[[Job, JobContext, Observability], Dict[str, Any]],
) -> None:
    """Make ``name`` submittable as a job type."""
    HANDLERS[name] = handler
