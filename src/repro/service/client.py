"""A tiny stdlib client for the service HTTP API.

Used by the load-generator benchmark, the end-to-end tests, and the
README quickstart; anything speaking JSON-over-HTTP works just as well
(every endpoint is ``curl``-able).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional

#: Job statuses the client treats as settled.
TERMINAL = ("done", "failed")


class ServiceError(RuntimeError):
    """An HTTP error response, with the decoded body when there is one."""

    def __init__(self, status: int, message: str) -> None:
        self.status = status
        super().__init__(f"HTTP {status}: {message}")


class ServiceClient:
    """Talk to one :class:`~repro.service.http.ServiceHTTPServer`.

    Args:
        base_url: e.g. ``http://127.0.0.1:8642`` (no trailing slash).
        timeout: per-request socket timeout in seconds.
    """

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- job API --------------------------------------------------------

    def submit(self, job_type: str,
               params: Optional[Dict[str, Any]] = None,
               idempotency_key: Optional[str] = None) -> Dict[str, Any]:
        body: Dict[str, Any] = {"type": job_type, "params": params or {}}
        if idempotency_key is not None:
            body["idempotency_key"] = idempotency_key
        return self._request("POST", "/jobs", body)

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def jobs(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/jobs")["jobs"]

    def report(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}/report")

    def wait(self, job_id: str, timeout: float = 120.0,
             poll: float = 0.05) -> Dict[str, Any]:
        """Poll until the job settles; returns the final record.

        Raises :class:`TimeoutError` if it does not settle in time.
        """
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["status"] in TERMINAL:
                return record
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {record['status']!r} after "
                    f"{timeout}s")
            time.sleep(poll)

    # -- service / store API --------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def run_report(self) -> Dict[str, Any]:
        return self._request("GET", "/report")

    def stores(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/stores")["stores"]

    def facets(self, store: str) -> Dict[str, Any]:
        return self._request("GET", f"/stores/{store}/facets")

    def sample(self, store: str, n: int = 8,
               layer: Optional[int] = None,
               batch_size: int = 64) -> Dict[str, Any]:
        query = f"n={n}&batch_size={batch_size}"
        if layer is not None:
            query += f"&layer={layer}"
        return self._request("GET", f"/stores/{store}/sample?{query}")

    def shutdown(self) -> Dict[str, Any]:
        return self._request("POST", "/shutdown", {})

    # -- plumbing -------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        request = urllib.request.Request(
            self.base_url + path, method=method,
            headers={"Content-Type": "application/json"},
            data=(json.dumps(body).encode("utf-8")
                  if body is not None else None))
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read().decode("utf-8"))
                message = detail.get("error", str(detail))
            except Exception:
                message = exc.reason
            raise ServiceError(exc.code, message) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(0, f"cannot reach {self.base_url}: "
                                  f"{exc.reason}") from exc
