"""The service composition root: queue + workers + stores on one dir.

:class:`PyraNetService` owns the on-disk layout::

    <root>/
      queue/        the persistent job journal (JobQueue)
      jobs/<id>/    per-job scratch: checkpoint journal, artifacts
      stores/<n>/   named sharded dataset stores (the read side)

and exposes every endpoint as a plain-dict method — the HTTP layer
(:mod:`~repro.service.http`) is just a JSON codec over this object, so
tests and embedded callers drive the service without sockets.

The failure model, end to end: submissions are exactly-once per
idempotency key (queue-level), executions are at-least-once with
byte-identical resumes (per-job checkpoints + content-addressed
outputs), and a job that keeps failing lands in the dead-letter ledger
without stalling its neighbours (worker-pool shield).
"""

from __future__ import annotations

import hashlib
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..obs import Observability
from ..pipeline import ParallelExecutor, ResultCache
from ..resilience import Resilience
from ..store import SamplingService, StoreManifest, StoreReader
from ..store.manifest import MANIFEST_NAME
from .handlers import HANDLERS, JobContext
from .jobs import validate_payload
from .jobs import Job
from .queue import JobQueue
from .workers import WorkerPool, default_resilience

PathLike = Union[str, Path]


class UnknownJobError(KeyError):
    """404: no such job."""


class UnknownStoreError(KeyError):
    """404: no such store."""


class PyraNetService:
    """One long-running curation/finetune/eval service instance.

    Args:
        root: service home directory (created if missing); reopening
            the same root resumes the same queue — killed workers'
            jobs are re-queued and resume from their checkpoints.
        n_workers: worker pool width.
        obs: observability handle; a live one by default so ``/healthz``
            and ``/report`` always have metrics to serve.
        resilience: job-guard runtime; defaults to
            :func:`~repro.service.workers.default_resilience` (retry +
            quarantine, no breakers).  Attach a
            :class:`~repro.resilience.FaultPlan` here to run drills —
            it is injected into every job's pipeline.
        executor: intra-job fan-out for curation/eval stages.
        durable: fsync queue and checkpoint journal writes.
        poll_interval: worker idle poll.
        max_recoveries: crash re-queues per job before dead-lettering.
    """

    def __init__(self, root: PathLike, n_workers: int = 2,
                 obs: Optional[Observability] = None,
                 resilience: Optional[Resilience] = None,
                 executor: Optional[ParallelExecutor] = None,
                 durable: bool = True,
                 poll_interval: float = 0.02,
                 max_recoveries: int = 3) -> None:
        self.root = Path(root)
        self.obs = obs if obs is not None else Observability()
        self.resilience = (resilience if resilience is not None
                           else default_resilience(self.obs))
        if self.resilience.obs is None:
            self.resilience.obs = self.obs
        self.queue = JobQueue(self.root / "queue", obs=self.obs,
                              durable=durable,
                              max_recoveries=max_recoveries)
        self.context = JobContext(
            jobs_root=self.root / "jobs",
            stores_root=self.root / "stores",
            fault_plan=self.resilience.fault_plan,
            executor=executor,
            durable=durable,
        )
        self.pool = WorkerPool(self.queue, self.context,
                               n_workers=n_workers,
                               resilience=self.resilience, obs=self.obs,
                               poll_interval=poll_interval)
        self._started = time.monotonic()
        #: store name -> (manifest mtime, SamplingService); re-opened
        #: when a curate job rewrites the manifest.
        self._readers: Dict[str, Any] = {}

    # -- lifecycle ------------------------------------------------------

    def start(self) -> None:
        self.pool.start()

    def stop(self, drain_queue: bool = False,
             reason: str = "graceful") -> None:
        """Graceful shutdown: in-flight jobs finish (optionally the
        whole queue drains), then the exit is journaled."""
        self.pool.stop(drain_queue=drain_queue)
        self.queue.journal_shutdown(reason)

    # -- job endpoints --------------------------------------------------

    def submit(self, job_type: str,
               params: Optional[Dict[str, Any]] = None,
               idempotency_key: Optional[str] = None) -> Dict[str, Any]:
        """``POST /jobs``: enqueue (or dedupe onto) a job."""
        if job_type not in HANDLERS:
            raise ValueError(f"unknown job type {job_type!r}; known: "
                             f"{sorted(HANDLERS)}")
        validate_payload(job_type, params or {})
        job, created = self.queue.submit(job_type, params,
                                         idempotency_key=idempotency_key)
        return {"job_id": job.job_id, "created": created,
                "status": job.status}

    def jobs(self) -> List[Dict[str, Any]]:
        """``GET /jobs``: every job, submission order, compact rows."""
        return [job.summary() for job in self.queue.jobs()]

    def job(self, job_id: str) -> Dict[str, Any]:
        """``GET /jobs/<id>``: full record minus the run report."""
        found = self._job(job_id)
        data = found.to_dict()
        data.pop("report", None)
        return data

    def job_report(self, job_id: str) -> Dict[str, Any]:
        """``GET /jobs/<id>/report``: the job's own merged RunReport
        plus its dead-letter marker and the service resilience view."""
        found = self._job(job_id)
        return {
            "job_id": found.job_id,
            "type": found.type,
            "status": found.status,
            "attempts": found.attempts,
            "recovered": found.recovered,
            "error": found.error,
            "quarantine": dict(found.quarantine),
            "result": dict(found.result),
            "report": dict(found.report),
            "resilience": self.resilience.summary(),
            "dead_letter_total": len(self.resilience.dead_letter),
        }

    # -- health / telemetry ---------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        """``GET /healthz``: liveness + the load-bearing metrics,
        straight from the service registry."""
        registry = self.obs.registry
        return {
            "status": "ok",
            "run_id": self.obs.run_id,
            "uptime_s": round(time.monotonic() - self._started, 3),
            "workers": self.pool.n_workers,
            "workers_running": self.pool.running,
            "queue": self.queue.counts(),
            "depth": self.queue.depth(),
            "metrics": {
                name: registry.counter(name).value
                for name in ("service.jobs.submitted",
                             "service.jobs.deduped",
                             "service.jobs.claimed",
                             "service.jobs.finished",
                             "service.jobs.failed",
                             "service.jobs.recovered",
                             "service.http.requests")
            },
        }

    def run_report(self) -> Dict[str, Any]:
        """``GET /report``: the service's merged RunReport document."""
        return self.obs.run_report(meta={
            "service_root": str(self.root),
            "workers": self.pool.n_workers,
        }).to_dict()

    # -- store endpoints ------------------------------------------------

    def stores(self) -> List[Dict[str, Any]]:
        """``GET /stores``: every named store with its totals."""
        rows = []
        root = self.context.stores_root
        if root.is_dir():
            for path in sorted(root.iterdir()):
                if not (path / MANIFEST_NAME).exists():
                    continue
                manifest = StoreManifest.load(path)
                rows.append({"name": path.name,
                             "n_entries": manifest.n_entries,
                             "n_shards": len(manifest.shards),
                             "total_bytes": manifest.total_bytes})
        return rows

    def facets(self, store: str) -> Dict[str, Any]:
        """``GET /stores/<name>/facets``: the (layer, complexity)
        histogram from the manifest alone — no shard reads."""
        return self._manifest(store).facets()

    def sample(self, store: str, n: int = 8,
               layer: Optional[int] = None,
               batch_size: int = 64) -> Dict[str, Any]:
        """``GET /stores/<name>/sample``: up to ``n`` rows streamed off
        the shards (store order; only covering shards are opened)."""
        service = self._sampling(store)
        rows: List[Dict[str, Any]] = []
        for batch in service.stream_batches(batch_size=batch_size,
                                            layer=layer):
            for entry in batch:
                rows.append(entry.to_dict())
                if len(rows) >= n:
                    break
            if len(rows) >= n:
                break
        return {"store": store, "layer": layer, "n": len(rows),
                "rows": rows}

    # -- internals ------------------------------------------------------

    def _job(self, job_id: str) -> Job:
        found = self.queue.get(job_id)
        if found is None:
            raise UnknownJobError(job_id)
        return found

    def _store_dir(self, store: str) -> Path:
        path = self.context.store_dir(store)
        if not (path / MANIFEST_NAME).exists():
            raise UnknownStoreError(store)
        return path

    def _manifest(self, store: str) -> StoreManifest:
        return StoreManifest.load(self._store_dir(store))

    def _sampling(self, store: str) -> SamplingService:
        """A cached reader per store, re-opened when the manifest
        changes (a curate job rewriting the store invalidates it).

        Keyed on the manifest *content* digest, not mtime: an atomic
        replace can preserve mtime (os.replace + utime, or a rewrite
        within filesystem timestamp resolution), which would pin a
        stale reader forever."""
        path = self._store_dir(store)
        manifest_bytes = (path / MANIFEST_NAME).read_bytes()
        digest = hashlib.blake2b(manifest_bytes, digest_size=16).hexdigest()
        cached = self._readers.get(store)
        if cached is not None and cached[0] == digest:
            return cached[1]
        reader = StoreReader(path, cache=ResultCache(), obs=self.obs)
        service = SamplingService(reader)
        self._readers[store] = (digest, service)
        return service
