"""The persistent job queue: event-sourced on the checkpoint journal.

Queue state is never stored directly — it is the *fold* of an
append-only event journal (``submit`` / ``start`` / ``finish`` /
``fail`` / ``requeue`` / ``shutdown``), each event written through
:class:`repro.resilience.Checkpointer`'s digest-prefixed atomic entry
format.  That buys the queue the journal's crash contract for free:

* a kill at any instant leaves either a fully verified event or no
  event — never a torn one;
* a torn/corrupt entry *truncates* the journal on replay (everything
  after it is untrusted), so the worst a crash can do is forget recent
  events — and every event is safe to forget: an unrecorded ``start``
  re-runs an idempotent job, an unrecorded ``finish`` re-runs a job
  whose outputs are content-addressed and land byte-identical.

Reopening the queue replays the journal and then runs *recovery*: any
job that has a ``start`` but no terminal event was in flight when its
worker died, and is re-queued (bounded by ``max_recoveries``, after
which it is failed as a crash-looper rather than poisoning the pool
forever).  Exactly-once *submission* is enforced here too: an
idempotency key maps to one deterministic job id for all time, so N
racing submissions of the same key journal one ``submit`` event and
return the same job.
"""

from __future__ import annotations

import threading
from collections import deque
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..obs import Observability, resolve
from ..resilience.checkpoint import Checkpointer
from .jobs import Job, auto_key, job_id_for

PathLike = Union[str, Path]

#: Signature binding a journal directory to this queue format; a
#: directory journaled by an incompatible future format is wiped, not
#: misread.
QUEUE_SIGNATURE = "pyranet/job-queue/v1"

#: Re-queue a crashed job at most this many times before failing it.
DEFAULT_MAX_RECOVERIES = 3


class JobQueue:
    """Crash-safe FIFO of :class:`~repro.service.jobs.Job` records.

    Args:
        directory: journal home; reopening the same directory resumes
            the same queue (killed workers' jobs are re-queued).
        obs: observability handle; transitions maintain the
            ``service.queue.depth`` gauge, ``service.jobs.*`` counters
            and the ``service.job.latency_s`` histogram.
        durable: fsync journal entries on commit (the service default;
            benchmarks may trade durability for submit throughput).
        max_recoveries: crash-recovery attempts per job before it is
            failed as a crash-looper.
    """

    def __init__(self, directory: PathLike, obs: Optional[Observability] = None,
                 durable: bool = True,
                 max_recoveries: int = DEFAULT_MAX_RECOVERIES) -> None:
        self.directory = Path(directory)
        self.obs = resolve(obs)
        self.max_recoveries = max_recoveries
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._by_key: Dict[Tuple[str, str], str] = {}
        self._queued: "deque[str]" = deque()
        self._seq = 0
        self._events = 0
        self._ckpt = Checkpointer(self.directory, durable=durable)
        self._ckpt.begin(QUEUE_SIGNATURE)
        # Drop any torn tail now: replay stops at the first corrupt
        # entry, and events appended *after* one would otherwise sit
        # beyond the truncation point and never replay.
        self._ckpt.prune_unverified()
        self._replay()
        self._recover()
        self._set_depth()

    # -- journal replay / recovery --------------------------------------

    def _replay(self) -> None:
        """Fold the verified journal into in-memory queue state."""
        for entry in self._ckpt.entries():
            if entry.get("kind") != "stage":
                continue
            self._events += 1
            event = entry.get("name")
            payload = entry.get("payload") or {}
            if event == "submit":
                job = Job.from_dict(payload["job"])
                self._jobs[job.job_id] = job
                self._by_key[(job.type, job.idempotency_key)] = job.job_id
                self._seq = max(self._seq, job.seq + 1)
            elif event == "start":
                job = self._jobs.get(payload.get("job_id", ""))
                if job is not None:
                    job.status = "running"
                    job.attempts = payload.get("attempt", job.attempts + 1)
                    job.worker = payload.get("worker", "")
            elif event == "requeue":
                job = self._jobs.get(payload.get("job_id", ""))
                if job is not None:
                    job.status = "queued"
                    job.recovered = payload.get("recovered", job.recovered)
            elif event == "finish":
                job = self._jobs.get(payload.get("job_id", ""))
                if job is not None:
                    job.status = "done"
                    job.result = dict(payload.get("result", {}))
                    job.report = dict(payload.get("report", {}))
                    job.wall_s = payload.get("wall_s", 0.0)
            elif event == "fail":
                job = self._jobs.get(payload.get("job_id", ""))
                if job is not None:
                    job.status = "failed"
                    job.error = payload.get("error", "")
                    job.quarantine = dict(payload.get("quarantine", {}))
                    job.report = dict(payload.get("report", {}))
                    job.wall_s = payload.get("wall_s", 0.0)
            # "shutdown" events are informational markers only.
        for job in sorted(self._jobs.values(), key=lambda j: j.seq):
            if job.status == "queued":
                self._queued.append(job.job_id)

    def _recover(self) -> None:
        """Re-queue (or crash-loop-fail) jobs a dead worker left running."""
        for job in sorted(self._jobs.values(), key=lambda j: j.seq):
            if job.status != "running":
                continue
            if job.recovered >= self.max_recoveries:
                job.status = "failed"
                job.error = (f"crash-looped: worker died "
                             f"{job.recovered + 1} times")
                self._append("fail", {"job_id": job.job_id,
                                      "error": job.error,
                                      "quarantine": {}, "report": {},
                                      "wall_s": 0.0})
                self.obs.counter("service.jobs.failed").inc()
                continue
            job.status = "queued"
            job.recovered += 1
            self._append("requeue", {"job_id": job.job_id,
                                     "recovered": job.recovered})
            # Recovered jobs re-enter ahead of later submissions, in
            # their original order (they were claimed earliest).
            self._queued.appendleft(job.job_id)
            self.obs.counter("service.jobs.recovered").inc()

    # -- the write side -------------------------------------------------

    def submit(self, job_type: str, params: Optional[Dict[str, Any]] = None,
               idempotency_key: Optional[str] = None) -> Tuple[Job, bool]:
        """Enqueue one job; returns ``(job, created)``.

        A submission whose (type, idempotency key) already names a job
        — queued, running, or terminal — returns that job with
        ``created=False`` and journals nothing: exactly-once admission
        under any number of racing submitters.
        """
        params = dict(params or {})
        with self._lock:
            key = (idempotency_key if idempotency_key is not None
                   else auto_key(self._seq, job_type, params))
            existing = self._by_key.get((job_type, key))
            if existing is not None:
                self.obs.counter("service.jobs.deduped").inc()
                return self._jobs[existing], False
            job = Job(job_id=job_id_for(job_type, key), type=job_type,
                      params=params, idempotency_key=key, seq=self._seq)
            self._seq += 1
            self._jobs[job.job_id] = job
            self._by_key[(job_type, key)] = job.job_id
            self._queued.append(job.job_id)
            self._append("submit", {"job": job.to_dict()})
            self.obs.counter("service.jobs.submitted").inc()
            self._set_depth()
            return job, True

    def claim(self, worker: str = "") -> Optional[Job]:
        """Pop the next queued job and mark it running (journaled)."""
        with self._lock:
            if not self._queued:
                return None
            job = self._jobs[self._queued.popleft()]
            job.status = "running"
            job.attempts += 1
            job.worker = worker
            self._append("start", {"job_id": job.job_id, "worker": worker,
                                   "attempt": job.attempts})
            self.obs.counter("service.jobs.claimed").inc()
            self._set_depth()
            return job

    def finish(self, job_id: str, result: Optional[Dict[str, Any]] = None,
               report: Optional[Dict[str, Any]] = None,
               wall_s: float = 0.0) -> Job:
        with self._lock:
            job = self._require(job_id)
            job.status = "done"
            job.result = dict(result or {})
            job.report = dict(report or {})
            job.wall_s = wall_s
            self._append("finish", {"job_id": job_id, "result": job.result,
                                    "report": job.report, "wall_s": wall_s})
            self.obs.counter("service.jobs.finished").inc()
            self.obs.histogram("service.job.latency_s").observe(wall_s)
            self._set_depth()
            return job

    def fail(self, job_id: str, error: str,
             quarantine: Optional[Dict[str, Any]] = None,
             report: Optional[Dict[str, Any]] = None,
             wall_s: float = 0.0) -> Job:
        with self._lock:
            job = self._require(job_id)
            job.status = "failed"
            job.error = error
            job.quarantine = dict(quarantine or {})
            job.report = dict(report or {})
            job.wall_s = wall_s
            self._append("fail", {"job_id": job_id, "error": error,
                                  "quarantine": job.quarantine,
                                  "report": job.report, "wall_s": wall_s})
            self.obs.counter("service.jobs.failed").inc()
            self._set_depth()
            return job

    def journal_shutdown(self, reason: str = "graceful") -> None:
        """Append a shutdown marker so the journal records a clean exit
        (replay ignores it; operators reading the journal do not)."""
        with self._lock:
            self._append("shutdown", {"reason": reason,
                                      "counts": self._counts()})

    # -- the read side --------------------------------------------------

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        """Every known job, in submission order."""
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.seq)

    def depth(self) -> int:
        with self._lock:
            return len(self._queued)

    def counts(self) -> Dict[str, int]:
        """status -> job count (all four statuses always present)."""
        with self._lock:
            return self._counts()

    # -- internals ------------------------------------------------------

    def _counts(self) -> Dict[str, int]:
        counts = {"queued": 0, "running": 0, "done": 0, "failed": 0}
        for job in self._jobs.values():
            counts[job.status] = counts.get(job.status, 0) + 1
        return counts

    def _require(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise KeyError(f"unknown job {job_id!r}")
        return job

    def _append(self, event: str, payload: Dict[str, Any]) -> None:
        self._ckpt.record_stage(self._events, event, payload)
        self._events += 1

    def _set_depth(self) -> None:
        self.obs.gauge("service.queue.depth").set(len(self._queued))
