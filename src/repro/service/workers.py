"""The worker pool: drains the queue, survives its jobs.

Execution goes through the same machinery stage records use — each
handler call is wrapped by a :class:`repro.resilience.StageShield`, so
a job that raises is retried under the pool's policy and, exhausted,
comes back as a :class:`~repro.resilience.Quarantined` marker instead
of an exception.  The marker fails *that job* into the dead-letter
ledger (surfaced by ``/jobs/<id>/report``) and the pool keeps draining
— one poisoned job never takes the pool down.

The one thing allowed to kill a worker is
:class:`~repro.resilience.SimulatedCrash` (a ``BaseException``, the
fault-injection model of ``kill -9``): it tears through the shield and
the worker loop by design, leaving the job ``running`` in the journal.
The next queue open re-queues it, and the job's own checkpoint journal
makes the re-run resume byte-identical.

Two draining modes:

* :meth:`WorkerPool.run_pending` — synchronous batch drain through
  :meth:`ParallelExecutor.map` (tests, embedded callers);
* :meth:`WorkerPool.start` / :meth:`WorkerPool.stop` — long-running
  named worker threads for the HTTP service; ``stop()`` is graceful,
  letting each worker finish its in-flight job before exiting.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional

from ..obs import Observability, resolve
from ..pipeline import ParallelExecutor
from ..resilience import Resilience
from ..resilience.retry import RetryPolicy
from ..resilience.runtime import Quarantined
from .handlers import HANDLERS, JobContext
from .jobs import Job
from .queue import JobQueue

#: Default job-level retry: one retry for transient failures, no
#: backoff theatrics — a job re-run is expensive, and resumable jobs
#: replay their checkpoints anyway.
DEFAULT_JOB_RETRY = RetryPolicy(max_attempts=2, base_delay_s=0.01,
                                max_delay_s=0.1)

#: Shield site jobs execute under (dead-letter entries key on it).
JOB_SITE = "service.job"


def default_resilience(obs: Optional[Observability] = None) -> Resilience:
    """The pool's default runtime: job-level retry + quarantine, no
    circuit breakers (jobs are heterogeneous; one bad job type must not
    open a breaker over the whole pool)."""
    return Resilience(retry=DEFAULT_JOB_RETRY, breaker=None, obs=obs)


class WorkerPool:
    """N workers draining one :class:`JobQueue`.

    Args:
        queue: the shared persistent queue.
        context: on-disk layout + fault plan handed to every handler.
        n_workers: worker thread count (and the batch width of
            :meth:`run_pending`).
        resilience: job-level guard policy; defaults to
            :func:`default_resilience`.
        obs: service-level observability (worker gauges, job spans).
        poll_interval: idle sleep between queue polls in thread mode.
    """

    def __init__(self, queue: JobQueue, context: JobContext,
                 n_workers: int = 2,
                 resilience: Optional[Resilience] = None,
                 obs: Optional[Observability] = None,
                 poll_interval: float = 0.05) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be at least 1")
        self.queue = queue
        self.context = context
        self.n_workers = n_workers
        self.obs = resolve(obs)
        self.resilience = (resilience if resilience is not None
                           else default_resilience(self.obs))
        self.poll_interval = poll_interval
        self.executor = ParallelExecutor(mode="thread",
                                         max_workers=n_workers)
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()
        self._drain_queue = False

    # -- synchronous drain ----------------------------------------------

    def run_pending(self, max_jobs: Optional[int] = None) -> int:
        """Drain queued jobs now; returns how many were executed.

        Claims up to ``n_workers`` jobs at a time and maps the batch
        through the executor with the shield attached — quarantined
        jobs are failed into the queue, the rest committed, and the
        next batch claimed, until the queue is empty (or ``max_jobs``
        is reached).
        """
        executed = 0
        while max_jobs is None or executed < max_jobs:
            batch: List[Job] = []
            limit = self.n_workers
            if max_jobs is not None:
                limit = min(limit, max_jobs - executed)
            while len(batch) < limit:
                job = self.queue.claim(worker="run_pending")
                if job is None:
                    break
                batch.append(job)
            if not batch:
                break
            shield = self.resilience.shield(JOB_SITE, mode="thread")
            self.executor.shield = shield
            try:
                outcomes = self.executor.map(self._run_handler, batch)
            finally:
                self.executor.shield = None
            for job, outcome in zip(batch, outcomes):
                self._commit(job, outcome)
            executed += len(batch)
        return executed

    # -- long-running workers -------------------------------------------

    def start(self) -> None:
        """Spawn the worker threads (idempotent)."""
        if self._threads:
            return
        self._stop.clear()
        self.obs.gauge("service.workers").set(self.n_workers)
        for index in range(self.n_workers):
            thread = threading.Thread(
                target=self._loop, args=(f"worker-{index}",),
                name=f"pyranet-worker-{index}", daemon=True)
            thread.start()
            self._threads.append(thread)

    def stop(self, drain_queue: bool = False,
             timeout: Optional[float] = None) -> None:
        """Graceful shutdown: every worker finishes its in-flight job
        (and, with ``drain_queue=True``, keeps claiming until the queue
        is empty) before exiting."""
        self._drain_queue = drain_queue
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads = []
        self.obs.gauge("service.workers").set(0)

    @property
    def running(self) -> bool:
        return any(thread.is_alive() for thread in self._threads)

    def _loop(self, name: str) -> None:
        shield = self.resilience.shield(JOB_SITE, mode="thread")
        while True:
            job = self.queue.claim(worker=name)
            if job is None:
                if self._stop.is_set():
                    return
                time.sleep(self.poll_interval)
                continue
            self._execute_one(job, shield)
            if self._stop.is_set() and not self._drain_queue:
                return

    def _execute_one(self, job: Job, shield: Any) -> None:
        """One job through the shield (the thread-mode path).  A
        SimulatedCrash tears straight through — that is the point."""
        if shield is None:
            try:
                outcome: Any = self._run_handler(job)
            except Exception as exc:
                self.queue.fail(job.job_id,
                                error=f"{type(exc).__name__}: {exc}")
                return
            self._commit(job, outcome)
            return
        guarded = shield.wrap(self._run_handler)
        outcome = shield.settle([guarded(job)])[0]
        self._commit(job, outcome)

    # -- the job body ---------------------------------------------------

    def _run_handler(self, job: Job) -> Dict[str, Any]:
        """Execute one job under a fresh per-job observability handle;
        the merged run report ships back with the result."""
        handler = HANDLERS.get(job.type)
        if handler is None:
            raise ValueError(f"unknown job type {job.type!r}; known: "
                             f"{sorted(HANDLERS)}")
        started = time.perf_counter()
        job_obs = Observability()
        with self.obs.span("service.job.execute", job_id=job.job_id,
                           type=job.type, attempt=job.attempts):
            with job_obs.span("service.job.run", job_id=job.job_id,
                              type=job.type, attempt=job.attempts):
                result = handler(job, self.context, job_obs)
        report = job_obs.run_report(meta={
            "job_id": job.job_id, "type": job.type,
            "attempt": job.attempts}).to_dict()
        return {"result": result, "report": report,
                "wall_s": time.perf_counter() - started}

    def _commit(self, job: Job, outcome: Any) -> None:
        """Settle one executed job into the queue journal."""
        if isinstance(outcome, Quarantined):
            self.obs.counter("service.jobs.quarantined").inc()
            self.queue.fail(
                job.job_id,
                error=f"{outcome.error_type}: {outcome.error}",
                quarantine=outcome.to_dict())
            return
        self.queue.finish(job.job_id, result=outcome["result"],
                          report=outcome["report"],
                          wall_s=outcome["wall_s"])
