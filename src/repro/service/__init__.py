"""``repro.service``: PyraNet as a long-running job service.

An API server + persistent job queue + worker pool that turns every
one-shot workload — curation, fine-tuning, evaluation — into a job
type submitted over HTTP and drained by resumable, idempotent workers:

* :class:`JobQueue` — an event-sourced FIFO journaled through
  :class:`repro.resilience.Checkpointer` (atomic digest-verified
  entries; reopening a queue directory re-queues jobs a dead worker
  left running);
* :mod:`~repro.service.handlers` — thin adapters over
  ``build_pyranet`` / ``PyraNet.finetune`` / ``PyraNet.evaluate``;
  every job owns a checkpoint journal, so a killed worker's job
  *resumes* byte-identical;
* :class:`WorkerPool` — drains the queue through
  :class:`~repro.pipeline.ParallelExecutor` under a
  :class:`~repro.resilience.StageShield`: a poisoned job is
  quarantined into the dead-letter ledger, never the pool's problem;
* :class:`PyraNetService` — the composition root (queue + workers +
  named stores on one directory) whose methods *are* the endpoints;
* :mod:`~repro.service.http` / :class:`ServiceClient` — the stdlib
  HTTP codec over it, with per-request spans and latency histograms.

See ``examples/serve.py`` for the runnable quickstart.
"""

from .core import PyraNetService, UnknownJobError, UnknownStoreError
from .client import ServiceClient, ServiceError
from .handlers import (
    HANDLERS,
    JobContext,
    dataset_digest,
    register_handler,
)
from .http import ServiceHTTPServer, serve, serve_in_thread
from .jobs import (
    Job,
    JobType,
    get_job_type,
    job_id_for,
    job_type_names,
    params_digest,
    register_job_type,
    unregister_job_type,
    validate_payload,
)
from .queue import JobQueue, QUEUE_SIGNATURE
from .workers import WorkerPool, default_resilience

__all__ = [
    "HANDLERS",
    "Job",
    "JobContext",
    "JobQueue",
    "JobType",
    "PyraNetService",
    "QUEUE_SIGNATURE",
    "ServiceClient",
    "ServiceError",
    "ServiceHTTPServer",
    "UnknownJobError",
    "UnknownStoreError",
    "WorkerPool",
    "dataset_digest",
    "default_resilience",
    "get_job_type",
    "job_id_for",
    "job_type_names",
    "params_digest",
    "register_handler",
    "register_job_type",
    "serve",
    "serve_in_thread",
    "unregister_job_type",
    "validate_payload",
]
