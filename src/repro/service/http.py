"""The HTTP face of the service: a thin JSON codec over
:class:`~repro.service.core.PyraNetService`.

Stdlib only (``http.server.ThreadingHTTPServer``): one thread per
request, all real state behind the service object's locks.  Routes::

    GET  /healthz                      liveness + queue/metric snapshot
    GET  /report                       the service's merged RunReport
    GET  /jobs                         job listing (submission order)
    POST /jobs                         submit {"type", "params",
                                       "idempotency_key"?} -> 202
    GET  /jobs/<id>                    full job record
    GET  /jobs/<id>/report             per-job RunReport + dead-letter
    GET  /stores                       named stores
    GET  /stores/<name>/facets         (layer, complexity) histogram
    GET  /stores/<name>/sample         ?n=&layer=&batch_size=
    POST /shutdown                     graceful drain + exit

Every request runs inside a ``service.http.request`` span and lands in
``service.http.requests`` / ``service.http.<route>`` counters and the
``service.http.latency_s`` histogram, so HTTP traffic shows up in the
same RunReport as the jobs it caused.
"""

from __future__ import annotations

import json
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from .core import PyraNetService, UnknownJobError, UnknownStoreError

_JOB = re.compile(r"^/jobs/([A-Za-z0-9_-]+)$")
_JOB_REPORT = re.compile(r"^/jobs/([A-Za-z0-9_-]+)/report$")
_STORE_FACETS = re.compile(r"^/stores/([A-Za-z0-9._-]+)/facets$")
_STORE_SAMPLE = re.compile(r"^/stores/([A-Za-z0-9._-]+)/sample$")

#: Submission bodies larger than this are rejected outright.
MAX_BODY_BYTES = 1 << 20


class ServiceHTTPServer(ThreadingHTTPServer):
    """The bound server; ``.port`` is the actual listening port (use
    ``port=0`` to let the OS pick)."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int],
                 service: PyraNetService, quiet: bool = True) -> None:
        self.service = service
        self.quiet = quiet
        super().__init__(address, _Handler)

    @property
    def port(self) -> int:
        return self.server_address[1]


class _Handler(BaseHTTPRequestHandler):
    server: ServiceHTTPServer

    # -- request entry points -------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (stdlib casing)
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        service = self.server.service
        started = time.perf_counter()
        parsed = urlparse(self.path)
        route = "<unmatched>"
        try:
            with service.obs.span("service.http.request", method=method,
                                  path=parsed.path):
                route, status, payload = self._route(
                    method, parsed.path, parse_qs(parsed.query))
        except UnknownJobError as exc:
            status, payload = 404, {"error": f"unknown job {exc.args[0]!r}"}
        except UnknownStoreError as exc:
            status, payload = 404, {"error": f"unknown store {exc.args[0]!r}"}
        except ValueError as exc:
            status, payload = 400, {"error": str(exc)}
        except Exception as exc:  # a handler bug must not kill the server
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        service.obs.counter("service.http.requests").inc()
        service.obs.counter(f"service.http.{method} {route}").inc()
        if status >= 400:
            service.obs.counter("service.http.errors").inc()
        service.obs.histogram("service.http.latency_s").observe(
            time.perf_counter() - started)
        self._send(status, payload)

    # -- routing --------------------------------------------------------

    def _route(self, method: str, path: str,
               query: Dict[str, Any]) -> Tuple[str, int, Dict[str, Any]]:
        """Returns ``(route template, status, payload)``."""
        service = self.server.service
        if method == "GET":
            if path == "/healthz":
                return "/healthz", 200, service.healthz()
            if path == "/report":
                return "/report", 200, service.run_report()
            if path == "/jobs":
                return "/jobs", 200, {"jobs": service.jobs()}
            match = _JOB_REPORT.match(path)
            if match:
                return ("/jobs/<id>/report", 200,
                        service.job_report(match.group(1)))
            match = _JOB.match(path)
            if match:
                return "/jobs/<id>", 200, service.job(match.group(1))
            if path == "/stores":
                return "/stores", 200, {"stores": service.stores()}
            match = _STORE_FACETS.match(path)
            if match:
                return ("/stores/<name>/facets", 200,
                        service.facets(match.group(1)))
            match = _STORE_SAMPLE.match(path)
            if match:
                return ("/stores/<name>/sample", 200,
                        service.sample(
                            match.group(1),
                            n=_int_arg(query, "n", 8),
                            layer=_opt_int_arg(query, "layer"),
                            batch_size=_int_arg(query, "batch_size", 64)))
        elif method == "POST":
            if path == "/jobs":
                body = self._read_json()
                job_type = body.get("type")
                if not isinstance(job_type, str) or not job_type:
                    raise ValueError("body needs a string 'type'")
                params = body.get("params") or {}
                if not isinstance(params, dict):
                    raise ValueError("'params' must be an object")
                key = body.get("idempotency_key")
                if key is not None and not isinstance(key, str):
                    raise ValueError("'idempotency_key' must be a string")
                return ("/jobs", 202,
                        service.submit(job_type, params,
                                       idempotency_key=key))
            if path == "/shutdown":
                # Stop serving from a helper thread so this response
                # can still be written before the listener dies.
                threading.Thread(target=self._shutdown,
                                 daemon=True).start()
                return "/shutdown", 202, {"status": "stopping"}
        return "<unmatched>", 404, {"error": f"no route for "
                                             f"{method} {path}"}

    def _shutdown(self) -> None:
        self.server.service.stop(reason="http-shutdown")
        self.server.shutdown()

    # -- plumbing -------------------------------------------------------

    def _read_json(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise ValueError(f"body too large ({length} bytes)")
        blob = self.rfile.read(length) if length else b""
        if not blob:
            raise ValueError("empty body (want a JSON object)")
        try:
            body = json.loads(blob.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValueError(f"body is not valid JSON: {exc}")
        if not isinstance(body, dict):
            raise ValueError("body must be a JSON object")
        return body

    def _send(self, status: int, payload: Dict[str, Any]) -> None:
        blob = json.dumps(payload, sort_keys=True).encode("utf-8")
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(blob)))
            self.end_headers()
            self.wfile.write(blob)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response

    def log_message(self, format: str, *args: Any) -> None:
        if not self.server.quiet:
            super().log_message(format, *args)


def serve(service: PyraNetService, host: str = "127.0.0.1",
          port: int = 0, quiet: bool = True) -> ServiceHTTPServer:
    """Bind a server for ``service`` (workers started; listener not yet
    serving — call ``serve_forever()`` or drive it from a thread)."""
    server = ServiceHTTPServer((host, port), service, quiet=quiet)
    service.start()
    return server


def serve_in_thread(
    service: PyraNetService, host: str = "127.0.0.1", port: int = 0,
) -> Tuple[ServiceHTTPServer, threading.Thread]:
    """Convenience for tests/benchmarks: a served instance on a
    background thread.  Returns ``(server, thread)``; stop with
    ``server.shutdown()`` + ``service.stop()``."""
    server = serve(service, host=host, port=port)
    thread = threading.Thread(target=server.serve_forever,
                              name="pyranet-http", daemon=True)
    thread.start()
    return server, thread


def _int_arg(query: Dict[str, Any], name: str, default: int) -> int:
    values = query.get(name)
    if not values:
        return default
    try:
        return int(values[0])
    except ValueError:
        raise ValueError(f"query arg {name!r} must be an integer")


def _opt_int_arg(query: Dict[str, Any], name: str) -> Optional[int]:
    values = query.get(name)
    if not values:
        return None
    try:
        return int(values[0])
    except ValueError:
        raise ValueError(f"query arg {name!r} must be an integer")
