"""Job records: the unit of work the service queues and executes.

A :class:`Job` is a plain, JSON-able record — type name, parameter
dict, idempotency key, lifecycle status — and nothing else.  All
execution machinery lives in :mod:`~repro.service.handlers` (what a
job *does*) and :mod:`~repro.service.workers` (how it runs); the job
record itself must survive pickling into the queue journal and JSON
encoding over HTTP unchanged.

Identity and idempotency
------------------------

``job_id`` derives from the job type and idempotency key alone
(:func:`job_id_for`), so the same logical submission names the same
job in every process that ever touches the queue — the property the
exactly-once submission guarantee and crash-recovery both rest on.
Submissions without an explicit key get a unique auto-key derived from
the submission sequence number, i.e. *no* dedup: two identical
anonymous submissions are two jobs.

The job-type registry
---------------------

What a type name *means* — which runner executes it and what its
payload looks like — lives here too, in one
:func:`register_job_type` registry.  Workers, the submit path, and
the HTTP surface all resolve types through it, so a new workload
plugs in with one call instead of edits across three modules.  The
:data:`~repro.service.handlers.HANDLERS` mapping in
:mod:`~repro.service.handlers` remains as a mutable name→runner view
over this registry for existing callers.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

#: Lifecycle states a job moves through (terminal: ``done``/``failed``).
JOB_STATUSES = ("queued", "running", "done", "failed")

_ID_DIGEST_SIZE = 8


def params_digest(params: Dict[str, Any]) -> str:
    """Stable digest of a parameter dict (sorted-key JSON)."""
    blob = json.dumps(params, sort_keys=True, ensure_ascii=False,
                      default=repr)
    return hashlib.blake2b(blob.encode("utf-8"),
                           digest_size=_ID_DIGEST_SIZE).hexdigest()


def job_id_for(job_type: str, idempotency_key: str) -> str:
    """The deterministic job id for one (type, idempotency key) pair."""
    digest = hashlib.blake2b(
        f"{job_type}|{idempotency_key}".encode("utf-8"),
        digest_size=_ID_DIGEST_SIZE).hexdigest()
    return f"job-{digest}"


@dataclass
class Job:
    """One queued unit of work.

    Attributes:
        job_id: deterministic id (see :func:`job_id_for`).
        type: handler name (``curate`` / ``finetune`` / ``eval`` /
            ``probe``).
        params: handler parameters, JSON-able.
        idempotency_key: submission dedup key; resubmitting the same
            (type, key) returns this job instead of enqueueing again.
        seq: submission order, assigned by the queue.
        status: one of :data:`JOB_STATUSES`.
        attempts: execution attempts so far (recovered runs increment).
        worker: name of the worker that last claimed the job.
        error: terminal error text (``failed`` only).
        quarantine: the dead-letter marker dict for a quarantined job
            (:meth:`repro.resilience.Quarantined.to_dict` shape).
        result: handler summary dict (``done`` only).
        report: the job execution's own merged
            :class:`~repro.obs.RunReport` as a dict — what
            ``/jobs/<id>/report`` serves.
        wall_s: wall time of the finishing attempt.
        recovered: times the job was re-queued after a worker death.
    """

    job_id: str
    type: str
    params: Dict[str, Any] = field(default_factory=dict)
    idempotency_key: str = ""
    seq: int = 0
    status: str = "queued"
    attempts: int = 0
    worker: str = ""
    error: str = ""
    quarantine: Dict[str, Any] = field(default_factory=dict)
    result: Dict[str, Any] = field(default_factory=dict)
    report: Dict[str, Any] = field(default_factory=dict)
    wall_s: float = 0.0
    recovered: int = 0

    def summary(self) -> Dict[str, Any]:
        """The compact listing row (``GET /jobs``): no report payload."""
        return {
            "job_id": self.job_id,
            "type": self.type,
            "status": self.status,
            "seq": self.seq,
            "attempts": self.attempts,
            "recovered": self.recovered,
            "error": self.error,
        }

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "type": self.type,
            "params": dict(self.params),
            "idempotency_key": self.idempotency_key,
            "seq": self.seq,
            "status": self.status,
            "attempts": self.attempts,
            "worker": self.worker,
            "error": self.error,
            "quarantine": dict(self.quarantine),
            "result": dict(self.result),
            "report": dict(self.report),
            "wall_s": self.wall_s,
            "recovered": self.recovered,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Job":
        return cls(
            job_id=data["job_id"],
            type=data["type"],
            params=dict(data.get("params", {})),
            idempotency_key=data.get("idempotency_key", ""),
            seq=data.get("seq", 0),
            status=data.get("status", "queued"),
            attempts=data.get("attempts", 0),
            worker=data.get("worker", ""),
            error=data.get("error", ""),
            quarantine=dict(data.get("quarantine", {})),
            result=dict(data.get("result", {})),
            report=dict(data.get("report", {})),
            wall_s=data.get("wall_s", 0.0),
            recovered=data.get("recovered", 0),
        )


def auto_key(seq: int, job_type: str, params: Dict[str, Any]) -> str:
    """The unique key for a submission that brought none.

    Includes ``seq`` so identical anonymous submissions stay distinct
    jobs — idempotent collapsing is opt-in via an explicit key.
    """
    return f"auto:{seq}:{params_digest(params)}:{job_type}"


# -- the job-type registry ----------------------------------------------

#: Python types a payload-schema ``type`` name maps onto.  ``float``
#: accepts ints (the JSON decoder hands ``2`` for ``2.0``); ``int``
#: rejects bools (a submitted ``true`` is never a count).
_SCHEMA_TYPES: Dict[str, tuple] = {
    "int": (int,),
    "float": (int, float),
    "str": (str,),
    "bool": (bool,),
    "dict": (dict,),
    "list": (list, tuple),
}


@dataclass(frozen=True)
class JobType:
    """One registered job type: its runner plus the payload contract.

    ``payload_schema`` maps parameter names to
    ``{"type": <name>, "required": bool, "doc": str}`` rows (all keys
    optional).  Validation is deliberately permissive — undeclared
    parameters pass through untouched so registering a schema for an
    existing type cannot reject payloads it previously accepted.
    """

    name: str
    runner: Callable[..., Dict[str, Any]]
    payload_schema: Dict[str, Any] = field(default_factory=dict)

    def validate(self, params: Dict[str, Any]) -> None:
        """Raise ``ValueError`` on a payload that breaks the schema."""
        for key, spec in self.payload_schema.items():
            if key not in params:
                if spec.get("required"):
                    raise ValueError(
                        f"{self.name} job needs params[{key!r}]")
                continue
            want = spec.get("type")
            if want is None:
                continue
            accepted = _SCHEMA_TYPES.get(want)
            if accepted is None:
                continue
            value = params[key]
            if isinstance(value, bool) and want != "bool":
                raise ValueError(
                    f"{self.name} job params[{key!r}] wants {want}, "
                    f"got bool")
            if not isinstance(value, accepted):
                raise ValueError(
                    f"{self.name} job params[{key!r}] wants {want}, "
                    f"got {type(value).__name__}")


_JOB_TYPES: Dict[str, JobType] = {}


def register_job_type(
    name: str,
    runner: Callable[..., Dict[str, Any]],
    payload_schema: Optional[Dict[str, Any]] = None,
) -> JobType:
    """Make ``name`` submittable: bind its runner and payload schema.

    Re-registering a name replaces the previous binding (tests swap
    runners in and out); returns the registered :class:`JobType`.
    """
    job_type = JobType(name=name, runner=runner,
                       payload_schema=dict(payload_schema or {}))
    _JOB_TYPES[name] = job_type
    return job_type


def unregister_job_type(name: str) -> JobType:
    """Remove ``name`` from the registry (raises ``KeyError`` if
    absent); returns the removed binding."""
    return _JOB_TYPES.pop(name)


def get_job_type(name: str) -> Optional[JobType]:
    """The registered :class:`JobType`, or ``None``."""
    return _JOB_TYPES.get(name)


def job_type_names() -> List[str]:
    """Registered type names, sorted."""
    return sorted(_JOB_TYPES)


def validate_payload(name: str, params: Dict[str, Any]) -> None:
    """Validate ``params`` against ``name``'s registered schema.

    Unknown types raise the same ``unknown job type`` error the
    submit path raises, with the known names listed.
    """
    job_type = _JOB_TYPES.get(name)
    if job_type is None:
        raise ValueError(f"unknown job type {name!r}; known: "
                         f"{job_type_names()}")
    job_type.validate(params)
