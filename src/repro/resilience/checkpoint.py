"""Crash-safe progress journaling for staged pipeline runs.

A :class:`Checkpointer` owns a directory of journal entries, one file
per committed unit of work (``journal-000042.ckpt``).  Each entry is a
pickled payload prefixed with its blake2b digest and written via
:func:`~.atomic.atomic_write_bytes`, so a kill at any instant leaves
either a fully verifiable entry or no entry at all — never a torn one.

The engine journals at *batch* granularity: a per-record stage commits
every ``interval`` records, a batch stage commits once.  On resume the
engine replays journaled batches instead of recomputing them, then
continues live from the first uncommitted batch — which is what makes
a killed run byte-identical to an uninterrupted one.

A journal is bound to a *run signature* (:func:`run_signature`, a
digest of the input records, the stage list, and any extra parameters
such as seeds).  ``begin()`` with a different signature wipes the stale
journal rather than resuming someone else's run.
"""

from __future__ import annotations

import hashlib
import pickle
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from .atomic import atomic_write_bytes
from .errors import CheckpointError

PathLike = Union[str, Path]

_DIGEST_SIZE = 16
_SUFFIX = ".ckpt"
_PREFIX = "journal-"

_MEMORY_ADDRESS = re.compile(r" at 0x[0-9a-fA-F]+")


def _stable_blob(value: Any) -> bytes:
    """``value`` as bytes, stable across processes.

    Pickle when possible; unpicklable values (specs holding lambdas,
    local classes) fall back to their ``repr`` with memory addresses
    scrubbed, so the same logical value signs identically in the run
    that wrote the journal and the run that resumes it."""
    try:
        return pickle.dumps(value, protocol=4)
    except Exception:
        return _MEMORY_ADDRESS.sub("", repr(value)).encode("utf-8",
                                                           "replace")


def run_signature(inputs: Iterable[Any], stages: Sequence[str],
                  extra: Any = None) -> str:
    """Digest identifying one logical run: same inputs + same stage
    list + same parameters → same signature, so a journal can only ever
    resume the run that wrote it."""
    digest = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    for value in inputs:
        blob = _stable_blob(value)
        digest.update(len(blob).to_bytes(8, "little"))
        digest.update(blob)
    for section, value in (("stages", list(stages)), ("extra", extra)):
        digest.update(f"|{section}|".encode("ascii"))
        digest.update(_stable_blob(value))
    return digest.hexdigest()


@dataclass
class ResumeState:
    """What a journal says already happened.

    ``stages`` maps stage index -> journaled whole-stage payload;
    ``batches`` maps stage index -> batch index -> payload for stages
    that were interrupted mid-flight.
    """

    signature: str = ""
    stages: Dict[int, Any] = field(default_factory=dict)
    batches: Dict[int, Dict[int, Any]] = field(default_factory=dict)
    finished: bool = False
    fresh: bool = True

    def stage_result(self, index: int) -> Optional[Any]:
        return self.stages.get(index)

    def batch_result(self, index: int, batch: int) -> Optional[Any]:
        return self.batches.get(index, {}).get(batch)

    def completed_batches(self, index: int) -> int:
        """Contiguous committed-batch count for one stage (replay stops
        at the first gap — later stray entries are recomputed)."""
        done = self.batches.get(index, {})
        count = 0
        while count in done:
            count += 1
        return count


class Checkpointer:
    """Journal pipeline progress under ``directory``.

    Args:
        directory: journal home; created on first write.  Give each
            run id its own directory (the CLI uses
            ``<checkpoint-root>/<run-id>``).
        interval: records per committed batch in per-record stages.
            Smaller = finer resume granularity, more journal writes.
        durable: fsync entries (and the directory) on commit.  Tests
            that kill processes keep this on; benchmarks may not.
    """

    def __init__(self, directory: PathLike, interval: int = 16,
                 durable: bool = True) -> None:
        if interval < 1:
            raise ValueError("interval must be at least 1")
        self.directory = Path(directory)
        self.interval = interval
        self.durable = durable
        self._seq = 0

    # -- write side -----------------------------------------------------

    def begin(self, signature: str) -> ResumeState:
        """Open the journal for a run with ``signature``.

        Returns the prior run's :class:`ResumeState` when a journal
        with the same signature exists and did not finish; otherwise
        wipes any stale journal and returns a fresh state.
        """
        state = self._load(missing_ok=True)
        if state.fresh or state.finished or state.signature != signature:
            self.clear()
            self._seq = 0
            self._append({"kind": "begin", "signature": signature})
            return ResumeState(signature=signature, fresh=True)
        self._seq = self._next_seq()
        return state

    def record_batch(self, stage_index: int, batch_index: int,
                     stage_name: str, payload: Any) -> None:
        self._append({
            "kind": "batch",
            "stage": stage_index,
            "batch": batch_index,
            "name": stage_name,
            "payload": payload,
        })

    def record_stage(self, stage_index: int, stage_name: str,
                     payload: Any) -> None:
        self._append({
            "kind": "stage",
            "stage": stage_index,
            "name": stage_name,
            "payload": payload,
        })

    def finish(self, payload: Any = None) -> None:
        self._append({"kind": "finish", "payload": payload})

    def prune_unverified(self) -> int:
        """Delete journal files after the verified prefix.

        Replay already stops at the first torn/corrupt entry, so the
        tail is dead weight — worse, new entries appended after it
        would sit beyond the truncation point and never replay.
        Callers that append to a reopened journal (the service job
        queue) prune first so the journal stays contiguous.  Returns
        the number of files removed.
        """
        paths = self._journal_paths()
        verified = sum(1 for _ in self._iter_entries())
        removed = 0
        for path in paths[verified:]:
            path.unlink()
            removed += 1
        if removed:
            self._seq = verified
        return removed

    def clear(self) -> None:
        """Delete every journal entry (and stray tmp files)."""
        if not self.directory.is_dir():
            return
        for path in self.directory.iterdir():
            name = path.name
            if name.startswith(_PREFIX) and (
                    name.endswith(_SUFFIX) or name.endswith(_SUFFIX + ".tmp")):
                path.unlink()
        self._seq = 0

    # -- read side ------------------------------------------------------

    def resume_run(self) -> ResumeState:
        """Load the journal for resumption.

        Raises :class:`CheckpointError` when there is nothing to resume
        — no journal directory, no entries, or a journal whose every
        entry failed verification.
        """
        state = self._load(missing_ok=False)
        if state.fresh:
            raise CheckpointError(
                f"{self.directory}: no resumable journal entries")
        return state

    def entries(self) -> List[Dict[str, Any]]:
        """The verified journal entries, in commit order."""
        return list(self._iter_entries())

    # -- internals ------------------------------------------------------

    def _journal_paths(self) -> List[Path]:
        if not self.directory.is_dir():
            return []
        return sorted(
            p for p in self.directory.iterdir()
            if p.name.startswith(_PREFIX) and p.name.endswith(_SUFFIX))

    def _next_seq(self) -> int:
        paths = self._journal_paths()
        if not paths:
            return 0
        last = paths[-1].name[len(_PREFIX):-len(_SUFFIX)]
        return int(last) + 1

    def _append(self, entry: Dict[str, Any]) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = pickle.dumps(entry, protocol=4)
        digest = hashlib.blake2b(payload, digest_size=_DIGEST_SIZE).digest()
        path = self.directory / f"{_PREFIX}{self._seq:06d}{_SUFFIX}"
        atomic_write_bytes(path, digest + payload, durable=self.durable)
        self._seq += 1

    def _iter_entries(self) -> Iterable[Dict[str, Any]]:
        for path in self._journal_paths():
            try:
                blob = path.read_bytes()
            except OSError:
                return
            digest, payload = blob[:_DIGEST_SIZE], blob[_DIGEST_SIZE:]
            expect = hashlib.blake2b(
                payload, digest_size=_DIGEST_SIZE).digest()
            if digest != expect:
                # A torn or corrupt entry truncates the journal: every
                # entry after it is untrusted and gets recomputed.
                return
            try:
                yield pickle.loads(payload)
            except Exception:
                return

    def _load(self, missing_ok: bool) -> ResumeState:
        if not self.directory.is_dir():
            if missing_ok:
                return ResumeState()
            raise CheckpointError(f"{self.directory}: no checkpoint journal")
        state = ResumeState()
        for entry in self._iter_entries():
            kind = entry.get("kind")
            if kind == "begin":
                state = ResumeState(signature=entry["signature"], fresh=False)
            elif kind == "batch":
                state.batches.setdefault(
                    entry["stage"], {})[entry["batch"]] = entry["payload"]
            elif kind == "stage":
                state.stages[entry["stage"]] = entry["payload"]
            elif kind == "finish":
                state.finished = True
        return state
