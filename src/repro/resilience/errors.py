"""Typed failures of the resilience runtime."""

from __future__ import annotations


class ResilienceError(Exception):
    """Base class for every resilience-runtime failure."""


class DeadlineExceeded(ResilienceError):
    """An attempt ran past its per-attempt deadline.

    The check is cooperative: the attempt is timed and the error raised
    *after* it returns (pure-Python work cannot be preempted), so a
    too-slow attempt is discarded and retried like any other failure.
    """

    def __init__(self, site: str, elapsed_s: float, deadline_s: float) -> None:
        self.site = site
        self.elapsed_s = elapsed_s
        self.deadline_s = deadline_s
        super().__init__(
            f"{site or '<call>'}: attempt took {elapsed_s:.4f}s "
            f"(deadline {deadline_s:.4f}s)")


class CircuitOpenError(ResilienceError):
    """A call was rejected because its circuit breaker is open."""

    def __init__(self, site: str) -> None:
        self.site = site
        super().__init__(f"circuit open for {site!r}")


class CheckpointError(ResilienceError):
    """The checkpoint journal is missing, mismatched, or unreadable."""
