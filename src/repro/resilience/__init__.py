"""repro.resilience — fault injection, retry/backoff, and
checkpoint/resume for curation, store I/O, and evaluation.

The runtime follows the :mod:`repro.obs` shape: build one
:class:`Resilience` handle, pass it down a run (the
:class:`~repro.core.PyraNet` facade forwards it everywhere), and code
that receives none falls back to a shared disabled instance via
:func:`resolve` — a single production code path, no test branching.

    from repro.resilience import Resilience, RetryPolicy, Checkpointer

    resilience = Resilience(
        retry=RetryPolicy(max_attempts=4, base_delay_s=0.01),
        checkpointer=Checkpointer("runs/ckpt/run-7"),
    )
    pipeline = CurationPipeline(resilience=resilience)

Killed mid-run?  Re-running the identical pipeline with the same
checkpointer resumes from the journal and produces byte-identical
output; ``resilience.report()`` says what was retried, quarantined,
tripped, and resumed.
"""

from .atomic import atomic_write_bytes, fsync_dir
from .checkpoint import Checkpointer, ResumeState, run_signature
from .errors import (CheckpointError, CircuitOpenError, DeadlineExceeded,
                     ResilienceError)
from .faults import (FaultPlan, FaultRule, SimulatedCrash, TransientFault,
                     flip_shard_byte, register_fault_exception)
from .retry import (BreakerConfig, CircuitBreaker, NO_RETRY, NullBreaker,
                    RetryPolicy)
from .runtime import (DeadLetterReport, Quarantined, Resilience,
                      ResilienceReport, StageShield, resolve)

__all__ = [
    "BreakerConfig",
    "Checkpointer",
    "CheckpointError",
    "CircuitBreaker",
    "CircuitOpenError",
    "DeadLetterReport",
    "DeadlineExceeded",
    "FaultPlan",
    "FaultRule",
    "NO_RETRY",
    "NullBreaker",
    "Quarantined",
    "Resilience",
    "ResilienceError",
    "ResilienceReport",
    "ResumeState",
    "RetryPolicy",
    "SimulatedCrash",
    "StageShield",
    "TransientFault",
    "atomic_write_bytes",
    "flip_shard_byte",
    "fsync_dir",
    "register_fault_exception",
    "resolve",
    "run_signature",
]
