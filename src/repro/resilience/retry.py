"""Retry with deterministic backoff, and attempt-counted circuit breakers.

:class:`RetryPolicy` is a frozen (picklable) description of *how* to
retry: attempt budget, exponential backoff with **seeded deterministic
jitter** (the jitter for attempt *k* at site *s* is a pure function of
``(seed, s, k)``, so two runs of the same plan sleep identically and
tests can assert exact schedules), exception-class filters, and an
optional cooperative per-attempt deadline.

:class:`CircuitBreaker` is the companion for *persistent* failures: a
site that keeps failing trips the breaker open, later calls are
rejected without running, and after a cooldown measured in **rejected
attempts** (not wall time — deterministic under test) one probe is let
through half-open.  Success closes the circuit; failure re-opens it.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, replace
from threading import Lock
from typing import Any, Callable, Dict, Optional, Tuple, Type

from .errors import DeadlineExceeded

#: Breaker states.
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"


def _jitter_fraction(seed: int, site: str, attempt: int) -> float:
    """A deterministic uniform [0, 1) draw for one (site, attempt)."""
    digest = hashlib.blake2b(
        f"{seed}:{site}:{attempt}".encode("utf-8", "replace"),
        digest_size=8,
    ).digest()
    return int.from_bytes(digest, "little") / 2.0 ** 64


@dataclass(frozen=True)
class RetryPolicy:
    """How a protected call retries.

    Args:
        max_attempts: total attempts (1 = no retries).
        base_delay_s: backoff before the second attempt; attempt ``k``
            waits ``base * multiplier**(k-1)`` capped at ``max_delay_s``.
        multiplier: exponential growth factor.
        max_delay_s: backoff ceiling.
        jitter: fraction of the delay replaced by a seeded deterministic
            draw (0 disables; 0.5 means the delay spans 50–100% of the
            nominal backoff).
        seed: jitter seed — the full sleep schedule is a pure function
            of ``(seed, site, attempt)``.
        retry_on: exception classes worth retrying; anything else fails
            the call immediately.
        give_up_on: exception classes never retried even if they match
            ``retry_on`` (checked first).
        deadline_s: cooperative per-attempt deadline — an attempt that
            returns after this long is discarded as
            :class:`DeadlineExceeded` and retried.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 2.0
    jitter: float = 0.5
    seed: int = 0
    retry_on: Tuple[Type[BaseException], ...] = (Exception,)
    give_up_on: Tuple[Type[BaseException], ...] = ()
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")

    def with_(self, **changes: Any) -> "RetryPolicy":
        """A copy with ``changes`` applied (dataclasses.replace)."""
        return replace(self, **changes)

    def delay_s(self, site: str, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based) at ``site``."""
        nominal = min(self.base_delay_s * self.multiplier ** (attempt - 1),
                      self.max_delay_s)
        if self.jitter <= 0.0 or nominal <= 0.0:
            return nominal
        fraction = _jitter_fraction(self.seed, site, attempt)
        return nominal * (1.0 - self.jitter * fraction)

    def classify(self, exc: BaseException) -> str:
        """``"retry"``, ``"fatal"`` (never retried), for one failure."""
        if self.give_up_on and isinstance(exc, self.give_up_on):
            return "fatal"
        if isinstance(exc, self.retry_on):
            return "retry"
        return "fatal"

    def run(
        self,
        fn: Callable[[], Any],
        site: str = "",
        sleep: Callable[[float], None] = time.sleep,
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
    ) -> Tuple[Any, int]:
        """Call ``fn`` under this policy; returns ``(result, attempts)``.

        Retryable failures back off and re-attempt; the final failure
        (or any fatal one) is re-raised as itself so callers' existing
        ``except`` clauses keep working.  ``on_retry(attempt, exc)``
        fires before each backoff.
        """
        last: Optional[BaseException] = None
        for attempt in range(1, self.max_attempts + 1):
            started = time.perf_counter()
            try:
                result = fn()
            except Exception as exc:
                if self.classify(exc) == "fatal":
                    raise
                last = exc
            else:
                elapsed = time.perf_counter() - started
                if (self.deadline_s is not None
                        and elapsed > self.deadline_s):
                    last = DeadlineExceeded(site, elapsed, self.deadline_s)
                else:
                    return result, attempt
            if attempt < self.max_attempts:
                if on_retry is not None:
                    on_retry(attempt, last)
                delay = self.delay_s(site, attempt)
                if delay > 0.0:
                    sleep(delay)
        assert last is not None
        raise last


#: A policy that never retries — the null runtime's default.
NO_RETRY = RetryPolicy(max_attempts=1, base_delay_s=0.0, jitter=0.0)


@dataclass(frozen=True)
class BreakerConfig:
    """Shape of the per-site breakers a runtime hands out."""

    trip_threshold: int = 5
    cooldown_attempts: int = 8
    half_open_successes: int = 1

    def __post_init__(self) -> None:
        if self.trip_threshold < 1:
            raise ValueError("trip_threshold must be at least 1")
        if self.cooldown_attempts < 1:
            raise ValueError("cooldown_attempts must be at least 1")
        if self.half_open_successes < 1:
            raise ValueError("half_open_successes must be at least 1")


class CircuitBreaker:
    """Closed / open / half-open failure gate for one site.

    ``trip_threshold`` consecutive failures trip the circuit open.
    While open, :meth:`allow` rejects calls; after ``cooldown_attempts``
    rejections the breaker turns half-open and lets probes through.
    ``half_open_successes`` consecutive probe successes close it again;
    any probe failure re-opens it.  All transitions are counted in
    attempts, never wall time, so behaviour under test is exact.
    """

    def __init__(self, site: str = "",
                 config: BreakerConfig = BreakerConfig(),
                 on_trip: Optional[Callable[["CircuitBreaker"], None]] = None,
                 ) -> None:
        self.site = site
        self.config = config
        self.on_trip = on_trip
        self._lock = Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._rejections = 0
        self._probe_successes = 0
        self._trips = 0
        self._rejected_total = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    @property
    def trips(self) -> int:
        with self._lock:
            return self._trips

    def allow(self) -> bool:
        """May the next call run?  Rejections advance the cooldown."""
        # Lock-free fast path for the healthy case.  The unlocked read
        # is GIL-atomic; racing a concurrent trip at worst admits one
        # call that started before the trip landed — indistinguishable
        # from that call having been scheduled a moment earlier.
        if self._state == CLOSED:
            return True
        with self._lock:
            if self._state == OPEN:
                self._rejections += 1
                self._rejected_total += 1
                if self._rejections >= self.config.cooldown_attempts:
                    self._state = HALF_OPEN
                    self._probe_successes = 0
                return False
            return True

    def record_success(self) -> None:
        # Lock-free fast path: a healthy closed breaker has nothing to
        # reset.  A stale read merely defers one reset by a call, which
        # is equivalent to this success having landed before the racing
        # failure.
        if self._state == CLOSED and self._consecutive_failures == 0:
            return
        with self._lock:
            if self._state == HALF_OPEN:
                self._probe_successes += 1
                if self._probe_successes >= self.config.half_open_successes:
                    self._state = CLOSED
                    self._consecutive_failures = 0
            else:
                self._consecutive_failures = 0

    def record_failure(self) -> None:
        tripped = False
        with self._lock:
            if self._state == HALF_OPEN:
                tripped = True
            else:
                self._consecutive_failures += 1
                if (self._state == CLOSED and self._consecutive_failures
                        >= self.config.trip_threshold):
                    tripped = True
            if tripped:
                self._state = OPEN
                self._rejections = 0
                self._trips += 1
        if tripped and self.on_trip is not None:
            self.on_trip(self)

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "site": self.site,
                "state": self._state,
                "trips": self._trips,
                "consecutive_failures": self._consecutive_failures,
                "rejected_calls": self._rejected_total,
            }


class NullBreaker(CircuitBreaker):
    """Always-closed breaker handed out by the disabled runtime."""

    def allow(self) -> bool:
        return True

    def record_success(self) -> None:
        pass

    def record_failure(self) -> None:
        pass
