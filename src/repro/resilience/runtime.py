"""The resilience runtime: one handle wiring retry, breakers, faults,
checkpoints, and dead-letter accounting into a run.

Mirrors the :mod:`repro.obs` design: everything instrumented takes an
optional ``resilience`` argument, :func:`resolve` maps ``None`` to a
shared disabled instance, and production code has exactly one path —
no "am I under test" branching anywhere.  Fault injection enters the
same way real faults do: :class:`~.faults.FaultPlan` wraps the
protected callable *inside* the retry loop, so an injected
``TransientFault`` and a real flaky read exercise identical machinery.

Per-record stage work is protected by a :class:`StageShield`.  Its
``wrap()`` produces a picklable guard that retries each record and
converts an exhausted failure into a :class:`Quarantined` marker —
returned, never raised, so a poisoned record crossing a process pool
can never surface an unpicklable exception or kill the pool.  The
parent-side ``settle()`` then unwraps markers and records retry and
quarantine tallies exactly once, whatever the executor mode.

The one exception that *does* propagate is
:class:`~.faults.SimulatedCrash` — a ``BaseException`` by design, so a
scheduled kill tears the run down through every guard, leaving only
the checkpoint journal behind.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from threading import Lock
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..obs import Observability
from ..obs import resolve as resolve_obs
from ..obs.reportable import report_json, strip_schema
from .checkpoint import Checkpointer
from .errors import CircuitOpenError
from .faults import FaultPlan
from .retry import (BreakerConfig, CircuitBreaker, NO_RETRY, NullBreaker,
                    RetryPolicy)


def _clip(value: Any, limit: int = 120) -> str:
    text = repr(value)
    return text if len(text) <= limit else text[:limit - 1] + "…"


def _value_digest(value: Any) -> str:
    return hashlib.blake2b(
        repr(value).encode("utf-8", "replace"), digest_size=8).hexdigest()


@dataclass(frozen=True)
class Quarantined:
    """A record whose work failed even after retries.

    Returned (never raised) by guarded stage functions, so it survives
    any process-pool round trip — all fields are plain strings and
    ints, no exception objects.  The stage drops the record with a
    ``quarantined:<error_type>`` reason; the runtime files the details
    in the run's :class:`DeadLetterReport`.
    """

    site: str
    error_type: str
    error: str
    attempts: int
    value_repr: str = ""
    value_digest: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "site": self.site,
            "error_type": self.error_type,
            "error": self.error,
            "attempts": self.attempts,
            "value_repr": self.value_repr,
            "value_digest": self.value_digest,
        }


@dataclass(frozen=True)
class _Retried:
    """Success-after-retry marker: carries the result plus how many
    retries it cost, so the parent process can count them no matter
    which pool the work ran in."""

    result: Any
    retries: int


class _GuardedFn:
    """The per-record guard a :class:`StageShield` sends into executor
    pools.  Picklable whenever its pieces are (the policy always is; a
    fault-wrapped ``fn`` or a live breaker deliberately is not, which
    makes process pools degrade to the executor's serial fallback
    rather than forking shared state)."""

    __slots__ = ("site", "policy", "fn", "breaker", "sleep")

    def __init__(self, site: str, policy: RetryPolicy,
                 fn: Callable[[Any], Any],
                 breaker: Optional[CircuitBreaker] = None,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        self.site = site
        self.policy = policy
        self.fn = fn
        self.breaker = breaker
        self.sleep = sleep

    def __call__(self, value: Any) -> Any:
        if self.breaker is not None and not self.breaker.allow():
            return Quarantined(
                site=self.site, error_type="CircuitOpenError",
                error=f"circuit open for {self.site!r}", attempts=0,
                value_repr=_clip(value), value_digest=_value_digest(value))
        if self.policy.deadline_s is not None:
            return self._call_with_deadline(value)
        # Fast path: one bare call.  A fault-free record pays only this
        # try/except — no retry-loop bookkeeping, no clock reads.
        try:
            result = self.fn(value)
        except Exception as exc:
            return self._retry_slow(value, exc)
        if self.breaker is not None:
            self.breaker.record_success()
        return result

    def _retry_slow(self, value: Any, exc: BaseException) -> Any:
        """Attempt 1 already failed with ``exc``; back off and re-attempt
        under the policy.  Attempt numbering continues from 1 so the
        jitter schedule matches :meth:`RetryPolicy.run` exactly."""
        policy = self.policy
        attempt = 1
        while True:
            if (policy.classify(exc) == "fatal"
                    or attempt >= policy.max_attempts):
                if self.breaker is not None:
                    self.breaker.record_failure()
                return Quarantined(
                    site=self.site, error_type=type(exc).__name__,
                    error=str(exc), attempts=attempt,
                    value_repr=_clip(value),
                    value_digest=_value_digest(value))
            delay = policy.delay_s(self.site, attempt)
            if delay > 0.0:
                self.sleep(delay)
            attempt += 1
            try:
                result = self.fn(value)
            except Exception as next_exc:
                exc = next_exc
                continue
            if self.breaker is not None:
                self.breaker.record_success()
            return _Retried(result, attempt - 1)

    def _call_with_deadline(self, value: Any) -> Any:
        """The general path: :meth:`RetryPolicy.run` times every attempt
        against the policy's cooperative deadline."""
        retries = 0

        def on_retry(attempt: int, exc: BaseException) -> None:
            nonlocal retries
            retries += 1

        try:
            result, _attempts = self.policy.run(
                lambda: self.fn(value), site=self.site, sleep=self.sleep,
                on_retry=on_retry)
        except Exception as exc:
            if self.breaker is not None:
                self.breaker.record_failure()
            return Quarantined(
                site=self.site, error_type=type(exc).__name__,
                error=str(exc), attempts=retries + 1,
                value_repr=_clip(value), value_digest=_value_digest(value))
        if self.breaker is not None:
            self.breaker.record_success()
        if retries:
            return _Retried(result, retries)
        return result


class StageShield:
    """Retry + quarantine + fault injection around one stage's records.

    ``wrap(fn)`` is applied by the executor before mapping; ``settle``
    runs in the parent afterwards, unwrapping markers and recording
    tallies into the owning :class:`Resilience` exactly once."""

    def __init__(self, resilience: "Resilience", site: str,
                 policy: RetryPolicy,
                 breaker: Optional[CircuitBreaker] = None,
                 plan: Optional[FaultPlan] = None) -> None:
        self.resilience = resilience
        self.site = site
        self.policy = policy
        self.breaker = breaker
        self.plan = plan

    def wrap(self, fn: Callable[[Any], Any]) -> Callable[[Any], Any]:
        inner = self.plan.wrap(self.site, fn) if self.plan is not None else fn
        return _GuardedFn(self.site, self.policy, inner, self.breaker,
                          self.resilience.sleep)

    def settle(self, results: List[Any]) -> List[Any]:
        settled: List[Any] = []
        for result in results:
            if isinstance(result, _Retried):
                self.resilience.record_retry(self.site, result.retries)
                settled.append(result.result)
            else:
                if isinstance(result, Quarantined):
                    self.resilience.record_quarantine(result)
                settled.append(result)
        return settled


@dataclass
class DeadLetterReport:
    """Records the run could not process: the quarantine ledger."""

    schema = "pyranet/dead-letter/v1"

    entries: List[Dict[str, Any]] = field(default_factory=list)

    def add(self, quarantined: Quarantined) -> None:
        self.entries.append(quarantined.to_dict())

    def __len__(self) -> int:
        return len(self.entries)

    def by_site(self) -> Dict[str, int]:
        histogram: Dict[str, int] = {}
        for entry in self.entries:
            site = entry.get("site", "")
            histogram[site] = histogram.get(site, 0) + 1
        return histogram

    def to_dict(self) -> Dict[str, Any]:
        return {"schema": self.schema,
                "entries": [dict(entry) for entry in self.entries]}

    def to_json(self, indent: Optional[int] = None) -> str:
        return report_json(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DeadLetterReport":
        data = strip_schema(data)
        return cls(entries=[dict(entry)
                            for entry in data.get("entries", [])])

    @classmethod
    def from_json(cls, text: str) -> "DeadLetterReport":
        return cls.from_dict(json.loads(text))


@dataclass
class ResilienceReport:
    """What the resilience runtime did during a run."""

    schema = "pyranet/resilience-report/v1"

    retries: Dict[str, int] = field(default_factory=dict)
    quarantines: Dict[str, int] = field(default_factory=dict)
    breakers: List[Dict[str, Any]] = field(default_factory=list)
    resumed_stages: int = 0
    resumed_batches: int = 0
    faults_injected: Dict[str, Dict[str, int]] = field(default_factory=dict)
    dead_letter: DeadLetterReport = field(default_factory=DeadLetterReport)

    @property
    def total_retries(self) -> int:
        return sum(self.retries.values())

    @property
    def total_quarantined(self) -> int:
        return sum(self.quarantines.values())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": self.schema,
            "retries": dict(self.retries),
            "quarantines": dict(self.quarantines),
            "breakers": [dict(snapshot) for snapshot in self.breakers],
            "resumed_stages": self.resumed_stages,
            "resumed_batches": self.resumed_batches,
            "faults_injected": {site: dict(kinds) for site, kinds
                                in self.faults_injected.items()},
            "dead_letter": self.dead_letter.to_dict(),
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return report_json(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ResilienceReport":
        data = strip_schema(data)
        return cls(
            retries=dict(data.get("retries", {})),
            quarantines=dict(data.get("quarantines", {})),
            breakers=[dict(item) for item in data.get("breakers", [])],
            resumed_stages=data.get("resumed_stages", 0),
            resumed_batches=data.get("resumed_batches", 0),
            faults_injected={site: dict(kinds) for site, kinds
                             in data.get("faults_injected", {}).items()},
            dead_letter=DeadLetterReport.from_dict(
                data.get("dead_letter", {})),
        )

    @classmethod
    def from_json(cls, text: str) -> "ResilienceReport":
        return cls.from_dict(json.loads(text))


class Resilience:
    """One run's fault-handling policy and bookkeeping.

    Args:
        retry: default :class:`RetryPolicy` for protected calls.
        breaker: shape of the per-site circuit breakers; ``None``
            disables breakers entirely.
        checkpointer: journals pipeline progress for resume; ``None``
            disables checkpointing.
        fault_plan: deterministic fault schedule (tests and drills);
            ``None`` injects nothing.
        obs: observability handle retry/trip/resume counters flow into.
            The pipeline engine binds its own handle for the duration
            of a run when none was given here.
        sleep: backoff clock, injectable so tests never really sleep.
    """

    def __init__(self, retry: Optional[RetryPolicy] = None,
                 breaker: Optional[BreakerConfig] = BreakerConfig(),
                 checkpointer: Optional[Checkpointer] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 obs: Optional[Observability] = None,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        self.retry = retry if retry is not None else RetryPolicy()
        self.breaker_config = breaker
        self.checkpointer = checkpointer
        self.fault_plan = fault_plan
        self.obs = obs
        self.sleep = sleep
        self.enabled = True
        self.dead_letter = DeadLetterReport()
        self._lock = Lock()
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._null_breaker = NullBreaker()
        self._retries: Dict[str, int] = {}
        self._quarantines: Dict[str, int] = {}
        self._resumed_stages = 0
        self._resumed_batches = 0

    @classmethod
    def disabled(cls) -> "Resilience":
        """The zero-cost instance :func:`resolve` hands out for None."""
        instance = cls(retry=NO_RETRY, breaker=None)
        instance.enabled = False
        return instance

    # -- per-site machinery ---------------------------------------------

    def breaker(self, site: str) -> CircuitBreaker:
        """The (shared, get-or-create) breaker guarding ``site``."""
        if self.breaker_config is None:
            return self._null_breaker
        with self._lock:
            found = self._breakers.get(site)
            if found is None:
                found = CircuitBreaker(site, self.breaker_config,
                                       on_trip=self._on_trip)
                self._breakers[site] = found
            return found

    def shield(self, site: str, mode: str = "serial"
               ) -> Optional[StageShield]:
        """A :class:`StageShield` for one stage's records, or ``None``
        when this runtime is disabled (the executor then runs its
        original zero-overhead path).

        Breakers hold locks and must stay shared, so in ``process``
        mode the shield carries none — per-worker retry and quarantine
        still apply; breaker accounting is a thread/serial feature.
        """
        if not self.enabled:
            return None
        breaker: Optional[CircuitBreaker] = None
        if self.breaker_config is not None and mode != "process":
            breaker = self.breaker(site)
        plan = self.fault_plan
        if plan is not None and not plan.active_for(site):
            plan = None
        return StageShield(self, site, self.retry, breaker, plan)

    def call(self, site: str, fn: Callable[[], Any],
             retry: Optional[RetryPolicy] = None,
             breaker: Optional[CircuitBreaker] = None) -> Any:
        """Run ``fn`` under the retry policy (store I/O, batch stages).

        Unlike shielded stage work, exhausted or fatal failures re-raise
        the *original* exception so callers' existing ``except`` clauses
        keep working; an open breaker raises :class:`CircuitOpenError`
        without running ``fn`` at all.
        """
        if not self.enabled:
            return fn()
        if breaker is not None and not breaker.allow():
            self._obs().counter("resilience.breaker.rejected").inc()
            raise CircuitOpenError(site)
        policy = retry if retry is not None else self.retry
        wrapped = (self.fault_plan.wrap(site, fn)
                   if self.fault_plan is not None else fn)
        retries = 0

        def on_retry(attempt: int, exc: BaseException) -> None:
            nonlocal retries
            retries += 1

        try:
            result, _attempts = policy.run(wrapped, site=site,
                                           sleep=self.sleep,
                                           on_retry=on_retry)
        except Exception:
            if breaker is not None:
                breaker.record_failure()
            if retries:
                self.record_retry(site, retries)
            raise
        if breaker is not None:
            breaker.record_success()
        if retries:
            self.record_retry(site, retries)
        return result

    # -- bookkeeping ----------------------------------------------------

    def _obs(self) -> Observability:
        return resolve_obs(self.obs)

    def _on_trip(self, breaker: CircuitBreaker) -> None:
        obs = self._obs()
        obs.counter("resilience.breaker.trips").inc()
        obs.counter(f"resilience.breaker.{breaker.site}.trips").inc()

    def record_retry(self, site: str, retries: int) -> None:
        if retries <= 0:
            return
        with self._lock:
            self._retries[site] = self._retries.get(site, 0) + retries
        obs = self._obs()
        obs.counter("resilience.retries").inc(retries)
        obs.counter(f"resilience.retry.{site}").inc(retries)

    def record_quarantine(self, quarantined: Quarantined) -> None:
        with self._lock:
            site = quarantined.site
            self._quarantines[site] = self._quarantines.get(site, 0) + 1
            self.dead_letter.add(quarantined)
        obs = self._obs()
        obs.counter("resilience.quarantined").inc()
        obs.counter(f"resilience.quarantine.{quarantined.site}").inc()

    def record_resumed(self, stages: int = 0, batches: int = 0) -> None:
        with self._lock:
            self._resumed_stages += stages
            self._resumed_batches += batches
        obs = self._obs()
        if stages:
            obs.counter("resilience.resume.stages").inc(stages)
        if batches:
            obs.counter("resilience.resume.batches").inc(batches)

    def retries_for(self, site: str) -> int:
        with self._lock:
            return self._retries.get(site, 0)

    def quarantined_for(self, site: str) -> int:
        with self._lock:
            return self._quarantines.get(site, 0)

    @property
    def total_retries(self) -> int:
        with self._lock:
            return sum(self._retries.values())

    @property
    def total_quarantined(self) -> int:
        with self._lock:
            return sum(self._quarantines.values())

    def summary(self) -> Dict[str, Any]:
        """The compact dict the engine folds into trace metadata."""
        with self._lock:
            return {
                "retries": sum(self._retries.values()),
                "quarantined": sum(self._quarantines.values()),
                "breaker_trips": sum(b.trips for b in self._breakers.values()),
                "resumed_stages": self._resumed_stages,
                "resumed_batches": self._resumed_batches,
            }

    def report(self) -> ResilienceReport:
        """Everything this runtime absorbed, as one report artefact."""
        with self._lock:
            return ResilienceReport(
                retries=dict(self._retries),
                quarantines=dict(self._quarantines),
                breakers=[b.snapshot() for b in self._breakers.values()],
                resumed_stages=self._resumed_stages,
                resumed_batches=self._resumed_batches,
                faults_injected=(self.fault_plan.report()
                                 if self.fault_plan is not None else {}),
                dead_letter=DeadLetterReport.from_dict(
                    self.dead_letter.to_dict()),
            )


#: Shared disabled instance used wherever no ``resilience`` was supplied.
_NULL = Resilience.disabled()


def resolve(resilience: Optional[Resilience]) -> Resilience:
    """``resilience`` itself, or the shared disabled instance for None."""
    return resilience if resilience is not None else _NULL
