"""Durable atomic file writes shared across the persistence layers.

``tmp sibling + os.replace`` makes a write *atomic* (readers see the
old bytes or the new bytes, never a torn file) but not *durable*: the
rename itself lives in the parent directory's metadata, and a power
loss after ``os.replace`` can still roll the directory entry back.
Closing the gap needs three syncs — file data, then the rename, then
the directory that recorded it:

1. ``fsync`` the temporary file before the rename;
2. ``os.replace`` the tmp over the target;
3. ``fsync`` the parent directory so the rename is on disk too.

:func:`atomic_write_bytes` does all three; :func:`fsync_dir` is the
directory half, exported separately for call sites that manage their
own file handles (``save_jsonl`` streams rows through a text handle).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Union

PathLike = Union[str, Path]


def fsync_dir(directory: PathLike) -> None:
    """Flush ``directory``'s entry table to disk (making a just-renamed
    child durable).  A no-op on platforms that cannot fsync a directory
    handle (Windows raises, some filesystems return EINVAL)."""
    flags = os.O_RDONLY
    # O_DIRECTORY (where available) refuses to open anything else.
    flags |= getattr(os, "O_DIRECTORY", 0)
    try:
        fd = os.open(str(directory), flags)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: PathLike, payload: bytes,
                       durable: bool = True) -> None:
    """Write ``payload`` to ``path`` atomically (and durably by default).

    The bytes land in a ``*.tmp`` sibling first, are fsynced, and are
    renamed into place; with ``durable`` the parent directory is then
    fsynced so the rename survives power loss, not just a process kill.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    try:
        with tmp.open("wb") as handle:
            handle.write(payload)
            handle.flush()
            if durable:
                os.fsync(handle.fileno())
        os.replace(tmp, path)
        if durable:
            fsync_dir(path.parent)
    finally:
        if tmp.exists():
            tmp.unlink()
