"""Deterministic fault injection: prove the resilience layer works.

A :class:`FaultPlan` is a *schedule* of faults keyed on named call
sites (``stage.syntax_check``, ``store.read_shard``, …) and per-site
call ordinals.  Production code never checks "am I under test" — it
runs whatever callable it is handed, and the resilience runtime wraps
that callable with :meth:`FaultPlan.wrap` when a plan is attached, so
the injected and un-injected code paths are byte-identical.

Fault kinds:

* ``raise`` — raise a registered exception class at the scheduled
  attempt (transient when the next ordinal is clean, persistent when
  every ordinal matches);
* ``delay`` — sleep before the attempt runs (drives per-attempt
  deadline handling);
* ``crash`` — raise :class:`SimulatedCrash`, a ``BaseException`` that
  models ``kill -9`` mid-run: no retry or quarantine machinery may
  absorb it, so the run dies at an exact record boundary and the
  checkpoint journal is all that survives.

:func:`flip_shard_byte` is the on-disk half of the harness: a seeded
single-byte corruption of a stored shard, for exercising the store's
digest verification, retry, and breaker paths.

Plans serialise to JSON (``to_json`` / ``from_json``) so a fault
schedule can ride a CLI flag (``--fault-plan plan.json``), and
:meth:`FaultPlan.seeded` derives a whole schedule from one seed.
"""

from __future__ import annotations

import json
import random
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

PathLike = Union[str, Path]

FAULT_KINDS = ("raise", "delay", "crash")


class TransientFault(RuntimeError):
    """The default injected exception — retryable by any sane policy."""


class SimulatedCrash(BaseException):
    """A simulated process kill.

    Deliberately a ``BaseException`` (like ``KeyboardInterrupt``): no
    ``except Exception`` handler — retry loops, quarantine wrappers,
    executor fallbacks — may swallow it, so the run genuinely dies
    where the plan says it dies.
    """

    def __init__(self, site: str, ordinal: int) -> None:
        self.site = site
        self.ordinal = ordinal
        super().__init__(f"simulated crash at {site!r} call #{ordinal}")


def _shard_corruption(message: str) -> BaseException:
    # Imported lazily: resilience must not depend on the store package.
    from ..store.errors import ShardCorruptionError

    return ShardCorruptionError("<injected>", message)


#: name -> factory(message) for exceptions a plan may raise.  JSON plans
#: reference these by name; extend via :func:`register_fault_exception`.
_EXCEPTIONS: Dict[str, Callable[[str], BaseException]] = {
    "TransientFault": TransientFault,
    "RuntimeError": RuntimeError,
    "OSError": OSError,
    "IOError": OSError,
    "TimeoutError": TimeoutError,
    "ValueError": ValueError,
    "KeyError": KeyError,
    "ConnectionError": ConnectionError,
    "ShardCorruptionError": _shard_corruption,
}


def register_fault_exception(
    name: str, factory: Callable[[str], BaseException]
) -> None:
    """Make ``name`` usable as a :class:`FaultRule` exception."""
    _EXCEPTIONS[name] = factory


@dataclass(frozen=True)
class FaultRule:
    """One scheduled fault.

    Args:
        site: the call site the rule watches (exact match).
        kind: ``raise`` | ``delay`` | ``crash``.
        ordinals: 0-based per-site call ordinals that fault.  Every
            attempt — including retries — advances the site's ordinal,
            so a ``raise`` at ordinal 3 alone is a transient fault the
            first retry absorbs.
        exception: registered exception name (``raise`` kind).
        message: message passed to the exception factory.
        delay_s: sleep length (``delay`` kind).
    """

    site: str
    kind: str = "raise"
    ordinals: Tuple[int, ...] = ()
    exception: str = "TransientFault"
    message: str = "injected fault"
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"kind={self.kind!r}; choose from {FAULT_KINDS}")
        if self.kind == "raise" and self.exception not in _EXCEPTIONS:
            raise ValueError(
                f"unregistered exception {self.exception!r}; known: "
                f"{sorted(_EXCEPTIONS)}")

    def matches(self, ordinal: int) -> bool:
        return ordinal in self.ordinals

    def to_dict(self) -> Dict[str, Any]:
        return {
            "site": self.site,
            "kind": self.kind,
            "ordinals": list(self.ordinals),
            "exception": self.exception,
            "message": self.message,
            "delay_s": self.delay_s,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultRule":
        return cls(
            site=data["site"],
            kind=data.get("kind", "raise"),
            ordinals=tuple(data.get("ordinals", ())),
            exception=data.get("exception", "TransientFault"),
            message=data.get("message", "injected fault"),
            delay_s=data.get("delay_s", 0.0),
        )


class FaultPlan:
    """A deterministic schedule of faults over named call sites.

    Per-site call counting is thread-safe; under a process pool the
    plan cannot be pickled (by design — fault state must stay shared),
    which makes the executor degrade to its serial fallback, keeping
    injection deterministic in every mode.

    Args:
        rules: the fault schedule.
        sleep: injectable clock for ``delay`` rules (tests pass a
            recorder to avoid real sleeping).
    """

    schema = "pyranet/fault-plan/v1"

    def __init__(self, rules: Sequence[FaultRule] = (),
                 sleep: Callable[[float], None] = time.sleep) -> None:
        self.rules: Tuple[FaultRule, ...] = tuple(rules)
        self._by_site: Dict[str, List[FaultRule]] = {}
        for rule in self.rules:
            self._by_site.setdefault(rule.site, []).append(rule)
        self._sleep = sleep
        self._lock = threading.Lock()
        self._calls: Dict[str, int] = {}
        self._injected: Dict[str, Dict[str, int]] = {}

    @classmethod
    def seeded(cls, seed: int, sites: Sequence[str], n_faults: int = 3,
               max_ordinal: int = 50, kind: str = "raise",
               exception: str = "TransientFault") -> "FaultPlan":
        """A schedule derived entirely from ``seed``: ``n_faults``
        distinct ordinals per site, uniformly below ``max_ordinal``."""
        rng = random.Random(seed)
        rules = []
        for site in sites:
            ordinals = tuple(sorted(rng.sample(
                range(max_ordinal), min(n_faults, max_ordinal))))
            rules.append(FaultRule(site=site, kind=kind, ordinals=ordinals,
                                   exception=exception))
        return cls(rules)

    def sites(self) -> List[str]:
        return sorted(self._by_site)

    def active_for(self, site: str) -> bool:
        return site in self._by_site

    def fire(self, site: str) -> None:
        """Advance ``site``'s ordinal; enact whatever the schedule says."""
        with self._lock:
            ordinal = self._calls.get(site, 0)
            self._calls[site] = ordinal + 1
            rule = next(
                (r for r in self._by_site.get(site, ()) if r.matches(ordinal)),
                None,
            )
            if rule is not None:
                tally = self._injected.setdefault(site, {})
                tally[rule.kind] = tally.get(rule.kind, 0) + 1
        if rule is None:
            return
        if rule.kind == "delay":
            self._sleep(rule.delay_s)
        elif rule.kind == "crash":
            raise SimulatedCrash(site, ordinal)
        else:
            raise _EXCEPTIONS[rule.exception](rule.message)

    def wrap(self, site: str, fn: Callable[..., Any]) -> Callable[..., Any]:
        """``fn`` with this plan's faults injected ahead of each call.

        Sites with no scheduled faults get ``fn`` back untouched, so a
        plan only prices the sites it watches.
        """
        if not self.active_for(site):
            return fn
        return _FaultyCall(self, site, fn)

    def calls(self, site: str) -> int:
        with self._lock:
            return self._calls.get(site, 0)

    def report(self) -> Dict[str, Dict[str, int]]:
        """site -> kind -> injected count."""
        with self._lock:
            return {site: dict(kinds)
                    for site, kinds in sorted(self._injected.items())}

    # -- serialisation --------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": self.schema,
            "rules": [rule.to_dict() for rule in self.rules],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        return cls([FaultRule.from_dict(item)
                    for item in data.get("rules", [])])

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))


class _FaultyCall:
    """``fn`` behind one plan site (deliberately unpicklable: the plan's
    shared counters must not fork into per-process copies)."""

    def __init__(self, plan: FaultPlan, site: str,
                 fn: Callable[..., Any]) -> None:
        self.plan = plan
        self.site = site
        self.fn = fn

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        self.plan.fire(self.site)
        return self.fn(*args, **kwargs)

    def __reduce__(self):
        raise TypeError(
            "a fault-injected callable cannot cross a process boundary "
            "(plan counters must stay shared); the executor degrades "
            "to its serial fallback instead")


def flip_shard_byte(path: PathLike, seed: int = 0,
                    offset: Optional[int] = None) -> int:
    """Flip one byte of the file at ``path``; returns the offset flipped.

    The offset derives deterministically from ``seed`` unless given.
    This is persistent, on-disk corruption — the reader's digest check
    must catch it on every read until the file is repaired.
    """
    path = Path(path)
    payload = bytearray(path.read_bytes())
    if not payload:
        raise ValueError(f"{path}: cannot corrupt an empty file")
    if offset is None:
        offset = random.Random(seed).randrange(len(payload))
    payload[offset] ^= 0xFF
    path.write_bytes(bytes(payload))
    return offset
