"""Design specifications and golden models.

Every synthetic design family produces a :class:`DesignSpec` describing
its interface (ports, clocking, reset discipline) together with a
*golden model* — a pure-Python behavioural reference.  The spec serves
three consumers:

* the corpus **templates** render Verilog that implements the spec;
* the **evaluation harness** builds functional testbenches by driving
  random stimulus into a candidate module and comparing against the
  golden model;
* the **description generator** phrases natural-language prompts from
  the structured fields.

Golden models come in two shapes: combinational (``comb(inputs) ->
outputs``) and sequential (``reset() -> state`` then ``step(state,
inputs) -> (state, outputs)``), with all values plain unsigned ints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

#: inputs -> outputs, both name -> unsigned int.
CombFunc = Callable[[Dict[str, int]], Dict[str, int]]
#: (state, inputs) -> (new_state, outputs); state is family-defined.
StepFunc = Callable[[object, Dict[str, int]], Tuple[object, Dict[str, int]]]
ResetFunc = Callable[[], object]


@dataclass(frozen=True)
class PortDef:
    """One port of a design.

    ``role`` is ``"clock"``, ``"reset"``, or ``"data"``; the testbench
    generator treats clock/reset ports specially.
    """

    name: str
    width: int = 1
    role: str = "data"
    signed: bool = False

    @property
    def mask(self) -> int:
        return (1 << self.width) - 1


@dataclass
class GoldenModel:
    """Behavioural reference for a design family instance.

    For combinational designs only ``comb`` is set.  For sequential
    designs ``reset`` and ``step`` are set; ``step`` is called once per
    rising clock edge with the input values sampled *before* the edge,
    and ``mealy_outputs`` lists outputs that depend combinationally on
    current inputs (checked after settling, not only after edges).
    """

    comb: Optional[CombFunc] = None
    reset: Optional[ResetFunc] = None
    step: Optional[StepFunc] = None
    #: Output names that are pure functions of (state, current inputs).
    mealy_outputs: Tuple[str, ...] = ()

    @property
    def is_sequential(self) -> bool:
        return self.step is not None


@dataclass
class DesignSpec:
    """Complete interface + behaviour contract for one design."""

    family: str
    module_name: str
    params: Dict[str, int] = field(default_factory=dict)
    inputs: List[PortDef] = field(default_factory=list)
    outputs: List[PortDef] = field(default_factory=list)
    clocked: bool = False
    clock_name: Optional[str] = None
    reset_name: Optional[str] = None
    reset_active_low: bool = False
    reset_synchronous: bool = False
    golden: Optional[GoldenModel] = None
    #: Primary keyword ("adder", "counter", …) for the keyword DB.
    keyword: str = ""
    #: Expanded keyword ("ripple carry adder", …).
    expanded_keyword: str = ""

    @property
    def category(self) -> str:
        return "sequential" if self.clocked else "combinational"

    def data_inputs(self) -> List[PortDef]:
        return [p for p in self.inputs if p.role == "data"]

    def find_input(self, name: str) -> Optional[PortDef]:
        for port in self.inputs:
            if port.name == name:
                return port
        return None

    def find_output(self, name: str) -> Optional[PortDef]:
        for port in self.outputs:
            if port.name == name:
                return port
        return None

    def port_header(self) -> str:
        """Render the ANSI module header implied by this spec.

        Evaluation problems hand this header to the model, mirroring
        VerilogEval's "complete this module" format.
        """
        parts: List[str] = []
        for port in self.inputs:
            rng = f" [{port.width - 1}:0]" if port.width > 1 else ""
            sgn = " signed" if port.signed else ""
            parts.append(f"  input{sgn}{rng} {port.name}")
        for port in self.outputs:
            rng = f" [{port.width - 1}:0]" if port.width > 1 else ""
            sgn = " signed" if port.signed else ""
            parts.append(f"  output{sgn}{rng} {port.name}")
        body = ",\n".join(parts)
        return f"module {self.module_name} (\n{body}\n);"


def mask(width: int) -> int:
    """All-ones mask of ``width`` bits."""
    return (1 << width) - 1


def to_signed(value: int, width: int) -> int:
    """Two's-complement interpretation of ``value``."""
    value &= mask(width)
    if value & (1 << (width - 1)):
        return value - (1 << width)
    return value
