"""Design-family registry and rendering.

A *family* is a parameterised hardware design generator — one entry in
the keyword database of Fig. 2 (adders, multiplexers, counters, FSMs,
…).  Families register themselves via :func:`register_family`;
:func:`generate_design` samples a parameter point, renders Verilog, and
attaches a natural-language description, returning a
:class:`RenderedDesign` the corpus/curation layers consume.

The registry replaces the paper's GitHub scrape + GPT-4o-mini
generation as the *source of Verilog text*; downstream pipeline stages
(filters, dedup, ranking, layering) are identical to the paper's.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Type

from .spec import DesignSpec


class Family:
    """Base class for design families.

    Subclasses set the class attributes and implement
    :meth:`sample_params`, :meth:`build`, and :meth:`describe`.
    """

    #: Unique family identifier, e.g. ``"ripple_carry_adder"``.
    name: str = ""
    #: Keyword-database entry this family belongs to (Fig. 2).
    keyword: str = ""
    #: Expanded keyword, e.g. ``"ripple carry adder"``.
    expanded_keyword: str = ""
    #: ``"combinational"`` or ``"sequential"``.
    category: str = "combinational"
    #: Typical complexity of this family's instances (a hint only; the
    #: labeler measures the actual code).
    complexity_hint: str = "basic"

    def sample_params(self, rng: random.Random) -> Dict[str, int]:
        """Sample a parameter point for this family."""
        raise NotImplementedError

    def build(
        self, params: Dict[str, int], module_name: str
    ) -> Tuple[DesignSpec, str]:
        """Render (spec, source) for the given parameters."""
        raise NotImplementedError

    def describe(self, spec: DesignSpec, rng: random.Random) -> str:
        """Produce a natural-language description of ``spec``."""
        raise NotImplementedError


@dataclass
class RenderedDesign:
    """A generated design: interface contract, code, and description."""

    spec: DesignSpec
    source: str
    description: str

    @property
    def family(self) -> str:
        return self.spec.family

    @property
    def module_name(self) -> str:
        return self.spec.module_name


#: All registered families by name.
FAMILY_REGISTRY: Dict[str, Family] = {}


def register_family(cls: Type[Family]) -> Type[Family]:
    """Class decorator adding a family instance to the registry."""
    instance = cls()
    if not instance.name:
        raise ValueError(f"family {cls.__name__} has no name")
    if instance.name in FAMILY_REGISTRY:
        raise ValueError(f"duplicate family {instance.name!r}")
    FAMILY_REGISTRY[instance.name] = instance
    return cls


def family_names(category: Optional[str] = None) -> List[str]:
    """Registered family names, optionally filtered by category."""
    _ensure_loaded()
    return sorted(
        name for name, fam in FAMILY_REGISTRY.items()
        if category is None or fam.category == category
    )


def get_family(name: str) -> Family:
    _ensure_loaded()
    family = FAMILY_REGISTRY.get(name)
    if family is None:
        raise KeyError(
            f"unknown design family {name!r}; known: {family_names()}"
        )
    return family


_NAME_STYLES = [
    lambda base, rng: base,
    lambda base, rng: f"{base}_{rng.randrange(100)}",
    lambda base, rng: f"my_{base}",
    lambda base, rng: f"{base}_top",
    lambda base, rng: f"u_{base}",
]


def generate_design(
    family_name: str,
    rng: Optional[random.Random] = None,
    params: Optional[Dict[str, int]] = None,
    module_name: Optional[str] = None,
) -> RenderedDesign:
    """Generate one design from ``family_name``.

    Args:
        family_name: a registered family.
        rng: randomness source (a fresh seeded one when omitted).
        params: explicit parameter point; sampled when omitted.
        module_name: explicit module name; derived when omitted.
    """
    rng = rng or random.Random(0)
    family = get_family(family_name)
    chosen = params if params is not None else family.sample_params(rng)
    if module_name is None:
        module_name = rng.choice(_NAME_STYLES)(family.name, rng)
    spec, source = family.build(chosen, module_name)
    description = family.describe(spec, rng)
    return RenderedDesign(spec=spec, source=source, description=description)


def generate_random_design(
    rng: random.Random, category: Optional[str] = None
) -> RenderedDesign:
    """Generate a design from a uniformly chosen family."""
    names = family_names(category)
    return generate_design(rng.choice(names), rng)


_loaded = False


def _ensure_loaded() -> None:
    """Import the family modules exactly once (registration side
    effects)."""
    global _loaded
    if _loaded:
        return
    _loaded = True
    from . import families_comb  # noqa: F401
    from . import families_seq  # noqa: F401
