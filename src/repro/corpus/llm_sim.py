"""Simulated commercial LLM (the GPT-4o-mini stand-in).

The paper uses GPT-4o-mini in three roles: generating extra Verilog
samples from crafted prompts (Fig. 2), ranking every dataset entry 0–20
(Fig. 3), and producing design descriptions.  With no network access we
substitute a deterministic simulacrum whose *interface and failure
modes* match a real model:

* **generation** renders the requested design from the family registry
  and then injects temperature-dependent imperfections — style decay at
  moderate temperature, functional bugs at high temperature, outright
  syntax damage near the top of the range, and the occasional markdown
  code fence that real chat models love to emit;
* **ranking** delegates to the deterministic style/efficiency judge in
  :mod:`repro.dataset.ranking`, formatted as the Fig. 3 prompt/response
  exchange;
* **description** phrases the design's spec (for generated code) or
  falls back to the AST-derived describer.

Determinism: one seed fixes every response, so pipeline runs are
reproducible end-to-end.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from . import mutate
from .keywords import ExpandedKeyword, craft_prompt
from .templates import RenderedDesign, generate_design, get_family


@dataclass
class LLMExchange:
    """One prompt/response pair (kept for audit trails and Fig. 3)."""

    prompt: str
    response: str
    temperature: float


@dataclass
class GeneratedSample:
    """One generation-pipeline output."""

    design: RenderedDesign
    raw_response: str
    temperature: float
    prompt: str
    #: Ground truth about injected imperfections.
    mutations: List[str] = field(default_factory=list)
    intended_status: str = "clean"
    functional_risk: bool = False


def strip_markdown_fences(text: str) -> str:
    """Remove ```verilog fences that chat models wrap code in."""
    match = re.search(r"```(?:verilog|systemverilog|v)?\s*\n(.*?)```",
                      text, flags=re.S)
    if match:
        return match.group(1)
    return text


class SimulatedCommercialLLM:
    """Deterministic GPT-4o-mini simulacrum.

    Args:
        seed: fixes all sampling.
        fence_probability: chance a response is wrapped in markdown.
    """

    model_name = "gpt-4o-mini-sim"

    def __init__(self, seed: int = 0, fence_probability: float = 0.15) -> None:
        self._rng = random.Random(seed)
        self._fence_probability = fence_probability
        self.exchanges: List[LLMExchange] = []

    # -- generation (Fig. 2) -------------------------------------------------

    def generate(
        self,
        entry: ExpandedKeyword,
        temperature: float,
        params: Optional[Dict[str, int]] = None,
    ) -> GeneratedSample:
        """Answer one design-generation prompt at ``temperature``.

        Low temperature yields near-template code; increasing
        temperature progressively risks style decay (>= 0.3), functional
        bugs (>= 0.8), and syntax damage (>= 1.2).
        """
        rng = random.Random(self._rng.getrandbits(32))
        prompt = craft_prompt(entry, rng)
        design = generate_design(entry.family, rng, params=params)
        source = design.source
        mutations: List[str] = []
        intended_status = "clean"
        functional_risk = False

        style_p = min(0.9, max(0.0, (temperature - 0.2) * 0.9))
        if rng.random() < style_p:
            result = mutate.degrade_style(
                source, rng, strength=min(temperature, 1.0) * 0.7
            )
            source = result.source
            mutations.extend(result.applied)
            functional_risk |= result.functional_risk

        bug_p = max(0.0, (temperature - 0.8) * 0.6)
        if rng.random() < bug_p:
            result = mutate.corrupt_function(source, rng)
            source = result.source
            mutations.extend(result.applied)
            functional_risk = True

        syntax_p = max(0.0, (temperature - 1.0) * 0.6)
        if rng.random() < syntax_p:
            result = mutate.break_syntax(source, rng)
            source = result.source
            mutations.extend(result.applied)
            intended_status = "syntax"

        raw = source
        if rng.random() < self._fence_probability:
            raw = f"```verilog\n{source}```"
            mutations.append("markdown_fence")

        design = RenderedDesign(
            spec=design.spec, source=source,
            description=design.description,
        )
        self.exchanges.append(LLMExchange(prompt, raw, temperature))
        return GeneratedSample(
            design=design, raw_response=raw, temperature=temperature,
            prompt=prompt, mutations=mutations,
            intended_status=intended_status,
            functional_risk=functional_risk,
        )

    def generate_batch(
        self,
        entry: ExpandedKeyword,
        n_queries: int = 10,
        temperature_range: Tuple[float, float] = (0.2, 1.4),
    ) -> List[GeneratedSample]:
        """The paper's per-prompt procedure: query ``n_queries`` times
        with evenly spread temperatures."""
        lo, hi = temperature_range
        samples = []
        for index in range(n_queries):
            if n_queries > 1:
                temperature = lo + (hi - lo) * index / (n_queries - 1)
            else:
                temperature = lo
            samples.append(self.generate(entry, temperature))
        return samples

    # -- ranking (Fig. 3) ------------------------------------------------------

    RANKING_PREPROMPT = (
        "Act as a teacher and rank the quality of this Verilog code in "
        "scale of 0 to 20, with 0 being syntactically incorrect and 20 "
        "being a good Verilog code in terms of efficiency and coding "
        "style:"
    )

    def rank(self, code: str) -> int:
        """Score ``code`` 0–20, recording the Fig. 3-style exchange."""
        from ..dataset.ranking import score_code

        score = score_code(code)
        prompt = (
            f"{self.RANKING_PREPROMPT}\n\n{code}\n\n"
            "Just give me the score only."
        )
        self.exchanges.append(
            LLMExchange(prompt, f"Score: {score} out of 20.", 0.0)
        )
        return score

    # -- description ---------------------------------------------------------

    def describe(self, code: str) -> str:
        """Produce a design description for arbitrary Verilog text."""
        from ..dataset.describe import describe_source

        description = describe_source(code)
        self.exchanges.append(
            LLMExchange(
                f"Describe the following Verilog design:\n\n{code}",
                description, 0.0,
            )
        )
        return description
