"""Sequential design families.

All families here follow a Moore discipline: every output is a function
of the register state only, which lets the golden models expose a
simple ``step`` interface (inputs sampled before the rising edge, new
state and outputs visible after it).  Clock is always ``clk``; reset
naming and polarity vary per family, mirroring the diversity of real
corpora.
"""

from __future__ import annotations

import random
from typing import Dict, Tuple

from .spec import DesignSpec, GoldenModel, PortDef, mask
from .templates import Family, register_family


def _pick_width(rng: random.Random, lo: int = 2, hi: int = 16) -> int:
    return rng.choice([w for w in (2, 4, 8, 12, 16) if lo <= w <= hi])


@register_family
class DFlipFlop(Family):
    name = "d_flip_flop"
    keyword = "flip-flop"
    expanded_keyword = "D flip-flop"
    category = "sequential"
    complexity_hint = "basic"

    def sample_params(self, rng):
        return {}

    def build(self, params, module_name):
        def reset():
            return 0

        def step(state, i):
            new = i["d"]
            return new, {"q": new, "qn": new ^ 1}

        spec = DesignSpec(
            family=self.name, module_name=module_name, params=params,
            inputs=[PortDef("clk", role="clock"),
                    PortDef("rst", role="reset"), PortDef("d")],
            outputs=[PortDef("q"), PortDef("qn")],
            clocked=True, clock_name="clk", reset_name="rst",
            keyword=self.keyword, expanded_keyword=self.expanded_keyword,
            golden=GoldenModel(reset=reset, step=step),
        )
        source = f"""\
// D flip-flop with synchronous reset and complementary outputs.
module {module_name} (
  input  clk,
  input  rst,
  input  d,
  output reg q,
  output qn
);

  always @(posedge clk) begin
    if (rst)
      q <= 1'b0;
    else
      q <= d;
  end

  assign qn = ~q;

endmodule
"""
        return spec, source

    def describe(self, spec, rng):
        return rng.choice([
            "Design a D flip-flop with synchronous active-high reset "
            "'rst'. On each rising clock edge q takes the value of d; qn "
            "is always the complement of q.",
            "Implement a positive-edge-triggered D flip-flop (ports clk, "
            "rst, d, q, qn) where rst synchronously clears q and qn "
            "outputs ~q.",
        ])


@register_family
class TFlipFlop(Family):
    name = "t_flip_flop"
    keyword = "flip-flop"
    expanded_keyword = "T flip-flop"
    category = "sequential"
    complexity_hint = "basic"

    def sample_params(self, rng):
        return {}

    def build(self, params, module_name):
        def reset():
            return 0

        def step(state, i):
            new = state ^ i["t"]
            return new, {"q": new}

        spec = DesignSpec(
            family=self.name, module_name=module_name, params=params,
            inputs=[PortDef("clk", role="clock"),
                    PortDef("rst", role="reset"), PortDef("t")],
            outputs=[PortDef("q")],
            clocked=True, clock_name="clk", reset_name="rst",
            keyword=self.keyword, expanded_keyword=self.expanded_keyword,
            golden=GoldenModel(reset=reset, step=step),
        )
        source = f"""\
// T flip-flop: toggles when t is high.
module {module_name} (
  input  clk,
  input  rst,
  input  t,
  output reg q
);

  always @(posedge clk) begin
    if (rst)
      q <= 1'b0;
    else if (t)
      q <= ~q;
  end

endmodule
"""
        return spec, source

    def describe(self, spec, rng):
        return (
            "Design a T flip-flop with synchronous reset: when t is high "
            "the output q toggles on the rising clock edge, otherwise it "
            "holds. rst clears q."
        )


@register_family
class RegisterEn(Family):
    name = "register"
    keyword = "register"
    expanded_keyword = "register with enable"
    category = "sequential"
    complexity_hint = "basic"

    def sample_params(self, rng):
        return {"WIDTH": _pick_width(rng)}

    def build(self, params, module_name):
        width = params["WIDTH"]

        def reset():
            return 0

        def step(state, i):
            new = i["d"] if i["en"] else state
            return new, {"q": new}

        spec = DesignSpec(
            family=self.name, module_name=module_name, params=params,
            inputs=[PortDef("clk", role="clock"),
                    PortDef("rst", role="reset"),
                    PortDef("en"), PortDef("d", width)],
            outputs=[PortDef("q", width)],
            clocked=True, clock_name="clk", reset_name="rst",
            keyword=self.keyword, expanded_keyword=self.expanded_keyword,
            golden=GoldenModel(reset=reset, step=step),
        )
        source = f"""\
// {width}-bit register with clock enable and synchronous reset.
module {module_name} #(
  parameter WIDTH = {width}
) (
  input  clk,
  input  rst,
  input  en,
  input  [WIDTH-1:0] d,
  output reg [WIDTH-1:0] q
);

  always @(posedge clk) begin
    if (rst)
      q <= {{WIDTH{{1'b0}}}};
    else if (en)
      q <= d;
  end

endmodule
"""
        return spec, source

    def describe(self, spec, rng):
        width = spec.params["WIDTH"]
        return rng.choice([
            f"Design a {width}-bit register with clock-enable. On a "
            "rising clock edge, q loads d when en is high and holds "
            "otherwise; rst synchronously clears q.",
            f"Implement a {width}-bit D register (clk, rst, en, d, q) "
            "with synchronous active-high reset and write enable.",
        ])


@register_family
class UpCounter(Family):
    name = "up_counter"
    keyword = "counter"
    expanded_keyword = "up counter"
    category = "sequential"
    complexity_hint = "basic"

    def sample_params(self, rng):
        return {"WIDTH": _pick_width(rng)}

    def build(self, params, module_name):
        width = params["WIDTH"]

        def reset():
            return 0

        def step(state, i):
            new = (state + 1) & mask(width) if i["en"] else state
            return new, {"count": new}

        spec = DesignSpec(
            family=self.name, module_name=module_name, params=params,
            inputs=[PortDef("clk", role="clock"),
                    PortDef("rst_n", role="reset"), PortDef("en")],
            outputs=[PortDef("count", width)],
            clocked=True, clock_name="clk", reset_name="rst_n",
            reset_active_low=True,
            keyword=self.keyword, expanded_keyword=self.expanded_keyword,
            golden=GoldenModel(reset=reset, step=step),
        )
        source = f"""\
// {width}-bit up counter with enable and asynchronous active-low reset.
module {module_name} #(
  parameter WIDTH = {width}
) (
  input  clk,
  input  rst_n,
  input  en,
  output reg [WIDTH-1:0] count
);

  always @(posedge clk or negedge rst_n) begin
    if (!rst_n)
      count <= {{WIDTH{{1'b0}}}};
    else if (en)
      count <= count + 1'b1;
  end

endmodule
"""
        return spec, source

    def describe(self, spec, rng):
        width = spec.params["WIDTH"]
        return rng.choice([
            f"Design a {width}-bit up counter with an enable input and "
            "an asynchronous active-low reset rst_n. The counter "
            "increments on each rising clock edge while en is high and "
            "wraps around at its maximum value.",
            f"Implement a {width}-bit binary counter (clk, rst_n, en, "
            "count) that counts up when enabled; rst_n asynchronously "
            "clears it.",
        ])


@register_family
class DownCounter(Family):
    name = "down_counter"
    keyword = "counter"
    expanded_keyword = "down counter"
    category = "sequential"
    complexity_hint = "basic"

    def sample_params(self, rng):
        return {"WIDTH": _pick_width(rng)}

    def build(self, params, module_name):
        width = params["WIDTH"]

        def reset():
            return mask(width)

        def step(state, i):
            new = (state - 1) & mask(width) if i["en"] else state
            return new, {"count": new, "zero": int(new == 0)}

        spec = DesignSpec(
            family=self.name, module_name=module_name, params=params,
            inputs=[PortDef("clk", role="clock"),
                    PortDef("rst", role="reset"), PortDef("en")],
            outputs=[PortDef("count", width), PortDef("zero")],
            clocked=True, clock_name="clk", reset_name="rst",
            keyword=self.keyword, expanded_keyword=self.expanded_keyword,
            golden=GoldenModel(reset=reset, step=step),
        )
        source = f"""\
// {width}-bit down counter; resets to all ones, flags zero.
module {module_name} #(
  parameter WIDTH = {width}
) (
  input  clk,
  input  rst,
  input  en,
  output reg [WIDTH-1:0] count,
  output zero
);

  always @(posedge clk) begin
    if (rst)
      count <= {{WIDTH{{1'b1}}}};
    else if (en)
      count <= count - 1'b1;
  end

  assign zero = (count == {{WIDTH{{1'b0}}}});

endmodule
"""
        return spec, source

    def describe(self, spec, rng):
        width = spec.params["WIDTH"]
        return (
            f"Design a {width}-bit down counter that synchronously "
            "resets to all ones, decrements while en is high, and "
            "asserts 'zero' when the count is zero."
        )


@register_family
class UpDownCounter(Family):
    name = "updown_counter"
    keyword = "counter"
    expanded_keyword = "up/down counter"
    category = "sequential"
    complexity_hint = "intermediate"

    def sample_params(self, rng):
        return {"WIDTH": _pick_width(rng)}

    def build(self, params, module_name):
        width = params["WIDTH"]

        def reset():
            return 0

        def step(state, i):
            if not i["en"]:
                new = state
            elif i["up"]:
                new = (state + 1) & mask(width)
            else:
                new = (state - 1) & mask(width)
            return new, {"count": new}

        spec = DesignSpec(
            family=self.name, module_name=module_name, params=params,
            inputs=[PortDef("clk", role="clock"),
                    PortDef("rst", role="reset"),
                    PortDef("en"), PortDef("up")],
            outputs=[PortDef("count", width)],
            clocked=True, clock_name="clk", reset_name="rst",
            keyword=self.keyword, expanded_keyword=self.expanded_keyword,
            golden=GoldenModel(reset=reset, step=step),
        )
        source = f"""\
// {width}-bit up/down counter.
module {module_name} #(
  parameter WIDTH = {width}
) (
  input  clk,
  input  rst,
  input  en,
  input  up,
  output reg [WIDTH-1:0] count
);

  always @(posedge clk) begin
    if (rst)
      count <= {{WIDTH{{1'b0}}}};
    else if (en) begin
      if (up)
        count <= count + 1'b1;
      else
        count <= count - 1'b1;
    end
  end

endmodule
"""
        return spec, source

    def describe(self, spec, rng):
        width = spec.params["WIDTH"]
        return (
            f"Design a {width}-bit up/down counter: while en is high it "
            "increments when up=1 and decrements when up=0, wrapping on "
            "overflow/underflow; rst synchronously clears it."
        )


@register_family
class ModNCounter(Family):
    name = "mod_n_counter"
    keyword = "counter"
    expanded_keyword = "modulo-N counter"
    category = "sequential"
    complexity_hint = "intermediate"

    def sample_params(self, rng):
        return {"MODULO": rng.choice([3, 5, 6, 10, 12, 13])}

    def build(self, params, module_name):
        modulo = params["MODULO"]
        width = max((modulo - 1).bit_length(), 1)

        def reset():
            return 0

        def step(state, i):
            new = (state + 1) % modulo if i["en"] else state
            return new, {"count": new, "tick": int(new == modulo - 1)}

        spec = DesignSpec(
            family=self.name, module_name=module_name, params=params,
            inputs=[PortDef("clk", role="clock"),
                    PortDef("rst", role="reset"), PortDef("en")],
            outputs=[PortDef("count", width), PortDef("tick")],
            clocked=True, clock_name="clk", reset_name="rst",
            keyword=self.keyword,
            expanded_keyword=f"modulo-{modulo} counter",
            golden=GoldenModel(reset=reset, step=step),
        )
        source = f"""\
// Modulo-{modulo} counter with terminal-count tick.
module {module_name} (
  input  clk,
  input  rst,
  input  en,
  output reg [{width-1}:0] count,
  output tick
);

  localparam MODULO = {modulo};

  always @(posedge clk) begin
    if (rst)
      count <= 0;
    else if (en) begin
      if (count == MODULO - 1)
        count <= 0;
      else
        count <= count + 1'b1;
    end
  end

  assign tick = (count == MODULO - 1);

endmodule
"""
        return spec, source

    def describe(self, spec, rng):
        modulo = spec.params["MODULO"]
        return rng.choice([
            f"Design a modulo-{modulo} counter that counts 0 to "
            f"{modulo-1} and wraps. 'tick' is high whenever the count "
            "equals the terminal value. Counting is gated by en and rst "
            "synchronously clears the count.",
            f"Implement a counter that divides by {modulo}: it cycles "
            f"through {modulo} states and raises tick in the last state.",
        ])


@register_family
class ShiftRegister(Family):
    name = "shift_register"
    keyword = "shift register"
    expanded_keyword = "serial-in shift register"
    category = "sequential"
    complexity_hint = "basic"

    def sample_params(self, rng):
        return {"WIDTH": _pick_width(rng, 4, 16)}

    def build(self, params, module_name):
        width = params["WIDTH"]

        def reset():
            return 0

        def step(state, i):
            new = ((state << 1) | i["sin"]) & mask(width)
            return new, {"q": new, "sout": (new >> (width - 1)) & 1}

        spec = DesignSpec(
            family=self.name, module_name=module_name, params=params,
            inputs=[PortDef("clk", role="clock"),
                    PortDef("rst", role="reset"), PortDef("sin")],
            outputs=[PortDef("q", width), PortDef("sout")],
            clocked=True, clock_name="clk", reset_name="rst",
            keyword=self.keyword, expanded_keyword=self.expanded_keyword,
            golden=GoldenModel(reset=reset, step=step),
        )
        source = f"""\
// {width}-bit serial-in parallel-out shift register (MSB out).
module {module_name} #(
  parameter WIDTH = {width}
) (
  input  clk,
  input  rst,
  input  sin,
  output reg [WIDTH-1:0] q,
  output sout
);

  always @(posedge clk) begin
    if (rst)
      q <= {{WIDTH{{1'b0}}}};
    else
      q <= {{q[WIDTH-2:0], sin}};
  end

  assign sout = q[WIDTH-1];

endmodule
"""
        return spec, source

    def describe(self, spec, rng):
        width = spec.params["WIDTH"]
        return (
            f"Design a {width}-bit shift register that shifts in 'sin' "
            "at the LSB on every rising clock edge. q exposes the "
            "parallel contents and sout is the MSB. rst synchronously "
            "clears the register."
        )


@register_family
class RingCounter(Family):
    name = "ring_counter"
    keyword = "counter"
    expanded_keyword = "ring counter"
    category = "sequential"
    complexity_hint = "intermediate"

    def sample_params(self, rng):
        return {"WIDTH": rng.choice([4, 8])}

    def build(self, params, module_name):
        width = params["WIDTH"]

        def reset():
            return 1

        def step(state, i):
            new = ((state << 1) | (state >> (width - 1))) & mask(width)
            return new, {"q": new}

        spec = DesignSpec(
            family=self.name, module_name=module_name, params=params,
            inputs=[PortDef("clk", role="clock"),
                    PortDef("rst", role="reset")],
            outputs=[PortDef("q", width)],
            clocked=True, clock_name="clk", reset_name="rst",
            keyword=self.keyword, expanded_keyword=self.expanded_keyword,
            golden=GoldenModel(reset=reset, step=step),
        )
        source = f"""\
// {width}-bit one-hot ring counter.
module {module_name} #(
  parameter WIDTH = {width}
) (
  input  clk,
  input  rst,
  output reg [WIDTH-1:0] q
);

  always @(posedge clk) begin
    if (rst)
      q <= {{{{(WIDTH-1){{1'b0}}}}, 1'b1}};
    else
      q <= {{q[WIDTH-2:0], q[WIDTH-1]}};
  end

endmodule
"""
        return spec, source

    def describe(self, spec, rng):
        width = spec.params["WIDTH"]
        return (
            f"Design a {width}-bit ring counter. Reset loads the one-hot "
            "pattern 0...01 and every clock edge rotates it left by one "
            "position."
        )


@register_family
class JohnsonCounter(Family):
    name = "johnson_counter"
    keyword = "counter"
    expanded_keyword = "Johnson counter"
    category = "sequential"
    complexity_hint = "intermediate"

    def sample_params(self, rng):
        return {"WIDTH": rng.choice([4, 8])}

    def build(self, params, module_name):
        width = params["WIDTH"]

        def reset():
            return 0

        def step(state, i):
            inverted_msb = ((state >> (width - 1)) & 1) ^ 1
            new = ((state << 1) | inverted_msb) & mask(width)
            return new, {"q": new}

        spec = DesignSpec(
            family=self.name, module_name=module_name, params=params,
            inputs=[PortDef("clk", role="clock"),
                    PortDef("rst", role="reset")],
            outputs=[PortDef("q", width)],
            clocked=True, clock_name="clk", reset_name="rst",
            keyword=self.keyword, expanded_keyword=self.expanded_keyword,
            golden=GoldenModel(reset=reset, step=step),
        )
        source = f"""\
// {width}-bit Johnson (twisted-ring) counter.
module {module_name} #(
  parameter WIDTH = {width}
) (
  input  clk,
  input  rst,
  output reg [WIDTH-1:0] q
);

  always @(posedge clk) begin
    if (rst)
      q <= {{WIDTH{{1'b0}}}};
    else
      q <= {{q[WIDTH-2:0], ~q[WIDTH-1]}};
  end

endmodule
"""
        return spec, source

    def describe(self, spec, rng):
        width = spec.params["WIDTH"]
        return (
            f"Design a {width}-bit Johnson counter: on each clock edge "
            "the register shifts left and the complement of the old MSB "
            "enters at the LSB. rst clears the register."
        )


@register_family
class GrayCounter(Family):
    name = "gray_counter"
    keyword = "counter"
    expanded_keyword = "Gray code counter"
    category = "sequential"
    complexity_hint = "advanced"

    def sample_params(self, rng):
        return {"WIDTH": rng.choice([3, 4, 5, 8])}

    def build(self, params, module_name):
        width = params["WIDTH"]

        def reset():
            return 0  # binary state

        def step(state, i):
            new = (state + 1) & mask(width) if i["en"] else state
            return new, {"gray": new ^ (new >> 1)}

        spec = DesignSpec(
            family=self.name, module_name=module_name, params=params,
            inputs=[PortDef("clk", role="clock"),
                    PortDef("rst", role="reset"), PortDef("en")],
            outputs=[PortDef("gray", width)],
            clocked=True, clock_name="clk", reset_name="rst",
            keyword=self.keyword, expanded_keyword=self.expanded_keyword,
            golden=GoldenModel(reset=reset, step=step),
        )
        source = f"""\
// {width}-bit Gray code counter (binary core, Gray output).
module {module_name} #(
  parameter WIDTH = {width}
) (
  input  clk,
  input  rst,
  input  en,
  output [WIDTH-1:0] gray
);

  reg [WIDTH-1:0] binary;

  always @(posedge clk) begin
    if (rst)
      binary <= {{WIDTH{{1'b0}}}};
    else if (en)
      binary <= binary + 1'b1;
  end

  assign gray = binary ^ (binary >> 1);

endmodule
"""
        return spec, source

    def describe(self, spec, rng):
        width = spec.params["WIDTH"]
        return (
            f"Design a {width}-bit Gray code counter: an internal binary "
            "counter increments while en is high and the output 'gray' "
            "is its Gray encoding (binary XOR binary>>1)."
        )


@register_family
class Lfsr(Family):
    name = "lfsr"
    keyword = "lfsr"
    expanded_keyword = "linear feedback shift register"
    category = "sequential"
    complexity_hint = "advanced"

    #: Maximal-length Fibonacci taps (XNOR form) per width.
    TAPS = {4: (3, 2), 8: (7, 5, 4, 3), 16: (15, 14, 12, 3)}

    def sample_params(self, rng):
        return {"WIDTH": rng.choice(sorted(self.TAPS))}

    def build(self, params, module_name):
        width = params["WIDTH"]
        taps = self.TAPS[width]

        def reset():
            return 0

        def step(state, i):
            xor_taps = 0
            for t in taps:
                xor_taps ^= (state >> t) & 1
            feedback = xor_taps ^ 1  # XNOR form
            new = ((state << 1) | feedback) & mask(width)
            return new, {"lfsr_out": new}

        spec = DesignSpec(
            family=self.name, module_name=module_name, params=params,
            inputs=[PortDef("clk", role="clock"),
                    PortDef("rst", role="reset")],
            outputs=[PortDef("lfsr_out", width)],
            clocked=True, clock_name="clk", reset_name="rst",
            keyword=self.keyword, expanded_keyword=self.expanded_keyword,
            golden=GoldenModel(reset=reset, step=step),
        )
        xor_expr = " ^ ".join(f"state[{t}]" for t in taps)
        source = f"""\
// {width}-bit maximal-length LFSR (XNOR feedback, all-zeros start).
module {module_name} #(
  parameter WIDTH = {width}
) (
  input  clk,
  input  rst,
  output [WIDTH-1:0] lfsr_out
);

  reg [WIDTH-1:0] state;
  wire feedback = ~({xor_expr});

  always @(posedge clk) begin
    if (rst)
      state <= {{WIDTH{{1'b0}}}};
    else
      state <= {{state[WIDTH-2:0], feedback}};
  end

  assign lfsr_out = state;

endmodule
"""
        return spec, source

    def describe(self, spec, rng):
        width = spec.params["WIDTH"]
        taps = ", ".join(str(t) for t in self.TAPS[width])
        return (
            f"Design a {width}-bit LFSR with XNOR feedback from taps "
            f"[{taps}] shifted into the LSB; reset clears the state to "
            "all zeros (valid for the XNOR form). Output lfsr_out "
            "exposes the register."
        )


@register_family
class EdgeDetector(Family):
    name = "edge_detector"
    keyword = "detector"
    expanded_keyword = "edge detector"
    category = "sequential"
    complexity_hint = "intermediate"

    def sample_params(self, rng):
        return {}

    def build(self, params, module_name):
        def reset():
            return (0, 0, 0)  # prev, rise_ff, fall_ff

        def step(state, i):
            prev, _, _ = state
            rise = int(i["sig"] == 1 and prev == 0)
            fall = int(i["sig"] == 0 and prev == 1)
            return (i["sig"], rise, fall), {"rise": rise, "fall": fall}

        spec = DesignSpec(
            family=self.name, module_name=module_name, params=params,
            inputs=[PortDef("clk", role="clock"),
                    PortDef("rst", role="reset"), PortDef("sig")],
            outputs=[PortDef("rise"), PortDef("fall")],
            clocked=True, clock_name="clk", reset_name="rst",
            keyword=self.keyword, expanded_keyword=self.expanded_keyword,
            golden=GoldenModel(reset=reset, step=step),
        )
        source = f"""\
// Registered edge detector: one-cycle pulses on rise/fall of sig.
module {module_name} (
  input  clk,
  input  rst,
  input  sig,
  output reg rise,
  output reg fall
);

  reg sig_prev;

  always @(posedge clk) begin
    if (rst) begin
      sig_prev <= 1'b0;
      rise <= 1'b0;
      fall <= 1'b0;
    end else begin
      rise <= sig & ~sig_prev;
      fall <= ~sig & sig_prev;
      sig_prev <= sig;
    end
  end

endmodule
"""
        return spec, source

    def describe(self, spec, rng):
        return (
            "Design a registered edge detector for input 'sig'. One "
            "clock after sig goes 0->1 the output 'rise' pulses high for "
            "one cycle; 'fall' does the same for 1->0 transitions. rst "
            "clears all state."
        )


@register_family
class SequenceDetector(Family):
    name = "sequence_detector"
    keyword = "fsm"
    expanded_keyword = "sequence detector FSM"
    category = "sequential"
    complexity_hint = "advanced"

    PATTERNS = {"1011": 4, "1101": 4, "110": 3, "101": 3}

    def sample_params(self, rng):
        pattern = rng.choice(sorted(self.PATTERNS))
        return {"PATTERN": int(pattern, 2), "LENGTH": len(pattern)}

    def build(self, params, module_name):
        length = params["LENGTH"]
        pattern_bits = format(params["PATTERN"], f"0{length}b")

        def reset():
            return ("", 0)  # matched prefix, detected flag

        def step(state, i):
            history, _ = state
            history = (history + str(i["din"]))[-8:]
            # Overlapping detection: registered 'found' output.
            found = int(history.endswith(pattern_bits))
            return (history, found), {"found": found}

        spec = DesignSpec(
            family=self.name, module_name=module_name, params=params,
            inputs=[PortDef("clk", role="clock"),
                    PortDef("rst", role="reset"), PortDef("din")],
            outputs=[PortDef("found")],
            clocked=True, clock_name="clk", reset_name="rst",
            keyword=self.keyword,
            expanded_keyword=f'"{pattern_bits}" sequence detector',
            golden=GoldenModel(reset=reset, step=step),
        )
        # Build a shift-register matcher: simple, correct, overlapping.
        source = f"""\
// Overlapping detector for the serial bit pattern {pattern_bits}.
module {module_name} (
  input  clk,
  input  rst,
  input  din,
  output reg found
);

  reg [{length-2}:0] history;

  always @(posedge clk) begin
    if (rst) begin
      history <= 0;
      found <= 1'b0;
    end else begin
      found <= ({{history, din}} == {length}'b{pattern_bits});
      history <= {{history[{length-3}:0], din}};
    end
  end

endmodule
"""
        if length == 3:
            # history holds 2 bits; the generic template's slice
            # [length-3:0] would degenerate, so use a fixed form.
            source = f"""\
// Overlapping detector for the serial bit pattern {pattern_bits}.
module {module_name} (
  input  clk,
  input  rst,
  input  din,
  output reg found
);

  reg [1:0] history;

  always @(posedge clk) begin
    if (rst) begin
      history <= 2'b00;
      found <= 1'b0;
    end else begin
      found <= ({{history, din}} == 3'b{pattern_bits});
      history <= {{history[0], din}};
    end
  end

endmodule
"""
        return spec, source

    def describe(self, spec, rng):
        length = spec.params["LENGTH"]
        pattern_bits = format(spec.params["PATTERN"], f"0{length}b")
        return rng.choice([
            f"Design a sequence detector for the serial pattern "
            f"{pattern_bits} on input din (MSB first, overlapping "
            "allowed). The registered output 'found' pulses high one "
            "cycle after the final bit of the pattern arrives.",
            f"Implement an overlapping {pattern_bits} bit-sequence "
            "detector with a one-cycle registered 'found' pulse.",
        ])


@register_family
class Pwm(Family):
    name = "pwm"
    keyword = "pwm"
    expanded_keyword = "PWM generator"
    category = "sequential"
    complexity_hint = "intermediate"

    def sample_params(self, rng):
        return {"WIDTH": rng.choice([4, 8])}

    def build(self, params, module_name):
        width = params["WIDTH"]

        def reset():
            return 0

        def step(state, i):
            new = (state + 1) & mask(width)
            return new, {"pwm_out": int(new < i["duty"])}

        spec = DesignSpec(
            family=self.name, module_name=module_name, params=params,
            inputs=[PortDef("clk", role="clock"),
                    PortDef("rst", role="reset"),
                    PortDef("duty", width)],
            outputs=[PortDef("pwm_out")],
            clocked=True, clock_name="clk", reset_name="rst",
            keyword=self.keyword, expanded_keyword=self.expanded_keyword,
            golden=GoldenModel(reset=reset, step=step,
                               mealy_outputs=("pwm_out",)),
        )
        source = f"""\
// PWM generator: output high while counter < duty.
module {module_name} #(
  parameter WIDTH = {width}
) (
  input  clk,
  input  rst,
  input  [WIDTH-1:0] duty,
  output pwm_out
);

  reg [WIDTH-1:0] counter;

  always @(posedge clk) begin
    if (rst)
      counter <= {{WIDTH{{1'b0}}}};
    else
      counter <= counter + 1'b1;
  end

  assign pwm_out = (counter < duty);

endmodule
"""
        return spec, source

    def describe(self, spec, rng):
        width = spec.params["WIDTH"]
        return (
            f"Design a {width}-bit PWM generator: a free-running counter "
            "increments every clock, and pwm_out is high while the "
            "counter is less than the 'duty' input."
        )


@register_family
class Accumulator(Family):
    name = "accumulator"
    keyword = "arithmetic"
    expanded_keyword = "accumulator"
    category = "sequential"
    complexity_hint = "intermediate"

    def sample_params(self, rng):
        return {"WIDTH": _pick_width(rng, 8, 16)}

    def build(self, params, module_name):
        width = params["WIDTH"]

        def reset():
            return 0

        def step(state, i):
            if i["clear"]:
                new = 0
            elif i["add"]:
                new = (state + i["din"]) & mask(width)
            else:
                new = state
            return new, {"acc": new}

        spec = DesignSpec(
            family=self.name, module_name=module_name, params=params,
            inputs=[PortDef("clk", role="clock"),
                    PortDef("rst", role="reset"),
                    PortDef("clear"), PortDef("add"),
                    PortDef("din", width)],
            outputs=[PortDef("acc", width)],
            clocked=True, clock_name="clk", reset_name="rst",
            keyword=self.keyword, expanded_keyword=self.expanded_keyword,
            golden=GoldenModel(reset=reset, step=step),
        )
        source = f"""\
// {width}-bit accumulator with clear and add-enable.
module {module_name} #(
  parameter WIDTH = {width}
) (
  input  clk,
  input  rst,
  input  clear,
  input  add,
  input  [WIDTH-1:0] din,
  output reg [WIDTH-1:0] acc
);

  always @(posedge clk) begin
    if (rst || clear)
      acc <= {{WIDTH{{1'b0}}}};
    else if (add)
      acc <= acc + din;
  end

endmodule
"""
        return spec, source

    def describe(self, spec, rng):
        width = spec.params["WIDTH"]
        return (
            f"Design a {width}-bit accumulator. Each rising clock edge "
            "with add=1 adds din to the running total 'acc' (wrapping); "
            "clear (or rst) zeroes the total and takes priority over "
            "add."
        )


@register_family
class SyncFifo(Family):
    name = "sync_fifo"
    keyword = "fifo"
    expanded_keyword = "synchronous FIFO"
    category = "sequential"
    complexity_hint = "expert"

    def sample_params(self, rng):
        return {"DEPTH": rng.choice([4, 8]), "WIDTH": rng.choice([8, 16])}

    def build(self, params, module_name):
        depth, width = params["DEPTH"], params["WIDTH"]
        ptr_w = (depth - 1).bit_length()  # log2(depth); +1 wrap bit

        def reset():
            # None marks never-written slots (x in hardware) so the
            # harness skips comparing dout until real data arrives.
            return ([None] * depth, 0, 0)  # mem, wp, rp (w/ wrap bits)

        def step(state, i):
            mem, wp, rp = state
            mem = list(mem)
            count = (wp - rp) % (2 * depth)
            full = count == depth
            empty = count == 0
            if i["wr"] and not full:
                mem[wp % depth] = i["din"]
                wp = (wp + 1) % (2 * depth)
            if i["rd"] and not empty:
                rp = (rp + 1) % (2 * depth)
            count = (wp - rp) % (2 * depth)
            return (mem, wp, rp), {
                "dout": mem[rp % depth],
                "full": int(count == depth),
                "empty": int(count == 0),
            }

        spec = DesignSpec(
            family=self.name, module_name=module_name, params=params,
            inputs=[PortDef("clk", role="clock"),
                    PortDef("rst", role="reset"),
                    PortDef("wr"), PortDef("rd"),
                    PortDef("din", width)],
            outputs=[PortDef("dout", width), PortDef("full"),
                     PortDef("empty")],
            clocked=True, clock_name="clk", reset_name="rst",
            keyword=self.keyword, expanded_keyword=self.expanded_keyword,
            golden=GoldenModel(reset=reset, step=step),
        )
        source = f"""\
// Synchronous FIFO, depth {depth}, width {width}.
module {module_name} #(
  parameter DEPTH = {depth},
  parameter WIDTH = {width},
  parameter PTR_W = {ptr_w}
) (
  input  clk,
  input  rst,
  input  wr,
  input  rd,
  input  [WIDTH-1:0] din,
  output [WIDTH-1:0] dout,
  output full,
  output empty
);

  reg [WIDTH-1:0] mem [0:DEPTH-1];
  reg [PTR_W:0] wp, rp;

  wire [PTR_W:0] count = wp - rp;
  assign full  = (count == DEPTH);
  assign empty = (count == 0);

  always @(posedge clk) begin
    if (rst) begin
      wp <= 0;
      rp <= 0;
    end else begin
      if (wr && !full) begin
        mem[wp[PTR_W-1:0]] <= din;
        wp <= wp + 1'b1;
      end
      if (rd && !empty)
        rp <= rp + 1'b1;
    end
  end

  assign dout = mem[rp[PTR_W-1:0]];

endmodule
"""
        return spec, source

    def describe(self, spec, rng):
        depth = spec.params["DEPTH"]
        width = spec.params["WIDTH"]
        return rng.choice([
            f"Design a synchronous FIFO with depth {depth} and data "
            f"width {width}. Writes (wr) push din when not full; reads "
            "(rd) pop when not empty; dout shows the oldest element "
            "(first-word fall-through). full and empty reflect the "
            "occupancy. rst synchronously empties the FIFO.",
            f"Implement a {depth}-entry, {width}-bit synchronous FIFO "
            "with wr/rd handshakes, first-word-fall-through dout, and "
            "full/empty flags.",
        ])


@register_family
class TrafficLight(Family):
    name = "traffic_light"
    keyword = "fsm"
    expanded_keyword = "traffic light controller"
    category = "sequential"
    complexity_hint = "expert"

    #: (duration, one-hot output {red,yellow,green}) per state.
    PLAN = [("RED", 3, 0b100), ("GREEN", 3, 0b001), ("YELLOW", 1, 0b010)]

    def sample_params(self, rng):
        return {}

    def build(self, params, module_name):
        plan = self.PLAN

        def reset():
            return (0, 0)  # state index, timer

        def step(state, i):
            idx, timer = state
            duration = plan[idx][1]
            if timer >= duration - 1:
                idx = (idx + 1) % len(plan)
                timer = 0
            else:
                timer += 1
            lights = plan[idx][2]
            return (idx, timer), {
                "red": (lights >> 2) & 1,
                "yellow": (lights >> 1) & 1,
                "green": lights & 1,
            }

        spec = DesignSpec(
            family=self.name, module_name=module_name, params=params,
            inputs=[PortDef("clk", role="clock"),
                    PortDef("rst", role="reset")],
            outputs=[PortDef("red"), PortDef("yellow"), PortDef("green")],
            clocked=True, clock_name="clk", reset_name="rst",
            keyword=self.keyword, expanded_keyword=self.expanded_keyword,
            golden=GoldenModel(reset=reset, step=step),
        )
        source = f"""\
// Traffic light FSM: red (3 cycles) -> green (3) -> yellow (1).
module {module_name} (
  input  clk,
  input  rst,
  output red,
  output yellow,
  output green
);

  localparam S_RED    = 2'd0;
  localparam S_GREEN  = 2'd1;
  localparam S_YELLOW = 2'd2;

  reg [1:0] state;
  reg [1:0] timer;

  always @(posedge clk) begin
    if (rst) begin
      state <= S_RED;
      timer <= 0;
    end else begin
      case (state)
        S_RED:
          if (timer == 2) begin state <= S_GREEN; timer <= 0; end
          else timer <= timer + 1'b1;
        S_GREEN:
          if (timer == 2) begin state <= S_YELLOW; timer <= 0; end
          else timer <= timer + 1'b1;
        S_YELLOW: begin
          state <= S_RED;
          timer <= 0;
        end
        default: begin
          state <= S_RED;
          timer <= 0;
        end
      endcase
    end
  end

  assign red    = (state == S_RED);
  assign yellow = (state == S_YELLOW);
  assign green  = (state == S_GREEN);

endmodule
"""
        return spec, source

    def describe(self, spec, rng):
        return (
            "Design a traffic light controller FSM with three one-hot "
            "outputs red, yellow, green. After reset the light is red "
            "for 3 clock cycles, then green for 3 cycles, then yellow "
            "for 1 cycle, and the sequence repeats."
        )


@register_family
class ClockDivider(Family):
    name = "clock_divider"
    keyword = "clock"
    expanded_keyword = "clock divider"
    category = "sequential"
    complexity_hint = "intermediate"

    def sample_params(self, rng):
        return {"DIVIDE_BY": rng.choice([2, 4, 8])}

    def build(self, params, module_name):
        div = params["DIVIDE_BY"]
        half = div // 2
        width = max((div - 1).bit_length(), 1)

        def reset():
            return (0, 0)  # counter, out

        def step(state, i):
            counter, out = state
            if counter == half - 1:
                counter = 0
                out ^= 1
            else:
                counter += 1
            return (counter, out), {"clk_out": out}

        spec = DesignSpec(
            family=self.name, module_name=module_name, params=params,
            inputs=[PortDef("clk", role="clock"),
                    PortDef("rst", role="reset")],
            outputs=[PortDef("clk_out")],
            clocked=True, clock_name="clk", reset_name="rst",
            keyword=self.keyword,
            expanded_keyword=f"divide-by-{div} clock divider",
            golden=GoldenModel(reset=reset, step=step),
        )
        source = f"""\
// Divide-by-{div} clock divider (50% duty cycle).
module {module_name} (
  input  clk,
  input  rst,
  output reg clk_out
);

  reg [{width-1}:0] counter;

  always @(posedge clk) begin
    if (rst) begin
      counter <= 0;
      clk_out <= 1'b0;
    end else if (counter == {half} - 1) begin
      counter <= 0;
      clk_out <= ~clk_out;
    end else begin
      counter <= counter + 1'b1;
    end
  end

endmodule
"""
        return spec, source

    def describe(self, spec, rng):
        div = spec.params["DIVIDE_BY"]
        return (
            f"Design a divide-by-{div} clock divider producing a 50% "
            f"duty-cycle output clk_out that toggles every {div // 2} "
            "input clock cycles. rst clears the divider."
        )
