"""GitHub-scrape simulator.

The paper's raw material is ~2.4 M Verilog files collected from public
GitHub repositories — a population full of duplicates, empty/corrupted
files, syntax errors, files depending on missing modules/includes, and
a long quality gradient among the files that do compile.  This module
synthesises such a population with known ground truth so every
downstream pipeline stage can be validated quantitatively.

The default :class:`QualityProfile` is calibrated so the pipeline's
funnel proportions resemble the paper's (2.4 M collected → ~29%
surviving filters, with the majority of survivors having dependency
issues only).
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from . import mutate
from .templates import generate_random_design


@dataclass
class RawFile:
    """One scraped file plus hidden ground truth (for validation)."""

    path: str
    content: str
    origin: str = "github"
    #: Ground truth, unknown to the pipeline under test.
    truth_family: Optional[str] = None
    truth_status: str = "clean"
    truth_mutations: List[str] = field(default_factory=list)
    truth_functional_risk: bool = False
    truth_duplicate_of: Optional[str] = None
    #: The pristine reference description when the file derives from a
    #: registry design (None for junk).
    truth_description: Optional[str] = None


@dataclass
class QualityProfile:
    """Mixture weights for the scraped population.

    The categories are disjoint; weights need not sum to 1 (they are
    normalised).  ``style_spectrum`` maps degradation strength ranges
    to weights for the "clean" slice.
    """

    junk: float = 0.07
    syntax_broken: float = 0.18
    dependency: float = 0.17
    duplicate: float = 0.28
    clean: float = 0.30
    #: Within 'clean': (strength_lo, strength_hi, functional_bug_p, weight)
    #: Strengths above 1.0 apply the style damage in two passes.
    style_spectrum: List = field(default_factory=lambda: [
        (0.0, 0.0, 0.0, 0.07),   # pristine
        (0.1, 0.4, 0.0, 0.33),   # lightly degraded
        (0.4, 0.8, 0.15, 0.33),  # heavily degraded
        (0.7, 1.0, 0.65, 0.17),  # ugly and often wrong
        (1.2, 1.8, 0.80, 0.10),  # barely-maintained junk that compiles
    ])

    def normalised(self) -> List:
        total = (self.junk + self.syntax_broken + self.dependency
                 + self.duplicate + self.clean)
        return [
            ("junk", self.junk / total),
            ("syntax", self.syntax_broken / total),
            ("dependency", self.dependency / total),
            ("duplicate", self.duplicate / total),
            ("clean", self.clean / total),
        ]


_REPO_WORDS = ["core", "soc", "fpga", "hdl", "chip", "rtl", "ip", "logic"]
_DIR_WORDS = ["rtl", "src", "hdl", "verilog", "hw", "design"]


class GitHubScrapeSimulator:
    """Produces a raw-file population with a controlled defect mix."""

    def __init__(
        self,
        seed: int = 0,
        profile: Optional[QualityProfile] = None,
    ) -> None:
        self._rng = random.Random(seed)
        self._profile = profile or QualityProfile()
        #: Duplicate-candidate pool: every *eligible* emitted file, in
        #: emission order.  Eligibility (status, length) is fixed at
        #: emission time, so appending eligible files as they are made
        #: is exactly equivalent to the historical "filter the full
        #: emission log on every duplicate draw" — same members, same
        #: order, same RNG draws — while retaining only what a
        #: duplicate can actually reference.
        self._candidates: "deque" = deque()
        self._n_emitted = 0
        self._file_counter = 0

    def _path(self, hint: str) -> str:
        rng = self._rng
        self._file_counter += 1
        repo = (f"{rng.choice(_REPO_WORDS)}-"
                f"{rng.choice(_REPO_WORDS)}{rng.randint(1, 99)}")
        directory = rng.choice(_DIR_WORDS)
        return f"{repo}/{directory}/{hint}_{self._file_counter}.v"

    def scrape(self, n_files: int) -> List[RawFile]:
        """Generate ``n_files`` raw files following the profile."""
        files: List[RawFile] = []
        for batch in self.iter_scrape(n_files, batch_size=max(1, n_files)):
            files.extend(batch)
        return files

    def iter_scrape(
        self,
        n_files: int,
        batch_size: int = 256,
        candidate_window: Optional[int] = None,
    ) -> Iterator[List[RawFile]]:
        """Generate ``n_files`` raw files as a stream of batches.

        The streaming form of :meth:`scrape` — in fact :meth:`scrape`
        is implemented on top of it, so with ``candidate_window=None``
        the emitted population is *identical* to the materialised one
        for the same simulator state.

        ``candidate_window`` bounds the duplicate-candidate pool to the
        most recent N eligible files.  Without it the pool grows with
        the corpus (every clean file ever emitted stays referencable),
        which is exactly the unbounded memory a 1M-file streaming run
        must avoid; with it, duplicates reference recent files only and
        the stream differs from :meth:`scrape` (a different, equally
        valid population).  Setting a window is sticky for the
        simulator's lifetime.
        """
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if candidate_window is not None:
            if candidate_window <= 0:
                raise ValueError("candidate_window must be positive")
            self._candidates = deque(self._candidates,
                                     maxlen=candidate_window)
        categories = self._profile.normalised()
        batch: List[RawFile] = []
        for _ in range(n_files):
            roll = self._rng.random()
            cumulative = 0.0
            chosen = categories[-1][0]
            for name, weight in categories:
                cumulative += weight
                if roll < cumulative:
                    chosen = name
                    break
            produced = self._produce(chosen)
            self._register(produced)
            batch.append(produced)
            if len(batch) >= batch_size:
                yield batch
                batch = []
        if batch:
            yield batch

    def _register(self, produced: RawFile) -> None:
        self._n_emitted += 1
        if (produced.truth_status in ("clean", "dependency")
                and len(produced.content) > 40):
            self._candidates.append(produced)

    # -- category producers ----------------------------------------------------

    def _produce(self, category: str) -> RawFile:
        if category == "junk":
            return self._produce_junk()
        if category == "syntax":
            return self._produce_broken(mutate.break_syntax, "syntax")
        if category == "dependency":
            return self._produce_broken(mutate.break_dependency,
                                        "dependency")
        if category == "duplicate" and self._n_emitted:
            return self._produce_duplicate()
        return self._produce_clean()

    def _produce_junk(self) -> RawFile:
        result = mutate.make_junk_file(self._rng)
        return RawFile(
            path=self._path("misc"), content=result.source,
            truth_status="junk", truth_mutations=result.applied,
        )

    def _produce_broken(self, mutator, status: str) -> RawFile:
        design = generate_random_design(self._rng)
        result = mutator(design.source, self._rng)
        return RawFile(
            path=self._path(design.spec.family),
            content=result.source,
            truth_family=design.spec.family,
            truth_status=status,
            truth_mutations=result.applied,
            truth_description=design.description,
        )

    def _produce_duplicate(self) -> RawFile:
        candidates = self._candidates
        if not candidates:
            return self._produce_clean()
        original = candidates[self._rng.randrange(len(candidates))]
        content = original.content
        mutations = ["duplicate"]
        if self._rng.random() < 0.6:
            # Near-duplicate: whitespace and comment tweaks only, so
            # Jaccard-over-tokens still flags it.
            content = content.replace("  ", " ")
            if self._rng.random() < 0.5:
                content = f"// forked from {original.path}\n" + content
            mutations.append("near_duplicate")
        return RawFile(
            path=self._path("copy"), content=content,
            truth_family=original.truth_family,
            truth_status=original.truth_status,
            truth_mutations=mutations,
            truth_duplicate_of=original.path,
            truth_description=original.truth_description,
        )

    def _produce_clean(self) -> RawFile:
        design = generate_random_design(self._rng)
        spectrum = self._profile.style_spectrum
        total = sum(w for (_, _, _, w) in spectrum)
        roll = self._rng.random() * total
        cumulative = 0.0
        band = spectrum[-1]
        for entry in spectrum:
            cumulative += entry[3]
            if roll < cumulative:
                band = entry
                break
        lo, hi, bug_p, _ = band
        source = design.source
        mutations: List[str] = []
        functional_risk = False
        if hi > 0:
            strength = self._rng.uniform(lo, hi)
            result = mutate.degrade_style(
                source, self._rng, min(strength, 1.0)
            )
            source = result.source
            mutations = result.applied
            functional_risk = result.functional_risk
            if strength > 1.0:
                second = mutate.degrade_style(
                    source, self._rng, strength - 1.0 + 0.5
                )
                source = second.source
                mutations = mutations + second.applied
                functional_risk |= second.functional_risk
        if self._rng.random() < bug_p:
            result = mutate.corrupt_function(source, self._rng)
            source = result.source
            mutations = mutations + result.applied
            functional_risk = True
        return RawFile(
            path=self._path(design.spec.family), content=source,
            truth_family=design.spec.family,
            truth_status="clean",
            truth_mutations=mutations,
            truth_functional_risk=functional_risk,
            truth_description=design.description,
        )
