"""Keyword database for commercial-LLM generation (paper Fig. 2).

The paper's generation pipeline starts from "a database of keywords …
categorized into combinational and sequential circuits", expands each
keyword into specific variations ("expanded-keywords"), then crafts a
detailed prompt per expanded keyword.  This module reproduces that
database and the expansion step, grounded in the design-family registry
so every expanded keyword maps to a generator that can actually produce
the design.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .templates import FAMILY_REGISTRY, family_names, get_family


@dataclass(frozen=True)
class ExpandedKeyword:
    """One expanded keyword: a specific design variation.

    ``family`` names the registry generator behind the variation.
    """

    keyword: str
    expansion: str
    category: str
    family: str


@dataclass
class KeywordDatabase:
    """The keyword DB: base keywords and their expansions."""

    entries: List[ExpandedKeyword] = field(default_factory=list)

    @property
    def keywords(self) -> List[str]:
        seen: List[str] = []
        for entry in self.entries:
            if entry.keyword not in seen:
                seen.append(entry.keyword)
        return seen

    def by_keyword(self, keyword: str) -> List[ExpandedKeyword]:
        return [e for e in self.entries if e.keyword == keyword]

    def by_category(self, category: str) -> List[ExpandedKeyword]:
        return [e for e in self.entries if e.category == category]

    def sample(self, rng: random.Random) -> ExpandedKeyword:
        return rng.choice(self.entries)

    def funnel_stats(self) -> Dict[str, int]:
        """Statistics for the Fig. 2 pipeline report."""
        return {
            "keywords": len(self.keywords),
            "expanded_keywords": len(self.entries),
            "combinational": len(self.by_category("combinational")),
            "sequential": len(self.by_category("sequential")),
        }


def build_keyword_database() -> KeywordDatabase:
    """Build the database from the family registry.

    Each registered family contributes one expanded keyword under its
    base keyword; families whose parameter space covers distinct
    variations (e.g. different multiplexer fan-ins) still map to one
    expansion here — parameter variety is exercised at prompt time.
    """
    db = KeywordDatabase()
    for name in family_names():
        family = get_family(name)
        db.entries.append(
            ExpandedKeyword(
                keyword=family.keyword,
                expansion=family.expanded_keyword or family.name,
                category=family.category,
                family=name,
            )
        )
    return db


def craft_prompt(
    entry: ExpandedKeyword, rng: Optional[random.Random] = None
) -> str:
    """Craft a detailed design-description prompt for one expanded
    keyword, as fed to the commercial LLM in the paper's pipeline."""
    rng = rng or random.Random(0)
    family = get_family(entry.family)
    params = family.sample_params(rng)
    detail = ", ".join(f"{k}={v}" for k, v in sorted(params.items()))
    detail_clause = f" Use {detail}." if detail else ""
    opener = rng.choice([
        "Write a synthesizable Verilog-2001 module implementing",
        "Generate clean, commented Verilog code for",
        "Produce a Verilog RTL implementation of",
    ])
    return (
        f"{opener} a {entry.expansion} ({entry.category} logic)."
        f"{detail_clause} Follow good coding style: ANSI ports, "
        "non-blocking assignments in clocked blocks, and a default in "
        "every case statement."
    )
