"""Quality-degradation operators for corpus synthesis.

A real GitHub scrape is a quality gradient: pristine IP cores down to
student homework with syntax errors.  PyraNet's six layers exist
precisely because of that gradient.  These mutators manufacture it with
*known ground truth*, which lets the pipeline tests assert that filters
and the ranking judge respond correctly.

Severity ladder (matching the intended destination layer):

* :func:`degrade_style` — style/efficiency damage only; the code still
  compiles and usually still works (Layers 2–4 material);
* :func:`corrupt_function` — compilable but functionally wrong
  (operator swaps, inverted conditions; Layers 4–5 material);
* :func:`break_dependency` — well-formed code referencing modules or
  includes that do not exist (Layer 6 "dependency issues");
* :func:`break_syntax` — outright syntax damage (filtered out);
* :func:`make_junk_file` — empty/corrupted/non-Verilog files (removed
  by the first filter).
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple


@dataclass
class MutationResult:
    """A mutated source plus bookkeeping about what was done.

    ``intended_status`` is the expected compile-check outcome:
    ``"clean"``, ``"dependency"``, ``"syntax"``, or ``"junk"``.
    ``functional_risk`` flags mutations that may change behaviour.
    """

    source: str
    applied: List[str] = field(default_factory=list)
    intended_status: str = "clean"
    functional_risk: bool = False


# ---------------------------------------------------------------------------
# Style degradation (compilable)
# ---------------------------------------------------------------------------


def _strip_comments(source: str, rng: random.Random) -> str:
    text = re.sub(r"//[^\n]*", "", source)
    return re.sub(r"/\*.*?\*/", "", text, flags=re.S)


def _mangle_indentation(source: str, rng: random.Random) -> str:
    out = []
    for line in source.splitlines():
        stripped = line.lstrip()
        if not stripped:
            out.append("")
            continue
        indent = rng.choice(["", " ", "  ", "    ", "\t", "\t ", "      "])
        out.append(indent + stripped)
    return "\n".join(out) + "\n"


def _add_trailing_whitespace(source: str, rng: random.Random) -> str:
    out = []
    for line in source.splitlines():
        if line.strip() and rng.random() < 0.4:
            line = line + " " * rng.randint(1, 5)
        out.append(line)
    return "\n".join(out) + "\n"


_IDENT_DEF_RE = re.compile(
    r"\b(?:input|output|inout|wire|reg)\b[^;=]*?\b([a-zA-Z_][a-zA-Z0-9_]*)\s*[,;)]"
)


def _cryptic_rename(source: str, rng: random.Random) -> str:
    """Rename some internal wires/regs to meaningless names.

    Ports are left alone so interfaces (and testbenches) keep working.
    """
    # Find names declared as internal wire/reg only (not in the header).
    header_end = source.find(");")
    body = source[header_end:] if header_end >= 0 else source
    decls = re.findall(
        r"\b(?:wire|reg)\s*(?:\[[^\]]*\]\s*)?([a-zA-Z_][a-zA-Z0-9_]*)\s*[;,=]",
        body,
    )
    out = source
    counter = 0
    for name in decls:
        if len(name) <= 2 or rng.random() < 0.5:
            continue
        counter += 1
        new_name = rng.choice(["n", "t", "w", "s", "x"]) + str(
            rng.randint(0, 99)
        )
        out = re.sub(rf"\b{re.escape(name)}\b", new_name, out)
    return out


def _remove_case_default(source: str, rng: random.Random) -> str:
    return re.sub(r"^\s*default\s*:[^\n]*\n", "", source, count=1,
                  flags=re.M)


def _blockify_nonblocking(source: str, rng: random.Random) -> str:
    """Turn some non-blocking assigns into blocking ones (bad style in
    clocked logic; may also change behaviour)."""
    parts = source.split("<=")
    if len(parts) < 2:
        return source
    out = parts[0]
    for chunk in parts[1:]:
        # Keep comparisons intact: "<=" in an if-condition stays.
        if rng.random() < 0.6:
            out += "=" + chunk
        else:
            out += "<=" + chunk
    return out


def _add_unused_signal(source: str, rng: random.Random) -> str:
    name = f"unused_{rng.randint(0, 999)}"
    width = rng.choice(["", "[3:0] ", "[7:0] "])
    decl = f"  wire {width}{name};\n"
    index = source.find(");")
    if index < 0:
        return source
    insertion = source.find("\n", index) + 1
    return source[:insertion] + decl + source[insertion:]


_STYLE_OPS: List[Tuple[str, Callable[[str, random.Random], str]]] = [
    ("strip_comments", _strip_comments),
    ("mangle_indentation", _mangle_indentation),
    ("trailing_whitespace", _add_trailing_whitespace),
    ("cryptic_rename", _cryptic_rename),
    ("remove_case_default", _remove_case_default),
    ("add_unused_signal", _add_unused_signal),
]


def degrade_style(
    source: str, rng: random.Random, strength: float = 0.5
) -> MutationResult:
    """Apply style damage proportional to ``strength`` in [0, 1]."""
    result = MutationResult(source=source)
    n_ops = max(1, round(strength * len(_STYLE_OPS)))
    ops = rng.sample(_STYLE_OPS, min(n_ops, len(_STYLE_OPS)))
    for name, op in ops:
        mutated = op(result.source, rng)
        if mutated != result.source:
            result.source = mutated
            result.applied.append(name)
    if strength > 0.7 and rng.random() < 0.7:
        mutated = _blockify_nonblocking(result.source, rng)
        if mutated != result.source:
            result.source = mutated
            result.applied.append("blockify_nonblocking")
            result.functional_risk = True
    return result


# ---------------------------------------------------------------------------
# Functional corruption (compilable, wrong)
# ---------------------------------------------------------------------------

_OPERATOR_SWAPS = [
    (r"(?<![&|^~<>=!+\-*])\+(?!:)", "-"),
    (r"(?<![&|^~<>=!+\-*])-(?!:)(?![0-9]* *1'b1)", "+"),
    (r"&(?![&=])", "|"),
    (r"\|(?![|=])", "&"),
    (r"\^", "&"),
    (r"<(?![<==])", ">"),
    (r"==", "!="),
]


def corrupt_function(
    source: str, rng: random.Random, n_mutations: int = 1
) -> MutationResult:
    """Swap operators / perturb constants so behaviour changes but the
    file still compiles."""
    result = MutationResult(source=source, functional_risk=True)
    body_start = source.find(");")
    attempts = 0
    while len(result.applied) < n_mutations and attempts < 20:
        attempts += 1
        pattern, replacement = rng.choice(_OPERATOR_SWAPS)
        matches = list(re.finditer(pattern, result.source[body_start:]))
        if not matches:
            continue
        match = rng.choice(matches)
        start = body_start + match.start()
        end = body_start + match.end()
        result.source = (
            result.source[:start] + replacement + result.source[end:]
        )
        result.applied.append(f"swap:{pattern}->{replacement}")
    if not result.applied:
        # Fall back to constant perturbation.
        nums = list(re.finditer(r"\b(\d+)'d(\d+)\b", result.source))
        if nums:
            match = rng.choice(nums)
            width, value = match.group(1), int(match.group(2))
            result.source = (
                result.source[:match.start()]
                + f"{width}'d{value + 1}"
                + result.source[match.end():]
            )
            result.applied.append("perturb_constant")
    return result


# ---------------------------------------------------------------------------
# Dependency breakage (Layer 6 material)
# ---------------------------------------------------------------------------


def break_dependency(source: str, rng: random.Random) -> MutationResult:
    """Make the file reference something defined elsewhere."""
    result = MutationResult(source=source, intended_status="dependency")
    choice = rng.random()
    insert_at = source.find(");")
    insert_at = source.find("\n", insert_at) + 1 if insert_at >= 0 else 0
    if choice < 0.4:
        ghost = rng.choice(
            ["sync_cell", "clk_gate", "pad_buffer", "scan_mux", "tech_ff"]
        )
        inst = (
            f"  {ghost} u_{ghost}{rng.randint(0, 99)} "
            f"(.a(1'b0), .y());\n"
        )
        result.source = source[:insert_at] + inst + source[insert_at:]
        result.applied.append(f"ghost_module:{ghost}")
    elif choice < 0.7:
        ghost_sig = rng.choice(
            ["ext_enable", "global_rst", "cfg_bus_data", "scan_mode"]
        )
        assign = f"  wire probe_{rng.randint(0, 99)} = {ghost_sig};\n"
        result.source = source[:insert_at] + assign + source[insert_at:]
        result.applied.append(f"ghost_signal:{ghost_sig}")
    else:
        header = rng.choice(
            ['`include "defines.vh"', '`include "params.svh"',
             '`include "company_macros.vh"']
        )
        result.source = header + "\n" + source
        result.applied.append("missing_include")
    return result


# ---------------------------------------------------------------------------
# Syntax breakage (filtered out)
# ---------------------------------------------------------------------------


def break_syntax(source: str, rng: random.Random) -> MutationResult:
    """Damage the file so it no longer parses."""
    result = MutationResult(source=source, intended_status="syntax")
    choice = rng.random()
    if choice < 0.3 and ";" in source:
        # Drop a semicolon.
        positions = [m.start() for m in re.finditer(";", source)]
        pos = rng.choice(positions)
        result.source = source[:pos] + source[pos + 1:]
        result.applied.append("drop_semicolon")
    elif choice < 0.5 and "endmodule" in source:
        result.source = source.replace("endmodule", "", 1)
        result.applied.append("drop_endmodule")
    elif choice < 0.7 and "begin" in source:
        result.source = source.replace("begin", "begn", 1)
        result.applied.append("typo_begin")
    elif choice < 0.85:
        # Truncate mid-file.
        cut = rng.randint(len(source) // 3, max(len(source) - 10,
                                                len(source) // 3 + 1))
        result.source = source[:cut]
        result.applied.append("truncate")
    else:
        pos = rng.randint(0, max(len(source) - 1, 0))
        result.source = source[:pos] + "@@ %% ##" + source[pos:]
        result.applied.append("garbage_insert")
    return result


# ---------------------------------------------------------------------------
# Junk files (removed by the first filter)
# ---------------------------------------------------------------------------


def make_junk_file(rng: random.Random) -> MutationResult:
    """An empty, corrupted, or non-Verilog file."""
    result = MutationResult(source="", intended_status="junk")
    choice = rng.random()
    if choice < 0.3:
        result.source = ""
        result.applied.append("empty")
    elif choice < 0.5:
        result.source = " \n\t\n   \n"
        result.applied.append("whitespace_only")
    elif choice < 0.7:
        result.source = "".join(
            chr(rng.randint(0x80, 0xFF)) for _ in range(rng.randint(16, 128))
        )
        result.applied.append("binary_garbage")
    elif choice < 0.85:
        result.source = (
            "# Makefile fragment\nall:\n\ticarus -o out src.v\n"
        )
        result.applied.append("not_verilog")
    else:
        result.source = "// TODO: write the actual module\n"
        result.applied.append("no_module")
    return result
