"""Synthetic Verilog corpus: design families, defect injectors, the
GitHub-scrape simulator, and the simulated commercial LLM."""

from .spec import DesignSpec, GoldenModel, PortDef
from .templates import (
    FAMILY_REGISTRY,
    Family,
    RenderedDesign,
    family_names,
    generate_design,
    generate_random_design,
    get_family,
    register_family,
)
from .github_sim import GitHubScrapeSimulator, QualityProfile, RawFile
from .keywords import (
    ExpandedKeyword,
    KeywordDatabase,
    build_keyword_database,
    craft_prompt,
)
from .llm_sim import (
    GeneratedSample,
    LLMExchange,
    SimulatedCommercialLLM,
    strip_markdown_fences,
)
from .repair_source import (
    RepairTrajectoryResult,
    repair_trajectories,
    repair_trajectory_batches,
)

__all__ = [
    "DesignSpec", "GoldenModel", "PortDef",
    "Family", "RenderedDesign", "FAMILY_REGISTRY", "family_names",
    "generate_design", "generate_random_design", "get_family",
    "register_family",
    "GitHubScrapeSimulator", "QualityProfile", "RawFile",
    "ExpandedKeyword", "KeywordDatabase", "build_keyword_database",
    "craft_prompt",
    "GeneratedSample", "LLMExchange", "SimulatedCommercialLLM",
    "strip_markdown_fences",
    "RepairTrajectoryResult", "repair_trajectories",
    "repair_trajectory_batches",
]
