"""Repair-trajectory corpus source: broken→fixed pairs from the loop.

CraftRTL's observation (PAPERS.md): targeted code-repair data is the
highest-leverage synthetic-data trick.  This source manufactures it
end to end — generate a clean design, break it with the corpus
mutators, drive the :mod:`repro.repairloop` until it is fixed, and
emit the *fixed* code under a repair prompt that embeds the broken
source and its compiler diagnostics.  Each emitted record is a
standard ``(content, provenance)`` source record with
``origin="repair"``, so the stream flows through the normal (batch or
streaming) curation pipeline, into sharded stores, and out through the
service's faceted queries like any other origin.

Candidate fan-out goes through a :class:`~repro.pipeline.ParallelExecutor`;
every candidate derives its own RNG from ``(seed, index)`` so the
transcript set is byte-identical across serial, thread, and process
executors.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..obs import Observability, resolve
from ..pipeline import ParallelExecutor
from ..repairloop import RepairFeedback, RepairLoop, RepairTranscript
from ..resilience import Checkpointer, Resilience
from ..verilog import check
from . import mutate
from .templates import generate_random_design

#: (content, provenance) — the shape every curation source yields.
_SourceRecord = Tuple[str, Dict[str, Any]]


def candidate_seed(seed: int, index: int) -> int:
    """Stable 64-bit RNG seed for one (run, candidate) pair."""
    digest = hashlib.blake2b(
        f"repair:{seed}:{index}".encode("ascii"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little")


def _candidate_worker(args: Tuple) -> Dict[str, Any]:
    """One candidate, start to finish (module-level: process-pool
    safe).  Regenerates the design locally from the derived seed so
    nothing unpicklable crosses the executor boundary."""
    seed, index, budget, n_test_vectors, functional_fraction, ckpt = args
    rng = random.Random(candidate_seed(seed, index))
    design = generate_random_design(rng)
    functional = rng.random() < functional_fraction
    if functional:
        broken = mutate.corrupt_function(design.source, rng)
    else:
        broken = mutate.break_syntax(design.source, rng)
    resilience = None
    if ckpt:
        resilience = Resilience(
            checkpointer=Checkpointer(Path(ckpt) / f"cand-{index:04d}"))
    loop = RepairLoop(budget=budget, n_test_vectors=n_test_vectors,
                      seed=seed, resilience=resilience)
    transcript = loop.run(
        broken.source,
        spec=design.spec if functional else None,
        candidate_id=f"cand-{index}",
        description=design.description)
    return {
        "index": index,
        "module_name": design.spec.module_name,
        "description": design.description,
        "mutations": list(broken.applied),
        "kind": "functional" if functional else "syntax",
        "transcript": transcript.to_dict(),
    }


def repair_prompt(description: str, broken: str,
                  transcript: RepairTranscript) -> str:
    """The training prompt for one fixed trajectory: the task, the
    broken source, and the diagnostics the loop started from."""
    report = check(broken)
    feedback = RepairFeedback.from_check(report) \
        if report.status != "clean" else RepairFeedback(kind="functional")
    actions = ", ".join(transcript.actions()) or "none"
    return (
        f"Repair the broken Verilog module below. {description}\n"
        f"{feedback.render()}\n"
        f"// applied repairs: {actions}\n"
        f"// broken source:\n{broken}"
    )


@dataclass
class RepairTrajectoryResult:
    """Everything one trajectory run produced."""

    n_candidates: int
    payloads: List[Dict[str, Any]] = field(default_factory=list)
    records: List[_SourceRecord] = field(default_factory=list)

    @property
    def n_fixed(self) -> int:
        return sum(1 for p in self.payloads
                   if p["transcript"]["fixed"]
                   and p["transcript"]["iterations"])

    def fix_rate(self) -> float:
        # ``fixed_at == 0`` marks a candidate the mutation failed to
        # actually break (e.g. landed on an acceptable dependency
        # status) — not the loop's doing, so not in the denominator.
        broken = [p for p in self.payloads
                  if p["transcript"]["fixed_at"] != 0]
        if not broken:
            return 0.0
        return (sum(1 for p in broken if p["transcript"]["fixed"])
                / len(broken))

    def transcripts(self) -> List[RepairTranscript]:
        return [RepairTranscript.from_dict(p["transcript"])
                for p in self.payloads]

    def summary(self) -> Dict[str, Any]:
        iterations = [len(p["transcript"]["iterations"])
                      for p in self.payloads]
        return {
            "n_candidates": self.n_candidates,
            "n_records": len(self.records),
            "n_fixed": self.n_fixed,
            "fix_rate": round(self.fix_rate(), 4),
            "total_iterations": sum(iterations),
        }


def repair_trajectories(
    n_candidates: int = 32,
    seed: int = 0,
    budget: int = 2,
    n_test_vectors: int = 8,
    functional_fraction: float = 0.25,
    executor: Optional[ParallelExecutor] = None,
    obs: Optional[Observability] = None,
    resilience: Optional[Resilience] = None,
) -> RepairTrajectoryResult:
    """Run the repair loop over ``n_candidates`` mutated designs.

    Args:
        n_candidates: how many clean designs to generate and break.
        seed: master seed; candidate RNGs derive via
            :func:`candidate_seed` (executor-independent results).
        budget: repair iterations per candidate.
        n_test_vectors: functional-check vectors for corrupted
            (compilable-but-wrong) candidates.
        functional_fraction: fraction of candidates broken with
            :func:`~repro.corpus.mutate.corrupt_function` (the rest get
            :func:`~repro.corpus.mutate.break_syntax`).
        executor: candidate fan-out; default in-process serial.
        obs: trajectory counters + the ``repair.iterations`` histogram
            land in this handle's registry.
        resilience: with a checkpointer, every candidate's loop
            journals its iterations under
            ``<journal>/cand-<index>`` and a killed run resumes
            byte-identically.
    """
    obs = resolve(obs)
    pool = executor if executor is not None else ParallelExecutor.serial()
    ckpt_dir = ""
    if resilience is not None and resilience.checkpointer is not None:
        ckpt_dir = str(resilience.checkpointer.directory)
    args = [(seed, index, budget, n_test_vectors, functional_fraction,
             ckpt_dir) for index in range(n_candidates)]
    with obs.span("repair.trajectories", n_candidates=n_candidates,
                  budget=budget) as span:
        payloads = list(pool.map(_candidate_worker, args))
        result = RepairTrajectoryResult(n_candidates=n_candidates,
                                        payloads=payloads)
        for payload in payloads:
            transcript = RepairTranscript.from_dict(payload["transcript"])
            obs.histogram("repair.iterations").observe(
                transcript.n_iterations())
            if not (transcript.fixed and transcript.iterations):
                continue  # unfixed, or was never actually broken
            prompt = repair_prompt(payload["description"],
                                   transcript.original, transcript)
            result.records.append((transcript.final_code, {
                "origin": "repair",
                "path": (f"repair/{payload['module_name']}_"
                         f"{payload['index']:04d}.v"),
                "description": prompt,
            }))
        span.meta["n_fixed"] = result.n_fixed
        span.meta["n_records"] = len(result.records)
    obs.counter("repair.trajectories.candidates").inc(n_candidates)
    obs.counter("repair.trajectories.fixed").inc(result.n_fixed)
    return result


def repair_trajectory_batches(
    n_candidates: int = 32,
    seed: int = 0,
    budget: int = 2,
    batch_size: int = 16,
    **kwargs: Any,
) -> Iterator[List[_SourceRecord]]:
    """The trajectory records as source batches for the streaming
    curate path (:func:`repro.dataset.streaming.chain_batches`
    compatible)."""
    result = repair_trajectories(n_candidates=n_candidates, seed=seed,
                                 budget=budget, **kwargs)
    batch: List[_SourceRecord] = []
    for record in result.records:
        batch.append(record)
        if len(batch) >= batch_size:
            yield batch
            batch = []
    if batch:
        yield batch
