"""Combinational design families.

Each family is registered with :mod:`repro.corpus.templates` and knows
how to (a) sample a parameter point, (b) render clean Verilog
implementing the design, and (c) provide a golden Python model used by
functional testbenches.  The rendered code is idiomatic — ANSI ports,
parameters where natural, ``@*`` combinational blocks — so that
top-layer corpus samples genuinely deserve high ranking scores.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from .spec import DesignSpec, GoldenModel, PortDef, mask, to_signed
from .templates import Family, register_family


def _pick_width(rng: random.Random, lo: int = 2, hi: int = 16) -> int:
    return rng.choice([w for w in (2, 4, 8, 12, 16, 24, 32) if lo <= w <= hi])


@register_family
class HalfAdder(Family):
    name = "half_adder"
    keyword = "adder"
    expanded_keyword = "half adder"
    category = "combinational"
    complexity_hint = "basic"

    def sample_params(self, rng: random.Random) -> Dict[str, int]:
        return {}

    def build(self, params: Dict[str, int], module_name: str) -> Tuple[DesignSpec, str]:
        spec = DesignSpec(
            family=self.name, module_name=module_name, params=params,
            inputs=[PortDef("a"), PortDef("b")],
            outputs=[PortDef("sum"), PortDef("cout")],
            keyword=self.keyword, expanded_keyword=self.expanded_keyword,
            golden=GoldenModel(comb=lambda i: {
                "sum": i["a"] ^ i["b"], "cout": i["a"] & i["b"]}),
        )
        source = f"""\
// Half adder: single-bit addition without carry input.
module {module_name} (
  input  a,
  input  b,
  output sum,
  output cout
);

  assign sum  = a ^ b;
  assign cout = a & b;

endmodule
"""
        return spec, source

    def describe(self, spec: DesignSpec, rng: random.Random) -> str:
        return rng.choice([
            "Design a half adder that adds two single-bit inputs 'a' and "
            "'b', producing a 'sum' output and a carry output 'cout'.",
            "Implement a combinational half adder. Inputs: a, b (1 bit "
            "each). Outputs: sum = a XOR b, cout = a AND b.",
            "Write a Verilog module for a half adder with inputs a and b "
            "and outputs sum and cout.",
        ])


@register_family
class FullAdder(Family):
    name = "full_adder"
    keyword = "adder"
    expanded_keyword = "full adder"
    category = "combinational"
    complexity_hint = "basic"

    def sample_params(self, rng: random.Random) -> Dict[str, int]:
        return {}

    def build(self, params, module_name):
        def golden(i):
            total = i["a"] + i["b"] + i["cin"]
            return {"sum": total & 1, "cout": total >> 1}

        spec = DesignSpec(
            family=self.name, module_name=module_name, params=params,
            inputs=[PortDef("a"), PortDef("b"), PortDef("cin")],
            outputs=[PortDef("sum"), PortDef("cout")],
            keyword=self.keyword, expanded_keyword=self.expanded_keyword,
            golden=GoldenModel(comb=golden),
        )
        source = f"""\
// Full adder: single-bit addition with carry input.
module {module_name} (
  input  a,
  input  b,
  input  cin,
  output sum,
  output cout
);

  assign sum  = a ^ b ^ cin;
  assign cout = (a & b) | (cin & (a ^ b));

endmodule
"""
        return spec, source

    def describe(self, spec, rng):
        return rng.choice([
            "Design a full adder with inputs a, b, and carry-in cin, "
            "producing sum and carry-out cout.",
            "Implement a 1-bit full adder: sum = a ^ b ^ cin and "
            "cout = majority(a, b, cin). Outputs are sum and cout.",
            "Write a combinational full adder module with ports a, b, "
            "cin, sum, cout.",
        ])


@register_family
class RippleCarryAdder(Family):
    name = "ripple_carry_adder"
    keyword = "adder"
    expanded_keyword = "ripple carry adder"
    category = "combinational"
    complexity_hint = "intermediate"

    def sample_params(self, rng):
        return {"WIDTH": _pick_width(rng, 2, 16)}

    def build(self, params, module_name):
        width = params["WIDTH"]

        def golden(i):
            total = i["a"] + i["b"] + i["cin"]
            return {"sum": total & mask(width), "cout": total >> width}

        spec = DesignSpec(
            family=self.name, module_name=module_name, params=params,
            inputs=[PortDef("a", width), PortDef("b", width),
                    PortDef("cin")],
            outputs=[PortDef("sum", width), PortDef("cout")],
            keyword=self.keyword, expanded_keyword=self.expanded_keyword,
            golden=GoldenModel(comb=golden),
        )
        source = f"""\
// {width}-bit ripple carry adder built from a carry chain.
module {module_name} #(
  parameter WIDTH = {width}
) (
  input  [WIDTH-1:0] a,
  input  [WIDTH-1:0] b,
  input              cin,
  output [WIDTH-1:0] sum,
  output             cout
);

  wire [WIDTH:0] carry;
  assign carry[0] = cin;

  genvar i;
  generate
    for (i = 0; i < WIDTH; i = i + 1) begin : adder_stage
      assign sum[i]     = a[i] ^ b[i] ^ carry[i];
      assign carry[i+1] = (a[i] & b[i]) | (carry[i] & (a[i] ^ b[i]));
    end
  endgenerate

  assign cout = carry[WIDTH];

endmodule
"""
        return spec, source

    def describe(self, spec, rng):
        width = spec.params["WIDTH"]
        return rng.choice([
            f"Design a {width}-bit ripple carry adder. Inputs: a and b "
            f"({width} bits each) and a carry-in cin. Outputs: the "
            f"{width}-bit sum and carry-out cout.",
            f"Implement a {width}-bit adder with carry-in and carry-out "
            "using a ripple carry structure. Ports: a, b, cin, sum, cout.",
            f"Write Verilog for an unsigned {width}-bit ripple carry "
            "adder producing sum and cout from a, b, and cin.",
        ])


@register_family
class AdderSubtractor(Family):
    name = "adder_subtractor"
    keyword = "adder"
    expanded_keyword = "adder-subtractor"
    category = "combinational"
    complexity_hint = "intermediate"

    def sample_params(self, rng):
        return {"WIDTH": _pick_width(rng, 4, 16)}

    def build(self, params, module_name):
        width = params["WIDTH"]

        def golden(i):
            # Hardware computes a + (b ^ {W{sub}}) + sub; the carry is
            # the adder's carry-out (inverted borrow when subtracting).
            operand = i["b"] ^ (mask(width) if i["sub"] else 0)
            total = i["a"] + operand + i["sub"]
            return {"result": total & mask(width),
                    "carry": (total >> width) & 1}

        spec = DesignSpec(
            family=self.name, module_name=module_name, params=params,
            inputs=[PortDef("a", width), PortDef("b", width),
                    PortDef("sub")],
            outputs=[PortDef("result", width), PortDef("carry")],
            keyword=self.keyword, expanded_keyword=self.expanded_keyword,
            golden=GoldenModel(comb=golden),
        )
        source = f"""\
// {width}-bit adder/subtractor: sub=0 adds, sub=1 subtracts (a - b).
module {module_name} #(
  parameter WIDTH = {width}
) (
  input  [WIDTH-1:0] a,
  input  [WIDTH-1:0] b,
  input              sub,
  output [WIDTH-1:0] result,
  output             carry
);

  wire [WIDTH-1:0] b_oper = b ^ {{WIDTH{{sub}}}};

  assign {{carry, result}} = a + b_oper + sub;

endmodule
"""
        return spec, source

    def describe(self, spec, rng):
        width = spec.params["WIDTH"]
        return rng.choice([
            f"Design a {width}-bit adder-subtractor. When sub is 0 the "
            "module computes result = a + b; when sub is 1 it computes "
            "result = a - b using two's complement. The carry output is "
            "the carry out of the internal addition.",
            f"Implement a combined {width}-bit adder and subtractor "
            "controlled by a 'sub' input (ports: a, b, sub, result, "
            "carry).",
        ])


@register_family
class Comparator(Family):
    name = "comparator"
    keyword = "comparator"
    expanded_keyword = "magnitude comparator"
    category = "combinational"
    complexity_hint = "basic"

    def sample_params(self, rng):
        return {"WIDTH": _pick_width(rng, 2, 16)}

    def build(self, params, module_name):
        width = params["WIDTH"]

        def golden(i):
            return {
                "eq": int(i["a"] == i["b"]),
                "gt": int(i["a"] > i["b"]),
                "lt": int(i["a"] < i["b"]),
            }

        spec = DesignSpec(
            family=self.name, module_name=module_name, params=params,
            inputs=[PortDef("a", width), PortDef("b", width)],
            outputs=[PortDef("eq"), PortDef("gt"), PortDef("lt")],
            keyword=self.keyword, expanded_keyword=self.expanded_keyword,
            golden=GoldenModel(comb=golden),
        )
        source = f"""\
// {width}-bit unsigned magnitude comparator.
module {module_name} #(
  parameter WIDTH = {width}
) (
  input  [WIDTH-1:0] a,
  input  [WIDTH-1:0] b,
  output             eq,
  output             gt,
  output             lt
);

  assign eq = (a == b);
  assign gt = (a > b);
  assign lt = (a < b);

endmodule
"""
        return spec, source

    def describe(self, spec, rng):
        width = spec.params["WIDTH"]
        return rng.choice([
            f"Design a {width}-bit unsigned comparator with outputs eq "
            "(a equals b), gt (a greater than b), and lt (a less than b).",
            f"Implement a magnitude comparator for two {width}-bit "
            "unsigned numbers a and b, driving eq, gt, and lt.",
        ])


@register_family
class Mux(Family):
    name = "mux"
    keyword = "multiplexer"
    expanded_keyword = "N-to-1 multiplexer"
    category = "combinational"
    complexity_hint = "basic"

    def sample_params(self, rng):
        return {"WIDTH": _pick_width(rng, 2, 16),
                "INPUTS": rng.choice([2, 4, 8])}

    def build(self, params, module_name):
        width = params["WIDTH"]
        n = params["INPUTS"]
        sel_bits = max((n - 1).bit_length(), 1)
        names = [f"d{k}" for k in range(n)]

        def golden(i):
            sel = i["sel"] % n
            return {"y": i[names[sel]]}

        inputs = [PortDef(nm, width) for nm in names]
        inputs.append(PortDef("sel", sel_bits))
        spec = DesignSpec(
            family=self.name, module_name=module_name, params=params,
            inputs=inputs, outputs=[PortDef("y", width)],
            keyword=self.keyword,
            expanded_keyword=f"{n}-to-1 multiplexer",
            golden=GoldenModel(comb=golden),
        )
        ports = ",\n".join(f"  input  [{width-1}:0] {nm}" for nm in names)
        cases = "\n".join(
            f"      {sel_bits}'d{k}: y = {names[k]};" for k in range(n)
        )
        source = f"""\
// {n}-to-1 multiplexer, {width} bits wide.
module {module_name} (
{ports},
  input  [{sel_bits-1}:0] sel,
  output reg [{width-1}:0] y
);

  always @(*) begin
    case (sel)
{cases}
      default: y = {names[0]};
    endcase
  end

endmodule
"""
        return spec, source

    def describe(self, spec, rng):
        n = spec.params["INPUTS"]
        width = spec.params["WIDTH"]
        names = ", ".join(f"d{k}" for k in range(n))
        return rng.choice([
            f"Design a {n}-to-1 multiplexer with {width}-bit data inputs "
            f"{names}, a select input sel, and output y. When sel selects"
            " an out-of-range value the first input is forwarded.",
            f"Implement a {width}-bit wide {n}-input multiplexer "
            f"(inputs {names}, select sel, output y).",
        ])


@register_family
class Demux(Family):
    name = "demux"
    keyword = "multiplexer"
    expanded_keyword = "1-to-N demultiplexer"
    category = "combinational"
    complexity_hint = "basic"

    def sample_params(self, rng):
        return {"OUTPUTS": rng.choice([2, 4, 8])}

    def build(self, params, module_name):
        n = params["OUTPUTS"]
        sel_bits = max((n - 1).bit_length(), 1)
        names = [f"y{k}" for k in range(n)]

        def golden(i):
            sel = i["sel"] % n
            return {nm: (i["d"] if k == sel else 0)
                    for k, nm in enumerate(names)}

        spec = DesignSpec(
            family=self.name, module_name=module_name, params=params,
            inputs=[PortDef("d"), PortDef("sel", sel_bits)],
            outputs=[PortDef(nm) for nm in names],
            keyword=self.keyword,
            expanded_keyword=f"1-to-{n} demultiplexer",
            golden=GoldenModel(comb=golden),
        )
        assigns = "\n".join(
            f"  assign {names[k]} = (sel == {sel_bits}'d{k}) ? d : 1'b0;"
            for k in range(n)
        )
        out_ports = ",\n".join(f"  output {nm}" for nm in names)
        source = f"""\
// 1-to-{n} demultiplexer.
module {module_name} (
  input  d,
  input  [{sel_bits-1}:0] sel,
{out_ports}
);

{assigns}

endmodule
"""
        return spec, source

    def describe(self, spec, rng):
        n = spec.params["OUTPUTS"]
        return (
            f"Design a 1-to-{n} demultiplexer that routes the single-bit "
            f"input d to one of {n} outputs (y0..y{n-1}) chosen by sel; "
            "all other outputs are 0."
        )


@register_family
class Decoder(Family):
    name = "decoder"
    keyword = "decoder"
    expanded_keyword = "binary decoder"
    category = "combinational"
    complexity_hint = "basic"

    def sample_params(self, rng):
        return {"IN_WIDTH": rng.choice([2, 3, 4])}

    def build(self, params, module_name):
        in_w = params["IN_WIDTH"]
        out_w = 1 << in_w

        def golden(i):
            return {"y": (1 << i["a"]) if i["en"] else 0}

        spec = DesignSpec(
            family=self.name, module_name=module_name, params=params,
            inputs=[PortDef("a", in_w), PortDef("en")],
            outputs=[PortDef("y", out_w)],
            keyword=self.keyword,
            expanded_keyword=f"{in_w}-to-{out_w} decoder",
            golden=GoldenModel(comb=golden),
        )
        source = f"""\
// {in_w}-to-{out_w} binary decoder with enable.
module {module_name} (
  input  [{in_w-1}:0] a,
  input  en,
  output [{out_w-1}:0] y
);

  assign y = en ? ({out_w}'d1 << a) : {out_w}'d0;

endmodule
"""
        return spec, source

    def describe(self, spec, rng):
        in_w = spec.params["IN_WIDTH"]
        out_w = 1 << in_w
        return rng.choice([
            f"Design a {in_w}-to-{out_w} one-hot decoder with an enable "
            "input. When en is high, output bit a is set and all others "
            "are clear; when en is low the output is all zeros.",
            f"Implement a binary decoder that converts a {in_w}-bit code "
            f"a into a {out_w}-bit one-hot output y, gated by en.",
        ])


@register_family
class PriorityEncoder(Family):
    name = "priority_encoder"
    keyword = "encoder"
    expanded_keyword = "priority encoder"
    category = "combinational"
    complexity_hint = "intermediate"

    def sample_params(self, rng):
        return {"IN_WIDTH": rng.choice([4, 8])}

    def build(self, params, module_name):
        in_w = params["IN_WIDTH"]
        out_w = max((in_w - 1).bit_length(), 1)

        def golden(i):
            req = i["req"]
            for k in range(in_w - 1, -1, -1):
                if req & (1 << k):
                    return {"idx": k, "valid": 1}
            return {"idx": 0, "valid": 0}

        spec = DesignSpec(
            family=self.name, module_name=module_name, params=params,
            inputs=[PortDef("req", in_w)],
            outputs=[PortDef("idx", out_w), PortDef("valid")],
            keyword=self.keyword,
            expanded_keyword=f"{in_w}-bit priority encoder",
            golden=GoldenModel(comb=golden),
        )
        branches = "\n".join(
            f"      else if (req[{k}]) idx = {out_w}'d{k};"
            for k in range(in_w - 2, -1, -1)
        )
        source = f"""\
// {in_w}-bit priority encoder; highest set bit wins.
module {module_name} (
  input  [{in_w-1}:0] req,
  output reg [{out_w-1}:0] idx,
  output valid
);

  assign valid = |req;

  always @(*) begin
      if (req[{in_w-1}]) idx = {out_w}'d{in_w-1};
{branches}
      else idx = {out_w}'d0;
  end

endmodule
"""
        return spec, source

    def describe(self, spec, rng):
        in_w = spec.params["IN_WIDTH"]
        return rng.choice([
            f"Design a {in_w}-bit priority encoder. Output idx holds the "
            "index of the highest-priority (most significant) set bit of "
            "req, and valid indicates whether any bit is set. When no "
            "request is active idx is 0.",
            f"Implement a priority encoder over a {in_w}-bit request "
            "vector req with outputs idx (binary index of the highest "
            "set bit) and valid.",
        ])


@register_family
class ParityGenerator(Family):
    name = "parity"
    keyword = "parity"
    expanded_keyword = "parity generator"
    category = "combinational"
    complexity_hint = "basic"

    def sample_params(self, rng):
        return {"WIDTH": _pick_width(rng, 4, 32)}

    def build(self, params, module_name):
        width = params["WIDTH"]

        def golden(i):
            even = bin(i["data"]).count("1") & 1
            return {"even_parity": even, "odd_parity": even ^ 1}

        spec = DesignSpec(
            family=self.name, module_name=module_name, params=params,
            inputs=[PortDef("data", width)],
            outputs=[PortDef("even_parity"), PortDef("odd_parity")],
            keyword=self.keyword, expanded_keyword=self.expanded_keyword,
            golden=GoldenModel(comb=golden),
        )
        source = f"""\
// {width}-bit parity generator.
module {module_name} #(
  parameter WIDTH = {width}
) (
  input  [WIDTH-1:0] data,
  output even_parity,
  output odd_parity
);

  assign even_parity = ^data;
  assign odd_parity  = ~even_parity;

endmodule
"""
        return spec, source

    def describe(self, spec, rng):
        width = spec.params["WIDTH"]
        return (
            f"Design a parity generator for a {width}-bit input 'data'. "
            "even_parity is the XOR reduction of all bits and odd_parity "
            "is its complement."
        )


@register_family
class GrayConverter(Family):
    name = "gray_converter"
    keyword = "gray code"
    expanded_keyword = "binary/gray code converter"
    category = "combinational"
    complexity_hint = "intermediate"

    def sample_params(self, rng):
        return {"WIDTH": _pick_width(rng, 3, 16)}

    def build(self, params, module_name):
        width = params["WIDTH"]

        def golden(i):
            b = i["bin_in"]
            gray = b ^ (b >> 1)
            g = i["gray_in"]
            binary = 0
            for k in range(width - 1, -1, -1):
                binary = (binary << 1) | (((binary & 1) ^ (g >> k)) & 1)
            return {"gray_out": gray, "bin_out": binary & mask(width)}

        spec = DesignSpec(
            family=self.name, module_name=module_name, params=params,
            inputs=[PortDef("bin_in", width), PortDef("gray_in", width)],
            outputs=[PortDef("gray_out", width), PortDef("bin_out", width)],
            keyword=self.keyword, expanded_keyword=self.expanded_keyword,
            golden=GoldenModel(comb=golden),
        )
        source = f"""\
// {width}-bit binary-to-Gray and Gray-to-binary converter.
module {module_name} #(
  parameter WIDTH = {width}
) (
  input  [WIDTH-1:0] bin_in,
  input  [WIDTH-1:0] gray_in,
  output [WIDTH-1:0] gray_out,
  output reg [WIDTH-1:0] bin_out
);

  assign gray_out = bin_in ^ (bin_in >> 1);

  integer i;
  always @(*) begin
    bin_out[WIDTH-1] = gray_in[WIDTH-1];
    for (i = WIDTH - 2; i >= 0; i = i - 1)
      bin_out[i] = bin_out[i+1] ^ gray_in[i];
  end

endmodule
"""
        return spec, source

    def describe(self, spec, rng):
        width = spec.params["WIDTH"]
        return (
            f"Design a {width}-bit code converter with two independent "
            "paths: gray_out is the Gray code of bin_in, and bin_out is "
            "the binary value of gray_in."
        )


@register_family
class Alu(Family):
    name = "alu"
    keyword = "alu"
    expanded_keyword = "arithmetic logic unit"
    category = "combinational"
    complexity_hint = "advanced"

    OPS = ["add", "sub", "and", "or", "xor", "slt", "shl", "shr"]

    def sample_params(self, rng):
        return {"WIDTH": _pick_width(rng, 4, 32)}

    def build(self, params, module_name):
        width = params["WIDTH"]

        def golden(i):
            a, b, op = i["a"], i["b"], i["op"] & 7
            if op == 0:
                r = a + b
            elif op == 1:
                r = a - b
            elif op == 2:
                r = a & b
            elif op == 3:
                r = a | b
            elif op == 4:
                r = a ^ b
            elif op == 5:
                r = int(to_signed(a, width) < to_signed(b, width))
            elif op == 6:
                r = a << (b & 7)
            else:
                r = a >> (b & 7)
            r &= mask(width)
            return {"result": r, "zero": int(r == 0)}

        spec = DesignSpec(
            family=self.name, module_name=module_name, params=params,
            inputs=[PortDef("a", width), PortDef("b", width),
                    PortDef("op", 3)],
            outputs=[PortDef("result", width), PortDef("zero")],
            keyword=self.keyword, expanded_keyword=self.expanded_keyword,
            golden=GoldenModel(comb=golden),
        )
        source = f"""\
// {width}-bit ALU: add, sub, and, or, xor, slt, shl, shr.
module {module_name} #(
  parameter WIDTH = {width}
) (
  input  [WIDTH-1:0] a,
  input  [WIDTH-1:0] b,
  input  [2:0]       op,
  output reg [WIDTH-1:0] result,
  output zero
);

  localparam OP_ADD = 3'd0;
  localparam OP_SUB = 3'd1;
  localparam OP_AND = 3'd2;
  localparam OP_OR  = 3'd3;
  localparam OP_XOR = 3'd4;
  localparam OP_SLT = 3'd5;
  localparam OP_SHL = 3'd6;
  localparam OP_SHR = 3'd7;

  always @(*) begin
    case (op)
      OP_ADD: result = a + b;
      OP_SUB: result = a - b;
      OP_AND: result = a & b;
      OP_OR:  result = a | b;
      OP_XOR: result = a ^ b;
      OP_SLT: result = ($signed(a) < $signed(b)) ? {{{{(WIDTH-1){{1'b0}}}}, 1'b1}} : {{WIDTH{{1'b0}}}};
      OP_SHL: result = a << b[2:0];
      OP_SHR: result = a >> b[2:0];
      default: result = {{WIDTH{{1'b0}}}};
    endcase
  end

  assign zero = (result == {{WIDTH{{1'b0}}}});

endmodule
"""
        return spec, source

    def describe(self, spec, rng):
        width = spec.params["WIDTH"]
        return rng.choice([
            f"Design a {width}-bit ALU with a 3-bit opcode: 0 add, "
            "1 subtract, 2 bitwise AND, 3 OR, 4 XOR, 5 signed set-less-"
            "than, 6 logical shift left by b[2:0], 7 logical shift right "
            "by b[2:0]. Outputs are result and a zero flag.",
            f"Implement an arithmetic logic unit for {width}-bit operands "
            "a and b selected by op[2:0] (add/sub/and/or/xor/slt/shl/shr) "
            "with outputs result and zero.",
        ])


@register_family
class BarrelShifter(Family):
    name = "barrel_shifter"
    keyword = "shifter"
    expanded_keyword = "barrel shifter"
    category = "combinational"
    complexity_hint = "advanced"

    def sample_params(self, rng):
        return {"WIDTH": rng.choice([8, 16, 32])}

    def build(self, params, module_name):
        width = params["WIDTH"]
        sh_bits = (width - 1).bit_length()

        def golden(i):
            amt = i["amount"] % width
            d = i["data"]
            if i["left"]:
                r = ((d << amt) | (d >> (width - amt))) if amt else d
            else:
                r = ((d >> amt) | (d << (width - amt))) if amt else d
            return {"out": r & mask(width)}

        spec = DesignSpec(
            family=self.name, module_name=module_name, params=params,
            inputs=[PortDef("data", width), PortDef("amount", sh_bits),
                    PortDef("left")],
            outputs=[PortDef("out", width)],
            keyword=self.keyword, expanded_keyword=self.expanded_keyword,
            golden=GoldenModel(comb=golden),
        )
        source = f"""\
// {width}-bit rotating barrel shifter (left=1 rotates left).
module {module_name} #(
  parameter WIDTH = {width}
) (
  input  [WIDTH-1:0] data,
  input  [{sh_bits-1}:0] amount,
  input  left,
  output [WIDTH-1:0] out
);

  wire [2*WIDTH-1:0] doubled = {{data, data}};
  wire [WIDTH-1:0] rot_right = doubled >> amount;
  wire [2*WIDTH-1:0] shifted_left = doubled << amount;
  wire [WIDTH-1:0] rot_left = shifted_left[2*WIDTH-1:WIDTH];

  assign out = left ? rot_left : rot_right;

endmodule
"""
        return spec, source

    def describe(self, spec, rng):
        width = spec.params["WIDTH"]
        return (
            f"Design a {width}-bit barrel shifter that rotates 'data' by "
            "'amount' positions: left rotation when left=1, right "
            "rotation when left=0. The output is 'out'."
        )


@register_family
class Popcount(Family):
    name = "popcount"
    keyword = "counter"
    expanded_keyword = "population count"
    category = "combinational"
    complexity_hint = "intermediate"

    def sample_params(self, rng):
        return {"WIDTH": _pick_width(rng, 4, 32)}

    def build(self, params, module_name):
        width = params["WIDTH"]
        out_w = width.bit_length()

        def golden(i):
            return {"count": bin(i["data"]).count("1")}

        spec = DesignSpec(
            family=self.name, module_name=module_name, params=params,
            inputs=[PortDef("data", width)],
            outputs=[PortDef("count", out_w)],
            keyword=self.keyword, expanded_keyword=self.expanded_keyword,
            golden=GoldenModel(comb=golden),
        )
        source = f"""\
// Count the set bits of a {width}-bit word.
module {module_name} #(
  parameter WIDTH = {width}
) (
  input  [WIDTH-1:0] data,
  output reg [{out_w-1}:0] count
);

  integer i;
  always @(*) begin
    count = 0;
    for (i = 0; i < WIDTH; i = i + 1)
      count = count + data[i];
  end

endmodule
"""
        return spec, source

    def describe(self, spec, rng):
        width = spec.params["WIDTH"]
        return (
            f"Design a population-count circuit that outputs how many of "
            f"the {width} bits of input 'data' are set; the result is "
            "'count'."
        )


@register_family
class AbsValue(Family):
    name = "absolute_value"
    keyword = "arithmetic"
    expanded_keyword = "absolute value"
    category = "combinational"
    complexity_hint = "basic"

    def sample_params(self, rng):
        return {"WIDTH": _pick_width(rng, 4, 16)}

    def build(self, params, module_name):
        width = params["WIDTH"]

        def golden(i):
            return {"y": abs(to_signed(i["x"], width)) & mask(width)}

        spec = DesignSpec(
            family=self.name, module_name=module_name, params=params,
            inputs=[PortDef("x", width, signed=True)],
            outputs=[PortDef("y", width)],
            keyword=self.keyword, expanded_keyword=self.expanded_keyword,
            golden=GoldenModel(comb=golden),
        )
        source = f"""\
// Absolute value of a signed {width}-bit input.
module {module_name} #(
  parameter WIDTH = {width}
) (
  input  signed [WIDTH-1:0] x,
  output [WIDTH-1:0] y
);

  assign y = x[WIDTH-1] ? (~x + 1'b1) : x;

endmodule
"""
        return spec, source

    def describe(self, spec, rng):
        width = spec.params["WIDTH"]
        return (
            f"Design a module computing the absolute value of a signed "
            f"{width}-bit two's complement input x; output y is unsigned."
        )


@register_family
class MinMax(Family):
    name = "min_max"
    keyword = "comparator"
    expanded_keyword = "min/max selector"
    category = "combinational"
    complexity_hint = "basic"

    def sample_params(self, rng):
        return {"WIDTH": _pick_width(rng, 4, 16)}

    def build(self, params, module_name):
        width = params["WIDTH"]

        def golden(i):
            return {"min_val": min(i["a"], i["b"]),
                    "max_val": max(i["a"], i["b"])}

        spec = DesignSpec(
            family=self.name, module_name=module_name, params=params,
            inputs=[PortDef("a", width), PortDef("b", width)],
            outputs=[PortDef("min_val", width), PortDef("max_val", width)],
            keyword=self.keyword, expanded_keyword=self.expanded_keyword,
            golden=GoldenModel(comb=golden),
        )
        source = f"""\
// Unsigned {width}-bit min/max selector.
module {module_name} #(
  parameter WIDTH = {width}
) (
  input  [WIDTH-1:0] a,
  input  [WIDTH-1:0] b,
  output [WIDTH-1:0] min_val,
  output [WIDTH-1:0] max_val
);

  wire a_smaller = (a < b);

  assign min_val = a_smaller ? a : b;
  assign max_val = a_smaller ? b : a;

endmodule
"""
        return spec, source

    def describe(self, spec, rng):
        width = spec.params["WIDTH"]
        return (
            f"Design a {width}-bit unsigned min/max unit: min_val is the "
            "smaller of inputs a and b, max_val is the larger."
        )


@register_family
class Multiplier(Family):
    name = "multiplier"
    keyword = "multiplier"
    expanded_keyword = "combinational multiplier"
    category = "combinational"
    complexity_hint = "advanced"

    def sample_params(self, rng):
        return {"WIDTH": rng.choice([4, 8])}

    def build(self, params, module_name):
        width = params["WIDTH"]

        def golden(i):
            return {"product": (i["a"] * i["b"]) & mask(2 * width)}

        spec = DesignSpec(
            family=self.name, module_name=module_name, params=params,
            inputs=[PortDef("a", width), PortDef("b", width)],
            outputs=[PortDef("product", 2 * width)],
            keyword=self.keyword, expanded_keyword=self.expanded_keyword,
            golden=GoldenModel(comb=golden),
        )
        source = f"""\
// {width}x{width} unsigned array multiplier (shift-and-add form).
module {module_name} #(
  parameter WIDTH = {width}
) (
  input  [WIDTH-1:0] a,
  input  [WIDTH-1:0] b,
  output reg [2*WIDTH-1:0] product
);

  integer i;
  always @(*) begin
    product = {{(2*WIDTH){{1'b0}}}};
    for (i = 0; i < WIDTH; i = i + 1)
      if (b[i])
        product = product + ({{{{WIDTH{{1'b0}}}}, a}} << i);
  end

endmodule
"""
        return spec, source

    def describe(self, spec, rng):
        width = spec.params["WIDTH"]
        return rng.choice([
            f"Design an unsigned {width}x{width}-bit combinational "
            f"multiplier producing a {2*width}-bit product from inputs a "
            "and b.",
            f"Implement a {width}-bit multiplier: product = a * b, "
            f"where product is {2*width} bits wide.",
        ])


@register_family
class Bcd7Seg(Family):
    name = "bcd_to_7seg"
    keyword = "decoder"
    expanded_keyword = "BCD to seven-segment decoder"
    category = "combinational"
    complexity_hint = "intermediate"

    #: Segment patterns for digits 0-9 (active-high, segments gfedcba).
    PATTERNS = [0x3F, 0x06, 0x5B, 0x4F, 0x66, 0x6D, 0x7D, 0x07, 0x7F, 0x6F]

    def sample_params(self, rng):
        return {}

    def build(self, params, module_name):
        patterns = self.PATTERNS

        def golden(i):
            d = i["digit"]
            return {"segments": patterns[d] if d < 10 else 0}

        spec = DesignSpec(
            family=self.name, module_name=module_name, params=params,
            inputs=[PortDef("digit", 4)],
            outputs=[PortDef("segments", 7)],
            keyword=self.keyword, expanded_keyword=self.expanded_keyword,
            golden=GoldenModel(comb=golden),
        )
        cases = "\n".join(
            f"      4'd{d}: segments = 7'h{patterns[d]:02x};"
            for d in range(10)
        )
        source = f"""\
// BCD digit to seven-segment decoder (active-high, gfedcba order).
module {module_name} (
  input  [3:0] digit,
  output reg [6:0] segments
);

  always @(*) begin
    case (digit)
{cases}
      default: segments = 7'h00;
    endcase
  end

endmodule
"""
        return spec, source

    def describe(self, spec, rng):
        return (
            "Design a BCD to seven-segment decoder. Input 'digit' is a "
            "4-bit BCD value; output 'segments' drives active-high "
            "segments in gfedcba order (segments[0] is segment a). "
            "Digits above 9 blank the display (all segments off). Use "
            "the standard patterns, e.g. 0 -> 7'h3f, 1 -> 7'h06."
        )


@register_family
class ZeroExtender(Family):
    name = "sign_extender"
    keyword = "arithmetic"
    expanded_keyword = "sign extender"
    category = "combinational"
    complexity_hint = "basic"

    def sample_params(self, rng):
        in_w = rng.choice([4, 8])
        return {"IN_WIDTH": in_w, "OUT_WIDTH": in_w * 2}

    def build(self, params, module_name):
        in_w, out_w = params["IN_WIDTH"], params["OUT_WIDTH"]

        def golden(i):
            return {
                "sext": to_signed(i["x"], in_w) & mask(out_w),
                "zext": i["x"],
            }

        spec = DesignSpec(
            family=self.name, module_name=module_name, params=params,
            inputs=[PortDef("x", in_w)],
            outputs=[PortDef("sext", out_w), PortDef("zext", out_w)],
            keyword=self.keyword, expanded_keyword=self.expanded_keyword,
            golden=GoldenModel(comb=golden),
        )
        source = f"""\
// Sign / zero extension from {in_w} to {out_w} bits.
module {module_name} (
  input  [{in_w-1}:0] x,
  output [{out_w-1}:0] sext,
  output [{out_w-1}:0] zext
);

  assign sext = {{{{{out_w - in_w}{{x[{in_w-1}]}}}}, x}};
  assign zext = {{{{{out_w - in_w}{{1'b0}}}}, x}};

endmodule
"""
        return spec, source

    def describe(self, spec, rng):
        in_w = spec.params["IN_WIDTH"]
        out_w = spec.params["OUT_WIDTH"]
        return (
            f"Design an extender that widens a {in_w}-bit input x to "
            f"{out_w} bits two ways: sext sign-extends (replicating the "
            "MSB) and zext zero-extends."
        )
