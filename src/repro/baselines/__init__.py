"""Compared baselines: RTLCoder, OriGen, MG-Verilog, MEV-LLM recipes."""

from .rtlcoder import finetune_rtlcoder
from .origen import SelfReflectiveModel, augment_code, finetune_origen
from .mgverilog import finetune_mgverilog, high_level_summary, low_level_gloss
from .mevllm import MultiExpertModel, classify_prompt, finetune_mevllm

__all__ = [
    "finetune_rtlcoder",
    "SelfReflectiveModel", "augment_code", "finetune_origen",
    "finetune_mgverilog", "high_level_summary", "low_level_gloss",
    "MultiExpertModel", "classify_prompt", "finetune_mevllm",
]
