"""RTLCoder baseline recipe (Liu et al., 2024).

RTLCoder fine-tunes a 7B model on ~27k instruction-code pairs with "a
novel training scheme that incorporates code quality feedback": each
candidate's quality score modulates its training contribution.  Our
re-implementation applies the same idea over the shared substrate:
every (description, code) pair is trained with a per-sample weight
proportional to its measured code-quality score, with no layering and
no curriculum (a flat shuffled stream).
"""

from __future__ import annotations

import random
from typing import List

from ..dataset.ranking import score_code
from ..dataset.records import PyraNetDataset
from ..finetune.trainer import TrainingLog, PhaseLog
from ..model.interfaces import FineTunable, TrainingExample


def finetune_rtlcoder(
    model: FineTunable,
    dataset: PyraNetDataset,
    seed: int = 0,
    batch_size: int = 32,
) -> TrainingLog:
    """Quality-feedback fine-tuning: weight = quality score / 20.

    The recipe scores each sample itself (it does not trust upstream
    labels), shuffles everything into one stream, and trains each batch
    at the mean of its members' quality weights — the closest batched
    analogue of RTLCoder's per-candidate scoring.
    """
    rng = random.Random(seed)
    entries = list(dataset)
    rng.shuffle(entries)
    log = TrainingLog()
    for start in range(0, len(entries), batch_size):
        chunk = entries[start:start + batch_size]
        if not chunk:
            continue
        weights = [score_code(entry.code) / 20.0 for entry in chunk]
        weight = sum(weights) / len(weights)
        examples = [
            TrainingExample(
                description=entry.description, code=entry.code,
                layer=entry.layer, complexity=int(entry.complexity),
                ranking=entry.ranking,
            )
            for entry in chunk
        ]
        stats = model.train_batch(examples, weight)
        model.finish_phase()
        log.phases.append(PhaseLog(
            label=f"rtlcoder/batch{start // batch_size}",
            layer=0, loss_weight=weight, stats=stats,
        ))
    return log
