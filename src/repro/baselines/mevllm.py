"""MEV-LLM baseline recipe (Nadimi & Zheng, 2024).

MEV-LLM routes generation across *multiple expert models*, each
fine-tuned on one design-complexity tier (Basic / Intermediate /
Advanced / Expert), with a categorised dataset providing the tier
labels.  Our re-implementation trains one expert per tier on that
tier's samples and routes each prompt to the expert whose tier a
lightweight prompt classifier predicts.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..dataset.records import Complexity, CompileStatus, PyraNetDataset
from ..model.interfaces import FineTunable, TrainStats, TrainingExample

#: Vocabulary cues for prompt-complexity routing.
_EXPERT_CUES = ("fifo", "queue", "state machine", "fsm", "traffic",
                "uart", "pipeline", "arbiter")
_ADVANCED_CUES = ("alu", "lfsr", "barrel", "sequence", "detector",
                  "memory", "gray counter", "multiplier", "rotate")
_INTERMEDIATE_CUES = ("counter", "shift", "encoder", "decoder",
                      "accumulator", "pwm", "parity", "edge", "divider",
                      "converter")


def classify_prompt(description: str) -> Complexity:
    """Heuristic prompt-complexity router."""
    text = description.lower()
    if any(cue in text for cue in _EXPERT_CUES):
        return Complexity.EXPERT
    if any(cue in text for cue in _ADVANCED_CUES):
        return Complexity.ADVANCED
    if any(cue in text for cue in _INTERMEDIATE_CUES):
        return Complexity.INTERMEDIATE
    return Complexity.BASIC


@dataclass
class MultiExpertModel(FineTunable):
    """Four experts + router (the MEV-LLM architecture).

    ``expert_factory`` builds one fresh model per tier so experts do
    not share state.
    """

    expert_factory: Callable[[], FineTunable]
    experts: Dict[Complexity, FineTunable] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for tier in Complexity:
            self.experts[tier] = self.expert_factory()

    def train_batch(self, examples: List[TrainingExample],
                    loss_weight: float) -> TrainStats:
        stats = TrainStats()
        buckets: Dict[Complexity, List[TrainingExample]] = {}
        for example in examples:
            tier = Complexity(example.complexity)
            buckets.setdefault(tier, []).append(example)
        for tier, bucket in buckets.items():
            stats = stats.merge(
                self.experts[tier].train_batch(bucket, loss_weight)
            )
        return stats

    def finish_phase(self) -> None:
        for expert in self.experts.values():
            expert.finish_phase()

    def generate(self, description, temperature=0.8, rng=None,
                 module_header=None) -> str:
        tier = classify_prompt(description)
        return self.experts[tier].generate(
            description, temperature, rng, module_header
        )


def finetune_mevllm(
    model: MultiExpertModel,
    dataset: PyraNetDataset,
    seed: int = 0,
    batch_size: int = 32,
) -> None:
    """Train each expert on its complexity tier (compiling subset)."""
    rng = random.Random(seed)
    entries = [e for e in dataset
               if e.compile_status is CompileStatus.CLEAN]
    rng.shuffle(entries)
    for start in range(0, len(entries), batch_size):
        chunk = entries[start:start + batch_size]
        examples = [
            TrainingExample(
                description=e.description, code=e.code, layer=e.layer,
                complexity=int(e.complexity), ranking=e.ranking,
            )
            for e in chunk
        ]
        model.train_batch(examples, 1.0)
        model.finish_phase()
