"""OriGen baseline recipe (Cui et al., 2024).

OriGen contributes (a) *code-to-code augmentation* — high-quality
training data produced by rewriting existing RTL — and (b) a
*self-reflection* loop that feeds compiler errors back into a repair
model at inference.  Both are reproduced over the shared substrate:

* :func:`finetune_origen` filters to compiling samples, adds one
  augmented (rewritten) variant per sample, and fine-tunes flat;
* :class:`SelfReflectiveModel` wraps any generator with the
  compile-check → repair loop from :mod:`repro.model.repair`.

Table I's OriGen rows use the fine-tune only (the paper compares
against OriGen's published scores, noting its self-reflection loop is
an extra inference feature); the self-reflection wrapper is exercised
by its own benchmark and the ablations.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..corpus.mutate import degrade_style
from ..dataset.records import CompileStatus, PyraNetDataset
from ..finetune.trainer import PhaseLog, TrainingLog
from ..model.interfaces import FineTunable, TrainingExample
from ..model.repair import repair


def augment_code(code: str, rng: random.Random) -> str:
    """Code-to-code augmentation: a semantically equivalent rewrite.

    OriGen rewrites RTL into cleaner variants; we model the rewrite as
    a formatting-level transformation (whitespace/identifier changes
    that keep behaviour), which enriches token-level variety exactly
    the way the augmented corpus does.
    """
    result = degrade_style(code, rng, strength=0.2)
    return result.source


def finetune_origen(
    model: FineTunable,
    dataset: PyraNetDataset,
    seed: int = 0,
    batch_size: int = 32,
) -> TrainingLog:
    """OriGen fine-tuning: clean data + augmentation, flat order."""
    rng = random.Random(seed)
    entries = [e for e in dataset
               if e.compile_status is CompileStatus.CLEAN]
    examples: List[TrainingExample] = []
    for entry in entries:
        examples.append(TrainingExample(
            description=entry.description, code=entry.code,
            layer=entry.layer, complexity=int(entry.complexity),
            ranking=entry.ranking,
        ))
        examples.append(TrainingExample(
            description=entry.description,
            code=augment_code(entry.code, rng),
            layer=entry.layer, complexity=int(entry.complexity),
            ranking=entry.ranking,
        ))
    rng.shuffle(examples)
    log = TrainingLog()
    for start in range(0, len(examples), batch_size):
        chunk = examples[start:start + batch_size]
        stats = model.train_batch(chunk, 1.0)
        model.finish_phase()
        log.phases.append(PhaseLog(
            label=f"origen/batch{start // batch_size}",
            layer=0, loss_weight=1.0, stats=stats,
        ))
    return log


class SelfReflectiveModel(FineTunable):
    """Inference-time self-reflection wrapper.

    Generation proceeds normally; when the completion fails to compile,
    the compiler diagnostics drive up to ``max_rounds`` of repair —
    OriGen's error-correction loop.
    """

    def __init__(self, inner: FineTunable, max_rounds: int = 2) -> None:
        self.inner = inner
        self.max_rounds = max_rounds
        self.repairs_attempted = 0
        self.repairs_succeeded = 0

    @property
    def profile(self):  # cosmetics for report labels
        return getattr(self.inner, "profile", None)

    def train_batch(self, examples, loss_weight):
        return self.inner.train_batch(examples, loss_weight)

    def finish_phase(self) -> None:
        self.inner.finish_phase()

    def generate(self, description, temperature=0.8, rng=None,
                 module_header=None) -> str:
        code = self.inner.generate(description, temperature, rng,
                                   module_header)
        from ..verilog import check

        if check(code).status != "syntax":
            return code
        self.repairs_attempted += 1
        outcome = repair(code, max_iterations=self.max_rounds * 2)
        if outcome.fixed:
            self.repairs_succeeded += 1
        return outcome.code
