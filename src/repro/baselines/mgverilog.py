"""MG-Verilog baseline recipe (Zhang et al., 2024).

MG-Verilog's contribution is *multi-grained* descriptions: each of its
11k+ samples carries a high-level summary, block summaries, and
line-by-line comments, and fine-tuning on the mixture improves both
accuracy and generalisation.  Our re-implementation derives three
granularities for every training sample — the full description, a
one-sentence summary, and a low-level interface/keyword gloss — and
trains on all of them, flat order, uniform weight.
"""

from __future__ import annotations

import random
import re
from typing import List

from ..dataset.records import CompileStatus, PyraNetDataset
from ..finetune.trainer import PhaseLog, TrainingLog
from ..model.interfaces import FineTunable, TrainingExample


def high_level_summary(description: str) -> str:
    """First sentence only (MG-Verilog's 'high-level summary')."""
    match = re.search(r"[^.!?]*[.!?]", description)
    return match.group(0).strip() if match else description


def low_level_gloss(code: str) -> str:
    """Interface-oriented gloss (the 'line-by-line' granularity).

    Lists the declarations the code contains, phrased tersely — the
    kind of text produced by summarising code one line at a time.
    """
    ports = re.findall(
        r"\b(input|output|inout)\b[^;,)]*?([a-zA-Z_][a-zA-Z0-9_]*)\s*[,;)\n]",
        code,
    )
    pieces = [f"{direction} {name}" for direction, name in ports[:10]]
    regs = re.findall(r"\breg\b[^;]*?([a-zA-Z_][a-zA-Z0-9_]*)\s*;", code)
    pieces.extend(f"register {name}" for name in regs[:5])
    if re.search(r"\balways\s*@\s*\(\s*posedge", code):
        pieces.append("rising edge clocked logic")
    if re.search(r"\bcase\b", code):
        pieces.append("case selection")
    return "Verilog module with " + ", ".join(pieces) + "."


def finetune_mgverilog(
    model: FineTunable,
    dataset: PyraNetDataset,
    seed: int = 0,
    batch_size: int = 32,
) -> TrainingLog:
    """Multi-grained fine-tuning on the compiling subset."""
    rng = random.Random(seed)
    examples: List[TrainingExample] = []
    for entry in dataset:
        if entry.compile_status is not CompileStatus.CLEAN:
            continue
        for description in (
            entry.description,
            high_level_summary(entry.description),
            low_level_gloss(entry.code),
        ):
            examples.append(TrainingExample(
                description=description, code=entry.code,
                layer=entry.layer, complexity=int(entry.complexity),
                ranking=entry.ranking,
            ))
    rng.shuffle(examples)
    log = TrainingLog()
    for start in range(0, len(examples), batch_size):
        chunk = examples[start:start + batch_size]
        stats = model.train_batch(chunk, 1.0)
        model.finish_phase()
        log.phases.append(PhaseLog(
            label=f"mgverilog/batch{start // batch_size}",
            layer=0, loss_weight=1.0, stats=stats,
        ))
    return log
