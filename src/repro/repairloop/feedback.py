"""The structured feedback channel between checker and repairer.

A :class:`RepairFeedback` is what one loop iteration learned about the
current candidate: the failure *kind* (``syntax`` / ``dependency`` /
``functional``), the compiler diagnostics with their line/column spans,
and — for functional failures — the :class:`~repro.eval.functional`
outcome with its counterexample vectors.  Rule-based repairers read the
fields; model repairers read :meth:`render`, the same information as an
error-log block suitable for prompt augmentation (OriGen's
self-reflection input format).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..obs.reportable import report_json, strip_schema


@dataclass
class RepairFeedback:
    """One iteration's structured diagnosis
    (:class:`~repro.obs.Reportable`).

    ``diagnostics`` rows are
    :meth:`repro.verilog.syntax_checker.Diagnostic.to_dict` dicts;
    ``outcome`` is a :meth:`repro.eval.functional.TestOutcome.to_dict`
    dict (functional failures only).
    """

    schema = "pyranet/repair-feedback/v1"

    kind: str
    diagnostics: List[Dict[str, Any]] = field(default_factory=list)
    outcome: Optional[Dict[str, Any]] = None

    @classmethod
    def from_check(cls, report) -> "RepairFeedback":
        """Feedback for a failed :func:`repro.verilog.check`."""
        return cls(
            kind="syntax" if report.status == "syntax" else "dependency",
            diagnostics=[diag.to_dict() for diag in report.diagnostics],
        )

    @classmethod
    def from_outcome(cls, outcome) -> "RepairFeedback":
        """Feedback for a failed functional test."""
        return cls(kind="functional", outcome=outcome.to_dict())

    def first_error(self) -> Optional[Dict[str, Any]]:
        """The first error-severity diagnostic, if any."""
        for diag in self.diagnostics:
            if diag.get("severity") == "error":
                return diag
        return self.diagnostics[0] if self.diagnostics else None

    def render(self) -> str:
        """The feedback as error-log text (model-repairer prompt)."""
        lines = [f"// {self.kind} failure"]
        for diag in self.diagnostics:
            where = f"line {diag.get('line', 0)}"
            if diag.get("column"):
                where += f", col {diag['column']}"
            lines.append(f"// {where}: {diag.get('severity', 'error')}: "
                         f"{diag.get('message', '')}")
        if self.outcome is not None:
            detail = self.outcome.get("detail", "")
            kind = self.outcome.get("failure_kind", "")
            lines.append(f"// functional test failed ({kind}): {detail}")
            for mismatch in self.outcome.get("mismatches", [])[:4]:
                lines.append(
                    f"// vector {mismatch.get('vector_index')}: output "
                    f"{mismatch.get('output')!r} expected "
                    f"{mismatch.get('expected')} got "
                    f"{mismatch.get('actual')} with inputs "
                    f"{mismatch.get('inputs')}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "diagnostics": [dict(diag) for diag in self.diagnostics],
            "outcome": dict(self.outcome) if self.outcome else None,
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return report_json(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RepairFeedback":
        data = strip_schema(data)
        outcome = data.get("outcome")
        return cls(
            kind=data["kind"],
            diagnostics=[dict(diag)
                         for diag in data.get("diagnostics", [])],
            outcome=dict(outcome) if outcome else None,
        )
