"""The agentic repair loop: generate → check → simulate → diagnose →
repair → re-check, under a fixed iteration budget.

The loop composes machinery that already exists elsewhere in the repo —
:func:`repro.verilog.check` diagnostics, the
:mod:`repro.eval.functional` testbench, and the rule-based fixer in
:mod:`repro.model.repair` — into one deterministic, seeded feedback
cycle.  The feedback channel is *structured*
(:class:`RepairFeedback`: syntax diagnostics with line/column spans,
dependency reports, functional counterexamples), so any
:class:`Repairer` — the rule-based one here, or a fine-tuned model —
consumes the same contract.

Two consumers sit on top: the repair-trajectory corpus source
(:mod:`repro.corpus.repair_source`) mines fixed transcripts into
broken→fixed training pairs, and the ``pass@k(repair_budget=r)`` eval
scenario (:mod:`repro.eval.repair_eval`) gives failed samples up to
``r`` feedback-driven retries.
"""

from .feedback import RepairFeedback
from .loop import (
    ModelRepairer,
    Repairer,
    RepairContext,
    RepairIteration,
    RepairLoop,
    RepairTranscript,
    RuleBasedRepairer,
)

__all__ = [
    "RepairFeedback",
    "Repairer", "RepairContext", "RepairIteration", "RepairLoop",
    "RepairTranscript", "RuleBasedRepairer", "ModelRepairer",
]
