"""The deterministic repair loop and its ``Repairer`` contract.

One :meth:`RepairLoop.run` call drives a single candidate through
``check → (simulate) → diagnose → repair → re-check`` for at most
``budget`` feedback iterations and returns the full
:class:`RepairTranscript` — every intermediate candidate, the action
that produced it, and where (if anywhere) the candidate first reached
success.

Determinism is load-bearing: the per-iteration RNG derives from
``(seed, candidate_id, iteration)`` via blake2b, every check and
simulation is seeded, and the loop journals each committed iteration
through :mod:`repro.resilience` — so the same broken source under the
same seed produces the same transcript on any executor, and a run
killed between iterations resumes byte-identically.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Protocol, Tuple, runtime_checkable

from ..model.repair import self_reflect_once
from ..obs import Observability, resolve
from ..obs.reportable import report_json, strip_schema
from ..resilience.checkpoint import run_signature
from ..resilience.runtime import Resilience
from ..resilience.runtime import resolve as resolve_resilience
from ..verilog import check
from .feedback import RepairFeedback

#: Shield/fault site one loop iteration executes under.
ITERATION_SITE = "repair.iteration"

#: Journal stage name for iteration-boundary checkpoints.
_STAGE = "repair.loop"

#: Statuses that count as success when no functional spec is given
#: (dependency issues are not the repairer's job — mirrors
#: :func:`repro.model.repair.repair`).
_SYNTAX_OK = ("clean", "dependency")


def loop_seed(seed: int, candidate_id: str, iteration: int = 0) -> int:
    """Stable 64-bit RNG seed for one (run, candidate, iteration)."""
    digest = hashlib.blake2b(
        f"{seed}:{candidate_id}:{iteration}".encode("utf-8"),
        digest_size=8,
    ).digest()
    return int.from_bytes(digest, "little")


@dataclass(frozen=True)
class RepairContext:
    """What a repairer may condition on beyond the code itself."""

    description: str = ""
    module_header: Optional[str] = None
    temperature: float = 0.8
    iteration: int = 0


@runtime_checkable
class Repairer(Protocol):
    """The pluggable fix-proposal step of the loop.

    ``propose`` returns ``(new_code, action)`` or ``None`` when it has
    nothing to offer; it must be a pure function of its arguments (the
    loop hands it a freshly derived RNG each iteration, which is what
    keeps transcripts executor-independent and resumable).
    """

    name: str

    def propose(self, code: str, feedback: RepairFeedback,
                context: RepairContext,
                rng: random.Random) -> Optional[Tuple[str, str]]: ...


class RuleBasedRepairer:
    """The :mod:`repro.model.repair` fixer behind the protocol: one
    textual remedy per syntax diagnostic, nothing for functional or
    dependency failures."""

    name = "rule-based"

    def propose(self, code: str, feedback: RepairFeedback,
                context: RepairContext,
                rng: random.Random) -> Optional[Tuple[str, str]]:
        if feedback.kind != "syntax":
            return None
        error = feedback.first_error()
        if error is None:
            return None
        return self_reflect_once(
            code, error.get("message", ""), error.get("line", 0),
            error.get("column", 0))


class ModelRepairer:
    """Any generator model behind the protocol (OriGen-style): syntax
    damage goes to the rule-based fixer first, and everything else —
    or an exhausted rule — regenerates with the rendered feedback
    appended to the prompt, under the iteration's derived RNG."""

    name = "model"

    def __init__(self, model: Any, rules: Optional[RuleBasedRepairer] = None):
        self.model = model
        self.rules = rules if rules is not None else RuleBasedRepairer()

    def propose(self, code: str, feedback: RepairFeedback,
                context: RepairContext,
                rng: random.Random) -> Optional[Tuple[str, str]]:
        if feedback.kind == "syntax":
            attempt = self.rules.propose(code, feedback, context, rng)
            if attempt is not None and attempt[0] != code:
                return attempt
        prompt = context.description or "repair the module below"
        prompt = f"{prompt}\n\n{feedback.render()}"
        regenerated = self.model.generate(
            prompt,
            temperature=context.temperature,
            rng=rng,
            module_header=context.module_header,
        )
        if not regenerated or regenerated == code:
            return None
        return regenerated, "regenerate"


@dataclass
class RepairIteration:
    """One committed loop iteration: the action taken, the feedback
    that drove it, and the candidate it produced."""

    index: int
    action: str
    repairer: str
    feedback_kind: str
    status: str
    code: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "action": self.action,
            "repairer": self.repairer,
            "feedback_kind": self.feedback_kind,
            "status": self.status,
            "code": self.code,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RepairIteration":
        return cls(
            index=data["index"],
            action=data["action"],
            repairer=data.get("repairer", ""),
            feedback_kind=data.get("feedback_kind", ""),
            status=data["status"],
            code=data["code"],
        )


@dataclass
class RepairTranscript:
    """The loop's full history for one candidate
    (:class:`~repro.obs.Reportable`)."""

    schema = "pyranet/repair-transcript/v1"

    candidate_id: str
    seed: int
    budget: int
    original: str
    initial_status: str
    iterations: List[RepairIteration] = field(default_factory=list)
    final_status: str = "syntax"
    final_code: str = ""
    fixed: bool = False
    fixed_at: Optional[int] = None

    def n_iterations(self) -> int:
        return len(self.iterations)

    def actions(self) -> List[str]:
        return [iteration.action for iteration in self.iterations]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "candidate_id": self.candidate_id,
            "seed": self.seed,
            "budget": self.budget,
            "original": self.original,
            "initial_status": self.initial_status,
            "iterations": [it.to_dict() for it in self.iterations],
            "final_status": self.final_status,
            "final_code": self.final_code,
            "fixed": self.fixed,
            "fixed_at": self.fixed_at,
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return report_json(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RepairTranscript":
        data = strip_schema(data)
        return cls(
            candidate_id=data["candidate_id"],
            seed=data["seed"],
            budget=data["budget"],
            original=data["original"],
            initial_status=data["initial_status"],
            iterations=[RepairIteration.from_dict(item)
                        for item in data.get("iterations", [])],
            final_status=data.get("final_status", "syntax"),
            final_code=data.get("final_code", ""),
            fixed=data.get("fixed", False),
            fixed_at=data.get("fixed_at"),
        )

    @classmethod
    def from_json(cls, text: str) -> "RepairTranscript":
        import json

        return cls.from_dict(json.loads(text))


@dataclass
class RepairLoop:
    """The seeded loop runner.

    Args:
        budget: feedback-driven repair iterations per candidate.
        n_test_vectors: stimulus vectors per functional check (specs
            with golden models only).
        seed: master seed; per-iteration RNGs derive via
            :func:`loop_seed`.
        repairer: the fix proposer; defaults to
            :class:`RuleBasedRepairer`.
        temperature: sampling temperature handed to model repairers.
        functional_seed: stimulus seed for the functional testbench
            (fixed, matching the eval harness).
        obs: the loop becomes a ``repair.loop`` span; committed
            iteration counts feed the ``repair.iterations`` histogram.
        resilience: with a checkpointer, each iteration commits to the
            journal at its boundary, so a killed loop resumes with the
            already-committed iterations replayed byte-identically.
    """

    budget: int = 2
    n_test_vectors: int = 16
    seed: int = 0
    repairer: Optional[Repairer] = None
    temperature: float = 0.8
    functional_seed: int = 1000
    obs: Optional[Observability] = None
    resilience: Optional[Resilience] = None

    def __post_init__(self) -> None:
        if self.budget < 0:
            raise ValueError("budget must be >= 0")

    # -- assessment -----------------------------------------------------

    def _assess(self, code: str, spec) -> Tuple[str, Optional[RepairFeedback]]:
        """Check (and, with a spec, simulate) one candidate.

        Returns ``(status, feedback)`` where feedback is ``None`` on
        success.  Status values: ``syntax`` / ``dependency`` /
        ``clean`` (no spec), plus ``pass`` / ``fail`` (with a spec).
        """
        from ..eval.functional import run_functional_test

        report = check(code)
        if report.status == "syntax":
            return "syntax", RepairFeedback.from_check(report)
        if spec is None or spec.golden is None:
            return report.status, None
        outcome = run_functional_test(
            code, spec, n_vectors=self.n_test_vectors,
            seed=self.functional_seed)
        if outcome.passed:
            return "pass", None
        return "fail", RepairFeedback.from_outcome(outcome)

    def _success(self, status: str, spec) -> bool:
        if spec is None or spec.golden is None:
            return status in _SYNTAX_OK
        return status == "pass"

    # -- the loop -------------------------------------------------------

    def run(self, code: str, spec=None, candidate_id: str = "",
            description: str = "",
            module_header: Optional[str] = None) -> RepairTranscript:
        """Drive one candidate through the loop; returns the transcript."""
        obs = resolve(self.obs)
        res = resolve_resilience(self.resilience)
        repairer = self.repairer if self.repairer is not None \
            else RuleBasedRepairer()
        ckpt = res.checkpointer if res.enabled else None
        state = None
        if ckpt is not None:
            signature = run_signature([code], (_STAGE,), extra=(
                "repair-loop", self.seed, self.budget,
                self.n_test_vectors, self.functional_seed,
                candidate_id, spec is not None))
            state = ckpt.begin(signature)

        with obs.span("repair.loop", candidate=candidate_id or "<anon>",
                      budget=self.budget,
                      repairer=getattr(repairer, "name",
                                       type(repairer).__name__)) as span:
            status, feedback = self._assess(code, spec)
            transcript = RepairTranscript(
                candidate_id=candidate_id, seed=self.seed,
                budget=self.budget, original=code,
                initial_status=status, final_status=status,
                final_code=code)
            if self._success(status, spec):
                transcript.fixed = True
                transcript.fixed_at = 0
            current = code
            replayed = state.completed_batches(0) if state else 0
            for index in range(1, self.budget + 1):
                if transcript.fixed or feedback is None:
                    break
                if state is not None and index <= replayed:
                    payload = state.batch_result(0, index - 1)
                    iteration = RepairIteration.from_dict(payload)
                    obs.counter("repair.iterations.replayed").inc()
                    next_feedback = (
                        None if self._success(iteration.status, spec)
                        else self._assess(iteration.code, spec)[1])
                else:
                    outcome = res.call(
                        ITERATION_SITE,
                        lambda: self._iterate(current, feedback,
                                              repairer, index,
                                              candidate_id,
                                              description,
                                              module_header, spec))
                    if outcome is None:
                        break
                    iteration, next_feedback = outcome
                    if ckpt is not None:
                        ckpt.record_batch(0, index - 1, _STAGE,
                                          iteration.to_dict())
                transcript.iterations.append(iteration)
                current = iteration.code
                transcript.final_code = current
                transcript.final_status = iteration.status
                feedback = next_feedback
                if feedback is None:
                    transcript.fixed = self._success(iteration.status,
                                                     spec)
                    if transcript.fixed:
                        transcript.fixed_at = index
            if ckpt is not None:
                ckpt.finish({"fixed": transcript.fixed,
                             "iterations": transcript.n_iterations()})
            span.meta["fixed"] = transcript.fixed
            span.meta["iterations"] = transcript.n_iterations()
        obs.histogram("repair.iterations").observe(
            transcript.n_iterations())
        obs.counter("repair.loop.fixed" if transcript.fixed
                    else "repair.loop.failed").inc()
        return transcript

    def _iterate(
        self, code: str, feedback: RepairFeedback, repairer: Repairer,
        index: int, candidate_id: str, description: str,
        module_header: Optional[str], spec,
    ) -> Optional[Tuple[RepairIteration, Optional[RepairFeedback]]]:
        """One pure iteration: propose a fix, re-assess it.

        Pure in the resumable sense — the RNG derives from
        ``(seed, candidate_id, index)``, so a retried or replayed
        iteration reproduces the same proposal.  Returns the committed
        iteration plus the next round's feedback (``None`` on success).
        """
        context = RepairContext(
            description=description, module_header=module_header,
            temperature=self.temperature, iteration=index)
        rng = random.Random(loop_seed(self.seed, candidate_id, index))
        proposal = repairer.propose(code, feedback, context, rng)
        if proposal is None or proposal[0] == code:
            return None
        new_code, action = proposal
        status, next_feedback = self._assess(new_code, spec)
        iteration = RepairIteration(
            index=index, action=action,
            repairer=getattr(repairer, "name", type(repairer).__name__),
            feedback_kind=feedback.kind, status=status, code=new_code)
        return iteration, next_feedback
