"""Ranking: the 0–20 code-quality judge (paper Section III-A.4, Fig. 3).

The paper asks GPT-4o-mini to "rank the quality of this Verilog code in
scale of 0 to 20, with 0 being syntactically incorrect and 20 being a
good Verilog code in terms of efficiency and coding style".  Our judge
is deterministic: syntactic validity gates the score, and the
style/efficiency lint penalties from :mod:`repro.verilog.style` are
mapped onto the 0–20 scale.  The paper's Fig. 3 exemplar (a clean half
adder) scores 20/20 here, which the test suite pins down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..verilog import lint
from ..verilog.style import StyleReport


@dataclass
class RankingResult:
    """Score plus the evidence behind it."""

    score: int
    style_report: Optional[StyleReport] = None
    notes: List[str] = field(default_factory=list)


#: How many ranking points one lint-penalty point costs.
PENALTY_TO_POINTS = 2.1


def rank_code(code: str) -> RankingResult:
    """Judge ``code`` and return score + evidence."""
    report = lint(code)
    if report.parse_failed:
        return RankingResult(
            score=0, style_report=report,
            notes=["syntactically incorrect"],
        )
    penalty = report.penalty
    score = round(20 - PENALTY_TO_POINTS * penalty)
    score = max(1, min(20, score))
    notes = [str(v) for v in report.violations[:8]]
    return RankingResult(score=score, style_report=report, notes=notes)


def score_code(code: str) -> int:
    """Just the 0–20 score."""
    return rank_code(code).score


def format_ranking_prompt(code: str) -> str:
    """The Fig. 3 prompt text for one code sample."""
    return (
        "Act as a teacher and rank the quality of this Verilog code in "
        "scale of 0 to 20, with 0 being syntactically incorrect and 20 "
        "being a good Verilog code in terms of efficiency and coding "
        f"style:\n\n{code}\n\nJust give me the score only."
    )


def format_ranking_response(score: int) -> str:
    """The Fig. 3 response text."""
    return f"Score: {score} out of 20."
