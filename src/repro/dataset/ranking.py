"""Ranking: the 0–20 code-quality judge (paper Section III-A.4, Fig. 3).

The paper asks GPT-4o-mini to "rank the quality of this Verilog code in
scale of 0 to 20, with 0 being syntactically incorrect and 20 being a
good Verilog code in terms of efficiency and coding style".  Our judge
is deterministic: syntactic validity gates the score, and the
style/efficiency lint penalties from :mod:`repro.verilog.style` are
mapped onto the 0–20 scale.  The paper's Fig. 3 exemplar (a clean half
adder) scores 20/20 here, which the test suite pins down.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..verilog import lint
from ..verilog.style import StyleReport

try:  # pragma: no cover - exercised via the parity test
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


@dataclass
class RankingResult:
    """Score plus the evidence behind it."""

    score: int
    style_report: Optional[StyleReport] = None
    notes: List[str] = field(default_factory=list)


#: How many ranking points one lint-penalty point costs.
PENALTY_TO_POINTS = 2.1


def round_half_up(value: float) -> int:
    """Round with ``.5`` always going up.

    The scoring rule is documented as conventional rounding; Python's
    built-in ``round`` uses banker's rounding (half-to-even), which
    would send a raw 16.5 to 16 but 17.5 to 18 — an inconsistency a
    score consumer can observe at tier boundaries.
    """
    return math.floor(value + 0.5)


def score_from_penalty(penalty: float,
                       points_per_penalty: float = PENALTY_TO_POINTS) -> int:
    """Map a lint penalty total onto the 1–20 scale (half-up)."""
    raw = 20 - points_per_penalty * penalty
    return max(1, min(20, round_half_up(raw)))


def rank_code(code: str) -> RankingResult:
    """Judge ``code`` and return score + evidence."""
    report = lint(code)
    if report.parse_failed:
        return RankingResult(
            score=0, style_report=report,
            notes=["syntactically incorrect"],
        )
    score = score_from_penalty(report.penalty)
    notes = [str(v) for v in report.violations[:8]]
    return RankingResult(score=score, style_report=report, notes=notes)


def score_code(code: str) -> int:
    """Just the 0–20 score."""
    return rank_code(code).score


def _scores_from_penalties(penalties: Sequence[float],
                           parse_failed: Sequence[bool]) -> List[int]:
    """Penalty totals → scores, vectorised when numpy is present.

    Must agree bit-for-bit with :func:`score_from_penalty` /
    :func:`rank_code` — the parity test pins this.
    """
    if _np is not None and len(penalties) >= 8:
        raw = 20.0 - PENALTY_TO_POINTS * _np.asarray(penalties,
                                                     dtype=_np.float64)
        scores = _np.clip(_np.floor(raw + 0.5), 1, 20).astype(_np.int64)
        failed = _np.asarray(parse_failed, dtype=bool)
        scores[failed] = 0
        return [int(s) for s in scores]
    return [0 if failed else score_from_penalty(penalty)
            for penalty, failed in zip(penalties, parse_failed)]


def score_many(codes: Sequence[str]) -> List[int]:
    """Scores for a batch: one lint pass per sample, then a single
    vectorised penalty→score mapping (identical to :func:`score_code`
    per element)."""
    reports = [lint(code) for code in codes]
    return _scores_from_penalties(
        [report.penalty for report in reports],
        [report.parse_failed for report in reports])


def format_ranking_prompt(code: str) -> str:
    """The Fig. 3 prompt text for one code sample."""
    return (
        "Act as a teacher and rank the quality of this Verilog code in "
        "scale of 0 to 20, with 0 being syntactically incorrect and 20 "
        "being a good Verilog code in terms of efficiency and coding "
        f"style:\n\n{code}\n\nJust give me the score only."
    )


def format_ranking_response(score: int) -> str:
    """The Fig. 3 response text."""
    return f"Score: {score} out of 20."
