"""PyraNet dataset: records, curation pipeline, labels, and layering."""

from .records import Complexity, CompileStatus, DatasetEntry, PyraNetDataset
from .filters import FunnelStats, run_filter_funnel
from .dedup import (
    DedupReport,
    deduplicate,
    deduplicate_partitioned,
    jaccard,
    tokenize_for_dedup,
)
from .ranking import RankingResult, rank_code, score_code
from .complexity import classify_code, classify_metrics, complexity_score
from .describe import describe_blocks, describe_module, describe_source, family_description
from .families import (
    Evidence,
    Family,
    FamilyForest,
    FamilyIndex,
    FamilyReport,
    FamilyVariant,
    build_family_artifacts,
    module_names,
)
from .layering import LayerReport, assign_layers, layer_for
from .pipeline import CurationPipeline, CurationResult, build_pyranet
from .streaming import (
    StreamingCurationPipeline,
    StreamingStoreResult,
    chain_batches,
    generated_batches,
    raw_file_batches,
)
from .corrupt import shuffle_labels
from .io import load_jsonl, save_jsonl

__all__ = [
    "Complexity", "CompileStatus", "DatasetEntry", "PyraNetDataset",
    "FunnelStats", "run_filter_funnel",
    "DedupReport", "deduplicate", "deduplicate_partitioned",
    "jaccard", "tokenize_for_dedup",
    "RankingResult", "rank_code", "score_code",
    "classify_code", "classify_metrics", "complexity_score",
    "describe_blocks", "describe_module", "describe_source",
    "family_description",
    "Evidence", "Family", "FamilyForest", "FamilyIndex",
    "FamilyReport", "FamilyVariant", "build_family_artifacts",
    "module_names",
    "LayerReport", "assign_layers", "layer_for",
    "CurationPipeline", "CurationResult", "build_pyranet",
    "StreamingCurationPipeline", "StreamingStoreResult",
    "chain_batches", "generated_batches", "raw_file_batches",
    "shuffle_labels", "load_jsonl", "save_jsonl",
]
