"""Dataset persistence: JSONL, the lingua franca of LLM datasets.

One entry per line with all PyraNet labels, mirroring how the published
HuggingFace dataset is distributed.  Writes are crash-safe (tmp sibling
+ ``os.replace``) so an interrupted run never leaves a truncated file;
for sharded, indexed persistence at scale see :mod:`repro.store`.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Union

from ..resilience.atomic import fsync_dir
from .records import DatasetEntry, PyraNetDataset

PathLike = Union[str, Path]


def save_jsonl(dataset: PyraNetDataset, path: PathLike) -> int:
    """Write ``dataset`` to ``path``; returns the number of rows.

    The file is written to a ``*.tmp`` sibling and atomically renamed
    into place, so ``path`` only ever holds a complete dataset — a
    crash mid-write leaves the previous contents (or nothing) intact.
    The parent directory is fsynced after the rename so the new name
    survives power loss as well as a process kill.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    count = 0
    try:
        with tmp.open("w", encoding="utf-8") as handle:
            for entry in dataset:
                handle.write(json.dumps(entry.to_dict(), ensure_ascii=False))
                handle.write("\n")
                count += 1
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        fsync_dir(path.parent)
    finally:
        if tmp.exists():
            tmp.unlink()
    return count


def load_jsonl(path: PathLike) -> PyraNetDataset:
    """Read a dataset written by :func:`save_jsonl`.

    Duplicate ``entry_id`` values are rejected with a ``ValueError``
    naming both offending line numbers — silently keeping both would
    skew every layer statistic computed downstream.
    """
    dataset = PyraNetDataset()
    seen: Dict[str, int] = {}
    with Path(path).open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{line_number}: invalid JSON: {exc}"
                ) from exc
            entry = DatasetEntry.from_dict(data)
            first = seen.setdefault(entry.entry_id, line_number)
            if first != line_number:
                raise ValueError(
                    f"{path}:{line_number}: duplicate entry id "
                    f"{entry.entry_id!r} (first seen at line {first})"
                )
            dataset.add(entry)
    return dataset
