"""Dataset persistence: JSONL, the lingua franca of LLM datasets.

One entry per line with all PyraNet labels, mirroring how the published
HuggingFace dataset is distributed.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Union

from .records import DatasetEntry, PyraNetDataset

PathLike = Union[str, Path]


def save_jsonl(dataset: PyraNetDataset, path: PathLike) -> int:
    """Write ``dataset`` to ``path``; returns the number of rows."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for entry in dataset:
            handle.write(json.dumps(entry.to_dict(), ensure_ascii=False))
            handle.write("\n")
            count += 1
    return count


def load_jsonl(path: PathLike) -> PyraNetDataset:
    """Read a dataset written by :func:`save_jsonl`."""
    dataset = PyraNetDataset()
    with Path(path).open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{line_number}: invalid JSON: {exc}"
                ) from exc
            dataset.add(DatasetEntry.from_dict(data))
    return dataset
