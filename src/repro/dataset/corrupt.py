"""Dataset corruption for the quality-verification study (Table IV).

The paper validates its GPT-generated labels by *shuffling* the codes,
descriptions, and rankings across rows — creating mismatched
(code, description, ranking) triples — fine-tuning on the distorted
dataset, and showing the resulting model collapses.  :func:`shuffle_labels`
reproduces exactly that distortion.
"""

from __future__ import annotations

import copy
import random
from typing import List, Optional

from .records import DatasetEntry, PyraNetDataset


def shuffle_labels(
    dataset: PyraNetDataset,
    seed: int = 0,
    shuffle_descriptions: bool = True,
    shuffle_rankings: bool = True,
) -> PyraNetDataset:
    """Return a copy with descriptions/rankings permuted across rows.

    Codes stay in place; the labels rotate with a derangement-style
    shuffle (every row receives some other row's labels whenever the
    dataset has more than one row), so code↔description alignment is
    destroyed rather than merely perturbed.
    """
    rng = random.Random(seed)
    entries = [copy.deepcopy(e) for e in dataset.entries]
    n = len(entries)
    if n > 1:
        permutation = _derangement(n, rng)
        if shuffle_descriptions:
            descriptions = [e.description for e in entries]
            for index, entry in enumerate(entries):
                entry.description = descriptions[permutation[index]]
        if shuffle_rankings:
            rankings = [e.ranking for e in entries]
            complexities = [e.complexity for e in entries]
            for index, entry in enumerate(entries):
                entry.ranking = rankings[permutation[index]]
                entry.complexity = complexities[permutation[index]]
    shuffled = PyraNetDataset(entries=entries)
    # Re-layer with the (now wrong) rankings, as the paper's distorted
    # dataset would be organised by its shuffled labels.
    from .layering import assign_layers

    assign_layers(shuffled.entries)
    return shuffled


def _derangement(n: int, rng: random.Random) -> List[int]:
    """A permutation with no fixed points (for n > 1)."""
    while True:
        permutation = list(range(n))
        rng.shuffle(permutation)
        if all(permutation[i] != i for i in range(n)):
            return permutation


#: Binary-operator substitutions for :func:`operator_mutants` — each
#: swap preserves syntax but (generically) changes the function, the
#: classic mutation-testing operator set.
_OPERATOR_SWAPS = {
    "+": "-", "-": "+",
    "&": "|", "|": "&",
    "^": "~^",
    "<": ">=", ">": "<=", "<=": ">", ">=": "<",
    "==": "!=", "!=": "==",
}


def operator_mutants(code: str, max_mutants: int = 8) -> List[str]:
    """Single-operator mutants of ``code`` (still parseable Verilog).

    Each mutant swaps exactly one binary operator occurrence using the
    token stream (never raw string replacement, which would corrupt
    identifiers and literals).  Mutants are returned in source order,
    at most ``max_mutants`` of them; a file that fails to tokenize, or
    contains no swappable operator, yields an empty list.

    These are known-inequivalent *candidates* — a swap inside dead
    code or a self-symmetric context can be a semantic no-op, so
    consumers asserting inequivalence should check mutants
    individually (the formal cross-validation test does).
    """
    from ..verilog import LexError, ParseError, TokenKind, parse, tokenize

    try:
        tokens = tokenize(code)
    except LexError:
        return []
    # Tokens carry (1-based) line/col, not byte offsets; precompute
    # line starts to map them back into the source string.
    line_starts = [0]
    for line in code.split("\n")[:-1]:
        line_starts.append(line_starts[-1] + len(line) + 1)
    mutants: List[str] = []
    for token in tokens:
        if len(mutants) >= max_mutants:
            break
        if token.kind is not TokenKind.OPERATOR:
            continue
        replacement = _OPERATOR_SWAPS.get(token.text)
        if replacement is None:
            continue
        if token.line - 1 >= len(line_starts):
            continue
        start = line_starts[token.line - 1] + token.col - 1
        end = start + len(token.text)
        if code[start:end] != token.text:
            continue
        mutant = code[:start] + replacement + code[end:]
        try:
            # A swap can change the grammar, not just the semantics
            # (e.g. the '<=' of a non-blocking assignment): keep only
            # mutants that are still well-formed programs.
            parse(mutant)
        except (LexError, ParseError):
            continue
        mutants.append(mutant)
    return mutants
