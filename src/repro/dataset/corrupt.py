"""Dataset corruption for the quality-verification study (Table IV).

The paper validates its GPT-generated labels by *shuffling* the codes,
descriptions, and rankings across rows — creating mismatched
(code, description, ranking) triples — fine-tuning on the distorted
dataset, and showing the resulting model collapses.  :func:`shuffle_labels`
reproduces exactly that distortion.
"""

from __future__ import annotations

import copy
import random
from typing import List, Optional

from .records import DatasetEntry, PyraNetDataset


def shuffle_labels(
    dataset: PyraNetDataset,
    seed: int = 0,
    shuffle_descriptions: bool = True,
    shuffle_rankings: bool = True,
) -> PyraNetDataset:
    """Return a copy with descriptions/rankings permuted across rows.

    Codes stay in place; the labels rotate with a derangement-style
    shuffle (every row receives some other row's labels whenever the
    dataset has more than one row), so code↔description alignment is
    destroyed rather than merely perturbed.
    """
    rng = random.Random(seed)
    entries = [copy.deepcopy(e) for e in dataset.entries]
    n = len(entries)
    if n > 1:
        permutation = _derangement(n, rng)
        if shuffle_descriptions:
            descriptions = [e.description for e in entries]
            for index, entry in enumerate(entries):
                entry.description = descriptions[permutation[index]]
        if shuffle_rankings:
            rankings = [e.ranking for e in entries]
            complexities = [e.complexity for e in entries]
            for index, entry in enumerate(entries):
                entry.ranking = rankings[permutation[index]]
                entry.complexity = complexities[permutation[index]]
    shuffled = PyraNetDataset(entries=entries)
    # Re-layer with the (now wrong) rankings, as the paper's distorted
    # dataset would be organised by its shuffled labels.
    from .layering import assign_layers

    assign_layers(shuffled.entries)
    return shuffled


def _derangement(n: int, rng: random.Random) -> List[int]:
    """A permutation with no fixed points (for n > 1)."""
    while True:
        permutation = list(range(n))
        rng.shuffle(permutation)
        if all(permutation[i] != i for i in range(n)):
            return permutation
