"""Streaming shard-parallel curation: the memory-bounded curate path.

:class:`StreamingCurationPipeline` produces *exactly* the dataset the
in-memory :class:`~.pipeline.CurationPipeline` produces — same entries,
same layer assignment, same drop histogram, same dedup keep/drop
decisions (golden-tested) — without ever materialising the corpus.
The corpus flows through three phases as bounded record batches:

1. **filter + sign** (``empty_broken → module_decl`` fused per batch,
   fanned out through :meth:`ParallelExecutor.stream_map`): surviving
   records are spilled batch-at-a-time; their MinHash-LSH band keys are
   routed to band partitions (PR 5's vectorised signatures, computed in
   the workers).
2. **distributed dedup**: each partition owns a set of band keys and
   emits its colliding index pairs with
   :func:`~.dedup.band_candidate_pairs` — a pure, shared-nothing map
   side.  A single ascending resolve pass over the spilled survivors
   then replays the sequential algorithm's decisions exactly (see the
   equivalence argument in :mod:`.dedup`), holding only the shingle
   sets still referenced by unresolved candidate pairs.
3. **label** (``syntax_check → rank_label → describe`` fused per
   batch): kept records stream back through the workers; the parent
   assembles :class:`DatasetEntry` rows in order (entry ids depend on
   the global post-syntax position, which only the parent knows),
   assigns layers incrementally, and hands entries to the caller —
   an in-memory dataset for :meth:`run` / :meth:`run_stream`, or a
   :class:`~repro.store.writer.ShardWriter` for
   :meth:`curate_to_store`, which never holds more than a shard.

Differences from the in-memory engine path, by design:

* per-record caching and retry/quarantine shields are not applied
  inside the fused workers (stage functions are pure; a failed batch
  fails the run or resumes from its checkpoint);
* wall time is attributed to the first stage of each fused phase in
  the trace (``empty_broken``, ``dedup``, ``syntax_check``); counts and
  drops are per-stage and identical to the in-memory trace.

With a :class:`~repro.resilience.Checkpointer` on the resilience
runtime, phase-1 and phase-3 batches are journaled as they complete
and a killed run resumes without recomputing them — the dedup merge is
recomputed from the (identical) journaled phase-1 outputs.  Resuming
requires re-supplying the same source stream and ``source_token``.
"""

from __future__ import annotations

import heapq
import time
import pickle
import zlib
from dataclasses import dataclass
from itertools import chain
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from ..corpus.github_sim import RawFile
from ..corpus.llm_sim import GeneratedSample, strip_markdown_fences
from ..obs import Observability, resolve
from ..pipeline import ParallelExecutor, PipelineTrace, StageMetrics
from ..resilience.checkpoint import run_signature
from ..resilience.runtime import Resilience
from ..resilience.runtime import resolve as resolve_resilience
from .complexity import classify_code
from .dedup import (
    MinHasher,
    band_candidate_pairs,
    jaccard,
    signature_band_keys,
    tokenize_for_dedup,
)
from .describe import describe_source, family_description
from .families import FamilyForest, FamilyIndex, forest_from_pairs, module_names
from .filters import FunnelStats, has_module, is_readable, syntax_filter
from .layering import Complexity, LayerReport, layer_for
from .pipeline import CurationResult, PipelineReport
from .ranking import score_many
from .records import CompileStatus, DatasetEntry, PyraNetDataset
from ..verilog.formal import verify_code

PathLike = Union[str, Path]

#: Stage names, in order — identical to the in-memory pipeline so
#: funnel reconstruction and trace comparisons work unchanged.
STAGE_NAMES = ("empty_broken", "module_decl", "dedup", "syntax_check",
               "rank_label", "formal_verify", "describe", "assemble",
               "layer")

_SourceRecord = Tuple[str, Dict[str, Any]]  # (content, provenance)


# -- source adapters ----------------------------------------------------


def raw_file_batches(
    batches: Iterable[Sequence[RawFile]],
) -> Iterator[List[_SourceRecord]]:
    """Adapt a stream of :class:`RawFile` batches (e.g.
    :meth:`GitHubScrapeSimulator.iter_scrape`) to source records."""
    for batch in batches:
        yield [(f.content, {"origin": f.origin, "path": f.path,
                            "description": None}) for f in batch]


def generated_batches(
    samples: Iterable[GeneratedSample], batch_size: int = 256,
) -> Iterator[List[_SourceRecord]]:
    """Adapt LLM-generated samples to source-record batches."""
    batch: List[_SourceRecord] = []
    for sample in samples:
        content = strip_markdown_fences(sample.raw_response)
        batch.append((content, {
            "origin": "llm",
            "path": f"llm/{sample.design.module_name}.v",
            "description": sample.design.description,
        }))
        if len(batch) >= batch_size:
            yield batch
            batch = []
    if batch:
        yield batch


def chain_batches(*sources: Iterable[List[_SourceRecord]],
                  ) -> Iterator[List[_SourceRecord]]:
    """Concatenate batch streams (github scrape first, then LLM —
    the in-memory pipeline's source order)."""
    for source in sources:
        for batch in source:
            yield batch


# -- fused worker functions (module-level: process-pool picklable) ------

_WORKER_HASHERS: Dict[Tuple[int, int], MinHasher] = {}


def _hasher_for(n_perm: int, seed: int = 0) -> MinHasher:
    """Per-process hasher memo — MinHasher's permutation tables are
    rebuilt once per worker process, not once per batch."""
    key = (n_perm, seed)
    hasher = _WORKER_HASHERS.get(key)
    if hasher is None:
        hasher = _WORKER_HASHERS[key] = MinHasher(n_perm, seed)
    return hasher


def _filter_sign_batch(payload: tuple) -> Dict[str, Any]:
    """Phase 1, fused per batch: ``empty_broken → module_decl`` plus
    MinHash signing and band-key emission for the survivors."""
    batch_index, items, n_perm, bands = payload
    hasher = _hasher_for(n_perm)
    survivors: List[tuple] = []
    emissions: List[tuple] = []
    drops: Dict[str, Dict[str, int]] = {"empty_broken": {},
                                        "module_decl": {}}
    n_llm = 0
    for index, content, provenance in items:
        if provenance.get("origin") == "llm":
            n_llm += 1
        decision = is_readable(content)
        if not decision.kept:
            stage_drops = drops["empty_broken"]
            stage_drops[decision.reason] = (
                stage_drops.get(decision.reason, 0) + 1)
            continue
        decision = has_module(content)
        if not decision.kept:
            stage_drops = drops["module_decl"]
            stage_drops[decision.reason] = (
                stage_drops.get(decision.reason, 0) + 1)
            continue
        signature = hasher.signature(tokenize_for_dedup(content))
        for key in signature_band_keys(signature, bands):
            emissions.append((key, index))
        survivors.append((index, content, provenance))
    return {"batch": batch_index, "n_in": len(items), "n_llm": n_llm,
            "survivors": survivors, "emissions": emissions,
            "drops": drops}


def _label_batch(payload: tuple) -> Dict[str, Any]:
    """Phase 3, fused per batch: ``syntax_check → rank_label →
    formal_verify → describe`` with only plain picklable fields
    shipped back.  Scoring runs as one vectorised pass per batch
    (identical per-element results — the parity test pins it)."""
    batch_index, items = payload
    survivors: List[tuple] = []
    n_syntax_dropped = 0
    for index, content, provenance in items:
        decision, result = syntax_filter(content)
        if not decision.kept:
            n_syntax_dropped += 1
            continue
        status = "clean" if result.status == "clean" else "dependency"
        detail = ""
        if status == "dependency":
            issues = result.dependency_issues
            detail = issues[0].message if issues else "dependency issues"
        survivors.append((index, content, provenance, status, detail,
                          list(result.modules)))
    scores = score_many([item[1] for item in survivors])
    labeled: List[tuple] = []
    for (index, content, provenance, status, detail, modules), ranking \
            in zip(survivors, scores):
        description = provenance["description"] or describe_source(content)
        # Same gate as the in-memory stage's ``when`` predicate: only
        # clean 20/20 entries can enter the verified tier.
        verified, verified_detail = False, ""
        if ranking == 20 and status == "clean":
            verified, verified_detail = verify_code(content)
        labeled.append((
            index, content, provenance, status, detail,
            ranking, classify_code(content), description,
            modules, verified, verified_detail,
        ))
    return {"batch": batch_index, "n_in": len(items),
            "n_syntax_dropped": n_syntax_dropped, "labeled": labeled}


def _partition_pairs(arg: tuple) -> tuple:
    """Phase 2 map side: one partition's collision pairs, sorted by
    (later, earlier) for the parent's streaming merge, plus per-earlier
    reference counts so the parent can evict shingles without ever
    materialising the pair set, plus the partition's **partial
    union-find forest** (node -> min-index component root) over those
    pairs — the parent merges the partial forests into the global LSH
    collision forest for family clustering, so the quadratic pair set
    is reduced worker-side to a map linear in the partition's distinct
    indices.  Disk-backed partitions write their pairs back to disk —
    a partition's pairs can be quadratic in its duplicate-cluster
    sizes (the map side cannot know which members the sequential
    algorithm would have dropped), so they must never ride home
    through the parent's memory wholesale."""
    kind = arg[0]
    if kind == "mem":
        emissions = arg[1]
    else:
        emissions = []
        with open(arg[1], "rb") as handle:
            while True:
                try:
                    emissions.extend(pickle.loads(
                        zlib.decompress(pickle.load(handle))))
                except EOFError:
                    break
    pairs = band_candidate_pairs(emissions)
    forest = forest_from_pairs(pairs).compressed()
    pairs.sort(key=lambda pair: (pair[1], pair[0]))
    refcounts: Dict[int, int] = {}
    for earlier, _later in pairs:
        refcounts[earlier] = refcounts.get(earlier, 0) + 1
    counts = sorted(refcounts.items())
    if kind == "mem":
        return ("mem", pairs, counts, forest)
    out_path = arg[2]
    with open(out_path, "wb") as handle:
        for start in range(0, len(pairs), 8192):
            pickle.dump(pairs[start:start + 8192], handle, protocol=4)
    return ("file", out_path, counts, forest)


def _pair_stream(result: tuple) -> Iterator[Tuple[int, int]]:
    """Lazily re-read one partition's (later, earlier)-sorted pairs."""
    kind, data = result[0], result[1]
    if kind == "mem":
        yield from data
        return
    with open(data, "rb") as handle:
        while True:
            try:
                chunk = pickle.load(handle)
            except EOFError:
                return
            yield from chunk


# -- bounded spill primitives ------------------------------------------


class _BatchSpill:
    """Ordered batch payload store: a dict in memory, or one
    zlib-compressed pickle per batch under ``directory``."""

    def __init__(self, directory: Optional[Path]) -> None:
        self._dir = directory
        self._mem: Dict[int, Any] = {}
        self.n_batches = 0
        if directory is not None:
            directory.mkdir(parents=True, exist_ok=True)

    def _path(self, index: int) -> Path:
        assert self._dir is not None
        return self._dir / f"batch-{index:06d}.pkl.z"

    def put(self, index: int, payload: Any) -> None:
        if self._dir is None:
            self._mem[index] = payload
        else:
            self._path(index).write_bytes(
                zlib.compress(pickle.dumps(payload, protocol=4)))
        self.n_batches = max(self.n_batches, index + 1)

    def get(self, index: int) -> Any:
        if self._dir is None:
            return self._mem[index]
        return pickle.loads(zlib.decompress(self._path(index).read_bytes()))

    def iter_payloads(self) -> Iterator[Any]:
        for index in range(self.n_batches):
            yield self.get(index)

    def cleanup(self) -> None:
        if self._dir is None:
            self._mem.clear()
            return
        for index in range(self.n_batches):
            try:
                self._path(index).unlink()
            except OSError:
                pass


class _PartitionSpill:
    """Band-key emission shuffle: per-partition append-only buffers
    (chunked, compressed files under ``directory``; lists in memory)."""

    def __init__(self, n_partitions: int, directory: Optional[Path]) -> None:
        self.n_partitions = n_partitions
        self._dir = directory
        self._mem: List[List[tuple]] = [[] for _ in range(n_partitions)]
        if directory is not None:
            directory.mkdir(parents=True, exist_ok=True)
            self._paths = [directory / f"partition-{p:03d}.pkl"
                           for p in range(n_partitions)]
            self._handles = [path.open("wb") for path in self._paths]

    def add(self, chunks: Sequence[List[tuple]]) -> None:
        """Append one chunk of emissions per partition."""
        for partition, chunk in enumerate(chunks):
            if not chunk:
                continue
            if self._dir is None:
                self._mem[partition].extend(chunk)
            else:
                pickle.dump(zlib.compress(pickle.dumps(chunk, protocol=4)),
                            self._handles[partition])

    def worker_args(self) -> List[tuple]:
        if self._dir is None:
            return [("mem", emissions) for emissions in self._mem]
        for handle in self._handles:
            handle.close()
        return [("file", str(path), str(path) + ".pairs")
                for path in self._paths]

    def cleanup(self) -> None:
        if self._dir is None:
            self._mem = [[] for _ in range(self.n_partitions)]
            return
        for handle in self._handles:
            if not handle.closed:
                handle.close()
        for path in self._paths:
            for victim in (path, Path(str(path) + ".pairs")):
                try:
                    victim.unlink()
                except OSError:
                    pass


class _LayerAccumulator:
    """Incremental :func:`~.layering.assign_layers`: sets
    ``entry.layer`` as entries stream past and produces the identical
    :class:`LayerReport` at the end."""

    def __init__(self) -> None:
        self.report = LayerReport()

    def add(self, entry: DatasetEntry) -> None:
        entry.layer = layer_for(entry)
        if entry.verified:
            self.report.n_verified += 1
        sizes = self.report.sizes
        sizes[entry.layer] = sizes.get(entry.layer, 0) + 1
        coverage = self.report.complexity_coverage.setdefault(
            entry.layer, {})
        label = entry.complexity.label
        coverage[label] = coverage.get(label, 0) + 1

    def finish(self) -> LayerReport:
        all_levels = [c.label for c in Complexity]
        for number in range(1, 6):
            present = set(self.report.complexity_coverage.get(number, {}))
            missing = [label for label in all_levels
                       if label not in present]
            if missing and self.report.sizes.get(number, 0) > 0:
                self.report.missing_complexities[number] = missing
        return self.report


@dataclass
class StreamingStoreResult:
    """Outcome of :meth:`StreamingCurationPipeline.curate_to_store`."""

    manifest: Any
    report: PipelineReport


@dataclass
class StreamingCurationPipeline:
    """The streaming, shard-parallel curate path.

    Args:
        dedup_threshold / seed: as :class:`~.pipeline.CurationPipeline`
            — same values produce byte-identical entries.
        batch_size: records per streamed batch (the unit of worker
            dispatch, spill, and checkpointing).
        n_partitions: shared-nothing partitions for distributed dedup's
            map side (any value produces identical decisions).
        executor: worker fan-out; serial by default.  ``thread`` and
            ``process`` modes produce identical output — stage work is
            pure and :meth:`ParallelExecutor.stream_map` preserves
            order.
        obs: observability; phases become spans, the synthesized trace
            is published, and ``proc.rss_peak_bytes`` is sampled at
            span exits.
        resilience: when its checkpointer is set, phase batches journal
            as they complete and a killed run resumes byte-identically.
        spill_dir: directory for survivor batches and the band-key
            shuffle.  ``None`` keeps spill in memory (fine for tests
            and small corpora; pass a real directory for the
            memory-bounded guarantee).
    """

    dedup_threshold: float = 0.8
    seed: int = 0
    batch_size: int = 256
    n_partitions: int = 4
    n_perm: int = 64
    bands: int = 16
    executor: Optional[ParallelExecutor] = None
    obs: Optional[Observability] = None
    resilience: Optional[Resilience] = None
    spill_dir: Optional[PathLike] = None
    #: Keep dedup-dropped near-duplicates as family-tagged variant rows
    #: (same semantics as :class:`CurationPipeline.keep_variants`).
    keep_variants: bool = False

    # -- public entry points -------------------------------------------

    def run(self, raw_files: Sequence[RawFile],
            generated: Sequence[GeneratedSample] = ()) -> CurationResult:
        """Drop-in for :meth:`CurationPipeline.run` over materialised
        inputs — batches them internally and streams."""
        from .pipeline import CurationPipeline

        records = CurationPipeline._source_records(raw_files, generated)
        token = run_signature(
            [(r.index, r.value, r.meta) for r in records], STAGE_NAMES)

        def batches() -> Iterator[List[_SourceRecord]]:
            for start in range(0, len(records), self.batch_size):
                yield [(r.value, r.meta["provenance"])
                       for r in records[start:start + self.batch_size]]

        return self.run_stream(batches(), source_token=token)

    def run_stream(self, batches: Iterable[List[_SourceRecord]],
                   source_token: str = "") -> CurationResult:
        """Curate a batch stream into an in-memory dataset + report.

        ``source_token`` names the source for checkpoint signatures —
        resuming requires the same token and a source that replays the
        same records.
        """
        dataset = PyraNetDataset()
        holder: Dict[str, Any] = {}
        for entry in self._entries(batches, holder, source_token):
            dataset.add(entry)
        return CurationResult(dataset=dataset, report=holder["report"])

    def curate_to_store(
        self, batches: Iterable[List[_SourceRecord]],
        directory: PathLike,
        source_token: str = "",
        max_shard_bytes: Optional[int] = None,
        store_meta: Optional[dict] = None,
    ) -> StreamingStoreResult:
        """Curate a batch stream straight into a sharded store.

        Entries flow from the label workers into the
        :class:`~repro.store.writer.ShardWriter` as they are assembled
        — at no point is the dataset, or more than a shard of it, held
        in memory.
        """
        from ..store.writer import DEFAULT_SHARD_BYTES, ShardWriter

        holder: Dict[str, Any] = {}
        writer = ShardWriter(
            directory,
            max_shard_bytes=max_shard_bytes or DEFAULT_SHARD_BYTES,
            obs=self.obs, resilience=self.resilience)
        manifest = writer.write(
            self._entries(batches, holder, source_token),
            meta=store_meta)
        return StreamingStoreResult(manifest=manifest,
                                    report=holder["report"])

    # -- the dataflow ---------------------------------------------------

    def _entries(self, batches: Iterable[List[_SourceRecord]],
                 holder: Dict[str, Any],
                 source_token: str) -> Iterator[DatasetEntry]:
        """The whole streaming dataflow as one entry generator; fills
        ``holder['report']`` when exhausted."""
        executor = (self.executor if self.executor is not None
                    else ParallelExecutor.serial())
        obs = resolve(self.obs)
        res = resolve_resilience(self.resilience)
        ckpt = res.checkpointer if res.enabled else None
        state = None
        if ckpt is not None:
            signature = run_signature([], STAGE_NAMES, extra=(
                "curation-stream", self.seed, self.dedup_threshold,
                self.batch_size, self.n_partitions, self.n_perm,
                self.bands, self.keep_variants, source_token))
            state = ckpt.begin(signature)
            if state.fresh:
                state = None
        spill_root = Path(self.spill_dir) if self.spill_dir else None
        spill = _BatchSpill(
            spill_root / "survivors" if spill_root else None)
        shuffle = _PartitionSpill(
            self.n_partitions,
            spill_root / "partitions" if spill_root else None)

        previous_tracer = executor.tracer
        if obs.enabled:
            executor.tracer = obs.tracer
        started = time.perf_counter()
        counters = {
            "collected": 0, "n_llm": 0, "after_empty": 0,
            "after_module": 0, "after_syntax": 0, "clean": 0,
            "dependency": 0, "resumed_batches": 0,
        }
        empty_drops: Dict[str, int] = {}
        module_drops: Dict[str, int] = {}
        walls = {"phase1": 0.0, "dedup": 0.0, "phase3": 0.0}
        try:
            # Phase 1: fused filter + sign.
            phase_started = time.perf_counter()
            with obs.span("stream.filter_sign") as span:
                n_batches = self._run_phase1(
                    batches, executor, spill, shuffle, counters,
                    empty_drops, module_drops, ckpt, state, res)
                span.meta["n_batches"] = n_batches
                span.meta["n_survivors"] = counters["after_module"]
            walls["phase1"] = time.perf_counter() - phase_started

            # Phase 2: band-partitioned dedup + deterministic merge.
            phase_started = time.perf_counter()
            with obs.span("stream.dedup",
                          n_partitions=self.n_partitions) as span:
                (duplicate_of, pairs_checked, similarities, forest,
                 family_meta) = self._run_dedup(executor, spill, shuffle)
                family_index = FamilyIndex.build(
                    duplicate_of, similarities, forest, family_meta,
                    seed=self.seed, threshold=self.dedup_threshold)
                span.meta["n_duplicates"] = len(duplicate_of)
                span.meta["candidate_pairs_checked"] = pairs_checked
                span.meta["n_families"] = family_index.n_families
            walls["dedup"] = time.perf_counter() - phase_started
            obs.counter("curation.stream.duplicates").inc(
                len(duplicate_of))
            obs.counter("curation.families").inc(
                family_index.n_families)
            obs.counter("curation.family_variants").inc(
                family_index.n_variants)

            # Phase 3: fused label, ordered assemble + layering.
            phase_started = time.perf_counter()
            layers = _LayerAccumulator()
            with obs.span("stream.label") as span:
                for entry in self._run_phase3(
                        executor, spill, duplicate_of, counters,
                        layers, ckpt, state, res, family_index):
                    yield entry
                span.meta["n_entries"] = counters["after_syntax"]
            walls["phase3"] = time.perf_counter() - phase_started
        finally:
            executor.tracer = previous_tracer
            spill.cleanup()
            shuffle.cleanup()

        # Variant rows survive the dedup stage under keep_variants, so
        # the trace/funnel arithmetic sees zero dedup drops — exactly
        # like the in-memory engine's stage metrics in that mode.
        n_dropped_dedup = 0 if self.keep_variants else len(duplicate_of)
        trace = self._trace(executor, counters, empty_drops, module_drops,
                            n_dropped_dedup, walls,
                            time.perf_counter() - started)
        obs.publish_trace(trace)
        obs.counter("curation.runs").inc()
        obs.counter("curation.files_in").inc(counters["collected"])
        if ckpt is not None:
            ckpt.finish({"n_entries": counters["after_syntax"]})
        holder["report"] = PipelineReport(
            funnel=self._funnel(counters, empty_drops, module_drops,
                                n_dropped_dedup),
            layers=layers.finish(),
            n_collected_github=counters["collected"] - counters["n_llm"],
            n_generated_llm=counters["n_llm"],
            trace=trace,
            families=family_index.report(),
        )

    def _run_phase1(self, batches, executor, spill, shuffle, counters,
                    empty_drops, module_drops, ckpt, state, res) -> int:
        completed = state.completed_batches(0) if state is not None else 0

        def absorb(payload: Dict[str, Any]) -> None:
            counters["collected"] += payload["n_in"]
            counters["n_llm"] += payload["n_llm"]
            for reason, count in payload["drops"]["empty_broken"].items():
                empty_drops[reason] = empty_drops.get(reason, 0) + count
            for reason, count in payload["drops"]["module_decl"].items():
                module_drops[reason] = module_drops.get(reason, 0) + count
            counters["after_module"] += len(payload["survivors"])
            spill.put(payload["batch"],
                      {"survivors": payload["survivors"]})
            chunks: List[List[tuple]] = [
                [] for _ in range(self.n_partitions)]
            for key, index in payload["emissions"]:
                chunks[key[0] % self.n_partitions].append((key, index))
            shuffle.add(chunks)

        def live_payloads() -> Iterator[tuple]:
            batch_index = 0
            next_index = 0
            for batch in batches:
                items = []
                for content, provenance in batch:
                    items.append((next_index, content, provenance))
                    next_index += 1
                if batch_index < completed:
                    # Journaled batch: replay the committed outputs; the
                    # source is still consumed so indices stay aligned.
                    absorb(state.batch_result(0, batch_index))
                    counters["resumed_batches"] += 1
                else:
                    yield (batch_index, items, self.n_perm, self.bands)
                batch_index += 1
            counters["n_batches"] = batch_index

        for payload in executor.stream_map(_filter_sign_batch,
                                           live_payloads()):
            if ckpt is not None:
                ckpt.record_batch(0, payload["batch"],
                                  "stream.filter_sign", payload)
            absorb(payload)
        if counters["resumed_batches"]:
            res.record_resumed(batches=counters["resumed_batches"])
        return counters.get("n_batches", 0)

    def _run_dedup(self, executor, spill, shuffle):
        """Map per partition, then zip a streaming merge of the
        partition pair streams against one ascending pass over the
        spilled survivors — the decisions (and the
        candidate-pairs-checked count) equal :func:`~.dedup.deduplicate`
        exactly; see :mod:`.dedup` for the argument.

        The pair set is never materialised in this process: each
        partition's pairs arrive (later, earlier)-sorted — from disk
        when spilling — and ``heapq.merge`` hands the resolve loop one
        index's candidates at a time.  Parent-side dedup state is the
        per-earlier reference counts (ints), the keep/drop verdicts,
        and the shingle sets (plus family metadata) still awaited by
        unresolved pairs.

        Also merges the workers' partial union-find forests into the
        global LSH collision forest, records the verified similarity
        of every drop decision, and captures path/origin/module
        metadata for each family member at decision time — the family
        inputs, identical to the in-memory path's.
        """
        results = executor.map(_partition_pairs, shuffle.worker_args())

        # How many raw pairs still reference each earlier index;
        # shingles are retained only while referenced.  Counts are per
        # raw (pre-merge) pair and so is the decrement below, so the
        # count hits zero exactly at the last reference even when two
        # partitions emitted the same pair via different bands.
        refcount: Dict[int, int] = {}
        forest = FamilyForest()
        for result in results:
            for earlier, count in result[2]:
                refcount[earlier] = refcount.get(earlier, 0) + count
            forest.merge(result[3])
        merged = heapq.merge(
            *(_pair_stream(result) for result in results),
            key=lambda pair: (pair[1], pair[0]))
        pending = next(merged, None)

        shingles: Dict[int, Any] = {}
        kept_meta: Dict[int, Dict[str, Any]] = {}
        kept_status: Dict[int, bool] = {}
        duplicate_of: Dict[int, int] = {}
        similarities: Dict[int, float] = {}
        family_meta: Dict[int, Dict[str, Any]] = {}
        pairs_checked = 0
        for payload in spill.iter_payloads():
            for index, content, provenance in payload["survivors"]:
                referenced = index in refcount
                # Drain this index's candidates from the merged stream:
                # ascending by earlier, cross-partition duplicates
                # collapsed for the decision loop but decremented raw.
                candidates: List[int] = []
                consumed: List[int] = []
                while pending is not None and pending[1] <= index:
                    earlier = pending[0]
                    if pending[1] == index:
                        if not candidates or candidates[-1] != earlier:
                            candidates.append(earlier)
                        consumed.append(earlier)
                    pending = next(merged, None)
                own_shingles = (tokenize_for_dedup(content)
                                if (referenced or candidates) else None)
                duplicate = None
                similarity = 0.0
                for candidate in candidates:  # ascending
                    if not kept_status.get(candidate, False):
                        continue
                    pairs_checked += 1
                    similarity = jaccard(own_shingles, shingles[candidate])
                    if similarity >= self.dedup_threshold:
                        duplicate = candidate
                        break
                if duplicate is not None:
                    # Capture family metadata now, while the canonical's
                    # refcounted state is guaranteed to still be alive.
                    family_meta[index] = {
                        "path": provenance["path"],
                        "origin": provenance["origin"],
                        "modules": module_names(content)}
                    if duplicate not in family_meta:
                        family_meta[duplicate] = kept_meta[duplicate]
                for candidate in consumed:
                    remaining = refcount.get(candidate, 0) - 1
                    if remaining <= 0:
                        refcount.pop(candidate, None)
                        shingles.pop(candidate, None)
                        kept_meta.pop(candidate, None)
                        kept_status.pop(candidate, None)
                    else:
                        refcount[candidate] = remaining
                if duplicate is not None:
                    duplicate_of[index] = duplicate
                    similarities[index] = similarity
                    if referenced:
                        kept_status[index] = False
                    continue
                if referenced:
                    kept_status[index] = True
                    shingles[index] = own_shingles
                    kept_meta[index] = {
                        "path": provenance["path"],
                        "origin": provenance["origin"],
                        "modules": module_names(content)}
        shuffle.cleanup()
        return duplicate_of, pairs_checked, similarities, forest, family_meta

    def _run_phase3(self, executor, spill, duplicate_of, counters,
                    layers, ckpt, state, res,
                    family_index) -> Iterator[DatasetEntry]:
        completed = state.completed_batches(1) if state is not None else 0
        resumed = 0

        def label_inputs() -> Iterator[tuple]:
            for batch_index, payload in enumerate(spill.iter_payloads()):
                kept = [item for item in payload["survivors"]
                        if self.keep_variants
                        or item[0] not in duplicate_of]
                yield (batch_index, kept)

        def results() -> Iterator[Dict[str, Any]]:
            # Replayed batches are a contiguous prefix of the stream:
            # emit their journaled outputs directly, then hand the rest
            # of the (still lazy) input generator to the pool.
            nonlocal resumed
            inputs = label_inputs()
            first_live = None
            for payload in inputs:
                if payload[0] < completed:
                    yield state.batch_result(1, payload[0])
                    resumed += 1
                else:
                    first_live = payload
                    break
            if first_live is None:
                return
            for out in executor.stream_map(_label_batch,
                                           chain([first_live], inputs)):
                if ckpt is not None:
                    ckpt.record_batch(1, out["batch"], "stream.label", out)
                yield out

        position = 0
        for out in results():
            for (index, content, provenance, status, detail, ranking,
                 complexity, description, modules, verified,
                 verified_detail) in out["labeled"]:
                entry = DatasetEntry(
                    entry_id=f"pyranet-{self.seed}-{position:06d}",
                    code=content,
                    description=description,
                    ranking=ranking,
                    complexity=complexity,
                    compile_status=(CompileStatus.CLEAN
                                    if status == "clean"
                                    else CompileStatus.DEPENDENCY),
                    compile_detail=detail,
                    origin=provenance["origin"],
                    source_path=provenance["path"],
                    module_names=modules,
                    verified=verified,
                    verified_detail=verified_detail,
                )
                role = family_index.role_of(index)
                if role:
                    family = family_index.family_of(index)
                    entry.family_id = family.family_id
                    entry.family_role = role
                    if role == "canonical":
                        entry.n_family_variants = len(family.variants)
                    else:
                        entry.family_similarity = (
                            family_index.similarity_of(index))
                    family_index.attach_entry(index, entry.entry_id)
                    if role == "canonical":
                        family_index.attach_descriptions(
                            index, family_description(content))
                position += 1
                counters["after_syntax"] += 1
                if status == "clean":
                    counters["clean"] += 1
                else:
                    counters["dependency"] += 1
                layers.add(entry)
                yield entry
        if resumed:
            res.record_resumed(batches=resumed)

    # -- reporting ------------------------------------------------------

    def _trace(self, executor, counters, empty_drops, module_drops,
               n_duplicates, walls, total_wall) -> PipelineTrace:
        collected = counters["collected"]
        after_empty = collected - sum(empty_drops.values())
        after_module = counters["after_module"]
        after_dedup = after_module - n_duplicates
        after_syntax = counters["after_syntax"]
        syntax_drops = ({"syntax error": after_dedup - after_syntax}
                        if after_dedup - after_syntax else {})
        stages = [
            StageMetrics("empty_broken", n_in=collected,
                         n_out=after_empty,
                         wall_time_s=walls["phase1"],
                         drops=dict(empty_drops)),
            StageMetrics("module_decl", n_in=after_empty,
                         n_out=after_module, drops=dict(module_drops)),
            StageMetrics("dedup", n_in=after_module, n_out=after_dedup,
                         wall_time_s=walls["dedup"],
                         drops=({"duplicate": n_duplicates}
                                if n_duplicates else {})),
            StageMetrics("syntax_check", n_in=after_dedup,
                         n_out=after_syntax,
                         wall_time_s=walls["phase3"],
                         drops=syntax_drops),
            StageMetrics("rank_label", n_in=after_syntax,
                         n_out=after_syntax),
            StageMetrics("formal_verify", n_in=after_syntax,
                         n_out=after_syntax),
            StageMetrics("describe", n_in=after_syntax,
                         n_out=after_syntax),
            StageMetrics("assemble", n_in=after_syntax,
                         n_out=after_syntax),
            StageMetrics("layer", n_in=after_syntax, n_out=after_syntax),
        ]
        trace = PipelineTrace(pipeline="curation-stream", stages=stages,
                              wall_time_s=total_wall)
        trace.meta["executor"] = executor.describe()
        trace.meta["n_input"] = collected
        trace.meta["streaming"] = {
            "batch_size": self.batch_size,
            "n_partitions": self.n_partitions,
            "spilled": self.spill_dir is not None,
        }
        return trace

    def _funnel(self, counters, empty_drops, module_drops,
                n_duplicates) -> FunnelStats:
        collected = counters["collected"]
        after_empty = collected - sum(empty_drops.values())
        after_module = counters["after_module"]
        after_dedup = after_module - n_duplicates
        funnel = FunnelStats(
            collected=collected,
            after_empty_broken=after_empty,
            after_module_decl=after_module,
            after_dedup=after_dedup,
            after_syntax=counters["after_syntax"],
            clean=counters["clean"],
            dependency_only=counters["dependency"],
        )
        # Mirror the in-memory reconstruction exactly, including its
        # quirk: the dedup count is reported whenever the stage saw
        # input, even when nothing was removed.
        if collected - after_empty:
            funnel.removed["empty_broken"] = collected - after_empty
        if after_empty - after_module:
            funnel.removed["module_decl"] = after_empty - after_module
        if after_dedup - counters["after_syntax"]:
            funnel.removed["syntax_check"] = (
                after_dedup - counters["after_syntax"])
        if after_module:
            funnel.removed["dedup"] = n_duplicates
        return funnel
