"""Layer organisation (paper Section III-A.5).

The six PyraNet layers, by ranking and compile status:

* Layer 1 — ranking 20 (compiles cleanly);
* Layer 2 — rankings 19–15;
* Layer 3 — rankings 14–10;
* Layer 4 — rankings 9–5;
* Layer 5 — rankings 4–1;
* Layer 6 — dependency issues, or ranking 0.

Layers 1–5 contain only entries that compile without errors; the paper
additionally ensures every complexity level is represented in each of
them, which :func:`assign_layers` checks and reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .records import CompileStatus, Complexity, DatasetEntry

#: (layer number, inclusive ranking range) for clean entries.
LAYER_RANK_RANGES: List[Tuple[int, int, int]] = [
    (1, 20, 20),
    (2, 15, 19),
    (3, 10, 14),
    (4, 5, 9),
    (5, 1, 4),
]


def layer_for(entry: DatasetEntry) -> int:
    """The layer an entry belongs to."""
    if entry.compile_status is not CompileStatus.CLEAN or entry.ranking == 0:
        return 6
    for number, lo, hi in LAYER_RANK_RANGES:
        if lo <= entry.ranking <= hi:
            return number
    return 6


@dataclass
class LayerReport:
    """Layer population summary (the Fig. 1-a pyramid)."""

    sizes: Dict[int, int] = field(default_factory=dict)
    complexity_coverage: Dict[int, Dict[str, int]] = field(
        default_factory=dict)
    missing_complexities: Dict[int, List[str]] = field(default_factory=dict)
    #: Population of the formally-verified tier (a subset of layer 1,
    #: not a seventh layer — the pyramid shape is unchanged).
    n_verified: int = 0

    def pyramid_rows(self) -> List[Tuple[int, int]]:
        """(layer, size) rows, best layer first."""
        return [(n, self.sizes.get(n, 0)) for n in range(1, 7)]

    def to_dict(self) -> Dict:
        return {
            "sizes": {str(k): v for k, v in self.sizes.items()},
            "n_verified": self.n_verified,
            "complexity_coverage": {
                str(k): dict(v)
                for k, v in self.complexity_coverage.items()
            },
            "missing_complexities": {
                str(k): list(v)
                for k, v in self.missing_complexities.items()
            },
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "LayerReport":
        return cls(
            n_verified=data.get("n_verified", 0),
            sizes={int(k): v for k, v in data.get("sizes", {}).items()},
            complexity_coverage={
                int(k): dict(v)
                for k, v in data.get("complexity_coverage", {}).items()
            },
            missing_complexities={
                int(k): list(v)
                for k, v in data.get("missing_complexities", {}).items()
            },
        )


def assign_layers(entries: List[DatasetEntry]) -> LayerReport:
    """Assign ``entry.layer`` in place and report the population."""
    report = LayerReport()
    for entry in entries:
        entry.layer = layer_for(entry)
        report.sizes[entry.layer] = report.sizes.get(entry.layer, 0) + 1
        if entry.verified:
            report.n_verified += 1
        coverage = report.complexity_coverage.setdefault(entry.layer, {})
        coverage[entry.complexity.label] = coverage.get(
            entry.complexity.label, 0) + 1
    all_levels = [c.label for c in Complexity]
    for number in range(1, 6):
        present = set(report.complexity_coverage.get(number, {}))
        missing = [label for label in all_levels if label not in present]
        if missing and report.sizes.get(number, 0) > 0:
            report.missing_complexities[number] = missing
    return report
