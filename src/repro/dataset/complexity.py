"""Complexity labelling: Basic / Intermediate / Advanced / Expert.

The paper assigns each sample one of four complexity tiers "closely
following the methodology presented in the MEV-LLM work".  MEV-LLM
categorises designs by structural sophistication — from single-block
combinational logic up to hierarchical, FSM- and memory-bearing
designs.  We compute a weighted structural score from
:class:`~repro.verilog.metrics.StructuralMetrics` and cut it into the
four tiers; the weights reward exactly the features that make a design
harder to describe and generate.
"""

from __future__ import annotations

from typing import Union

from ..verilog import StructuralMetrics, measure
from ..verilog.parser import ParseError
from .records import Complexity


def complexity_score(metrics: StructuralMetrics) -> float:
    """Structural-sophistication score (higher = more complex)."""
    score = 0.0
    score += 1.5 * metrics.sequential_always
    score += 0.8 * metrics.combinational_always
    score += 0.4 * metrics.continuous_assigns
    score += 1.2 * metrics.case_statements
    score += 0.3 * metrics.if_statements
    score += 1.0 * metrics.loops
    score += 2.5 * metrics.instances
    score += 1.5 * metrics.functions + 1.5 * metrics.tasks
    score += 2.0 * metrics.generate_blocks
    score += 0.02 * metrics.expression_nodes
    if metrics.has_fsm:
        score += 4.0
    if metrics.has_memory:
        score += 3.0
    if metrics.has_hierarchy:
        score += 2.0
    if metrics.has_signed_arith:
        score += 1.0
    score += 0.5 * max(metrics.max_statement_depth - 2, 0)
    return score


#: Tier cut points over the structural score.
BASIC_MAX = 3.0
INTERMEDIATE_MAX = 7.0
ADVANCED_MAX = 14.0


def classify_metrics(metrics: StructuralMetrics) -> Complexity:
    """Map a metrics record to a tier."""
    score = complexity_score(metrics)
    if score <= BASIC_MAX:
        return Complexity.BASIC
    if score <= INTERMEDIATE_MAX:
        return Complexity.INTERMEDIATE
    if score <= ADVANCED_MAX:
        return Complexity.ADVANCED
    return Complexity.EXPERT


def classify_code(code: Union[str, StructuralMetrics]) -> Complexity:
    """Classify source text (unparsable code counts as Basic — it will
    have been filtered before labelling anyway)."""
    if isinstance(code, StructuralMetrics):
        return classify_metrics(code)
    try:
        metrics = measure(code)
    except ParseError:
        return Complexity.BASIC
    return classify_metrics(metrics)
