"""Dataset records and the PyraNet container.

A :class:`DatasetEntry` is one row of the PyraNet dataset with the
labels the paper describes (Section III-A): the Verilog code, a design
description, a 0–20 ranking, a complexity tier, and compile details.
:class:`PyraNetDataset` holds the layered collection.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, fields, asdict
from typing import Dict, Iterable, Iterator, List, Optional


class Complexity(enum.IntEnum):
    """MEV-LLM's four complexity tiers (paper Section III-A.4)."""

    BASIC = 0
    INTERMEDIATE = 1
    ADVANCED = 2
    EXPERT = 3

    @property
    def label(self) -> str:
        return self.name.capitalize()


class CompileStatus(enum.Enum):
    """Compile-check outcome recorded per entry."""

    CLEAN = "clean"
    DEPENDENCY = "dependency"
    SYNTAX = "syntax"

    @classmethod
    def from_string(cls, text: str) -> "CompileStatus":
        return cls(text)


@dataclass
class DatasetEntry:
    """One PyraNet row.

    ``layer`` is assigned during organisation (1 = best … 6 = worst);
    0 means unassigned.
    """

    entry_id: str
    code: str
    description: str = ""
    ranking: int = 0
    complexity: Complexity = Complexity.BASIC
    compile_status: CompileStatus = CompileStatus.CLEAN
    compile_detail: str = ""
    layer: int = 0
    origin: str = "github"
    source_path: str = ""
    module_names: List[str] = field(default_factory=list)
    #: Design-family membership (see :mod:`.families`).  Empty for
    #: entries that never collided with a near-duplicate.  ``family_role``
    #: is ``"canonical"`` (the kept representative) or ``"variant"``
    #: (a near-duplicate retained under ``keep_variants``);
    #: ``family_similarity`` is the verified Jaccard similarity of a
    #: variant to its canonical (0.0 for canonicals).
    family_id: str = ""
    family_role: str = ""
    n_family_variants: int = 0
    family_similarity: float = 0.0
    #: Formal verdict (the ``verified`` tier above layer 1): True when
    #: :func:`repro.verilog.formal.verify_design` proved the design is
    #: in the synthesizable subset with all outputs defined on every
    #: path.  ``verified_detail`` carries the verdict or the
    #: unsupported/error reason.
    verified: bool = False
    verified_detail: str = ""

    def to_dict(self) -> Dict:
        data = asdict(self)
        data["complexity"] = self.complexity.name
        data["compile_status"] = self.compile_status.value
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "DatasetEntry":
        """Build an entry from a ``to_dict`` payload.

        Unknown keys are ignored, so rows written by a newer revision
        (extra labels, store metadata) still load.
        """
        known = {f.name for f in fields(cls)}
        data = {key: value for key, value in data.items() if key in known}
        data["complexity"] = Complexity[data["complexity"]]
        data["compile_status"] = CompileStatus(data["compile_status"])
        return cls(**data)


@dataclass
class PyraNetDataset:
    """The layered dataset.

    Entries keep their layer assignment; helpers expose per-layer and
    per-complexity views in the order fine-tuning consumes them.
    """

    entries: List[DatasetEntry] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[DatasetEntry]:
        return iter(self.entries)

    def add(self, entry: DatasetEntry) -> None:
        self.entries.append(entry)

    def layer(self, number: int) -> List[DatasetEntry]:
        """Entries of one layer (1-based)."""
        return [e for e in self.entries if e.layer == number]

    def layers(self) -> Dict[int, List[DatasetEntry]]:
        result: Dict[int, List[DatasetEntry]] = {}
        for entry in self.entries:
            result.setdefault(entry.layer, []).append(entry)
        return result

    def layer_sizes(self) -> Dict[int, int]:
        return {number: len(items)
                for number, items in sorted(self.layers().items())}

    def curriculum_order(
        self, layer_number: int
    ) -> List[DatasetEntry]:
        """One layer ordered Basic → Intermediate → Advanced → Expert
        (the curriculum inside a tier, Section III-B.2)."""
        items = self.layer(layer_number)
        return sorted(items, key=lambda e: int(e.complexity))

    def trainable_layers(self) -> List[int]:
        """Layer numbers that exist, best first."""
        return sorted(n for n in self.layers() if n > 0)

    def complexity_histogram(self) -> Dict[str, int]:
        histogram: Dict[str, int] = {}
        for entry in self.entries:
            histogram[entry.complexity.label] = histogram.get(
                entry.complexity.label, 0) + 1
        return histogram
