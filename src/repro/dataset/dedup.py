"""Code deduplication: token Jaccard similarity with MinHash/LSH.

The paper deduplicates with "the Jaccard similarity algorithm … the
intersection over the union of the sets" of code tokens, dropping pairs
at or above a threshold.  Pairwise Jaccard is O(n²); for corpus-scale
inputs we index MinHash signatures with locality-sensitive hashing and verify
candidate pairs exactly, which preserves the paper's decision rule
while staying near-linear.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

_TOKEN_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*|\d+|[^\sA-Za-z0-9_]")


def tokenize_for_dedup(code: str) -> FrozenSet[str]:
    """Token shingles used for similarity.

    Comments are stripped first (forked files often only differ in
    headers), then 3-token shingles are formed so ordering matters —
    plain bags of tokens make all small counters look identical.
    """
    text = re.sub(r"//[^\n]*", "", code)
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.S)
    tokens = _TOKEN_RE.findall(text)
    if len(tokens) < 3:
        return frozenset(tokens)
    return frozenset(
        " ".join(tokens[i:i + 3]) for i in range(len(tokens) - 2)
    )


def jaccard(a: FrozenSet[str], b: FrozenSet[str]) -> float:
    """Exact Jaccard similarity of two shingle sets."""
    if not a and not b:
        return 1.0
    if not a or not b:
        return 0.0
    intersection = len(a & b)
    union = len(a) + len(b) - intersection
    return intersection / union


try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the repo
    _np = None

#: Universal-hash modulus: the Mersenne prime 2^61 - 1.  Lanes live in
#: 64-bit words but never exceed p.
_MERSENNE_P = (1 << 61) - 1
#: Parameter bounds chosen so ``a * h + b`` is exact in a uint64 lane:
#: a < 2^31 and h < 2^32 keep the product under 2^63, and b < p keeps
#: the sum under 2^64 — the vectorised path and the pure-Python
#: fallback therefore compute the identical integers.
_A_BOUND = (1 << 31) - 1
_H_MASK = (1 << 32) - 1

#: Below this many shingles the numpy array round-trip costs more than
#: the plain loop it replaces.
_VECTOR_MIN_SHINGLES = 16


def _shingle_hash(text: str) -> int:
    """One blake2b per shingle — the single digest all ``n_perm``
    permutation lanes are derived from."""
    digest = hashlib.blake2b(
        text.encode("utf-8", "replace"), digest_size=8,
    ).digest()
    return int.from_bytes(digest, "little") & _H_MASK


def _perm_params(seed: int, index: int) -> Tuple[int, int]:
    """The (a, b) coefficients of permutation ``index``: a seeded
    blake2b expansion, so signatures are identical on every platform
    and Python version.  ``a`` is non-zero (a zero multiplier would
    collapse the permutation to a constant)."""
    digest = hashlib.blake2b(
        f"minhash:{seed}:{index}".encode("ascii"), digest_size=16,
    ).digest()
    a = 1 + int.from_bytes(digest[:8], "little") % _A_BOUND
    b = int.from_bytes(digest[8:], "little") % _MERSENNE_P
    return a, b


@dataclass
class MinHasher:
    """MinHash signatures over shingle sets.

    Each shingle is hashed **once** (blake2b); the ``n_perm``
    permutations are then simulated with a seeded universal-hash mix
    ``(a_i * h + b_i) mod p`` over the Mersenne prime ``p = 2^61 - 1``.
    That turns the per-file cost from ``n_perm × |shingles|`` digest
    calls into ``|shingles|`` digests plus cheap integer lanes — the
    dominant cost of corpus-scale deduplication
    (``benchmarks/test_dedup_throughput.py`` pins the speedup).  The
    lanes are vectorised with numpy when it is importable; the
    pure-Python fallback computes the identical integers.
    """

    n_perm: int = 64
    seed: int = 0

    def __post_init__(self) -> None:
        self._params = [_perm_params(self.seed, index)
                        for index in range(self.n_perm)]
        # Work counters: how many signatures were computed and how many
        # shingles were digested.  Family construction
        # (:mod:`.families`) reuses signatures instead of re-hashing;
        # these counters let tests assert that counter-exactly.
        self.n_signature_calls = 0
        self.n_shingles_hashed = 0
        if _np is not None:
            self._a = _np.array([a for a, _ in self._params],
                                dtype=_np.uint64)[:, None]
            self._b = _np.array([b for _, b in self._params],
                                dtype=_np.uint64)[:, None]

    def signature(self, shingles: FrozenSet[str]) -> Tuple[int, ...]:
        self.n_signature_calls += 1
        if not shingles:
            return tuple([0] * self.n_perm)
        self.n_shingles_hashed += len(shingles)
        hashes = [_shingle_hash(s) for s in shingles]
        if _np is not None and len(hashes) >= _VECTOR_MIN_SHINGLES:
            lanes = (self._a * _np.array(hashes, dtype=_np.uint64)
                     + self._b) % _np.uint64(_MERSENNE_P)
            return tuple(int(lane) for lane in lanes.min(axis=1))
        p = _MERSENNE_P
        return tuple(
            min((a * h + b) % p for h in hashes)
            for a, b in self._params
        )

    @staticmethod
    def estimate(sig_a: Sequence[int], sig_b: Sequence[int]) -> float:
        matches = sum(1 for x, y in zip(sig_a, sig_b) if x == y)
        return matches / len(sig_a)


def band_key(band: int, chunk: Sequence[int]) -> Tuple[int, str]:
    """The LSH bucket key for one signature band.

    The chunk is digested with blake2b over its 64-bit little-endian
    lanes — unlike builtin ``hash(tuple)``, the key is identical across
    platforms, word sizes, and Python versions, so bucket contents (and
    therefore ``candidate_pairs_checked`` in a :class:`DedupReport`)
    are reproducible everywhere.
    """
    raw = b"".join(value.to_bytes(8, "little") for value in chunk)
    return band, hashlib.blake2b(raw, digest_size=8).hexdigest()


@dataclass
class DedupReport:
    """Outcome of :func:`deduplicate`."""

    kept_indices: List[int] = field(default_factory=list)
    #: Mapping duplicate index -> representative (kept) index.
    duplicate_of: Dict[int, int] = field(default_factory=dict)
    candidate_pairs_checked: int = 0
    #: The verified Jaccard similarity of each drop decision, keyed by
    #: the dropped index — exact provenance for every ``(later,
    #: earlier)`` pair in ``duplicate_of`` (same keys).
    similarities: Dict[int, float] = field(default_factory=dict)

    @property
    def n_removed(self) -> int:
        return len(self.duplicate_of)

    def drop_pairs(self) -> List[Tuple[int, int, float]]:
        """Every drop decision as ``(later, earlier, similarity)``,
        ascending by the dropped index — the audit trail of *which*
        kept entry caused each drop."""
        return [(later, self.duplicate_of[later],
                 self.similarities.get(later, 0.0))
                for later in sorted(self.duplicate_of)]


def deduplicate(
    codes: Sequence[str],
    threshold: float = 0.8,
    n_perm: int = 64,
    bands: int = 16,
    hasher: Optional[MinHasher] = None,
    shingle_sets: Optional[Sequence[FrozenSet[str]]] = None,
    signatures: Optional[Sequence[Tuple[int, ...]]] = None,
) -> DedupReport:
    """Drop near-duplicates by Jaccard threshold.

    Args:
        codes: the code texts.
        threshold: Jaccard similarity **at or above** which the later
            file is considered a duplicate of the earlier one — the
            paper's decision rule is inclusive, so a pair whose
            similarity equals the threshold exactly is dropped.
        n_perm: MinHash permutations (ignored when ``hasher`` is given).
        bands: LSH bands (must divide the permutation count); more
            bands catch lower similarities at the cost of more
            candidates.
        hasher: an explicit :class:`MinHasher` — injectable so tests
            can pin LSH behaviour against alternative signature
            schemes; candidate *verification* is always exact Jaccard,
            so the hasher only affects which pairs get checked.
        shingle_sets / signatures: precomputed per-code shingle sets
            and MinHash signatures (both or neither).  Callers that
            need the signatures for other work — family clustering in
            :mod:`.families` — pass them in so no shingle is tokenised
            or hashed twice.

    Returns:
        A :class:`DedupReport` whose ``kept_indices`` preserve input
        order (first occurrence wins).
    """
    if hasher is None:
        hasher = MinHasher(n_perm)
    n_perm = hasher.n_perm
    if n_perm % bands != 0:
        raise ValueError(f"bands={bands} must divide n_perm={n_perm}")
    rows = n_perm // bands
    if (shingle_sets is None) != (signatures is None):
        raise ValueError(
            "pass shingle_sets and signatures together or not at all")
    if shingle_sets is None:
        shingle_sets = [tokenize_for_dedup(code) for code in codes]
        signatures = [hasher.signature(s) for s in shingle_sets]
    elif len(shingle_sets) != len(codes) or len(signatures) != len(codes):
        raise ValueError("precomputed shingle_sets/signatures must "
                         "cover every code")

    report = DedupReport()
    buckets: Dict[Tuple[int, str], List[int]] = {}
    for index, signature in enumerate(signatures):
        if index in report.duplicate_of:
            continue
        # Gather LSH candidates.
        candidates: Set[int] = set()
        keys = []
        for band in range(bands):
            chunk = signature[band * rows:(band + 1) * rows]
            key = band_key(band, chunk)
            keys.append(key)
            candidates.update(buckets.get(key, ()))
        duplicate = None
        for candidate in sorted(candidates):
            if candidate in report.duplicate_of:
                continue
            report.candidate_pairs_checked += 1
            similarity = jaccard(shingle_sets[index],
                                 shingle_sets[candidate])
            if similarity >= threshold:
                duplicate = candidate
                break
        if duplicate is not None:
            report.duplicate_of[index] = duplicate
            report.similarities[index] = similarity
            continue
        report.kept_indices.append(index)
        for key in keys:
            buckets.setdefault(key, []).append(index)
    return report


def dedup_keep_indices(
    codes: Sequence[str], threshold: float = 0.8
) -> List[int]:
    """Convenience adapter for the filter funnel: indices to keep."""
    return deduplicate(codes, threshold).kept_indices


# -- band-partitioned (distributed) dedup -------------------------------
#
# :func:`deduplicate` is inherently sequential: the candidate set of
# index ``i`` is "kept indices j < i sharing at least one LSH band key
# with i", and keep/drop decisions feed back into the buckets.  The
# partitioned form below splits that into a pure map-reduce whose
# decisions are *provably identical*:
#
# * map: each partition owns a subset of band keys (whole bands — a
#   key's band determines its partition, so no coordination is needed)
#   and emits every colliding ``(earlier, later)`` index pair in its
#   buckets, regardless of keep status;
# * reduce: the merged pair lists give, for each index ``i``, the full
#   set ``{j < i : j shares a band key with i}``.  A single ascending
#   resolve pass then filters candidates by "j is currently kept" —
#   because indices are resolved in ascending order, j's keep status is
#   final when i is examined, so the filtered set equals the sequential
#   bucket contents exactly.  Candidates are verified with exact
#   Jaccard in ascending order with the same inclusive threshold and
#   first-match break, so ``kept_indices``, ``duplicate_of`` *and*
#   ``candidate_pairs_checked`` all reproduce :func:`deduplicate`
#   bit-for-bit for any band→partition assignment
#   (``tests/dataset/test_dedup_partition.py`` property-tests this).

BandKey = Tuple[int, str]


def signature_band_keys(signature: Sequence[int],
                        bands: int) -> List[BandKey]:
    """All LSH bucket keys of one signature, band by band."""
    n_perm = len(signature)
    if n_perm % bands != 0:
        raise ValueError(f"bands={bands} must divide n_perm={n_perm}")
    rows = n_perm // bands
    return [band_key(band, signature[band * rows:(band + 1) * rows])
            for band in range(bands)]


def band_candidate_pairs(
    keyed_indices: Sequence[Tuple[BandKey, int]],
) -> List[Tuple[int, int]]:
    """Map side of partitioned dedup: collision pairs in one partition.

    ``keyed_indices`` are ``(band_key, index)`` emissions for the band
    keys this partition owns.  Every pair of indices sharing a key is
    emitted as ``(earlier, later)``, sorted — keep status is *not*
    consulted here (it cannot be known partition-locally); the resolve
    pass filters.  Module-level and argument-picklable, so it runs
    unchanged under the process executor backend.
    """
    buckets: Dict[BandKey, List[int]] = {}
    for key, index in keyed_indices:
        buckets.setdefault(key, []).append(index)
    pairs: Set[Tuple[int, int]] = set()
    for members in buckets.values():
        members.sort()
        for pos in range(1, len(members)):
            later = members[pos]
            for earlier in members[:pos]:
                if earlier != later:
                    pairs.add((earlier, later))
    return sorted(pairs)


def merge_band_candidates(
    pair_lists: Sequence[Sequence[Tuple[int, int]]],
) -> Dict[int, List[int]]:
    """Reduce side: merge per-partition pair lists into an adjacency.

    Returns ``{later: sorted earlier candidates}``.  A pair may arrive
    from several partitions (two files can collide in many bands);
    duplicates are dropped so the resolve pass checks each candidate
    once — exactly like the sequential version's candidate *set*.
    """
    adjacency: Dict[int, Set[int]] = {}
    for pairs in pair_lists:
        for earlier, later in pairs:
            adjacency.setdefault(later, set()).add(earlier)
    return {later: sorted(earlier_set)
            for later, earlier_set in adjacency.items()}


def resolve_duplicates(
    indices: Sequence[int],
    adjacency: Dict[int, List[int]],
    shingles_for,
    threshold: float = 0.8,
) -> DedupReport:
    """Deterministic cross-band merge: sequential decisions, serially.

    ``indices`` must be ascending (input order); ``shingles_for(i)``
    returns the shingle set of index ``i`` — a callable so streaming
    callers can lazily materialise only the indices that appear in
    ``adjacency``.  The loop mirrors :func:`deduplicate`'s decision
    loop exactly: candidates ascending, dropped candidates skipped,
    exact-Jaccard verification, inclusive threshold, first match wins.
    """
    report = DedupReport()
    kept: Set[int] = set()
    for index in indices:
        duplicate = None
        for candidate in adjacency.get(index, ()):  # ascending
            if candidate not in kept:
                continue
            report.candidate_pairs_checked += 1
            similarity = jaccard(shingles_for(index),
                                 shingles_for(candidate))
            if similarity >= threshold:
                duplicate = candidate
                break
        if duplicate is not None:
            report.duplicate_of[index] = duplicate
            report.similarities[index] = similarity
            continue
        report.kept_indices.append(index)
        kept.add(index)
    return report


def deduplicate_partitioned(
    codes: Sequence[str],
    threshold: float = 0.8,
    n_perm: int = 64,
    bands: int = 16,
    n_partitions: int = 4,
    hasher: Optional[MinHasher] = None,
    partition_of=None,
    mapper=None,
) -> DedupReport:
    """:func:`deduplicate`, decomposed as band-partitioned map-reduce.

    Args:
        codes / threshold / n_perm / bands / hasher: as
            :func:`deduplicate`.
        n_partitions: how many shared-nothing partitions the band keys
            are split across.
        partition_of: ``band_key -> partition id`` (default: the band
            number modulo ``n_partitions``).  Any assignment yields
            identical decisions — the union of emitted pairs does not
            depend on how bands are grouped.
        mapper: ``(fn, items) -> results`` used to run the map side —
            pass ``ParallelExecutor(...).map`` for real parallelism;
            defaults to in-process sequential mapping.

    Returns a :class:`DedupReport` equal to ``deduplicate(codes, …)``
    field-for-field.
    """
    if hasher is None:
        hasher = MinHasher(n_perm)
    n_perm = hasher.n_perm
    if n_perm % bands != 0:
        raise ValueError(f"bands={bands} must divide n_perm={n_perm}")
    if n_partitions <= 0:
        raise ValueError("n_partitions must be positive")
    if partition_of is None:
        partition_of = lambda key: key[0] % n_partitions  # noqa: E731
    shingle_sets = [tokenize_for_dedup(code) for code in codes]
    signatures = [hasher.signature(s) for s in shingle_sets]

    partitions: List[List[Tuple[BandKey, int]]] = [
        [] for _ in range(n_partitions)]
    for index, signature in enumerate(signatures):
        for key in signature_band_keys(signature, bands):
            partitions[partition_of(key)].append((key, index))

    if mapper is None:
        pair_lists = [band_candidate_pairs(part) for part in partitions]
    else:
        pair_lists = mapper(band_candidate_pairs, partitions)
    adjacency = merge_band_candidates(pair_lists)
    return resolve_duplicates(
        range(len(codes)), adjacency,
        lambda i: shingle_sets[i], threshold)
