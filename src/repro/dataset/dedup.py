"""Code deduplication: token Jaccard similarity with MinHash/LSH.

The paper deduplicates with "the Jaccard similarity algorithm … the
intersection over the union of the sets" of code tokens, dropping pairs
above a threshold.  Pairwise Jaccard is O(n²); for corpus-scale inputs
we index MinHash signatures with locality-sensitive hashing and verify
candidate pairs exactly, which preserves the paper's decision rule
while staying near-linear.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

_TOKEN_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*|\d+|[^\sA-Za-z0-9_]")


def tokenize_for_dedup(code: str) -> FrozenSet[str]:
    """Token shingles used for similarity.

    Comments are stripped first (forked files often only differ in
    headers), then 3-token shingles are formed so ordering matters —
    plain bags of tokens make all small counters look identical.
    """
    text = re.sub(r"//[^\n]*", "", code)
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.S)
    tokens = _TOKEN_RE.findall(text)
    if len(tokens) < 3:
        return frozenset(tokens)
    return frozenset(
        " ".join(tokens[i:i + 3]) for i in range(len(tokens) - 2)
    )


def jaccard(a: FrozenSet[str], b: FrozenSet[str]) -> float:
    """Exact Jaccard similarity of two shingle sets."""
    if not a and not b:
        return 1.0
    if not a or not b:
        return 0.0
    intersection = len(a & b)
    union = len(a) + len(b) - intersection
    return intersection / union


def _hash64(text: str, salt: int) -> int:
    digest = hashlib.blake2b(
        text.encode("utf-8", "replace"), digest_size=8,
        salt=salt.to_bytes(8, "little"),
    ).digest()
    return int.from_bytes(digest, "little")


@dataclass
class MinHasher:
    """MinHash signatures over shingle sets.

    ``n_perm`` permutations are simulated with salted 64-bit hashes.
    """

    n_perm: int = 64

    def signature(self, shingles: FrozenSet[str]) -> Tuple[int, ...]:
        if not shingles:
            return tuple([0] * self.n_perm)
        return tuple(
            min(_hash64(s, salt) for s in shingles)
            for salt in range(self.n_perm)
        )

    @staticmethod
    def estimate(sig_a: Sequence[int], sig_b: Sequence[int]) -> float:
        matches = sum(1 for x, y in zip(sig_a, sig_b) if x == y)
        return matches / len(sig_a)


@dataclass
class DedupReport:
    """Outcome of :func:`deduplicate`."""

    kept_indices: List[int] = field(default_factory=list)
    #: Mapping duplicate index -> representative (kept) index.
    duplicate_of: Dict[int, int] = field(default_factory=dict)
    candidate_pairs_checked: int = 0

    @property
    def n_removed(self) -> int:
        return len(self.duplicate_of)


def deduplicate(
    codes: Sequence[str],
    threshold: float = 0.8,
    n_perm: int = 64,
    bands: int = 16,
) -> DedupReport:
    """Drop near-duplicates by Jaccard threshold.

    Args:
        codes: the code texts.
        threshold: Jaccard similarity above which the later file is
            considered a duplicate of the earlier one.
        n_perm: MinHash permutations.
        bands: LSH bands (must divide ``n_perm``); more bands catch
            lower similarities at the cost of more candidates.

    Returns:
        A :class:`DedupReport` whose ``kept_indices`` preserve input
        order (first occurrence wins).
    """
    if n_perm % bands != 0:
        raise ValueError(f"bands={bands} must divide n_perm={n_perm}")
    rows = n_perm // bands
    hasher = MinHasher(n_perm)
    shingle_sets = [tokenize_for_dedup(code) for code in codes]
    signatures = [hasher.signature(s) for s in shingle_sets]

    report = DedupReport()
    buckets: Dict[Tuple[int, int], List[int]] = {}
    for index, signature in enumerate(signatures):
        if index in report.duplicate_of:
            continue
        # Gather LSH candidates.
        candidates: Set[int] = set()
        keys = []
        for band in range(bands):
            chunk = signature[band * rows:(band + 1) * rows]
            key = (band, hash(chunk))
            keys.append(key)
            candidates.update(buckets.get(key, ()))
        duplicate = None
        for candidate in sorted(candidates):
            if candidate in report.duplicate_of:
                continue
            report.candidate_pairs_checked += 1
            similarity = jaccard(shingle_sets[index],
                                 shingle_sets[candidate])
            if similarity >= threshold:
                duplicate = candidate
                break
        if duplicate is not None:
            report.duplicate_of[index] = duplicate
            continue
        report.kept_indices.append(index)
        for key in keys:
            buckets.setdefault(key, []).append(index)
    return report


def dedup_keep_indices(
    codes: Sequence[str], threshold: float = 0.8
) -> List[int]:
    """Convenience adapter for the filter funnel: indices to keep."""
    return deduplicate(codes, threshold).kept_indices
