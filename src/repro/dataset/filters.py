"""Post-download dataset filters (paper Section III-A.2).

The paper applies, in order of increasing cost:

1. **empty/broken** — unreadable (encoding) or empty files;
2. **module declaration** — files with no module declaration;
3. **deduplication** — Jaccard similarity (see :mod:`.dedup`);
4. **syntax check** — the expensive compile check, run last on the
   reduced set, classifying survivors as clean or dependency-only.

:func:`run_filter_funnel` chains the stages and reports per-stage
counts — the funnel that turns ~2.4 M raw files into the usable set.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from ..verilog import check, has_module_declaration
from ..verilog.syntax_checker import CheckResult


@dataclass
class FilterDecision:
    """Outcome for one file at one stage."""

    kept: bool
    stage: str
    reason: str = ""


def is_readable(content: str) -> FilterDecision:
    """Encoding/corruption filter.

    Real scrapes hit undecodable bytes; our in-memory corpus models
    them as non-ASCII garbage.  A file is 'broken' when a significant
    fraction of characters are outside the printable range.
    """
    if not content:
        return FilterDecision(False, "empty_broken", "empty file")
    printable = sum(
        1 for ch in content if ch.isprintable() or ch in "\n\r\t"
    )
    if printable / len(content) < 0.9:
        return FilterDecision(False, "empty_broken", "encoding issues")
    if not content.strip():
        return FilterDecision(False, "empty_broken", "whitespace only")
    return FilterDecision(True, "empty_broken")


def has_module(content: str) -> FilterDecision:
    """Module-declaration filter."""
    if has_module_declaration(content):
        return FilterDecision(True, "module_decl")
    return FilterDecision(False, "module_decl", "no module declaration")


def syntax_filter(content: str) -> Tuple[FilterDecision, CheckResult]:
    """The expensive compile check (run last).

    Files with syntax errors are dropped; files with dependency issues
    are *kept* and labelled (they populate Layer 6).
    """
    result = check(content)
    if result.status == "syntax":
        first = result.syntax_errors[0].message if result.syntax_errors else ""
        return (
            FilterDecision(False, "syntax_check", first or "syntax error"),
            result,
        )
    reason = "dependency issues" if result.status == "dependency" else ""
    return FilterDecision(True, "syntax_check", reason), result


@dataclass
class FunnelStats:
    """Per-stage counts of the filter funnel."""

    collected: int = 0
    after_empty_broken: int = 0
    after_module_decl: int = 0
    after_dedup: int = 0
    after_syntax: int = 0
    clean: int = 0
    dependency_only: int = 0
    removed: dict = field(default_factory=dict)

    def record_removal(self, stage: str) -> None:
        self.removed[stage] = self.removed.get(stage, 0) + 1

    def to_dict(self) -> dict:
        data = dataclasses.asdict(self)
        data["removed"] = dict(self.removed)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "FunnelStats":
        return cls(**data)


@dataclass
class FilteredFile:
    """A survivor of the funnel, with its compile classification."""

    index: int
    content: str
    check_result: CheckResult


def run_filter_funnel(
    contents: Sequence[str],
    dedup: Optional[Callable[[Sequence[str]], List[int]]] = None,
) -> Tuple[List[FilteredFile], FunnelStats]:
    """Run the four-stage funnel over ``contents``.

    Args:
        contents: raw file texts, index-aligned with the caller's
            bookkeeping.
        dedup: callable returning the indices (into its argument) of
            files to *keep*; defaults to no deduplication.

    Returns:
        (survivors, stats); each survivor keeps its original index.
    """
    stats = FunnelStats(collected=len(contents))

    stage1: List[Tuple[int, str]] = []
    for index, content in enumerate(contents):
        decision = is_readable(content)
        if decision.kept:
            stage1.append((index, content))
        else:
            stats.record_removal("empty_broken")
    stats.after_empty_broken = len(stage1)

    stage2: List[Tuple[int, str]] = []
    for index, content in stage1:
        decision = has_module(content)
        if decision.kept:
            stage2.append((index, content))
        else:
            stats.record_removal("module_decl")
    stats.after_module_decl = len(stage2)

    if dedup is not None and stage2:
        keep_positions = set(dedup([content for _, content in stage2]))
        stage3 = [pair for position, pair in enumerate(stage2)
                  if position in keep_positions]
        stats.removed["dedup"] = len(stage2) - len(stage3)
    else:
        stage3 = stage2
    stats.after_dedup = len(stage3)

    survivors: List[FilteredFile] = []
    for index, content in stage3:
        decision, result = syntax_filter(content)
        if not decision.kept:
            stats.record_removal("syntax_check")
            continue
        survivors.append(FilteredFile(index, content, result))
        if result.status == "clean":
            stats.clean += 1
        else:
            stats.dependency_only += 1
    stats.after_syntax = len(survivors)
    return survivors, stats
