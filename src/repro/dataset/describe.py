"""Design-description generation for collected code.

Entries scraped from repositories arrive without descriptions; the
paper fills them in with GPT-4o-mini.  Our describer derives a faithful
natural-language description from the parsed AST: interface summary
(ports, widths, clocking), detected behavioural features (FSM, memory,
arithmetic, case-based selection), and structural notes (hierarchy,
generate loops).  Faithfulness matters because Table IV shows that
mismatched descriptions destroy fine-tuning quality — the description
must actually talk about *this* code.
"""

from __future__ import annotations

from typing import List, Optional

from ..verilog import ast_nodes as ast
from ..verilog import measure_module
from ..verilog.parser import ParseError, parse


def _port_phrase(port: ast.Port) -> str:
    width = ""
    if port.range is not None and isinstance(port.range.msb, ast.Number) \
            and isinstance(port.range.lsb, ast.Number):
        bits = abs(port.range.msb.value - port.range.lsb.value) + 1
        width = f"{bits}-bit "
    return f"{width}{port.direction} '{port.name}'"


_CLOCK_HINTS = ("clk", "clock")
_RESET_HINTS = ("rst", "reset", "clear")


def describe_module(module: ast.Module) -> str:
    """One-paragraph description of a parsed module."""
    metrics = measure_module(module)
    sentences: List[str] = []

    kind = "sequential" if metrics.is_sequential else "combinational"
    sentences.append(
        f"Module '{module.name}' is a {kind} Verilog design with "
        f"{len(module.ports)} port(s)."
    )

    inputs = [p for p in module.ports if p.direction == "input"]
    outputs = [p for p in module.ports if p.direction == "output"]
    clock = next(
        (p.name for p in inputs
         if any(h in p.name.lower() for h in _CLOCK_HINTS)), None)
    reset = next(
        (p.name for p in inputs
         if any(h in p.name.lower() for h in _RESET_HINTS)), None)
    data_inputs = [p for p in inputs if p.name not in (clock, reset)]
    if data_inputs:
        sentences.append(
            "Inputs: " + ", ".join(_port_phrase(p) for p in data_inputs[:6])
            + ("." if len(data_inputs) <= 6 else ", and more.")
        )
    if outputs:
        sentences.append(
            "Outputs: " + ", ".join(_port_phrase(p) for p in outputs[:6])
            + ("." if len(outputs) <= 6 else ", and more.")
        )
    if clock:
        reset_clause = (
            f" and reset '{reset}'" if reset else ""
        )
        sentences.append(
            f"State updates on the rising edge of '{clock}'{reset_clause}."
        )

    features: List[str] = []
    if metrics.has_fsm:
        features.append("a finite-state machine with case-based "
                        "state transitions")
    if metrics.has_memory:
        features.append(f"{metrics.memories} memory array(s)")
    if metrics.case_statements and not metrics.has_fsm:
        features.append("case-based output selection")
    if metrics.loops:
        features.append("iterative (loop-based) logic")
    if metrics.functions:
        features.append(f"{metrics.functions} helper function(s)")
    if metrics.has_hierarchy:
        features.append(f"{metrics.instances} submodule instance(s)")
    if metrics.has_generate:
        features.append("generate-based replication")
    if features:
        sentences.append("The implementation uses " + ", ".join(features)
                         + ".")

    if module.parameters:
        names = ", ".join(p.name for p in module.parameters[:4]
                          if not p.local)
        if names:
            sentences.append(f"It is parameterised by {names}.")
    return " ".join(sentences)


def describe_source(code: str) -> str:
    """Describe source text (all modules)."""
    try:
        tree = parse(code)
    except ParseError:
        return ("A Verilog source file (could not be parsed for a "
                "detailed description).")
    if not tree.modules:
        return "A Verilog source file with no module declarations."
    descriptions = [describe_module(m) for m in tree.modules[:3]]
    return " ".join(descriptions)
