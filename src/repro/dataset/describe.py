"""Design-description generation for collected code.

Entries scraped from repositories arrive without descriptions; the
paper fills them in with GPT-4o-mini.  Our describer derives a faithful
natural-language description from the parsed AST: interface summary
(ports, widths, clocking), detected behavioural features (FSM, memory,
arithmetic, case-based selection), and structural notes (hierarchy,
generate loops).  Faithfulness matters because Table IV shows that
mismatched descriptions destroy fine-tuning quality — the description
must actually talk about *this* code.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..verilog import ast_nodes as ast
from ..verilog import measure_module
from ..verilog.parser import ParseError, parse


def _port_phrase(port: ast.Port) -> str:
    width = ""
    if port.range is not None and isinstance(port.range.msb, ast.Number) \
            and isinstance(port.range.lsb, ast.Number):
        bits = abs(port.range.msb.value - port.range.lsb.value) + 1
        width = f"{bits}-bit "
    return f"{width}{port.direction} '{port.name}'"


_CLOCK_HINTS = ("clk", "clock")
_RESET_HINTS = ("rst", "reset", "clear")


def describe_module(module: ast.Module) -> str:
    """One-paragraph description of a parsed module."""
    metrics = measure_module(module)
    sentences: List[str] = []

    kind = "sequential" if metrics.is_sequential else "combinational"
    sentences.append(
        f"Module '{module.name}' is a {kind} Verilog design with "
        f"{len(module.ports)} port(s)."
    )

    inputs = [p for p in module.ports if p.direction == "input"]
    outputs = [p for p in module.ports if p.direction == "output"]
    clock = next(
        (p.name for p in inputs
         if any(h in p.name.lower() for h in _CLOCK_HINTS)), None)
    reset = next(
        (p.name for p in inputs
         if any(h in p.name.lower() for h in _RESET_HINTS)), None)
    data_inputs = [p for p in inputs if p.name not in (clock, reset)]
    if data_inputs:
        sentences.append(
            "Inputs: " + ", ".join(_port_phrase(p) for p in data_inputs[:6])
            + ("." if len(data_inputs) <= 6 else ", and more.")
        )
    if outputs:
        sentences.append(
            "Outputs: " + ", ".join(_port_phrase(p) for p in outputs[:6])
            + ("." if len(outputs) <= 6 else ", and more.")
        )
    if clock:
        reset_clause = (
            f" and reset '{reset}'" if reset else ""
        )
        sentences.append(
            f"State updates on the rising edge of '{clock}'{reset_clause}."
        )

    features: List[str] = []
    if metrics.has_fsm:
        features.append("a finite-state machine with case-based "
                        "state transitions")
    if metrics.has_memory:
        features.append(f"{metrics.memories} memory array(s)")
    if metrics.case_statements and not metrics.has_fsm:
        features.append("case-based output selection")
    if metrics.loops:
        features.append("iterative (loop-based) logic")
    if metrics.functions:
        features.append(f"{metrics.functions} helper function(s)")
    if metrics.has_hierarchy:
        features.append(f"{metrics.instances} submodule instance(s)")
    if metrics.has_generate:
        features.append("generate-based replication")
    if features:
        sentences.append("The implementation uses " + ", ".join(features)
                         + ".")

    if module.parameters:
        names = ", ".join(p.name for p in module.parameters[:4]
                          if not p.local)
        if names:
            sentences.append(f"It is parameterised by {names}.")
    return " ".join(sentences)


def describe_source(code: str) -> str:
    """Describe source text (all modules)."""
    try:
        tree = parse(code)
    except ParseError:
        return ("A Verilog source file (could not be parsed for a "
                "detailed description).")
    if not tree.modules:
        return "A Verilog source file with no module declarations."
    descriptions = [describe_module(m) for m in tree.modules[:3]]
    return " ".join(descriptions)


# -- block-level granularity (design families) --------------------------


def _expr_name(expr) -> str:
    """A short printable name for an assignment target expression."""
    if isinstance(expr, ast.Identifier):
        return expr.name
    if isinstance(expr, ast.Select):
        return _expr_name(expr.base)
    if isinstance(expr, ast.Concat):
        parts = [_expr_name(part) for part in expr.parts]
        named = [part for part in parts if part]
        return "{" + ", ".join(named) + "}" if named else ""
    return ""


def _sensitivity_phrase(sensitivity: Optional[ast.SensitivityList]) -> str:
    if sensitivity is None or sensitivity.star:
        return "combinational always block (@*)"
    edges = [item for item in sensitivity.items
             if item.edge in ("posedge", "negedge")]
    if edges:
        triggers = ", ".join(
            f"{item.edge} {_expr_name(item.expr) or '<expr>'}"
            for item in edges[:3])
        return f"clocked always block ({triggers})"
    return "level-sensitive always block"


def _block_phrase(item, module_name: str) -> Optional[str]:
    """One phrase per behavioural/structural module item; declaration
    items (nets, parameters) return None — they are interface detail
    the module-level description already covers."""
    if isinstance(item, ast.Always):
        return _sensitivity_phrase(item.sensitivity)
    if isinstance(item, ast.ContinuousAssign):
        target = _expr_name(item.target)
        return (f"continuous assignment driving '{target}'" if target
                else "continuous assignment")
    if isinstance(item, ast.Initial):
        return "initial block (simulation-time initialisation)"
    if isinstance(item, ast.Instance):
        return (f"instantiates submodule '{item.module_name}' "
                f"as '{item.instance_name}'")
    if isinstance(item, ast.GateInstance):
        return (f"gate-level primitive '{item.gate_kind}' "
                f"instance '{item.instance_name}'")
    if isinstance(item, ast.FunctionDecl):
        return f"helper function '{item.name}'"
    if isinstance(item, ast.TaskDecl):
        return f"task '{item.name}'"
    if isinstance(item, ast.GenerateFor):
        return (f"generate-for region replicating logic over "
                f"genvar '{item.genvar}'")
    if isinstance(item, ast.GenerateIf):
        return "conditional generate region"
    return None


#: Caps keeping block lists bounded on pathological inputs.
_MAX_DESCRIBED_MODULES = 3
_MAX_BLOCKS = 12


def describe_blocks(code: str) -> List[str]:
    """Block-granularity descriptions: one phrase per behavioural or
    structural item (always blocks, continuous assigns, instances,
    generate regions, …) across the first few modules.

    The finer granularity MG-Verilog pairs with module-level summaries;
    family reports attach both for each canonical member.  Returns
    ``[]`` when the source does not parse.
    """
    try:
        tree = parse(code)
    except ParseError:
        return []
    blocks: List[str] = []
    for module in tree.modules[:_MAX_DESCRIBED_MODULES]:
        prefix = (f"{module.name}: " if len(tree.modules) > 1 else "")
        for item in module.items:
            phrase = _block_phrase(item, module.name)
            if phrase:
                blocks.append(prefix + phrase)
            if len(blocks) >= _MAX_BLOCKS:
                return blocks
    return blocks


def family_description(code: str) -> Dict[str, Any]:
    """Multi-granularity description for a family's canonical member:
    the module-level paragraph plus the block-level phrase list."""
    return {"module": describe_source(code),
            "blocks": describe_blocks(code)}
