"""Design families: near-duplicate variant graphs from dedup decisions.

The dedup funnel (PR 5/6) drops every file whose exact Jaccard
similarity to an earlier kept file meets the threshold — and until now
threw the variant structure away.  This module turns those drop
decisions into *design families*: each family records the canonical
member (the kept entry), its variants with the per-pair similarity the
dedup pass already computed, and detection evidence explaining *why*
the pair was linked (``LSH_BUCKET`` — the signatures collided and exact
Jaccard confirmed; ``NAME_PATTERN`` — the files declare modules with a
shared name stem).

Construction reuses the existing MinHash signatures end to end: family
clustering is union-find over the candidate pairs dedup already
verifies, plus the LSH collision graph the band keys already imply.
No shingle is re-hashed (``MinHasher`` counts digests so tests can
assert this counter-exactly), and the streaming band-partitioned path
produces byte-identical :class:`FamilyReport` documents — workers emit
partial union-find forests per band partition and the parent merges
them (see :mod:`.streaming`).
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..obs.reportable import report_json, strip_schema
from .dedup import (
    DedupReport,
    MinHasher,
    deduplicate,
    signature_band_keys,
    tokenize_for_dedup,
)

#: Evidence kinds attached to family edges.
LSH_BUCKET = "LSH_BUCKET"
NAME_PATTERN = "NAME_PATTERN"

_MODULE_DECL_RE = re.compile(r"\bmodule\s+([A-Za-z_][A-Za-z0-9_$]*)")


def module_names(code: str) -> List[str]:
    """Declared module names, in order, duplicates removed.

    A cheap regex scan (not a parse): family metadata is captured at
    dedup time, before the syntax stage has run, so it must not assume
    the file parses.
    """
    seen: List[str] = []
    for match in _MODULE_DECL_RE.finditer(code):
        name = match.group(1)
        if name not in seen:
            seen.append(name)
    return seen


def _stem(name: str) -> str:
    """A module name's family stem: trailing digits/underscores and
    case stripped, so ``Counter_2``/``counter3`` share ``counter``."""
    stripped = re.sub(r"[\d_]+$", "", name)
    return (stripped or name).lower()


@dataclass
class Evidence:
    """Why a variant was linked to its canonical."""

    kind: str
    confidence: float
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "confidence": self.confidence,
                "detail": self.detail}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Evidence":
        return cls(kind=data["kind"], confidence=data["confidence"],
                   detail=data.get("detail", ""))


def name_pattern_evidence(
    canonical_modules: Sequence[str],
    variant_modules: Sequence[str],
) -> Optional[Evidence]:
    """``NAME_PATTERN`` evidence when the two files declare modules
    with overlapping name stems; confidence is the stem-set Jaccard."""
    a = {_stem(name) for name in canonical_modules}
    b = {_stem(name) for name in variant_modules}
    if not a or not b:
        return None
    shared = sorted(a & b)
    if not shared:
        return None
    confidence = len(shared) / len(a | b)
    return Evidence(kind=NAME_PATTERN, confidence=confidence,
                    detail="shared module-name stem(s): "
                           + ", ".join(shared))


class FamilyForest:
    """Union-find over corpus indices with deterministic structure.

    The representative of every component is its **minimum index**, so
    :meth:`compressed` is a pure function of the component partition —
    independent of union order, partition count, or merge order.  That
    is what lets streaming workers build partial forests over their
    band partition's collision pairs and the parent merge them into
    exactly the forest the in-memory path computes.
    """

    def __init__(self) -> None:
        self._parent: Dict[int, int] = {}

    def find(self, node: int) -> int:
        parent = self._parent
        if node not in parent:
            return node
        root = node
        while parent[root] != root:
            root = parent[root]
        while parent[node] != root:  # path compression
            parent[node], node = root, parent[node]
        return root

    def union(self, a: int, b: int) -> None:
        parent = self._parent
        parent.setdefault(a, a)
        parent.setdefault(b, b)
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return
        # min-index root keeps the forest canonical under any order.
        low, high = min(root_a, root_b), max(root_a, root_b)
        parent[high] = low

    def merge(self, parent_map: Dict[int, int]) -> None:
        """Fold another forest's ``compressed()`` map into this one."""
        for node, root in parent_map.items():
            self.union(node, root)

    def compressed(self) -> Dict[int, int]:
        """``node -> min index of its component`` for every known node."""
        return {node: self.find(node) for node in self._parent}

    def component_sizes(self) -> Dict[int, int]:
        """``min-root -> component size`` over known nodes."""
        sizes: Dict[int, int] = {}
        for node in self._parent:
            root = self.find(node)
            sizes[root] = sizes.get(root, 0) + 1
        return sizes

    def component_size_of(self, node: int) -> int:
        """Size of ``node``'s component (1 if the node never collided)."""
        if node not in self._parent:
            return 1
        root = self.find(node)
        return sum(1 for other in self._parent
                   if self.find(other) == root)


def collision_forest(signatures: Sequence[Sequence[int]],
                     bands: int) -> FamilyForest:
    """The LSH collision graph of ``signatures`` as a union-find forest.

    Two positions are joined when any band key collides — exactly the
    edge set the band-partitioned map side
    (:func:`~.dedup.band_candidate_pairs`) emits, so the streaming
    partial-forest merge reconstructs this forest identically.  Band
    keys are cheap blake2b digests over already-computed signature
    lanes: **no shingle is re-hashed here**.
    """
    forest = FamilyForest()
    buckets: Dict[Tuple[int, str], int] = {}
    for position, signature in enumerate(signatures):
        for key in signature_band_keys(signature, bands):
            first = buckets.setdefault(key, position)
            if first != position:
                forest.union(first, position)
    return forest


def forest_from_pairs(pairs: Sequence[Tuple[int, int]]) -> FamilyForest:
    """A forest over one partition's collision pairs (the worker-side
    partial forest streaming emits)."""
    forest = FamilyForest()
    for earlier, later in pairs:
        forest.union(earlier, later)
    return forest


@dataclass
class FamilyVariant:
    """One near-duplicate member of a family (a dedup-dropped file)."""

    index: int
    similarity: float
    path: str = ""
    origin: str = ""
    modules: List[str] = field(default_factory=list)
    entry_id: str = ""
    evidence: List[Evidence] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "similarity": self.similarity,
            "path": self.path,
            "origin": self.origin,
            "modules": list(self.modules),
            "entry_id": self.entry_id,
            "evidence": [item.to_dict() for item in self.evidence],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FamilyVariant":
        return cls(
            index=data["index"],
            similarity=data["similarity"],
            path=data.get("path", ""),
            origin=data.get("origin", ""),
            modules=list(data.get("modules", [])),
            entry_id=data.get("entry_id", ""),
            evidence=[Evidence.from_dict(item)
                      for item in data.get("evidence", [])],
        )


@dataclass
class Family:
    """A canonical member plus its dedup-linked variants."""

    family_id: str
    canonical_index: int
    canonical_path: str = ""
    canonical_origin: str = ""
    canonical_modules: List[str] = field(default_factory=list)
    canonical_entry_id: str = ""
    #: Size of the canonical's LSH collision component — members beyond
    #: the family are near-miss neighbours that collided in some band
    #: but were verified below the threshold (or belong to another
    #: family in the same component).
    component_size: int = 0
    #: Multi-granularity descriptions of the canonical member
    #: (``module`` paragraph + ``blocks`` list); filled only when the
    #: canonical survives curation into the final dataset.
    descriptions: Dict[str, Any] = field(default_factory=dict)
    variants: List[FamilyVariant] = field(default_factory=list)

    @property
    def size(self) -> int:
        return 1 + len(self.variants)

    @property
    def n_lsh_neighbours(self) -> int:
        """Collision-component members that are not family members."""
        return max(0, self.component_size - self.size)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "family_id": self.family_id,
            "canonical_index": self.canonical_index,
            "canonical_path": self.canonical_path,
            "canonical_origin": self.canonical_origin,
            "canonical_modules": list(self.canonical_modules),
            "canonical_entry_id": self.canonical_entry_id,
            "component_size": self.component_size,
            "n_lsh_neighbours": self.n_lsh_neighbours,
            "descriptions": dict(self.descriptions),
            "variants": [variant.to_dict() for variant in self.variants],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Family":
        return cls(
            family_id=data["family_id"],
            canonical_index=data["canonical_index"],
            canonical_path=data.get("canonical_path", ""),
            canonical_origin=data.get("canonical_origin", ""),
            canonical_modules=list(data.get("canonical_modules", [])),
            canonical_entry_id=data.get("canonical_entry_id", ""),
            component_size=data.get("component_size", 0),
            descriptions=dict(data.get("descriptions", {})),
            variants=[FamilyVariant.from_dict(item)
                      for item in data.get("variants", [])],
        )


def family_id_for(seed: int, canonical_index: int) -> str:
    """Stable family id: derived from the corpus index of the
    canonical, which both curate paths number identically."""
    return f"fam-{seed}-{canonical_index:06d}"


class FamilyIndex:
    """All families of one curation run, queryable by corpus index."""

    def __init__(self, families: List[Family], seed: int,
                 threshold: float) -> None:
        self.families = sorted(families,
                               key=lambda fam: fam.canonical_index)
        self.seed = seed
        self.threshold = threshold
        self._by_index: Dict[int, Tuple[Family, str]] = {}
        self._similarity: Dict[int, float] = {}
        for family in self.families:
            self._by_index[family.canonical_index] = (family, "canonical")
            for variant in family.variants:
                self._by_index[variant.index] = (family, "variant")
                self._similarity[variant.index] = variant.similarity

    @classmethod
    def empty(cls, seed: int, threshold: float) -> "FamilyIndex":
        return cls([], seed, threshold)

    @classmethod
    def build(
        cls,
        duplicate_of: Dict[int, int],
        similarities: Dict[int, float],
        forest: FamilyForest,
        meta: Dict[int, Dict[str, Any]],
        seed: int,
        threshold: float,
    ) -> "FamilyIndex":
        """Cluster dedup's drop decisions into families.

        Args:
            duplicate_of: ``dropped index -> kept canonical index`` —
                the exact provenance dedup records.
            similarities: the verified Jaccard similarity of each drop
                pair, keyed by the dropped index.
            forest: the LSH collision forest over survivor indices
                (in-memory: :func:`collision_forest`; streaming: the
                merge of worker partial forests).  Only component sizes
                of canonicals are consulted.
            meta: per-index ``{"path", "origin", "modules"}`` for every
                index in ``duplicate_of`` (keys and values).
            seed / threshold: run parameters, recorded on the report.

        The construction is a pure function of its arguments, so the
        in-memory and streaming paths — which provably feed it
        identical inputs — yield byte-identical reports.
        """
        sizes = forest.component_sizes()
        compressed = forest.compressed()
        grouped: Dict[int, List[int]] = {}
        for dropped, canonical in duplicate_of.items():
            grouped.setdefault(canonical, []).append(dropped)

        families: List[Family] = []
        for canonical in sorted(grouped):
            canonical_meta = meta.get(canonical, {})
            canonical_modules = list(canonical_meta.get("modules", []))
            root = compressed.get(canonical, canonical)
            family = Family(
                family_id=family_id_for(seed, canonical),
                canonical_index=canonical,
                canonical_path=canonical_meta.get("path", ""),
                canonical_origin=canonical_meta.get("origin", ""),
                canonical_modules=canonical_modules,
                component_size=sizes.get(root, 1),
            )
            for dropped in sorted(grouped[canonical]):
                dropped_meta = meta.get(dropped, {})
                similarity = similarities.get(dropped, 0.0)
                evidence = [Evidence(
                    kind=LSH_BUCKET, confidence=similarity,
                    detail="signatures collided in an LSH band; exact "
                           "Jaccard verified at drop time")]
                names = name_pattern_evidence(
                    canonical_modules, dropped_meta.get("modules", []))
                if names is not None:
                    evidence.append(names)
                family.variants.append(FamilyVariant(
                    index=dropped,
                    similarity=similarity,
                    path=dropped_meta.get("path", ""),
                    origin=dropped_meta.get("origin", ""),
                    modules=list(dropped_meta.get("modules", [])),
                    evidence=evidence,
                ))
            families.append(family)
        return cls(families, seed, threshold)

    # -- queries --------------------------------------------------------

    @property
    def n_families(self) -> int:
        return len(self.families)

    @property
    def n_variants(self) -> int:
        return sum(len(family.variants) for family in self.families)

    def family_of(self, index: int) -> Optional[Family]:
        pair = self._by_index.get(index)
        return pair[0] if pair else None

    def role_of(self, index: int) -> str:
        """``"canonical"``, ``"variant"``, or ``""`` (not in a family)."""
        pair = self._by_index.get(index)
        return pair[1] if pair else ""

    def similarity_of(self, index: int) -> float:
        return self._similarity.get(index, 0.0)

    # -- late attachment (assemble time) --------------------------------

    def attach_entry(self, index: int, entry_id: str) -> None:
        """Record the dataset entry id a surviving index assembled to."""
        pair = self._by_index.get(index)
        if pair is None:
            return
        family, role = pair
        if role == "canonical":
            family.canonical_entry_id = entry_id
            return
        for variant in family.variants:
            if variant.index == index:
                variant.entry_id = entry_id
                return

    def attach_descriptions(self, index: int,
                            descriptions: Dict[str, Any]) -> None:
        """Attach multi-granularity descriptions to a canonical."""
        pair = self._by_index.get(index)
        if pair is not None and pair[1] == "canonical":
            pair[0].descriptions = dict(descriptions)

    def report(self) -> "FamilyReport":
        return FamilyReport(seed=self.seed, threshold=self.threshold,
                            families=list(self.families))


@dataclass
class FamilyReport:
    """The versioned design-family document of one curation run."""

    schema = "pyranet/family-report/v1"

    seed: int = 0
    threshold: float = 0.8
    families: List[Family] = field(default_factory=list)

    @property
    def n_families(self) -> int:
        return len(self.families)

    @property
    def n_variants(self) -> int:
        return sum(len(family.variants) for family in self.families)

    def size_histogram(self) -> Dict[str, int]:
        """``family size -> count`` with numerically ordered keys."""
        histogram: Dict[int, int] = {}
        for family in self.families:
            histogram[family.size] = histogram.get(family.size, 0) + 1
        return {str(size): histogram[size] for size in sorted(histogram)}

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": self.schema,
            "seed": self.seed,
            "threshold": self.threshold,
            "n_families": self.n_families,
            "n_variants": self.n_variants,
            "size_histogram": self.size_histogram(),
            "families": [family.to_dict() for family in self.families],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return report_json(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FamilyReport":
        data = strip_schema(data)
        return cls(
            seed=data.get("seed", 0),
            threshold=data.get("threshold", 0.8),
            families=[Family.from_dict(item)
                      for item in data.get("families", [])],
        )

    @classmethod
    def from_json(cls, text: str) -> "FamilyReport":
        return cls.from_dict(json.loads(text))


def build_family_artifacts(
    codes: Sequence[str],
    indices: Sequence[int],
    meta_for: Callable[[int], Dict[str, Any]],
    threshold: float,
    seed: int,
    hasher: Optional[MinHasher] = None,
    n_perm: int = 64,
    bands: int = 16,
) -> Tuple[DedupReport, FamilyIndex]:
    """Dedup + family clustering off **one** set of signatures.

    Shingles are tokenised and MinHash-signed exactly once; the same
    signatures drive the drop decisions (via the
    ``deduplicate(shingle_sets=…, signatures=…)`` injection point) and
    the collision forest.  ``indices`` are the ascending corpus indices
    of ``codes``; ``meta_for(index)`` supplies the per-file metadata
    (path/origin/modules) lazily — it is only called for indices that
    end up in a family.
    """
    if list(indices) != sorted(indices):
        raise ValueError("indices must be ascending corpus indices")
    if hasher is None:
        hasher = MinHasher(n_perm)
    shingle_sets = [tokenize_for_dedup(code) for code in codes]
    signatures = [hasher.signature(shingles)
                  for shingles in shingle_sets]
    report = deduplicate(codes, threshold=threshold, bands=bands,
                         hasher=hasher, shingle_sets=shingle_sets,
                         signatures=signatures)
    forest = collision_forest(signatures, bands)

    # Translate batch positions to corpus indices.  ``indices`` is
    # ascending, so the min-position root maps to the min-index root
    # and the forest stays canonical.
    duplicate_of = {indices[later]: indices[earlier]
                    for later, earlier in report.duplicate_of.items()}
    similarities = {indices[later]: similarity
                    for later, similarity in report.similarities.items()}
    translated = FamilyForest()
    translated.merge({indices[node]: indices[root]
                      for node, root in forest.compressed().items()})
    involved = set(duplicate_of) | set(duplicate_of.values())
    meta = {index: meta_for(index) for index in sorted(involved)}
    index = FamilyIndex.build(duplicate_of, similarities, translated,
                              meta, seed=seed, threshold=threshold)
    return report, index
