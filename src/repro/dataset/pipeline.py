"""End-to-end dataset curation (paper Section III-A).

:class:`CurationPipeline` turns a raw file population (scraped +
LLM-generated) into a layered :class:`~.records.PyraNetDataset`:

1. filters — empty/broken, module declaration (cheap first);
2. deduplication — Jaccard over token shingles;
3. syntax check — last, on the reduced set; classifies clean vs
   dependency-only;
4. labelling — 0–20 ranking, complexity tier, design description;
5. layering — the six-tier pyramid.

Descriptions supplied by the generation pipeline (the design prompt the
sample was generated from) are kept; scraped files get AST-derived
descriptions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..corpus.github_sim import RawFile
from ..corpus.llm_sim import GeneratedSample, strip_markdown_fences
from .complexity import classify_code
from .dedup import dedup_keep_indices
from .describe import describe_source
from .filters import FunnelStats, run_filter_funnel
from .layering import LayerReport, assign_layers
from .ranking import score_code
from .records import CompileStatus, DatasetEntry, PyraNetDataset


@dataclass
class PipelineReport:
    """Everything the pipeline measured while curating."""

    funnel: FunnelStats = field(default_factory=FunnelStats)
    layers: LayerReport = field(default_factory=LayerReport)
    n_collected_github: int = 0
    n_generated_llm: int = 0

    def summary_lines(self) -> List[str]:
        lines = [
            f"collected (github): {self.n_collected_github}",
            f"generated (llm):    {self.n_generated_llm}",
            f"after empty/broken: {self.funnel.after_empty_broken}",
            f"after module decl:  {self.funnel.after_module_decl}",
            f"after dedup:        {self.funnel.after_dedup}",
            f"after syntax check: {self.funnel.after_syntax}"
            f"  (clean {self.funnel.clean}, "
            f"dependency-only {self.funnel.dependency_only})",
        ]
        for number, size in self.layers.pyramid_rows():
            lines.append(f"layer {number}: {size}")
        return lines


@dataclass
class CurationPipeline:
    """Configurable curation run.

    Args:
        dedup_threshold: Jaccard similarity above which files are
            considered duplicates.
        seed: used only for entry-id generation stability.
    """

    dedup_threshold: float = 0.8
    seed: int = 0

    def run(
        self,
        raw_files: Sequence[RawFile],
        generated: Sequence[GeneratedSample] = (),
    ) -> "CurationResult":
        """Curate ``raw_files`` + ``generated`` into a layered dataset."""
        report = PipelineReport(
            n_collected_github=len(raw_files),
            n_generated_llm=len(generated),
        )
        contents: List[str] = [f.content for f in raw_files]
        provenance: List[Dict] = [
            {"origin": f.origin, "path": f.path, "description": None}
            for f in raw_files
        ]
        for sample in generated:
            contents.append(strip_markdown_fences(sample.raw_response))
            provenance.append({
                "origin": "llm",
                "path": f"llm/{sample.design.module_name}.v",
                "description": sample.design.description,
            })
        report.funnel.collected = len(contents)

        survivors, funnel = run_filter_funnel(
            contents,
            dedup=lambda texts: dedup_keep_indices(
                texts, self.dedup_threshold
            ),
        )
        funnel.collected = len(contents)
        report.funnel = funnel

        dataset = PyraNetDataset()
        for position, survivor in enumerate(survivors):
            meta = provenance[survivor.index]
            status = (
                CompileStatus.CLEAN
                if survivor.check_result.status == "clean"
                else CompileStatus.DEPENDENCY
            )
            ranking = score_code(survivor.content)
            description = meta["description"] or describe_source(
                survivor.content
            )
            detail = ""
            if status is CompileStatus.DEPENDENCY:
                issues = survivor.check_result.dependency_issues
                detail = issues[0].message if issues else "dependency issues"
            entry = DatasetEntry(
                entry_id=f"pyranet-{self.seed}-{position:06d}",
                code=survivor.content,
                description=description,
                ranking=ranking,
                complexity=classify_code(survivor.content),
                compile_status=status,
                compile_detail=detail,
                origin=meta["origin"],
                source_path=meta["path"],
                module_names=list(survivor.check_result.modules),
            )
            dataset.add(entry)
        report.layers = assign_layers(dataset.entries)
        return CurationResult(dataset=dataset, report=report)


@dataclass
class CurationResult:
    """A curated dataset plus its pipeline report."""

    dataset: PyraNetDataset
    report: PipelineReport


def build_pyranet(
    n_github_files: int = 400,
    n_llm_prompts: int = 8,
    n_queries_per_prompt: int = 10,
    seed: int = 0,
    dedup_threshold: float = 0.8,
) -> CurationResult:
    """One-call PyraNet construction at a configurable scale.

    Simulates the scrape, runs the commercial-LLM generation pipeline
    (Fig. 2), and curates everything into the six-layer dataset.
    """
    from ..corpus.github_sim import GitHubScrapeSimulator
    from ..corpus.keywords import build_keyword_database
    from ..corpus.llm_sim import SimulatedCommercialLLM

    scraper = GitHubScrapeSimulator(seed=seed)
    raw_files = scraper.scrape(n_github_files)

    db = build_keyword_database()
    llm = SimulatedCommercialLLM(seed=seed + 1)
    rng = random.Random(seed + 2)
    generated: List[GeneratedSample] = []
    for _ in range(n_llm_prompts):
        entry = db.sample(rng)
        generated.extend(
            llm.generate_batch(entry, n_queries=n_queries_per_prompt)
        )

    pipeline = CurationPipeline(dedup_threshold=dedup_threshold, seed=seed)
    return pipeline.run(raw_files, generated)
