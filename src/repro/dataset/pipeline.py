"""End-to-end dataset curation (paper Section III-A).

:class:`CurationPipeline` turns a raw file population (scraped +
LLM-generated) into a layered :class:`~.records.PyraNetDataset`.  It is
a composition of named stages over the generic
:class:`~repro.pipeline.StagedPipeline` engine:

1. ``empty_broken`` / ``module_decl`` — the cheap filters;
2. ``dedup`` — Jaccard over token shingles (batch, cross-record);
3. ``syntax_check`` — the expensive compile check, last, on the
   reduced set; classifies clean vs dependency-only (cached);
4. ``rank_label`` / ``describe`` — 0–20 ranking, complexity tier,
   design description (cached);
5. ``assemble`` / ``layer`` — dataset rows and the six-tier pyramid.

Descriptions supplied by the generation pipeline (the design prompt the
sample was generated from) are kept; scraped files get AST-derived
descriptions.  Per-record stages run through a
:class:`~repro.pipeline.ParallelExecutor` (serial by default; thread or
process pools opt-in) and memoise pure per-file work in a shared
:class:`~repro.pipeline.ResultCache`.  The run's
:class:`~repro.pipeline.PipelineTrace` — per-stage wall time, in/out
counts, drop reasons, cache hit rates — rides on the report.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..corpus.github_sim import RawFile
from ..corpus.llm_sim import GeneratedSample, strip_markdown_fences
from ..obs import Observability, resolve
from ..obs.reportable import strip_schema
from ..pipeline import (
    BatchStage,
    Drop,
    Keep,
    ParallelExecutor,
    PipelineTrace,
    Record,
    RecordStage,
    ResultCache,
    StagedPipeline,
)
from ..resilience.runtime import Resilience
from .complexity import classify_code
from .describe import describe_source, family_description
from .families import FamilyIndex, FamilyReport, build_family_artifacts, module_names
from .filters import FunnelStats, has_module, is_readable, syntax_filter
from .layering import LayerReport, assign_layers
from .ranking import score_code
from .records import CompileStatus, DatasetEntry, PyraNetDataset
from ..verilog.formal import verify_code


@dataclass
class PipelineReport:
    """Everything the pipeline measured while curating."""

    schema = "pyranet/curation-report/v1"

    funnel: FunnelStats = field(default_factory=FunnelStats)
    layers: LayerReport = field(default_factory=LayerReport)
    n_collected_github: int = 0
    n_generated_llm: int = 0
    trace: Optional[PipelineTrace] = None
    #: Design-family clustering of the run's dedup decisions (None on
    #: reports serialised before the subsystem existed).
    families: Optional[FamilyReport] = None

    def summary_lines(self) -> List[str]:
        lines = [
            f"collected (github): {self.n_collected_github}",
            f"generated (llm):    {self.n_generated_llm}",
            f"after empty/broken: {self.funnel.after_empty_broken}",
            f"after module decl:  {self.funnel.after_module_decl}",
            f"after dedup:        {self.funnel.after_dedup}",
            f"after syntax check: {self.funnel.after_syntax}"
            f"  (clean {self.funnel.clean}, "
            f"dependency-only {self.funnel.dependency_only})",
        ]
        if self.families is not None and self.families.n_families:
            lines.append(
                f"design families:    {self.families.n_families} "
                f"({self.families.n_variants} variant(s))")
        for number, size in self.layers.pyramid_rows():
            lines.append(f"layer {number}: {size}")
        return lines

    def to_dict(self) -> Dict:
        return {
            "funnel": self.funnel.to_dict(),
            "layers": self.layers.to_dict(),
            "n_collected_github": self.n_collected_github,
            "n_generated_llm": self.n_generated_llm,
            "trace": self.trace.to_dict() if self.trace else None,
            "families": (self.families.to_dict()
                         if self.families is not None else None),
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict) -> "PipelineReport":
        data = strip_schema(data)
        trace = data.get("trace")
        families = data.get("families")
        return cls(
            funnel=FunnelStats.from_dict(data["funnel"]),
            layers=LayerReport.from_dict(data["layers"]),
            n_collected_github=data["n_collected_github"],
            n_generated_llm=data["n_generated_llm"],
            trace=PipelineTrace.from_dict(trace) if trace else None,
            families=(FamilyReport.from_dict(families)
                      if families else None),
        )

    @classmethod
    def from_json(cls, text: str) -> "PipelineReport":
        return cls.from_dict(json.loads(text))


# -- per-record stage functions (module-level: process-pool picklable) --


def _readable_stage(content: str):
    decision = is_readable(content)
    return Keep() if decision.kept else Drop(decision.reason)


def _module_stage(content: str):
    decision = has_module(content)
    return Keep() if decision.kept else Drop(decision.reason)


def _syntax_stage(content: str):
    decision, result = syntax_filter(content)
    if not decision.kept:
        return Drop("syntax error")
    return Keep(meta={"check_result": result})


def _rank_label_stage(content: str):
    return Keep(meta={
        "ranking": score_code(content),
        "complexity": classify_code(content),
    })


def _describe_stage(content: str):
    return Keep(meta={"auto_description": describe_source(content)})


def _formal_verify_stage(content: str):
    verified, detail = verify_code(content)
    return Keep(meta={"verified": verified, "verified_detail": detail})


def _needs_description(record: Record) -> bool:
    return not record.meta["provenance"]["description"]


def _formal_candidate(record: Record) -> bool:
    """The verified tier sits above layer 1: only clean, 20/20 entries
    are worth the formal check (everything else can never enter it)."""
    return (record.meta["ranking"] == 20
            and record.meta["check_result"].status == "clean")


@dataclass
class CurationPipeline:
    """Configurable curation run.

    Args:
        dedup_threshold: Jaccard similarity above which files are
            considered duplicates.
        seed: used only for entry-id generation stability.
        executor: per-record work executor; defaults to serial.  A
            thread/process executor produces identical output (stage
            functions are pure and order is preserved) — parallelism is
            opt-in purely so callers control the concurrency footprint.
        cache: shared content-hash cache for syntax/ranking/description
            work; a fresh private cache when not supplied.
        obs: observability handle; stage and worker spans plus the
            published trace land in its registry for the run report.
        resilience: resilience runtime — per-record stages run behind
            retry/quarantine shields, batch stages retry whole, and
            when its checkpointer is set the run journals progress and
            resumes byte-identically after a kill.
        keep_variants: keep dedup-dropped near-duplicates in the
            dataset as family-tagged variant rows instead of discarding
            them.  Canonical selection, family ids and similarities are
            unchanged; the funnel simply stops removing at the dedup
            stage.
    """

    dedup_threshold: float = 0.8
    seed: int = 0
    executor: Optional[ParallelExecutor] = None
    cache: Optional[ResultCache] = None
    obs: Optional[Observability] = None
    resilience: Optional[Resilience] = None
    keep_variants: bool = False

    def run(
        self,
        raw_files: Sequence[RawFile],
        generated: Sequence[GeneratedSample] = (),
    ) -> "CurationResult":
        """Curate ``raw_files`` + ``generated`` into a layered dataset."""
        records = self._source_records(raw_files, generated)
        obs = resolve(self.obs)
        layer_holder: Dict[str, LayerReport] = {}
        family_holder: Dict[str, FamilyIndex] = {}
        engine = StagedPipeline(
            name="curation",
            stages=self._stages(layer_holder, family_holder),
            executor=(self.executor if self.executor is not None
                      else ParallelExecutor.serial()),
            # NB: an *empty* cache is falsy (it has __len__), so this
            # must be an identity check, not ``or``.
            cache=self.cache if self.cache is not None else ResultCache(),
            obs=obs,
            resilience=self.resilience,
            checkpoint_extra=(self.seed, self.dedup_threshold,
                              self.keep_variants),
        )
        result = engine.run(records=records)
        obs.counter("curation.runs").inc()
        obs.counter("curation.files_in").inc(len(records))

        dataset = PyraNetDataset()
        for record in result.records:
            dataset.add(record.value)
        layers = layer_holder.get("report")
        if layers is None:
            # The layer stage was restored from a checkpoint journal, so
            # its side-channel report never fired; recompute it from the
            # (identical) surviving entries.
            layers = assign_layers([record.value
                                    for record in result.records])
        family_index = family_holder.get("index")
        if family_index is None:
            # Same story for the dedup stage's side channel: replay the
            # cheap filters over the (identical) source records and
            # rebuild the family index deterministically.
            family_index = self._recompute_families(records)
        for record in result.records:
            info = record.meta.get("family")
            if info:
                family_index.attach_entry(record.index,
                                          record.value.entry_id)
                if info["role"] == "canonical":
                    family_index.attach_descriptions(
                        record.index, family_description(record.value.code))
        obs.counter("curation.families").inc(family_index.n_families)
        obs.counter("curation.family_variants").inc(
            family_index.n_variants)
        report = PipelineReport(
            funnel=self._funnel_from(result.trace, dataset),
            layers=layers,
            n_collected_github=len(raw_files),
            n_generated_llm=len(generated),
            trace=result.trace,
            families=family_index.report(),
        )
        return CurationResult(dataset=dataset, report=report)

    # -- wiring -------------------------------------------------------------

    @staticmethod
    def _source_records(
        raw_files: Sequence[RawFile],
        generated: Sequence[GeneratedSample],
    ) -> List[Record]:
        records: List[Record] = []
        for f in raw_files:
            records.append(Record(len(records), f.content, {"provenance": {
                "origin": f.origin, "path": f.path, "description": None,
            }}))
        for sample in generated:
            content = strip_markdown_fences(sample.raw_response)
            records.append(Record(len(records), content, {"provenance": {
                "origin": "llm",
                "path": f"llm/{sample.design.module_name}.v",
                "description": sample.design.description,
            }}))
        return records

    def _stages(self, layer_holder: Dict, family_holder: Dict) -> List:
        return [
            RecordStage("empty_broken", _readable_stage, parallel=False),
            RecordStage("module_decl", _module_stage, parallel=False),
            BatchStage("dedup", _make_dedup_batch(self, family_holder)),
            RecordStage("syntax_check", _syntax_stage,
                        cache_namespace="curation/syntax"),
            RecordStage("rank_label", _rank_label_stage,
                        cache_namespace="curation/rank"),
            RecordStage("formal_verify", _formal_verify_stage,
                        cache_namespace="curation/formal",
                        when=_formal_candidate),
            RecordStage("describe", _describe_stage,
                        cache_namespace="curation/describe",
                        when=_needs_description),
            BatchStage("assemble", self._assemble_batch),
            BatchStage("layer", _make_layer_batch(layer_holder)),
        ]

    def _dedup_batch(
        self, records: List[Record], family_holder: Dict
    ) -> Tuple[List[Record], List[Tuple[Record, str]]]:
        if not records:
            family_holder["index"] = FamilyIndex.empty(
                self.seed, self.dedup_threshold)
            return records, []
        by_index = {record.index: record for record in records}

        def meta_for(index: int) -> Dict:
            record = by_index[index]
            provenance = record.meta["provenance"]
            return {"path": provenance["path"],
                    "origin": provenance["origin"],
                    "modules": module_names(record.value)}

        report, family_index = build_family_artifacts(
            [record.value for record in records],
            [record.index for record in records],
            meta_for, threshold=self.dedup_threshold, seed=self.seed)
        family_holder["index"] = family_index

        keep_positions = set(report.kept_indices)
        kept, dropped = [], []
        for position, record in enumerate(records):
            role = family_index.role_of(record.index)
            if role:
                family = family_index.family_of(record.index)
                record.meta["family"] = {
                    "id": family.family_id,
                    "role": role,
                    "similarity": family_index.similarity_of(record.index),
                    "n_variants": (len(family.variants)
                                   if role == "canonical" else 0),
                }
            if position in keep_positions or (self.keep_variants
                                              and role == "variant"):
                kept.append(record)
            else:
                dropped.append((record, "duplicate"))
        return kept, dropped

    def _recompute_families(
        self, records: Sequence[Record]
    ) -> FamilyIndex:
        """Rebuild the family index when the dedup stage was restored
        from a checkpoint journal (its side channel never fired):
        replay the two cheap filters over the source records and
        re-run the deterministic clustering."""
        survivors = [record for record in records
                     if is_readable(record.value).kept
                     and has_module(record.value).kept]
        if not survivors:
            return FamilyIndex.empty(self.seed, self.dedup_threshold)
        by_index = {record.index: record for record in survivors}

        def meta_for(index: int) -> Dict:
            record = by_index[index]
            provenance = record.meta["provenance"]
            return {"path": provenance["path"],
                    "origin": provenance["origin"],
                    "modules": module_names(record.value)}

        _report, family_index = build_family_artifacts(
            [record.value for record in survivors],
            [record.index for record in survivors],
            meta_for, threshold=self.dedup_threshold, seed=self.seed)
        return family_index

    def _assemble_batch(self, records: List[Record]) -> List[Record]:
        out: List[Record] = []
        for position, record in enumerate(records):
            meta = record.meta
            provenance = meta["provenance"]
            result = meta["check_result"]
            status = (
                CompileStatus.CLEAN
                if result.status == "clean"
                else CompileStatus.DEPENDENCY
            )
            description = (provenance["description"]
                           or meta.get("auto_description", ""))
            detail = ""
            if status is CompileStatus.DEPENDENCY:
                issues = result.dependency_issues
                detail = issues[0].message if issues else "dependency issues"
            entry = DatasetEntry(
                entry_id=f"pyranet-{self.seed}-{position:06d}",
                code=record.value,
                description=description,
                ranking=meta["ranking"],
                complexity=meta["complexity"],
                compile_status=status,
                compile_detail=detail,
                origin=provenance["origin"],
                source_path=provenance["path"],
                module_names=list(result.modules),
                verified=meta.get("verified", False),
                verified_detail=meta.get("verified_detail", ""),
            )
            family = meta.get("family")
            if family:
                entry.family_id = family["id"]
                entry.family_role = family["role"]
                entry.n_family_variants = family["n_variants"]
                entry.family_similarity = family["similarity"]
            out.append(Record(record.index, entry, dict(meta)))
        return out

    @staticmethod
    def _funnel_from(
        trace: PipelineTrace, dataset: PyraNetDataset
    ) -> FunnelStats:
        """Reconstruct the paper's funnel counters from the trace."""
        def stage(name):
            metrics = trace.stage(name)
            assert metrics is not None, name
            return metrics

        funnel = FunnelStats(
            collected=stage("empty_broken").n_in,
            after_empty_broken=stage("empty_broken").n_out,
            after_module_decl=stage("module_decl").n_out,
            after_dedup=stage("dedup").n_out,
            after_syntax=stage("syntax_check").n_out,
            clean=sum(1 for e in dataset
                      if e.compile_status is CompileStatus.CLEAN),
            dependency_only=sum(1 for e in dataset
                                if e.compile_status is CompileStatus.DEPENDENCY),
        )
        for name in ("empty_broken", "module_decl", "syntax_check"):
            dropped = stage(name).n_dropped
            if dropped:
                funnel.removed[name] = dropped
        # The legacy funnel reports the dedup count whenever the stage
        # saw input, even when nothing was removed.
        if stage("dedup").n_in:
            funnel.removed["dedup"] = stage("dedup").n_dropped
        return funnel


def _make_dedup_batch(pipeline: "CurationPipeline", holder: Dict):
    """Bind the run's family holder into the dedup batch stage (the
    same side-channel pattern as the layer stage below)."""
    def _dedup_batch(records: List[Record]):
        return pipeline._dedup_batch(records, holder)
    return _dedup_batch


def _make_layer_batch(holder: Dict):
    def _layer_batch(records: List[Record]) -> List[Record]:
        holder["report"] = assign_layers(
            [record.value for record in records]
        )
        return records
    return _layer_batch


@dataclass
class CurationResult:
    """A curated dataset plus its pipeline report."""

    schema = "pyranet/curation-result/v1"

    dataset: PyraNetDataset
    report: PipelineReport

    def to_dict(self) -> Dict:
        return {
            "schema": self.schema,
            "entries": [entry.to_dict() for entry in self.dataset],
            "report": self.report.to_dict(),
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict) -> "CurationResult":
        data = strip_schema(data)
        dataset = PyraNetDataset()
        for item in data.get("entries", []):
            dataset.add(DatasetEntry.from_dict(item))
        return cls(
            dataset=dataset,
            report=PipelineReport.from_dict(data["report"]),
        )

    @classmethod
    def from_json(cls, text: str) -> "CurationResult":
        return cls.from_dict(json.loads(text))


def build_pyranet(
    n_github_files: int = 400,
    n_llm_prompts: int = 8,
    n_queries_per_prompt: int = 10,
    seed: int = 0,
    dedup_threshold: float = 0.8,
    executor: Optional[ParallelExecutor] = None,
    cache: Optional[ResultCache] = None,
    obs: Optional[Observability] = None,
    resilience: Optional[Resilience] = None,
    stream: bool = False,
    workers: Optional[int] = None,
    batch_size: int = 256,
    spill_dir=None,
    keep_variants: bool = False,
) -> CurationResult:
    """One-call PyraNet construction at a configurable scale.

    Simulates the scrape, runs the commercial-LLM generation pipeline
    (Fig. 2), and curates everything into the six-layer dataset.

    With ``stream=True`` the scrape is consumed as a lazy batch stream
    through :class:`~.streaming.StreamingCurationPipeline` — the raw
    corpus is never materialised, and the result is byte-identical to
    the in-memory path.  ``workers=N`` (streaming only, N > 1) fans the
    fused stages out over a process pool unless an explicit ``executor``
    is given; ``spill_dir`` bounds survivor/shuffle memory with disk
    spill.
    """
    from ..corpus.github_sim import GitHubScrapeSimulator
    from ..corpus.keywords import build_keyword_database
    from ..corpus.llm_sim import SimulatedCommercialLLM

    scraper = GitHubScrapeSimulator(seed=seed)

    db = build_keyword_database()
    llm = SimulatedCommercialLLM(seed=seed + 1)
    rng = random.Random(seed + 2)
    generated: List[GeneratedSample] = []
    for _ in range(n_llm_prompts):
        entry = db.sample(rng)
        generated.extend(
            llm.generate_batch(entry, n_queries=n_queries_per_prompt)
        )

    if stream:
        from .streaming import (
            StreamingCurationPipeline,
            chain_batches,
            generated_batches,
            raw_file_batches,
        )

        if executor is None and workers and workers > 1:
            executor = ParallelExecutor(mode="process",
                                        max_workers=workers)
        streaming = StreamingCurationPipeline(
            dedup_threshold=dedup_threshold, seed=seed,
            batch_size=batch_size, executor=executor, obs=obs,
            resilience=resilience, spill_dir=spill_dir,
            keep_variants=keep_variants,
        )
        source = chain_batches(
            raw_file_batches(
                scraper.iter_scrape(n_github_files,
                                    batch_size=batch_size)),
            generated_batches(generated, batch_size=batch_size),
        )
        token = (f"build-pyranet:{seed}:{n_github_files}:"
                 f"{n_llm_prompts}:{n_queries_per_prompt}")
        return streaming.run_stream(source, source_token=token)

    raw_files = scraper.scrape(n_github_files)
    pipeline = CurationPipeline(
        dedup_threshold=dedup_threshold, seed=seed,
        executor=executor, cache=cache, obs=obs, resilience=resilience,
        keep_variants=keep_variants,
    )
    return pipeline.run(raw_files, generated)
