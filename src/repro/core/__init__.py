"""Top-level reproduction driver and experiment runners."""

from .pyranet import (
    PyraNet,
    RECIPES,
    TableOneRow,
    gains,
    run_table1,
    run_table4,
)

__all__ = ["PyraNet", "RECIPES", "TableOneRow", "gains", "run_table1",
           "run_table4"]
