"""The PyraNet facade: one import for the whole reproduction.

:class:`PyraNet` wires the pipeline together — corpus synthesis,
curation, fine-tuning, evaluation — and the ``run_*`` functions execute
the paper's experiments (Tables I, III, IV and the figures) end to end.

Typical use::

    from repro.core import PyraNet

    pn = PyraNet(seed=0)
    pn.build_dataset(n_github_files=900)
    model = pn.finetune("codellama-7b-instruct-sim", recipe="architecture")
    report = pn.evaluate(model, suite="machine")
    print(report.summary())
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..baselines.mevllm import MultiExpertModel, finetune_mevllm
from ..baselines.mgverilog import finetune_mgverilog
from ..baselines.origen import SelfReflectiveModel, finetune_origen
from ..baselines.rtlcoder import finetune_rtlcoder
from ..dataset.corrupt import shuffle_labels
from ..dataset.pipeline import CurationResult, build_pyranet
from ..dataset.records import PyraNetDataset
from ..eval.config import EvalConfig
from ..eval.harness import EvalProblem, EvalReport, evaluate_model
from ..eval.problems.human import build_human_problems
from ..eval.problems.machine import build_machine_problems
from ..finetune.trainer import (
    finetune_pyranet_architecture,
    finetune_pyranet_dataset,
)
from ..model.generator import (
    CODELLAMA_7B,
    CODELLAMA_13B,
    DEEPSEEK_7B,
    PROFILES,
    ConditionalCodeModel,
    ModelProfile,
)
from ..finetune.curriculum import LayeredSource
from ..model.interfaces import FineTunable
from ..obs import Observability, RunReport, resolve
from ..pipeline import DiskCache, ParallelExecutor, ResultCache
from ..resilience import Resilience
from ..store import (
    DEFAULT_SHARD_BYTES,
    SamplingService,
    StoreManifest,
    StoreReader,
    write_store,
)

#: Recipe names accepted by :meth:`PyraNet.finetune`.
RECIPES = ("baseline", "dataset", "architecture", "rtlcoder", "origen",
           "mgverilog", "mevllm")


@dataclass
class PyraNet:
    """End-to-end reproduction driver.

    Args:
        seed: master seed for corpus synthesis and fine-tuning.
        n_samples: completions per problem during evaluation.
        temperature: sampling temperature during evaluation.
        n_test_vectors: stimulus per functional test.
        executor: shared executor for curation and evaluation fan-out;
            ``None`` uses each subsystem's default (serial curation,
            threaded evaluation).
        obs: shared observability handle.  A live one by default, so
            every run driven through the facade lands in a single
            registry/trace and :meth:`run_report` /
            :meth:`write_trace` just work; pass
            ``Observability.noop()`` to disable collection.
        resilience: shared resilience runtime (see
            :mod:`repro.resilience`).  When set, curation and
            evaluation runs retry transient faults, quarantine poisoned
            records into its dead-letter report, and — with a
            checkpointer attached — journal progress so a killed run
            resumes byte-identically.  ``None`` keeps the original
            non-resilient code path.
        cache_dir: when set, curation and evaluation caches gain a
            persistent :class:`~repro.pipeline.DiskCache` tier under
            this directory (``<cache_dir>/curation``, ``<cache_dir>/
            eval``), so a re-run over an unchanged corpus serves
            syntax-check / ranking / simulation results from disk
            instead of recomputing (``cache.<name>.disk.*`` counters
            in :meth:`run_report` prove it).  Entries are digest-
            verified on read; corruption means recompute, never a bad
            result.
    """

    seed: int = 0
    n_samples: int = 10
    temperature: float = 0.8
    n_test_vectors: int = 24
    executor: Optional[ParallelExecutor] = None
    obs: Observability = field(default_factory=Observability)
    resilience: Optional[Resilience] = None
    cache_dir: Optional[str] = None

    curation: Optional[CurationResult] = None
    _machine_problems: Optional[List[EvalProblem]] = None
    _human_problems: Optional[List[EvalProblem]] = None
    #: Functional-test outcomes are pure in (problem, completion), so
    #: one cache serves every model/recipe evaluated by this driver —
    #: across a Table I grid, models regenerate many identical
    #: completions and each unique one simulates exactly once.
    _eval_cache: ResultCache = field(default_factory=ResultCache)
    #: Curation per-file results (syntax check, ranking, descriptions);
    #: only built when ``cache_dir`` asks for persistence — otherwise
    #: the pipeline keeps its private in-memory cache.
    _curation_cache: Optional[ResultCache] = None

    def __post_init__(self) -> None:
        if self.cache_dir is None:
            return
        from pathlib import Path

        base = Path(self.cache_dir)
        self._curation_cache = ResultCache(
            name="curation", registry=self.obs.registry,
            disk=DiskCache(base / "curation", obs=self.obs))
        self._eval_cache = ResultCache(
            name="eval", registry=self.obs.registry,
            disk=DiskCache(base / "eval", obs=self.obs))

    # -- dataset ------------------------------------------------------------

    def build_dataset(
        self,
        n_github_files: int = 900,
        n_llm_prompts: int = 30,
        n_queries_per_prompt: int = 8,
        dedup_threshold: float = 0.8,
        stream: bool = False,
        workers: Optional[int] = None,
        batch_size: int = 256,
        spill_dir: Optional[str] = None,
    ) -> PyraNetDataset:
        """Synthesize + curate the PyraNet dataset.

        ``stream=True`` routes curation through the memory-bounded
        :class:`~repro.dataset.streaming.StreamingCurationPipeline`
        (byte-identical output); ``workers=N`` fans the fused stages
        out over a process pool, and ``spill_dir`` keeps survivor /
        shuffle state on disk instead of in memory.
        """
        with self.obs.span("run.build_dataset",
                           n_github_files=n_github_files,
                           n_llm_prompts=n_llm_prompts,
                           stream=stream) as span:
            self.curation = build_pyranet(
                n_github_files=n_github_files,
                n_llm_prompts=n_llm_prompts,
                n_queries_per_prompt=n_queries_per_prompt,
                seed=self.seed,
                dedup_threshold=dedup_threshold,
                executor=self.executor,
                cache=self._curation_cache,
                obs=self.obs,
                resilience=self.resilience,
                stream=stream,
                workers=workers,
                batch_size=batch_size,
                spill_dir=spill_dir,
            )
            span.meta["n_entries"] = len(self.curation.dataset)
        return self.curation.dataset

    @property
    def dataset(self) -> PyraNetDataset:
        if self.curation is None:
            raise RuntimeError("call build_dataset() first")
        return self.curation.dataset

    def erroneous_dataset(self) -> PyraNetDataset:
        """The Table IV distortion: shuffled code↔description↔ranking."""
        return shuffle_labels(self.dataset, seed=self.seed + 77)

    # -- the sharded store --------------------------------------------------

    def save_store(self, directory,
                   max_shard_bytes: int = DEFAULT_SHARD_BYTES) -> StoreManifest:
        """Persist the curated dataset as a sharded, content-addressed
        store (see :mod:`repro.store`)."""
        return write_store(
            self.dataset, directory, max_shard_bytes=max_shard_bytes,
            meta={"seed": self.seed, "source": "curation"},
            obs=self.obs,
            resilience=self.resilience,
        )

    @staticmethod
    def load_store(directory, strict: bool = True, seed: int = 0,
                   obs: Optional[Observability] = None,
                   resilience: Optional[Resilience] = None
                   ) -> SamplingService:
        """Open a store for serving; the returned service slots into
        :meth:`finetune` wherever a dataset is accepted.

        The reader gets its own :class:`ResultCache`, so multi-pass
        fine-tuning re-reads shards from memory, not disk.
        """
        reader = StoreReader(directory, strict=strict, cache=ResultCache(),
                             obs=resolve(obs), resilience=resilience)
        return SamplingService(reader, seed=seed)

    # -- models ------------------------------------------------------------

    def base_model(self, profile_name: str) -> ConditionalCodeModel:
        profile = PROFILES.get(profile_name)
        if profile is None:
            raise KeyError(
                f"unknown profile {profile_name!r}; known: "
                f"{sorted(PROFILES)}"
            )
        return ConditionalCodeModel(profile, seed=self.seed + 1)

    def finetune(
        self,
        profile_name: str,
        recipe: str = "architecture",
        dataset: Optional[LayeredSource] = None,
        epochs: int = 1,
    ) -> FineTunable:
        """Build a model and apply one of the named recipes.

        ``dataset`` may be the in-memory curation result (default) or a
        store-backed :class:`SamplingService` from :meth:`load_store`.
        """
        if recipe not in RECIPES:
            raise ValueError(
                f"unknown recipe {recipe!r}; choose from {RECIPES}"
            )
        data = dataset if dataset is not None else self.dataset
        with self.obs.span("run.finetune", profile=profile_name,
                           recipe=recipe, epochs=epochs):
            if recipe == "mevllm":
                model: FineTunable = MultiExpertModel(
                    expert_factory=lambda: self.base_model(profile_name)
                )
                finetune_mevllm(model, data, seed=self.seed + 2)
                return model
            model = self.base_model(profile_name)
            if recipe == "baseline":
                return model
            if recipe == "dataset":
                finetune_pyranet_dataset(model, data, epochs=epochs,
                                         seed=self.seed + 2, obs=self.obs)
            elif recipe == "architecture":
                finetune_pyranet_architecture(model, data, epochs=epochs,
                                              seed=self.seed + 2,
                                              obs=self.obs)
            elif recipe == "rtlcoder":
                finetune_rtlcoder(model, data, seed=self.seed + 2)
            elif recipe == "origen":
                finetune_origen(model, data, seed=self.seed + 2)
            elif recipe == "mgverilog":
                finetune_mgverilog(model, data, seed=self.seed + 2)
        return model

    def with_self_reflection(self, model: FineTunable) -> FineTunable:
        """Wrap a model with OriGen's compile-feedback repair loop."""
        return SelfReflectiveModel(model)

    # -- evaluation ------------------------------------------------------------

    def problems(self, suite: str) -> List[EvalProblem]:
        if suite == "machine":
            if self._machine_problems is None:
                self._machine_problems = build_machine_problems()
            return self._machine_problems
        if suite == "human":
            if self._human_problems is None:
                self._human_problems = build_human_problems()
            return self._human_problems
        raise ValueError(f"unknown suite {suite!r} (machine|human)")

    def evaluate(
        self,
        model: FineTunable,
        suite: str = "machine",
        n_problems: Optional[int] = None,
        model_name: Optional[str] = None,
    ) -> EvalReport:
        problems = self.problems(suite)
        if n_problems is not None:
            problems = problems[:n_problems]
        return evaluate_model(
            model, problems,
            self.eval_config(model_name=model_name),
            executor=self.executor,
            cache=self._eval_cache,
            obs=self.obs,
            resilience=self.resilience,
        )

    def eval_config(self, **overrides) -> EvalConfig:
        """This driver's evaluation parameters as one
        :class:`~repro.eval.EvalConfig` (the seed offset included)."""
        config = EvalConfig(
            n_samples=self.n_samples,
            temperature=self.temperature,
            seed=self.seed + 3,
            n_test_vectors=self.n_test_vectors,
        )
        return config.with_overrides(**overrides) if overrides else config

    def evaluate_repair(
        self,
        model: FineTunable,
        suite: str = "machine",
        repair_budget: int = 2,
        n_problems: Optional[int] = None,
        model_name: Optional[str] = None,
        repairer=None,
    ):
        """The repair-budget evaluation scenario: pass@k after up to
        ``repair_budget`` feedback-driven repair retries per failed
        sample.  Returns a
        :class:`~repro.eval.repair_eval.RepairEvalReport`."""
        from ..eval.repair_eval import evaluate_with_repair

        problems = self.problems(suite)
        if n_problems is not None:
            problems = problems[:n_problems]
        config = self.eval_config(model_name=model_name,
                                  repair_budget=repair_budget)
        return evaluate_with_repair(
            model, problems, config,
            repairer=repairer,
            executor=self.executor,
            cache=self._eval_cache,
            obs=self.obs,
            resilience=self.resilience,
        )

    # -- telemetry ----------------------------------------------------------

    def run_report(self, meta: Optional[Dict] = None) -> RunReport:
        """Everything this driver has collected — spans from curation,
        store traffic, fine-tuning and evaluation plus the metric
        registry — as one schema-versioned :class:`RunReport`."""
        merged = {"seed": self.seed, "n_samples": self.n_samples}
        if meta:
            merged.update(meta)
        return self.obs.run_report(meta=merged)

    def write_trace(self, path, indent: int = 2,
                    meta: Optional[Dict] = None) -> RunReport:
        """Write :meth:`run_report` to ``path`` as JSON; returns it."""
        from pathlib import Path

        report = self.run_report(meta=meta)
        Path(path).write_text(report.to_json(indent=indent))
        return report


# ---------------------------------------------------------------------------
# Experiment runners (one per table)
# ---------------------------------------------------------------------------


@dataclass
class TableOneRow:
    """One Table I row: a model/recipe over both suites."""

    label: str
    machine: Dict[str, float]
    human: Dict[str, float]

    def cells(self) -> List[float]:
        return [
            self.machine["pass@1"], self.machine["pass@5"],
            self.machine["pass@10"],
            self.human["pass@1"], self.human["pass@5"],
            self.human["pass@10"],
        ]


def run_table1(
    pyranet: PyraNet,
    profile_names: Sequence[str] = (
        CODELLAMA_7B.name, CODELLAMA_13B.name, DEEPSEEK_7B.name
    ),
    recipes: Sequence[str] = ("baseline", "dataset", "architecture"),
    sota_recipes: Sequence[Tuple[str, str]] = (
        ("mgverilog", CODELLAMA_7B.name),
        ("rtlcoder", DEEPSEEK_7B.name),
        ("origen", DEEPSEEK_7B.name),
    ),
    n_problems: Optional[int] = None,
) -> List[TableOneRow]:
    """Reproduce Table I: SOTA recipes + the 3×3 model/recipe grid."""
    rows: List[TableOneRow] = []
    for recipe, profile in sota_recipes:
        model = pyranet.finetune(profile, recipe=recipe)
        label = f"{recipe}-{profile}"
        rows.append(_evaluate_both(pyranet, model, label, n_problems))
    for profile in profile_names:
        for recipe in recipes:
            model = pyranet.finetune(profile, recipe=recipe)
            label = f"{profile} {recipe}"
            rows.append(_evaluate_both(pyranet, model, label, n_problems))
    return rows


def _evaluate_both(
    pyranet: PyraNet,
    model: FineTunable,
    label: str,
    n_problems: Optional[int],
) -> TableOneRow:
    machine = pyranet.evaluate(model, "machine", n_problems, label)
    human = pyranet.evaluate(model, "human", n_problems, label)
    return TableOneRow(
        label=label,
        machine=machine.summary((1, 5, 10)),
        human=human.summary((1, 5, 10)),
    )


def run_table4(
    pyranet: PyraNet,
    profile_name: str = CODELLAMA_7B.name,
    n_problems: Optional[int] = None,
) -> Dict[str, TableOneRow]:
    """Reproduce Table IV: correct vs erroneous (shuffled) dataset."""
    erroneous = pyranet.erroneous_dataset()
    model_bad = pyranet.finetune(profile_name, recipe="dataset",
                                 dataset=erroneous)
    row_bad = _evaluate_both(
        pyranet, model_bad, f"{profile_name} erroneous", n_problems
    )
    model_good = pyranet.finetune(profile_name, recipe="dataset")
    row_good = _evaluate_both(
        pyranet, model_good, f"{profile_name} correct", n_problems
    )
    return {"erroneous": row_bad, "correct": row_good}


def gains(row: TableOneRow, reference: TableOneRow) -> List[float]:
    """Per-column deltas (Table III derivation)."""
    return [round(a - b, 1) for a, b in zip(row.cells(),
                                            reference.cells())]
