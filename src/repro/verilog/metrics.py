"""Structural metrics over parsed Verilog.

These metrics feed two parts of the PyraNet pipeline:

* the **complexity labeler** (Basic / Intermediate / Advanced / Expert,
  following MEV-LLM's categorisation) uses structural richness;
* the **ranking judge** uses style- and efficiency-related counts.

All counters are derived from the AST, so they are insensitive to
formatting except where formatting is the point (line counts).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional, Sequence, Union

from . import ast_nodes as ast
from .parser import ParseError, parse


@dataclass
class StructuralMetrics:
    """Counts describing one module (or a whole source file)."""

    lines: int = 0
    modules: int = 0
    ports: int = 0
    parameters: int = 0
    nets: int = 0
    regs: int = 0
    memories: int = 0
    continuous_assigns: int = 0
    always_blocks: int = 0
    sequential_always: int = 0
    combinational_always: int = 0
    initial_blocks: int = 0
    instances: int = 0
    gate_instances: int = 0
    functions: int = 0
    tasks: int = 0
    generate_blocks: int = 0
    case_statements: int = 0
    if_statements: int = 0
    loops: int = 0
    nonblocking_assigns: int = 0
    blocking_assigns: int = 0
    ternaries: int = 0
    max_statement_depth: int = 0
    expression_nodes: int = 0
    max_port_width: int = 0
    has_fsm: bool = False
    has_memory: bool = False
    has_hierarchy: bool = False
    has_generate: bool = False
    has_signed_arith: bool = False

    def merge(self, other: "StructuralMetrics") -> "StructuralMetrics":
        """Aggregate metrics across modules of one file."""
        merged = StructuralMetrics()
        for f in fields(StructuralMetrics):
            a = getattr(self, f.name)
            b = getattr(other, f.name)
            if isinstance(a, bool):
                setattr(merged, f.name, a or b)
            elif f.name.startswith("max_"):
                setattr(merged, f.name, max(a, b))
            else:
                setattr(merged, f.name, a + b)
        return merged

    @property
    def total_statements(self) -> int:
        return (self.blocking_assigns + self.nonblocking_assigns
                + self.case_statements + self.if_statements + self.loops)

    @property
    def is_sequential(self) -> bool:
        return self.sequential_always > 0


class _Walker:
    """Single-module metrics accumulator."""

    def __init__(self) -> None:
        self.m = StructuralMetrics(modules=1)
        self._seq_case_subjects: List[str] = []
        self._seq_assigned: List[str] = []

    def walk_module(self, module: ast.Module) -> StructuralMetrics:
        self.m.ports = len(module.ports)
        self.m.parameters = len(module.parameters)
        for port in module.ports:
            width = _static_range_width(port.range)
            self.m.max_port_width = max(self.m.max_port_width, width)
        for item in module.items:
            self._walk_item(item)
        # FSM heuristic: a case in (or fed by) sequential logic over a
        # register that sequential logic also assigns.
        if self._seq_case_subjects:
            assigned = set(self._seq_assigned)
            self.m.has_fsm = any(
                subj in assigned for subj in self._seq_case_subjects
            )
        return self.m

    # -- items -----------------------------------------------------------------

    def _walk_item(self, item: ast.ModuleItem) -> None:
        m = self.m
        if isinstance(item, ast.Decl):
            if item.array_dims:
                m.memories += 1
                m.has_memory = True
            elif item.kind in ("reg", "integer", "time"):
                m.regs += 1
            else:
                m.nets += 1
            if item.signed:
                m.has_signed_arith = True
            if item.init is not None:
                self._walk_expr(item.init)
            return
        if isinstance(item, ast.Port):
            return
        if isinstance(item, ast.Parameter):
            self._walk_expr(item.value)
            return
        if isinstance(item, ast.ContinuousAssign):
            m.continuous_assigns += 1
            self._walk_expr(item.value)
            return
        if isinstance(item, ast.Always):
            m.always_blocks += 1
            sequential = False
            if item.sensitivity is not None and not item.sensitivity.star:
                sequential = any(
                    s.edge != "level" for s in item.sensitivity.items
                )
            if sequential:
                m.sequential_always += 1
            else:
                m.combinational_always += 1
            self._walk_stmt(item.body, 1, in_sequential=sequential)
            return
        if isinstance(item, ast.Initial):
            m.initial_blocks += 1
            self._walk_stmt(item.body, 1, in_sequential=False)
            return
        if isinstance(item, ast.Instance):
            m.instances += 1
            m.has_hierarchy = True
            for conn in item.connections:
                if conn.expr is not None:
                    self._walk_expr(conn.expr)
            return
        if isinstance(item, ast.GateInstance):
            m.gate_instances += 1
            return
        if isinstance(item, ast.FunctionDecl):
            m.functions += 1
            self._walk_stmt(item.body, 1, in_sequential=False)
            return
        if isinstance(item, ast.TaskDecl):
            m.tasks += 1
            self._walk_stmt(item.body, 1, in_sequential=False)
            return
        if isinstance(item, ast.GenerateFor):
            m.generate_blocks += 1
            m.has_generate = True
            for sub in item.items:
                self._walk_item(sub)
            return
        if isinstance(item, ast.GenerateIf):
            m.generate_blocks += 1
            m.has_generate = True
            for sub in item.then_items + item.else_items:
                self._walk_item(sub)
            return

    # -- statements ------------------------------------------------------------

    def _walk_stmt(
        self, stmt: Optional[ast.Stmt], depth: int, in_sequential: bool
    ) -> None:
        if stmt is None:
            return
        m = self.m
        m.max_statement_depth = max(m.max_statement_depth, depth)
        if isinstance(stmt, ast.Block):
            for inner in stmt.stmts:
                self._walk_stmt(inner, depth + 1, in_sequential)
            return
        if isinstance(stmt, ast.Assign):
            if stmt.blocking:
                m.blocking_assigns += 1
            else:
                m.nonblocking_assigns += 1
            if in_sequential:
                name = _target_base_name(stmt.target)
                if name:
                    self._seq_assigned.append(name)
            self._walk_expr(stmt.value)
            return
        if isinstance(stmt, ast.If):
            m.if_statements += 1
            self._walk_expr(stmt.cond)
            self._walk_stmt(stmt.then_stmt, depth + 1, in_sequential)
            self._walk_stmt(stmt.else_stmt, depth + 1, in_sequential)
            return
        if isinstance(stmt, ast.Case):
            m.case_statements += 1
            self._walk_expr(stmt.subject)
            if isinstance(stmt.subject, ast.Identifier):
                self._seq_case_subjects.append(stmt.subject.name)
            for item in stmt.items:
                self._walk_stmt(item.body, depth + 1, in_sequential)
            return
        if isinstance(stmt, (ast.For, ast.While, ast.Repeat, ast.Forever)):
            m.loops += 1
            body = stmt.body
            self._walk_stmt(body, depth + 1, in_sequential)
            return
        if isinstance(stmt, (ast.Delay, ast.EventControl, ast.Wait)):
            self._walk_stmt(stmt.stmt, depth, in_sequential)
            return

    # -- expressions -----------------------------------------------------------

    def _walk_expr(self, expr: Optional[ast.Expr]) -> None:
        if expr is None:
            return
        self.m.expression_nodes += 1
        if isinstance(expr, ast.Ternary):
            self.m.ternaries += 1
            self._walk_expr(expr.cond)
            self._walk_expr(expr.if_true)
            self._walk_expr(expr.if_false)
        elif isinstance(expr, ast.Binary):
            self._walk_expr(expr.left)
            self._walk_expr(expr.right)
        elif isinstance(expr, ast.Unary):
            self._walk_expr(expr.operand)
        elif isinstance(expr, ast.Select):
            self._walk_expr(expr.base)
            self._walk_expr(expr.left)
            self._walk_expr(expr.right)
        elif isinstance(expr, ast.Concat):
            for part in expr.parts:
                self._walk_expr(part)
        elif isinstance(expr, ast.Replicate):
            self._walk_expr(expr.count)
            self._walk_expr(expr.value)
        elif isinstance(expr, (ast.FunctionCall, ast.SystemCall)):
            for arg in expr.args:
                self._walk_expr(arg)


def _static_range_width(rng: Optional[ast.Range]) -> int:
    """Width of a range when both bounds are plain literals, else 1."""
    if rng is None:
        return 1
    if isinstance(rng.msb, ast.Number) and isinstance(rng.lsb, ast.Number):
        return abs(rng.msb.value - rng.lsb.value) + 1
    return 1


def _target_base_name(expr: ast.Expr) -> Optional[str]:
    if isinstance(expr, ast.Identifier):
        return expr.name
    if isinstance(expr, ast.Select):
        return _target_base_name(expr.base)
    return None


def measure_module(module: ast.Module) -> StructuralMetrics:
    """Metrics for one parsed module."""
    return _Walker().walk_module(module)


def measure(source: Union[str, ast.SourceFile, ast.Module]) -> StructuralMetrics:
    """Metrics for source text, a parsed file, or one module.

    Raises :class:`~repro.verilog.parser.ParseError` for invalid text.
    """
    if isinstance(source, ast.Module):
        return measure_module(source)
    if isinstance(source, str):
        lines = sum(1 for line in source.splitlines() if line.strip())
        tree = parse(source)
        total = StructuralMetrics()
        for module in tree.modules:
            total = total.merge(measure_module(module))
        total.lines = lines
        return total
    total = StructuralMetrics()
    for module in source.modules:
        total = total.merge(measure_module(module))
    return total
