"""Symbolic (BDD) execution of the elaborated two-valued subset.

This module compiles an elaborated :class:`~repro.verilog.sim.design.
Design` into per-bit BDD functions by *mirroring the simulator*: the
expression walk follows ``sim/eval.py`` rule for rule (context-width
widening, operand signedness, self-determined operands), the statement
walk follows ``sim/interp.py``, and continuous assigns follow the
kernel's ``_run_comb``.  Every width or constant decision is delegated
to the real :class:`~repro.verilog.sim.eval.Evaluator` over a store
view of the symbolic environment, so constant sub-expressions
(parameters, loop indices, ``$clog2``, user functions of constants)
fold to exactly the value the simulator would compute.

The modelled subset is two-valued and synchronous: anything whose
simulator semantics involve x/z data, timing, randomness, memories, or
scheduling races raises :class:`FormalUnsupported` with a human-readable
reason.  The checker turns that into an ``unsupported`` verdict — the
engine never guesses, so a ``verified``/``equivalent`` answer is exact.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from .. import ast_nodes as ast
from ..sim.design import (
    CombProcess,
    ConstBinding,
    Design,
    EdgeProcess,
    FuncBinding,
    InitialProcess,
    Scope,
    Signal,
    SignalBinding,
    TimedAlwaysProcess,
)
from ..sim.eval import EvalError, Evaluator
from ..sim.interp import (
    SimulationError,
    WriteOp,
    resolve_lvalue,
    run_function,
)
from ..sim.values import Vec4
from .bdd import FALSE, TRUE, BDDBudgetError, BDDManager

#: Concrete-loop unroll cap; far above anything in the corpus subset,
#: far below the simulator's MAX_LOOP_ITERATIONS so formal checks stay
#: cheap enough for curation.
MAX_UNROLL = 10_000


class FormalUnsupported(Exception):
    """The design (or this construct) is outside the modelled subset.

    ``reason`` is a short stable phrase used in reports, so keep the
    wording deterministic — no addresses, no volatile state.
    """

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


class SymVec:
    """A symbolic bit-vector: BDD node per bit, LSB-first.

    The two-valued analogue of :class:`Vec4` — same width/signedness
    conventions, minus the x/z planes.
    """

    __slots__ = ("mgr", "width", "bits", "signed")

    def __init__(self, mgr: BDDManager, width: int, bits: List[int],
                 signed: bool = False) -> None:
        assert len(bits) == width
        self.mgr = mgr
        self.width = width
        self.bits = bits
        self.signed = signed

    # -- constructors ---------------------------------------------------

    @classmethod
    def from_int(cls, mgr: BDDManager, value: int, width: int,
                 signed: bool = False) -> "SymVec":
        bits = [TRUE if (value >> i) & 1 else FALSE for i in range(width)]
        return cls(mgr, width, bits, signed)

    @classmethod
    def from_vec4(cls, mgr: BDDManager, value: Vec4) -> "SymVec":
        if value.xz:
            raise FormalUnsupported("x/z value in expression")
        return cls.from_int(mgr, value.val, value.width, value.signed)

    # -- conversions ----------------------------------------------------

    def const_int(self) -> Optional[int]:
        """The unsigned integer value when every bit is a terminal."""
        acc = 0
        for i, bit in enumerate(self.bits):
            if bit == TRUE:
                acc |= 1 << i
            elif bit != FALSE:
                return None
        return acc

    def const_signed(self) -> Optional[int]:
        raw = self.const_int()
        if raw is None:
            return None
        if self.signed and raw & (1 << (self.width - 1)):
            return raw - (1 << self.width)
        return raw

    def to_vec4(self) -> Vec4:
        value = self.const_int()
        if value is None:
            raise EvalError("symbolic value in constant context")
        return Vec4.from_int(value, self.width, self.signed)

    # -- structure (mirrors Vec4) ---------------------------------------

    def resize(self, width: int, signed: Optional[bool] = None) -> "SymVec":
        use_signed = self.signed if signed is None else signed
        if width <= self.width:
            return SymVec(self.mgr, width, self.bits[:width], use_signed)
        ext = self.bits[-1] if use_signed else FALSE
        return SymVec(self.mgr, width,
                      self.bits + [ext] * (width - self.width), use_signed)

    def as_signed(self, signed: bool = True) -> "SymVec":
        return SymVec(self.mgr, self.width, self.bits, signed)

    def slice(self, hi: int, lo: int) -> "SymVec":
        """Out-of-range bits would be x in the simulator — reject."""
        if lo < 0 or hi >= self.width:
            raise FormalUnsupported("out-of-range bit or part select")
        return SymVec(self.mgr, hi - lo + 1, self.bits[lo:hi + 1])

    def truthy(self) -> int:
        """BDD node for "any bit set" (Verilog truthiness, two-valued)."""
        return self.mgr.or_all(self.bits)


class _SymStoreView:
    """Store adapter exposing *currently constant* symbolic signals.

    Plugged under the real :class:`Evaluator` so any sub-expression
    whose signal reads all fold to constants is evaluated with exact
    simulator semantics (widths, signedness, div/mod, ``$clog2``, user
    functions).  Reads of genuinely symbolic signals raise
    :class:`EvalError`, handing evaluation back to the symbolic walk.
    """

    def __init__(self, context: "SymbolicContext") -> None:
        self._context = context

    @property
    def signals(self) -> Dict[str, Signal]:
        return self._context.design.signals

    def read(self, signal: Signal) -> Vec4:
        value = self._context.try_const_read(signal)
        if value is None:
            raise EvalError(f"symbolic signal {signal.name!r}")
        return value

    def read_mem(self, signal: Signal, index: int) -> Vec4:
        raise EvalError(f"memory {signal.name!r} in formal context")

    def now(self) -> int:
        raise EvalError("$time in formal context")

    def random(self) -> int:
        raise EvalError("$random in formal context")


class SymbolicContext:
    """Symbolic machine state for one design: env, undef guards, NBAs.

    ``env`` maps flat signal name → LSB-first BDD bits; ``undef`` maps
    the same names to per-bit *guard* nodes — the condition under which
    that bit has never been assigned.  A read is legal only where
    ``path AND undef`` is unsatisfiable, which is exactly "no reachable
    execution observes an unassigned (x) bit".
    """

    def __init__(self, design: Design, mgr: BDDManager) -> None:
        self.design = design
        self.mgr = mgr
        self.env: Dict[str, List[int]] = {}
        self.undef: Dict[str, List[int]] = {}
        #: Pending non-blocking writes: name -> (guards, values), LSB-first.
        self.nba: Dict[str, Tuple[List[int], List[int]]] = {}
        #: Current path condition for branch-sensitive undef checks.
        self.path: int = TRUE
        self._store_view = _SymStoreView(self)
        self.consts = Evaluator(self._store_view, self._call_const_function)
        self._local_signals: Dict[str, Signal] = {}

    def _call_const_function(self, binding: FuncBinding,
                             args: List[Vec4]) -> Vec4:
        return run_function(binding, args, self._store_view)

    # -- environment ----------------------------------------------------

    def init_signal(self, signal: Signal, bits: Optional[List[int]] = None,
                    defined: bool = False) -> None:
        width = signal.width
        self.env[signal.name] = list(bits) if bits is not None \
            else [FALSE] * width
        self.undef[signal.name] = [FALSE if defined else TRUE] * width

    def try_const_read(self, signal: Signal) -> Optional[Vec4]:
        bits = self.env.get(signal.name)
        if bits is None or signal.is_memory:
            return None
        guards = self.undef[signal.name]
        acc = 0
        for i, bit in enumerate(bits):
            if guards[i] != FALSE:
                return None
            if bit == TRUE:
                acc |= 1 << i
            elif bit != FALSE:
                return None
        return Vec4.from_int(acc, signal.width, signal.signed)

    def read_signal(self, signal: Signal, lo: int = 0,
                    hi: Optional[int] = None) -> SymVec:
        """Read ``signal`` (or bit range) checking reachable-undef."""
        if signal.is_memory:
            raise FormalUnsupported(f"memory {signal.name!r}")
        bits = self.env.get(signal.name)
        if bits is None:
            raise FormalUnsupported(f"unmodeled signal {signal.name!r}")
        guards = self.undef[signal.name]
        top = signal.width - 1 if hi is None else min(hi, signal.width - 1)
        for i in range(max(lo, 0), top + 1):
            if self.mgr.and_(self.path, guards[i]) != FALSE:
                raise FormalUnsupported(
                    f"read of undefined (x) value {signal.name!r}")
        return SymVec(self.mgr, signal.width, list(bits), signal.signed)

    def write_bits(self, signal: Signal, lo: int, piece: SymVec) -> None:
        """Blocking write of ``piece`` into ``signal[lo + w - 1 : lo]``."""
        bits = list(self.env[signal.name])
        guards = list(self.undef[signal.name])
        for i, bit in enumerate(piece.bits):
            pos = lo + i
            if 0 <= pos < signal.width:
                bits[pos] = bit
                guards[pos] = FALSE
        self.env[signal.name] = bits
        self.undef[signal.name] = guards

    def write_bits_nba(self, signal: Signal, lo: int, piece: SymVec) -> None:
        entry = self.nba.get(signal.name)
        if entry is None:
            entry = ([FALSE] * signal.width, [FALSE] * signal.width)
        guards, values = list(entry[0]), list(entry[1])
        for i, bit in enumerate(piece.bits):
            pos = lo + i
            if 0 <= pos < signal.width:
                guards[pos] = self.path
                values[pos] = bit
        self.nba[signal.name] = (guards, values)

    def apply_nba(self) -> None:
        """Fold pending non-blocking writes into the environment."""
        mgr = self.mgr
        for name, (guards, values) in self.nba.items():
            bits = list(self.env[name])
            undef = list(self.undef[name])
            for i in range(len(bits)):
                if guards[i] == FALSE:
                    continue
                bits[i] = mgr.ite(guards[i], values[i], bits[i])
                undef[i] = mgr.ite(guards[i], FALSE, undef[i])
            self.env[name] = bits
            self.undef[name] = undef
        self.nba = {}

    # -- branch merging -------------------------------------------------

    def snapshot(self) -> Tuple[Dict[str, List[int]], Dict[str, List[int]],
                                Dict[str, Tuple[List[int], List[int]]], int]:
        return dict(self.env), dict(self.undef), dict(self.nba), self.path

    def restore(self, state) -> None:
        self.env, self.undef, self.nba, self.path = (
            dict(state[0]), dict(state[1]), dict(state[2]), state[3])

    def merge(self, cond: int, then_state, else_state) -> None:
        """``self`` becomes ite(cond, then_state, else_state)."""
        mgr = self.mgr
        then_env, then_undef, then_nba, _ = then_state
        else_env, else_undef, else_nba, _ = else_state

        def merge_lists(a: List[int], b: List[int]) -> List[int]:
            if a is b or a == b:
                return a
            return [mgr.ite(cond, x, y) for x, y in zip(a, b)]

        env: Dict[str, List[int]] = {}
        for name in then_env:
            if name in else_env:
                env[name] = merge_lists(then_env[name], else_env[name])
        undef: Dict[str, List[int]] = {}
        for name in then_undef:
            if name in else_undef:
                undef[name] = merge_lists(then_undef[name], else_undef[name])
        nba: Dict[str, Tuple[List[int], List[int]]] = {}
        for name in set(then_nba) | set(else_nba):
            width = len(self.env.get(name, then_nba.get(
                name, else_nba.get(name))[0]))
            empty = ([FALSE] * width, [FALSE] * width)
            g_t, v_t = then_nba.get(name, empty)
            g_e, v_e = else_nba.get(name, empty)
            guards = [mgr.ite(cond, a, b) for a, b in zip(g_t, g_e)]
            values = [mgr.ite(cond, a, b) for a, b in zip(v_t, v_e)]
            nba[name] = (guards, values)
        self.env, self.undef, self.nba = env, undef, nba

    # =====================================================================
    # Expression evaluation (mirrors sim/eval.py)
    # =====================================================================

    def eval_sym(self, expr: ast.Expr, scope: Scope,
                 ctx_width: Optional[int] = None,
                 ctx_signed: Optional[bool] = None) -> SymVec:
        self._reject_impure(expr)
        try:
            value = self.consts.eval(expr, scope, ctx_width, ctx_signed)
        except EvalError:
            return self._sym_inner(expr, scope, ctx_width, ctx_signed)
        except SimulationError as exc:
            raise FormalUnsupported(f"constant evaluation failed: {exc}")
        return SymVec.from_vec4(self.mgr, value)

    @staticmethod
    def _reject_impure(expr: ast.Expr) -> None:
        """$random/$time would fold to arbitrary constants — refuse."""
        if isinstance(expr, ast.SystemCall) and expr.name in (
                "$random", "$time", "$stime", "$realtime"):
            raise FormalUnsupported(f"{expr.name} in formal context")

    def width_of(self, expr: ast.Expr, scope: Scope) -> Tuple[int, bool]:
        try:
            return self.consts.width_of(expr, scope)
        except EvalError as exc:
            raise FormalUnsupported(f"cannot size expression: {exc}")

    def _ctx(self, expr: ast.Expr, scope: Scope,
             ctx_width: Optional[int]) -> int:
        width, _ = self.width_of(expr, scope)
        return width if ctx_width is None else max(width, ctx_width)

    def _sym_inner(self, expr: ast.Expr, scope: Scope,
                   ctx_width: Optional[int],
                   ctx_signed: Optional[bool]) -> SymVec:
        if isinstance(expr, ast.Number):
            if expr.xz_mask:
                raise FormalUnsupported("x/z literal in expression")
            width = expr.width if expr.width is not None else 32
            value = SymVec.from_int(
                self.mgr, expr.value, width,
                expr.signed or (expr.width is None))
            if ctx_width is not None and ctx_width > width:
                value = value.resize(ctx_width)
            return value
        if isinstance(expr, ast.Identifier):
            return self._sym_identifier(expr, scope, ctx_width)
        if isinstance(expr, ast.HierarchicalId):
            raise FormalUnsupported("hierarchical reference")
        if isinstance(expr, ast.Select):
            return self._sym_select(expr, scope)
        if isinstance(expr, ast.Concat):
            parts = [self.eval_sym(p, scope) for p in expr.parts]
            bits: List[int] = []
            for part in reversed(parts):
                bits.extend(part.bits)
            return SymVec(self.mgr, len(bits), bits)
        if isinstance(expr, ast.Replicate):
            count = self._const_int(expr.count, scope,
                                    "replication count")
            if count <= 0:
                raise FormalUnsupported("non-positive replication count")
            value = self.eval_sym(expr.value, scope)
            return SymVec(self.mgr, value.width * count, value.bits * count)
        if isinstance(expr, ast.Unary):
            return self._sym_unary(expr, scope, ctx_width)
        if isinstance(expr, ast.Binary):
            return self._sym_binary(expr, scope, ctx_width)
        if isinstance(expr, ast.Ternary):
            return self._sym_ternary(expr, scope, ctx_width, ctx_signed)
        if isinstance(expr, ast.FunctionCall):
            raise FormalUnsupported(
                f"user function {expr.name!r} of non-constant arguments")
        if isinstance(expr, ast.SystemCall):
            return self._sym_system_call(expr, scope)
        raise FormalUnsupported(
            f"unsupported expression {type(expr).__name__}")

    def _const_int(self, expr: ast.Expr, scope: Scope, what: str) -> int:
        try:
            return self.consts.eval_const_int(expr, scope)
        except (EvalError, SimulationError):
            raise FormalUnsupported(f"symbolic {what}")

    def _sym_identifier(self, expr: ast.Identifier, scope: Scope,
                        ctx_width: Optional[int]) -> SymVec:
        binding = scope.lookup(expr.name)
        if binding is None:
            raise FormalUnsupported(f"unknown identifier {expr.name!r}")
        if isinstance(binding, ConstBinding):
            value = SymVec.from_vec4(self.mgr, binding.value)
        elif isinstance(binding, SignalBinding):
            value = self.read_signal(binding.signal)
        else:
            raise FormalUnsupported(f"{expr.name!r} is not a value")
        if ctx_width is not None and ctx_width > value.width:
            value = value.resize(ctx_width)
        return value

    def _sym_select(self, expr: ast.Select, scope: Scope) -> SymVec:
        base_signal = self._signal_of(expr.base, scope)
        if base_signal is not None and base_signal.is_memory:
            raise FormalUnsupported(f"memory {base_signal.name!r}")
        if expr.kind == "bit":
            index = self.eval_sym(expr.left, scope)
            index_i = (index.const_signed() if index.signed
                       else index.const_int())
            if index_i is None:
                raise FormalUnsupported("symbolic bit-select index")
            pos = self._to_position(base_signal, index_i)
            base = self._read_base(expr.base, base_signal, scope, pos, pos)
            return base.slice(pos, pos)
        if expr.kind == "part":
            msb_i = self._const_int(expr.left, scope, "part-select bound")
            lsb_i = self._const_int(expr.right, scope, "part-select bound")
            hi = self._to_position(base_signal, msb_i)
            lo = self._to_position(base_signal, lsb_i)
            if hi < lo:
                hi, lo = lo, hi
            base = self._read_base(expr.base, base_signal, scope, lo, hi)
            return base.slice(hi, lo)
        width = self._const_int(expr.right, scope, "indexed-part width")
        start = self.eval_sym(expr.left, scope)
        start_i = start.const_int()
        if start_i is None:
            raise FormalUnsupported("symbolic indexed part-select base")
        ascending = base_signal is not None and \
            base_signal.msb < base_signal.lsb
        if expr.kind == "plus":
            lo_idx, hi_idx = start_i, start_i + width - 1
            if ascending:
                lo_idx, hi_idx = start_i + width - 1, start_i
        else:
            lo_idx, hi_idx = start_i - width + 1, start_i
            if ascending:
                lo_idx, hi_idx = start_i, start_i - width + 1
        hi = self._to_position(base_signal, hi_idx)
        lo = self._to_position(base_signal, lo_idx)
        if hi < lo:
            hi, lo = lo, hi
        base = self._read_base(expr.base, base_signal, scope, lo, hi)
        return base.slice(hi, lo)

    def _read_base(self, base_expr: ast.Expr, base_signal: Optional[Signal],
                   scope: Scope, lo: int, hi: int) -> SymVec:
        """Read the select base, checking undef only on the used range
        when the base is a plain signal reference."""
        if base_signal is not None and isinstance(base_expr, ast.Identifier):
            return self.read_signal(base_signal, lo, hi)
        return self.eval_sym(base_expr, scope)

    @staticmethod
    def _signal_of(expr: ast.Expr, scope: Scope) -> Optional[Signal]:
        if isinstance(expr, ast.Identifier):
            binding = scope.lookup(expr.name)
            if isinstance(binding, SignalBinding):
                return binding.signal
        return None

    @staticmethod
    def _to_position(signal: Optional[Signal], index: int) -> int:
        if signal is None:
            return index
        return signal.bit_position(index)

    def _sym_unary(self, expr: ast.Unary, scope: Scope,
                   ctx_width: Optional[int]) -> SymVec:
        mgr = self.mgr
        op = expr.op
        if op == "!":
            operand = self.eval_sym(expr.operand, scope)
            return SymVec(mgr, 1, [mgr.not_(operand.truthy())])
        if op in ("&", "~&", "|", "~|", "^", "~^", "^~"):
            operand = self.eval_sym(expr.operand, scope)
            if op in ("&", "~&"):
                node = mgr.and_all(operand.bits)
            elif op in ("|", "~|"):
                node = mgr.or_all(operand.bits)
            else:
                node = FALSE
                for bit in operand.bits:
                    node = mgr.xor_(node, bit)
            if op in ("~&", "~|", "~^", "^~"):
                node = mgr.not_(node)
            return SymVec(mgr, 1, [node])
        operand = self.eval_sym(expr.operand, scope, ctx_width)
        if ctx_width is not None and ctx_width > operand.width:
            operand = operand.resize(ctx_width)
        if op == "~":
            return SymVec(mgr, operand.width,
                          [mgr.not_(b) for b in operand.bits],
                          operand.signed)
        if op == "-":
            return self._negate(operand)
        if op == "+":
            return operand
        raise FormalUnsupported(f"unsupported unary operator {op!r}")

    def _negate(self, operand: SymVec) -> SymVec:
        inverted = [self.mgr.not_(b) for b in operand.bits]
        result = self._ripple_add(
            SymVec(self.mgr, operand.width, inverted),
            SymVec.from_int(self.mgr, 0, operand.width), carry=TRUE)
        return SymVec(self.mgr, operand.width, result.bits, operand.signed)

    def _ripple_add(self, a: SymVec, b: SymVec, carry: int = FALSE) -> SymVec:
        mgr = self.mgr
        assert a.width == b.width
        bits: List[int] = []
        for x, y in zip(a.bits, b.bits):
            partial = mgr.xor_(x, y)
            bits.append(mgr.xor_(partial, carry))
            carry = mgr.or_(mgr.and_(x, y), mgr.and_(carry, partial))
        return SymVec(mgr, a.width, bits, a.signed and b.signed)

    def _sym_binary(self, expr: ast.Binary, scope: Scope,
                    ctx_width: Optional[int]) -> SymVec:
        mgr = self.mgr
        op = expr.op
        if op in ("&&", "||"):
            left = self.eval_sym(expr.left, scope)
            # Short-circuit when decidable (mirrors the evaluator).
            lt = left.truthy()
            if op == "&&" and lt == FALSE:
                return SymVec.from_int(mgr, 0, 1)
            if op == "||" and lt == TRUE:
                return SymVec.from_int(mgr, 1, 1)
            right = self.eval_sym(expr.right, scope)
            rt = right.truthy()
            node = mgr.and_(lt, rt) if op == "&&" else mgr.or_(lt, rt)
            return SymVec(mgr, 1, [node])
        if op in ("==", "!=", "===", "!==", "<", "<=", ">", ">="):
            lw, ls = self.width_of(expr.left, scope)
            rw, rs = self.width_of(expr.right, scope)
            width = max(lw, rw)
            left = self.eval_sym(expr.left, scope, width)
            right = self.eval_sym(expr.right, scope, width)
            signed = ls and rs
            left = left.resize(width, left.signed and signed)
            right = right.resize(width, right.signed and signed)
            # Two-valued === is ==, !== is !=.
            if op in ("==", "==="):
                return SymVec(mgr, 1, [self._bits_eq(left, right)])
            if op in ("!=", "!=="):
                return SymVec(mgr, 1, [mgr.not_(self._bits_eq(left, right))])
            cmp_signed = left.signed and right.signed
            lt_node = self._less_than(left, right, cmp_signed)
            gt_node = self._less_than(right, left, cmp_signed)
            node = {"<": lt_node, ">": gt_node,
                    "<=": mgr.not_(gt_node),
                    ">=": mgr.not_(lt_node)}[op]
            return SymVec(mgr, 1, [node])
        if op in ("<<", ">>", "<<<", ">>>"):
            width = self._ctx(expr.left, scope, ctx_width)
            left = self.eval_sym(expr.left, scope, width)
            left = left.resize(width, left.signed)
            amount = self.eval_sym(expr.right, scope)
            if op in ("<<", "<<<"):
                return self._shift(left, amount, "left")
            if op == ">>>":
                if not left.signed:
                    return self._shift(left, amount, "right")
                return self._shift(left, amount, "arith")
            return self._shift(left, amount, "right")
        if op == "**":
            raise FormalUnsupported("power with non-constant operands")
        width = self._ctx(expr, scope, ctx_width)
        left = self.eval_sym(expr.left, scope, width)
        right = self.eval_sym(expr.right, scope, width)
        signed = left.signed and right.signed
        left = left.resize(width, left.signed)
        right = right.resize(width, right.signed)
        if not signed:
            left = left.as_signed(False)
            right = right.as_signed(False)
        if op == "+":
            return self._ripple_add(left, right)
        if op == "-":
            inverted = SymVec(mgr, width, [mgr.not_(b) for b in right.bits],
                              right.signed)
            result = self._ripple_add(left, inverted, carry=TRUE)
            return SymVec(mgr, width, result.bits, signed)
        if op == "*":
            return self._multiply(left, right, signed)
        if op in ("/", "%"):
            raise FormalUnsupported(
                f"{op!r} with non-constant operands")
        pairwise = {"&": mgr.and_, "|": mgr.or_, "^": mgr.xor_,
                    "~^": mgr.xnor_, "^~": mgr.xnor_}.get(op)
        if pairwise is None:
            raise FormalUnsupported(f"unsupported binary operator {op!r}")
        bits = [pairwise(a, b) for a, b in zip(left.bits, right.bits)]
        return SymVec(mgr, width, bits, signed)

    def _bits_eq(self, a: SymVec, b: SymVec) -> int:
        mgr = self.mgr
        return mgr.and_all(mgr.xnor_(x, y)
                           for x, y in zip(a.bits, b.bits))

    def _less_than(self, a: SymVec, b: SymVec, signed: bool) -> int:
        """a < b on equal widths; signed compare flips the sign bits."""
        mgr = self.mgr
        a_bits, b_bits = list(a.bits), list(b.bits)
        if signed and a.width:
            a_bits[-1] = mgr.not_(a_bits[-1])
            b_bits[-1] = mgr.not_(b_bits[-1])
        lt = FALSE
        equal = TRUE
        for x, y in zip(reversed(a_bits), reversed(b_bits)):
            lt = mgr.or_(lt, mgr.and_all((equal, mgr.not_(x), y)))
            equal = mgr.and_(equal, mgr.xnor_(x, y))
        return lt

    def _multiply(self, a: SymVec, b: SymVec, signed: bool) -> SymVec:
        """Shift-and-add at the operand width (wrapping, like from_int)."""
        mgr = self.mgr
        width = a.width
        acc = SymVec.from_int(mgr, 0, width)
        for i, b_bit in enumerate(b.bits):
            if b_bit == FALSE:
                continue
            shifted = [FALSE] * i + a.bits[:width - i]
            addend = SymVec(mgr, width,
                            [mgr.and_(bit, b_bit) for bit in shifted])
            acc = self._ripple_add(acc, addend)
        return SymVec(mgr, width, acc.bits, signed)

    def _shift(self, value: SymVec, amount: SymVec, kind: str) -> SymVec:
        """Mirror Vec4.shl/shr/ashr: amounts >= width give zeros (or a
        full sign fill for arithmetic right shift)."""
        mgr = self.mgr
        amount_i = amount.const_int()
        width = value.width
        sign = value.bits[-1] if width else FALSE
        if amount_i is not None:
            if kind == "arith":
                n = min(amount_i, width)
                bits = value.bits[n:] + [sign] * n
            elif amount_i >= width:
                bits = [FALSE] * width
            elif kind == "left":
                bits = [FALSE] * amount_i + value.bits[:width - amount_i]
            else:
                bits = value.bits[amount_i:] + [FALSE] * amount_i
            return SymVec(mgr, width, bits, value.signed)
        fill = sign if kind == "arith" else FALSE
        bits = list(value.bits)
        shift_bits = min(amount.width, max(width, 1).bit_length())
        for k in range(shift_bits):
            step = 1 << k
            select = amount.bits[k]
            if kind == "left":
                shifted = [FALSE] * step + bits[:width - step] \
                    if step < width else [FALSE] * width
            else:
                shifted = bits[step:] + [fill] * min(step, width)
            bits = [mgr.ite(select, s, b) for s, b in zip(shifted, bits)]
        overflow = mgr.or_all(amount.bits[shift_bits:])
        if overflow != FALSE:
            bits = [mgr.ite(overflow, fill, b) for b in bits]
        return SymVec(mgr, width, bits, value.signed)

    def _sym_ternary(self, expr: ast.Ternary, scope: Scope,
                     ctx_width: Optional[int],
                     ctx_signed: Optional[bool]) -> SymVec:
        mgr = self.mgr
        cond = self.eval_sym(expr.cond, scope)
        width = self._ctx(expr, scope, ctx_width)
        truth = cond.truthy()
        if truth == TRUE:
            return self.eval_sym(expr.if_true, scope, width, ctx_signed)
        if truth == FALSE:
            return self.eval_sym(expr.if_false, scope, width, ctx_signed)
        a = self.eval_sym(expr.if_true, scope, width, ctx_signed)
        b = self.eval_sym(expr.if_false, scope, width, ctx_signed)
        a = a.resize(width)
        b = b.resize(width)
        if a.signed != b.signed:
            # Which arm is taken decides downstream sign-extension; a
            # single symbolic result cannot carry both signednesses.
            raise FormalUnsupported(
                "mixed-signedness ternary arms under symbolic condition")
        bits = [mgr.ite(truth, x, y) for x, y in zip(a.bits, b.bits)]
        return SymVec(mgr, width, bits, a.signed)

    def _sym_system_call(self, expr: ast.SystemCall, scope: Scope) -> SymVec:
        name = expr.name
        if name == "$signed":
            return self.eval_sym(expr.args[0], scope).as_signed(True)
        if name == "$unsigned":
            return self.eval_sym(expr.args[0], scope).as_signed(False)
        if name == "$bits":
            width, _ = self.width_of(expr.args[0], scope)
            return SymVec.from_int(self.mgr, width, 32)
        raise FormalUnsupported(
            f"system function {name} of non-constant arguments")

    # =====================================================================
    # Statement execution (mirrors sim/interp.py)
    # =====================================================================

    def exec_stmt(self, stmt: Optional[ast.Stmt], scope: Scope) -> None:
        if stmt is None:
            return
        if isinstance(stmt, ast.Block):
            block_scope = scope
            if stmt.decls:
                block_scope = scope.child(stmt.name or "__blk")
                for decl in stmt.decls:
                    self._declare_local(decl, block_scope)
            for inner in stmt.stmts:
                self.exec_stmt(inner, block_scope)
            return
        if isinstance(stmt, ast.Assign):
            self._exec_assign(stmt, scope)
            return
        if isinstance(stmt, ast.If):
            self._exec_if(stmt, scope)
            return
        if isinstance(stmt, ast.Case):
            self._exec_case(stmt, scope)
            return
        if isinstance(stmt, ast.For):
            self._exec_for(stmt, scope)
            return
        if isinstance(stmt, ast.While):
            iterations = 0
            while True:
                if not self._const_truth(stmt.cond, scope, "loop condition"):
                    return
                self.exec_stmt(stmt.body, scope)
                iterations += 1
                if iterations > MAX_UNROLL:
                    raise FormalUnsupported("while loop exceeds unroll cap")
        if isinstance(stmt, ast.Repeat):
            count = self._const_int(stmt.count, scope, "repeat count")
            if count > MAX_UNROLL:
                raise FormalUnsupported("repeat count exceeds unroll cap")
            for _ in range(max(count, 0)):
                self.exec_stmt(stmt.body, scope)
            return
        if isinstance(stmt, (ast.NullStmt, ast.Disable)):
            return
        if isinstance(stmt, ast.SystemTaskCall):
            # $display and friends have no value semantics; $readmem
            # targets memories, which are rejected at the access site.
            return
        raise FormalUnsupported(
            f"unsupported statement {type(stmt).__name__}")

    def _const_truth(self, expr: ast.Expr, scope: Scope, what: str) -> bool:
        value = self.eval_sym(expr, scope)
        truth = value.truthy()
        if truth == TRUE:
            return True
        if truth == FALSE:
            return False
        raise FormalUnsupported(f"symbolic {what}")

    def _declare_local(self, decl: ast.Decl, scope: Scope) -> None:
        if decl.array_dims:
            raise FormalUnsupported(f"local memory {decl.name!r}")
        msb = lsb = 0
        width = 1
        signed = decl.signed
        if decl.kind == "integer":
            width, msb, lsb, signed = 32, 31, 0, True
        elif decl.range is not None:
            msb = self._const_int(decl.range.msb, scope, "local range")
            lsb = self._const_int(decl.range.lsb, scope, "local range")
            width = abs(msb - lsb) + 1
        name = scope.flat_name(decl.name)
        signal = self._local_signals.get(name)
        if signal is None or signal.width != width:
            signal = Signal(name=name, width=width, signed=signed,
                            msb=msb, lsb=lsb)
            self._local_signals[name] = signal
        scope.bind(decl.name, SignalBinding(signal=signal))
        self.init_signal(signal)

    def _exec_assign(self, stmt: ast.Assign, scope: Scope) -> None:
        ops = self._resolve_lvalue(stmt.target, scope)
        total = sum(op.width for op in ops)
        signed_target = len(ops) == 1 and ops[0].signal.signed
        value = self.eval_sym(stmt.value, scope, ctx_width=total)
        if value.width < total:
            value = value.resize(total, value.signed)
        if signed_target:
            value = value.as_signed(True)
        self._write(ops, value, blocking=stmt.blocking)

    def _resolve_lvalue(self, target: ast.Expr,
                        scope: Scope) -> List[WriteOp]:
        try:
            ops = resolve_lvalue(target, scope, self.consts)
        except (EvalError, SimulationError) as exc:
            raise FormalUnsupported(f"unsupported lvalue: {exc}")
        for op in ops:
            if op.mem_index is not None:
                raise FormalUnsupported(
                    f"memory write {op.signal.name!r}")
        return ops

    def _write(self, ops: Sequence[WriteOp], value: SymVec,
               blocking: bool) -> None:
        # Mirror split_value_for_ops: MSB-first slices of the value.
        total = sum(op.width for op in ops)
        if value.width < total:
            value = value.resize(total, value.signed)
        offset = total
        for op in ops:
            offset -= op.width
            piece = SymVec(self.mgr, op.width,
                           value.bits[offset:offset + op.width])
            if op.oob:
                continue
            if blocking:
                self.write_bits(op.signal, op.lo, piece)
            else:
                self.write_bits_nba(op.signal, op.lo, piece)

    def _exec_if(self, stmt: ast.If, scope: Scope) -> None:
        cond = self.eval_sym(stmt.cond, scope)
        truth = cond.truthy()
        if truth == TRUE:
            self.exec_stmt(stmt.then_stmt, scope)
            return
        if truth == FALSE:
            self.exec_stmt(stmt.else_stmt, scope)
            return
        self._exec_branches(truth, stmt.then_stmt, stmt.else_stmt, scope)

    def _exec_branches(self, cond: int, then_stmt: Optional[ast.Stmt],
                       else_stmt: Optional[ast.Stmt], scope: Scope) -> None:
        saved = self.snapshot()
        self.path = self.mgr.and_(saved[3], cond)
        self.exec_stmt(then_stmt, scope)
        then_state = self.snapshot()
        self.restore(saved)
        self.path = self.mgr.and_(saved[3], self.mgr.not_(cond))
        self.exec_stmt(else_stmt, scope)
        else_state = self.snapshot()
        self.path = saved[3]
        self.merge(cond, then_state, else_state)

    def _exec_case(self, stmt: ast.Case, scope: Scope) -> None:
        subject = self.eval_sym(stmt.subject, scope)
        arms: List[Tuple[int, Optional[ast.Stmt]]] = []
        default_body: Optional[ast.Stmt] = None
        for item in stmt.items:
            if not item.exprs:
                default_body = item.body
                continue
            match = self.mgr.or_all(
                self._case_match(stmt.kind, subject, expr, scope)
                for expr in item.exprs)
            arms.append((match, item.body))
        self._exec_case_chain(arms, default_body, scope)

    def _exec_case_chain(self, arms: List[Tuple[int, Optional[ast.Stmt]]],
                         default_body: Optional[ast.Stmt],
                         scope: Scope) -> None:
        if not arms:
            self.exec_stmt(default_body, scope)
            return
        cond, body = arms[0]
        if cond == TRUE:
            self.exec_stmt(body, scope)
            return
        if cond == FALSE:
            self._exec_case_chain(arms[1:], default_body, scope)
            return
        saved = self.snapshot()
        self.path = self.mgr.and_(saved[3], cond)
        self.exec_stmt(body, scope)
        then_state = self.snapshot()
        self.restore(saved)
        self.path = self.mgr.and_(saved[3], self.mgr.not_(cond))
        self._exec_case_chain(arms[1:], default_body, scope)
        else_state = self.snapshot()
        self.path = saved[3]
        self.merge(cond, then_state, else_state)

    def _case_match(self, kind: str, subject: SymVec, label_expr: ast.Expr,
                    scope: Scope) -> int:
        """Mirror interp._case_match, allowing four-state *constant*
        labels (the casez/casex wildcard idiom)."""
        mgr = self.mgr
        label_vec4: Optional[Vec4] = None
        try:
            label_vec4 = self.consts.eval(label_expr, scope)
        except (EvalError, SimulationError):
            pass
        if label_vec4 is None or not label_vec4.xz:
            label = self.eval_sym(label_expr, scope)
            width = max(subject.width, label.width)
            a = subject.resize(width)
            b = label.resize(width)
            return self._bits_eq(a, b)
        width = max(subject.width, label_vec4.width)
        a = subject.resize(width)
        b = label_vec4.resize(width)
        mask = (1 << width) - 1
        care = mask
        if kind == "casez":
            care &= ~b.z & mask
        elif kind == "casex":
            care &= ~b.xz & mask
        # A two-valued subject can never match leftover x/z label bits.
        if kind == "case" or (b.xz & care):
            return FALSE
        nodes = []
        for i in range(width):
            if care & (1 << i):
                nodes.append(mgr.xnor_(
                    a.bits[i], TRUE if (b.val >> i) & 1 else FALSE))
        return mgr.and_all(nodes)

    def _exec_for(self, stmt: ast.For, scope: Scope) -> None:
        if stmt.init is not None:
            self._exec_assign(stmt.init, scope)
        iterations = 0
        while True:
            if stmt.cond is not None:
                if not self._const_truth(stmt.cond, scope, "loop condition"):
                    return
            self.exec_stmt(stmt.body, scope)
            if stmt.step is not None:
                self._exec_assign(stmt.step, scope)
            iterations += 1
            if iterations > MAX_UNROLL:
                raise FormalUnsupported("for loop exceeds unroll cap")

    # =====================================================================
    # Continuous assigns (mirror of Kernel._run_comb assign form)
    # =====================================================================

    def run_comb_assign(self, proc: CombProcess) -> None:
        target_expr, value_expr = proc.assign  # type: ignore[misc]
        ops = self._resolve_lvalue(target_expr,
                                   proc.target_scope or proc.scope)
        total = sum(op.width for op in ops)
        value = self.eval_sym(value_expr, proc.scope, ctx_width=total)
        if value.width < total:
            value = value.resize(total, value.signed)
        # No as_signed step here — continuous assigns differ from
        # procedural ones (mirrors the kernel).
        self._write(ops, value, blocking=True)


def collect_reads(node, scope: Scope, reads: Set[str],
                  seen_functions: Optional[Set[str]] = None) -> None:
    """Over-approximate flat signal names read by an AST subtree.

    Used to order combinational processes; includes the bodies of any
    user functions referenced (their global reads matter).
    """
    if seen_functions is None:
        seen_functions = set()
    if node is None:
        return
    if isinstance(node, ast.Identifier):
        binding = scope.lookup(node.name)
        if isinstance(binding, SignalBinding):
            reads.add(binding.signal.name)
        return
    if isinstance(node, ast.FunctionCall):
        for arg in node.args:
            collect_reads(arg, scope, reads, seen_functions)
        binding = scope.lookup_function(node.name)
        if binding is not None and node.name not in seen_functions:
            seen_functions.add(node.name)
            collect_reads(binding.decl.body, binding.scope, reads,
                          seen_functions)
        return
    if isinstance(node, ast.Stmt):
        if isinstance(node, ast.Assign):
            # The written identifier is not a read, but lvalue indexes are.
            collect_lvalue_index_reads(node.target, scope, reads,
                                       seen_functions)
            collect_reads(node.value, scope, reads, seen_functions)
            return
        if isinstance(node, ast.Block):
            for inner in node.stmts:
                collect_reads(inner, scope, reads, seen_functions)
            return
        if isinstance(node, ast.Case):
            collect_reads(node.subject, scope, reads, seen_functions)
            for item in node.items:
                for expr in item.exprs:
                    collect_reads(expr, scope, reads, seen_functions)
                collect_reads(item.body, scope, reads, seen_functions)
            return
        for name in ("cond", "then_stmt", "else_stmt", "init", "step",
                     "body", "count", "stmt", "amount"):
            collect_reads(getattr(node, name, None), scope, reads,
                          seen_functions)
        for expr in getattr(node, "args", ()):
            collect_reads(expr, scope, reads, seen_functions)
        return
    if isinstance(node, ast.Expr):
        for name in ("base", "left", "right", "cond", "if_true", "if_false",
                     "operand", "count", "value"):
            collect_reads(getattr(node, name, None), scope, reads,
                          seen_functions)
        for part in getattr(node, "parts", ()):
            if isinstance(part, ast.Expr):
                collect_reads(part, scope, reads, seen_functions)
        for arg in getattr(node, "args", ()):
            collect_reads(arg, scope, reads, seen_functions)


def collect_lvalue_index_reads(target, scope: Scope, reads: Set[str],
                               seen_functions: Set[str]) -> None:
    if isinstance(target, ast.Concat):
        for part in target.parts:
            collect_lvalue_index_reads(part, scope, reads, seen_functions)
        return
    if isinstance(target, ast.Select):
        collect_reads(target.left, scope, reads, seen_functions)
        collect_reads(target.right, scope, reads, seen_functions)
        collect_lvalue_index_reads(target.base, scope, reads, seen_functions)


def collect_writes(node, scope: Scope, writes: Set[str]) -> None:
    """Over-approximate flat signal names written by a statement tree."""
    if node is None:
        return
    if isinstance(node, ast.Assign):
        _target_signals(node.target, scope, writes)
        return
    if isinstance(node, ast.Block):
        block_scope = scope
        if node.decls:
            # Locals shadow outer names; writes to them are not design
            # writes.  A synthetic child scope makes lookup miss them.
            block_scope = scope.child(node.name or "__blk")
            for decl in node.decls:
                block_scope.bind(decl.name, ConstBinding(
                    value=Vec4.from_int(0, 1)))
        for inner in node.stmts:
            collect_writes(inner, block_scope, writes)
        return
    if isinstance(node, ast.Case):
        for item in node.items:
            collect_writes(item.body, scope, writes)
        return
    for name in ("then_stmt", "else_stmt", "init", "step", "body", "stmt"):
        collect_writes(getattr(node, name, None), scope, writes)


def _target_signals(target, scope: Scope, writes: Set[str]) -> None:
    if isinstance(target, ast.Concat):
        for part in target.parts:
            _target_signals(part, scope, writes)
        return
    if isinstance(target, ast.Select):
        _target_signals(target.base, scope, writes)
        return
    if isinstance(target, ast.Identifier):
        binding = scope.lookup(target.name)
        if isinstance(binding, SignalBinding):
            writes.add(binding.signal.name)


__all__ = [
    "FormalUnsupported",
    "MAX_UNROLL",
    "SymVec",
    "SymbolicContext",
    "collect_reads",
    "collect_writes",
]
