"""Bounded formal checking over the elaborated synthesizable subset.

No external solver: designs are bit-blasted into a hash-consed ROBDD
arena (:mod:`.bdd`) by a symbolic interpreter that mirrors the exact
four-state simulator semantics with constant folding through the real
evaluator (:mod:`.sym`).  :mod:`.check` exposes the user-facing
entry points and the versioned :class:`FormalReport`; :mod:`.memo`
provides the digest-keyed parse/elaboration memo that keeps the
curation-tier path cheap on warm runs.
"""

from .bdd import BDDBudgetError, BDDManager, DEFAULT_NODE_BUDGET
from .check import (
    DEFAULT_BOUND,
    FORMAL_REPORT_SCHEMA,
    FormalReport,
    check_equivalence,
    check_properties,
    verify_code,
    verify_design,
)
from .memo import ElaborationMemo, memo_key
from .sym import FormalUnsupported

__all__ = [
    "BDDBudgetError",
    "BDDManager",
    "DEFAULT_BOUND",
    "DEFAULT_NODE_BUDGET",
    "ElaborationMemo",
    "FORMAL_REPORT_SCHEMA",
    "FormalReport",
    "FormalUnsupported",
    "check_equivalence",
    "check_properties",
    "memo_key",
    "verify_code",
    "verify_design",
]
