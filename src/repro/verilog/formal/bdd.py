"""A small hash-consed ROBDD engine for exact bit-level checking.

The formal checker bit-blasts the synthesizable two-valued subset of an
elaborated design into reduced ordered binary decision diagrams.  BDDs
give *canonical* function representations: two circuits compute the
same function iff their output nodes are the same integer, so
equivalence is pointer comparison and property checking is "is the
node the TRUE terminal".  No external solver is involved.

Nodes live in one arena per :class:`BDDManager`:

* node ``0`` is FALSE, node ``1`` is TRUE;
* every other node is ``(var, lo, hi)`` — test ``var``, follow ``lo``
  when it is 0 and ``hi`` when it is 1 — interned in a unique table so
  structurally equal functions share one node;
* ``ite`` (if-then-else) is the single connective everything else is
  built from, memoised in a computed table.

Variable order is allocation order.  The manager enforces a node
budget: crossing it raises :class:`BDDBudgetError`, which the checker
reports as an *unsupported* verdict — never a wrong one.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

#: Terminal node ids.
FALSE = 0
TRUE = 1

#: Default node budget; generous for the dataset's small synthesizable
#: modules, small enough to keep a pathological multiplier from eating
#: the curation run.
DEFAULT_NODE_BUDGET = 200_000


class BDDBudgetError(Exception):
    """The node budget was exceeded; the check is unsupported, not wrong."""


class BDDManager:
    """One BDD arena: unique table, computed table, variable order."""

    def __init__(self, node_budget: int = DEFAULT_NODE_BUDGET) -> None:
        self.node_budget = node_budget
        #: node id -> (var, lo, hi); slots 0/1 are terminal placeholders.
        self._nodes: List[Tuple[int, int, int]] = [(-1, 0, 0), (-1, 1, 1)]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}
        self.n_vars = 0

    # -- introspection --------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def var_of(self, node: int) -> int:
        return self._nodes[node][0]

    def cofactors(self, node: int) -> Tuple[int, int]:
        """(lo, hi) children of an internal node."""
        _, lo, hi = self._nodes[node]
        return lo, hi

    # -- construction ---------------------------------------------------

    def new_var(self) -> int:
        """Allocate the next variable and return its positive literal."""
        index = self.n_vars
        self.n_vars += 1
        return self._mk(index, FALSE, TRUE)

    def _mk(self, var: int, lo: int, hi: int) -> int:
        if lo == hi:
            return lo
        key = (var, lo, hi)
        found = self._unique.get(key)
        if found is not None:
            return found
        if len(self._nodes) >= self.node_budget:
            raise BDDBudgetError(
                f"BDD node budget exceeded ({self.node_budget} nodes)")
        node = len(self._nodes)
        self._nodes.append(key)
        self._unique[key] = node
        return node

    def constant(self, value: bool) -> int:
        return TRUE if value else FALSE

    # -- the connective -------------------------------------------------

    def ite(self, f: int, g: int, h: int) -> int:
        """if ``f`` then ``g`` else ``h`` — the universal connective."""
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE and h == FALSE:
            return f
        key = (f, g, h)
        found = self._ite_cache.get(key)
        if found is not None:
            return found
        var = min(v for v in (self.var_of(f), self.var_of(g),
                              self.var_of(h)) if v >= 0)

        def split(node: int) -> Tuple[int, int]:
            if self.var_of(node) == var:
                return self.cofactors(node)
            return node, node

        f0, f1 = split(f)
        g0, g1 = split(g)
        h0, h1 = split(h)
        hi = self.ite(f1, g1, h1)
        lo = self.ite(f0, g0, h0)
        result = self._mk(var, lo, hi)
        self._ite_cache[key] = result
        return result

    # -- boolean algebra ------------------------------------------------

    def not_(self, f: int) -> int:
        return self.ite(f, FALSE, TRUE)

    def and_(self, f: int, g: int) -> int:
        return self.ite(f, g, FALSE)

    def or_(self, f: int, g: int) -> int:
        return self.ite(f, TRUE, g)

    def xor_(self, f: int, g: int) -> int:
        return self.ite(f, self.not_(g), g)

    def xnor_(self, f: int, g: int) -> int:
        return self.ite(f, g, self.not_(g))

    def and_all(self, nodes) -> int:
        result = TRUE
        for node in nodes:
            result = self.and_(result, node)
            if result == FALSE:
                return FALSE
        return result

    def or_all(self, nodes) -> int:
        result = FALSE
        for node in nodes:
            result = self.or_(result, node)
            if result == TRUE:
                return TRUE
        return result

    # -- models ---------------------------------------------------------

    def sat_one(self, f: int) -> Optional[Dict[int, bool]]:
        """One satisfying assignment ``{var: bool}``, or None when
        ``f`` is FALSE.  Variables absent from the result are
        don't-cares."""
        if f == FALSE:
            return None
        assignment: Dict[int, bool] = {}
        node = f
        while node != TRUE:
            var, lo, hi = self._nodes[node]
            if hi != FALSE:
                assignment[var] = True
                node = hi
            else:
                assignment[var] = False
                node = lo
        return assignment

    def eval_node(self, f: int, assignment: Dict[int, bool]) -> bool:
        """Evaluate ``f`` under a total-enough assignment (missing
        variables read as False)."""
        node = f
        while node not in (FALSE, TRUE):
            var, lo, hi = self._nodes[node]
            node = hi if assignment.get(var, False) else lo
        return node == TRUE
