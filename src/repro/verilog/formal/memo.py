"""Digest-keyed parse/elaboration memo.

Elaboration is the dominant cost on the formal path: the checker only
needs the flat :class:`~repro.verilog.sim.design.Design`, and two
byte-identical sources always elaborate to the same one.  The memo
keys on a content digest of ``(source, top, parameter overrides)`` —
never on paths or mtimes — so a warm re-curation re-elaborates
nothing, and the hit/miss counters are exact (one miss per distinct
source, everything else hits).

Two tiers: a per-process dict, and an optional persistent
:class:`~repro.pipeline.diskcache.DiskCache` underneath it so warm
starts survive process boundaries (shard workers, service restarts).
Designs are plain dataclass trees and pickle cleanly.
"""

from __future__ import annotations

import json
from typing import Dict, Optional, Tuple

from ...obs import Observability, resolve
from ...pipeline.cache import content_key
from ...pipeline.diskcache import DiskCache
from ..parser import ParseError
from ..sim.design import Design, ElaborationError
from ..sim.elaborate import elaborate
from ..sim.runtime import build_library

#: Bump when Design layout or elaboration semantics change; stale
#: persistent entries then miss instead of deserialising garbage.
MEMO_SCHEMA = "pyranet/formal-elab-memo/v1"

_MEMO_NAMESPACE = "formal/elaborate"


def memo_key(source: str, top: Optional[str] = None,
             params: Optional[Dict[str, int]] = None) -> str:
    """Content digest identifying one elaboration, path/mtime-free."""
    param_part = json.dumps(params or {}, sort_keys=True)
    return content_key(_MEMO_NAMESPACE, MEMO_SCHEMA, source,
                       top if top is not None else "\x00last\x00",
                       param_part)


class ElaborationMemo:
    """Two-tier (dict + optional DiskCache) elaboration memo.

    ``elaborate(source)`` returns the flat design, raising
    :class:`ParseError`/:class:`ElaborationError` exactly as the
    uncached path would (errors are not cached).  Counters
    ``formal.memo.hit`` / ``formal.memo.miss`` are exact.
    """

    def __init__(self, disk: Optional[DiskCache] = None,
                 obs: Optional[Observability] = None) -> None:
        self.disk = disk
        self._obs = resolve(obs)
        self._memory: Dict[str, Design] = {}
        # Local exact tallies: ``stats()`` must be truthful even under
        # the no-op observability (whose counters discard increments).
        self._n_hits = 0
        self._n_misses = 0
        self._hits = self._obs.counter("formal.memo.hit")
        self._misses = self._obs.counter("formal.memo.miss")

    def __len__(self) -> int:
        return len(self._memory)

    def elaborate(self, source: str, top: Optional[str] = None,
                  params: Optional[Dict[str, int]] = None) -> Design:
        key = memo_key(source, top, params)
        design = self._memory.get(key)
        if design is not None:
            self._n_hits += 1
            self._hits.inc()
            return design
        if self.disk is not None:
            status, value = self.disk.get(key)
            if status == "hit" and isinstance(value, Design):
                self._memory[key] = value
                self._n_hits += 1
                self._hits.inc()
                return value
        self._n_misses += 1
        self._misses.inc()
        design = _elaborate_source(source, top, params)
        self._memory[key] = design
        if self.disk is not None:
            self.disk.put(key, design)
        return design

    def stats(self) -> Tuple[int, int]:
        """(hits, misses) observed by this memo instance, exactly."""
        return self._n_hits, self._n_misses


def _elaborate_source(source: str, top: Optional[str],
                      params: Optional[Dict[str, int]]) -> Design:
    library = build_library(source)
    if not library:
        raise ElaborationError("no modules in source")
    name = top if top is not None else list(library)[-1]
    return elaborate(library, name, params)


__all__ = ["ElaborationMemo", "MEMO_SCHEMA", "memo_key"]
