"""Bounded equivalence / property checking over elaborated designs.

Entry points:

* :func:`check_equivalence` — are two designs observably identical?
  Combinational designs are compared exactly (all inputs at once);
  sequential designs are unrolled ``bound`` cycles from their declared
  initial state under shared per-cycle input variables.
* :func:`check_properties` — do boolean assertions over the top-level
  nets hold (at every checked cycle, for all inputs)?
* :func:`verify_design` — the curation-tier verdict: the design is in
  the modelled synthesizable subset, has no combinational loops or
  driver conflicts, and every output bit is defined on all paths.

All three return a versioned :class:`FormalReport`.  Reports carry no
wall-clock data and only deterministic fields, so re-running the same
check anywhere yields byte-identical JSON (house rule for distributed
curation).

The cycle semantics mirror ``Simulator.clock``: the edge processes
observe the pre-edge settled combinational state, non-blocking updates
land after all edge processes ran, and outputs are observed after the
post-edge settle with the same cycle inputs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple, Union

from .. import ast_nodes as ast
from ..parser import ParseError, parse
from ..sim.design import (
    CombProcess,
    Design,
    EdgeProcess,
    ElaborationError,
    InitialProcess,
    Scope,
    Signal,
    TimedAlwaysProcess,
)
from ..sim.runtime import build_library
from ..sim.elaborate import elaborate
from .bdd import FALSE, TRUE, BDDBudgetError, BDDManager, DEFAULT_NODE_BUDGET
from .sym import (
    FormalUnsupported,
    SymVec,
    SymbolicContext,
    collect_lvalue_index_reads,
    collect_reads,
    collect_writes,
)

#: Default number of unrolled cycles for sequential checks.
DEFAULT_BOUND = 5

FORMAL_REPORT_SCHEMA = "pyranet/formal-report/v1"

DesignLike = Union[str, Design]


@dataclass
class FormalReport:
    """Versioned, deterministic result document for one formal check."""

    schema: str = FORMAL_REPORT_SCHEMA
    mode: str = "equivalence"  # equivalence | properties | verify
    #: equivalent | inequivalent | holds | fails | verified |
    #: unsupported | error
    status: str = "unsupported"
    detail: str = ""
    bound: int = 0
    counterexample: Optional[Dict[str, Any]] = None
    properties: List[Dict[str, Any]] = field(default_factory=list)
    n_inputs: int = 0
    n_outputs: int = 0
    n_state_bits: int = 0
    n_bdd_nodes: int = 0

    @property
    def ok(self) -> bool:
        return self.status in ("equivalent", "holds", "verified")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": self.schema,
            "mode": self.mode,
            "status": self.status,
            "detail": self.detail,
            "bound": self.bound,
            "counterexample": self.counterexample,
            "properties": self.properties,
            "n_inputs": self.n_inputs,
            "n_outputs": self.n_outputs,
            "n_state_bits": self.n_state_bits,
            "n_bdd_nodes": self.n_bdd_nodes,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FormalReport":
        template = cls()
        known = {f for f in template.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)


class _VarPool:
    """Shared (port, bit, cycle) → BDD variable allocation.

    Both sides of an equivalence check draw their input variables from
    one pool, so identical stimulus reaches both designs and variable
    order interleaves naturally in first-use order.
    """

    def __init__(self, mgr: BDDManager) -> None:
        self.mgr = mgr
        self._vars: Dict[Tuple[str, int, int], int] = {}
        #: var index -> (port, bit, cycle), for counterexample readback.
        self.origin: Dict[int, Tuple[str, int, int]] = {}

    def var(self, name: str, bit: int, cycle: int) -> int:
        key = (name, bit, cycle)
        node = self._vars.get(key)
        if node is None:
            node = self.mgr.new_var()
            self._vars[key] = node
            self.origin[self.mgr.var_of(node)] = key
        return node

    def input_bits(self, signal: Signal, cycle: int) -> List[int]:
        return [self.var(signal.name, i, cycle)
                for i in range(signal.width)]


#: A persisted value: (bits, undef-guards), both LSB-first node lists.
_StateEntry = Tuple[List[int], List[int]]
_State = Dict[str, _StateEntry]


class DesignModel:
    """One design compiled for symbolic execution.

    Construction performs all whole-design admission checks (single
    clock, no timing controls, acyclic combinational logic, exclusive
    drivers); :meth:`settle` and :meth:`step` then evaluate cycles.
    """

    def __init__(self, design: Design, mgr: BDDManager,
                 pool: _VarPool) -> None:
        self.design = design
        self.mgr = mgr
        self.pool = pool
        self.comb_procs: List[CombProcess] = []
        self.edge_procs: List[EdgeProcess] = []
        self.initial_procs: List[InitialProcess] = []
        self.clock: Optional[Tuple[str, str]] = None  # (edge, flat name)
        self.state_names: List[str] = []
        self._classify()
        self._analyze_clock()
        self._analyze_drivers()
        self._order_comb()
        self.initial_state = self._run_initials()

    # -- admission checks ----------------------------------------------

    def _classify(self) -> None:
        if self.design.inouts:
            raise FormalUnsupported("inout port")
        for proc in self.design.processes:
            if isinstance(proc, CombProcess):
                self.comb_procs.append(proc)
            elif isinstance(proc, EdgeProcess):
                self.edge_procs.append(proc)
            elif isinstance(proc, InitialProcess):
                self.initial_procs.append(proc)
            elif isinstance(proc, TimedAlwaysProcess):
                raise FormalUnsupported("timing-controlled always block")

    def _analyze_clock(self) -> None:
        triggers: Set[Tuple[str, str]] = set()
        for proc in self.edge_procs:
            triggers.update(proc.triggers)
        if not triggers:
            return
        if len(triggers) > 1:
            raise FormalUnsupported(
                "multiple clocks or asynchronous triggers")
        edge, name = next(iter(triggers))
        signal = self.design.signals.get(name)
        if signal is None or name not in self.design.inputs:
            raise FormalUnsupported("clock is not a top-level input")
        if signal.width != 1:
            raise FormalUnsupported("multi-bit clock")
        self.clock = (edge, name)

    def _proc_write_set(self, proc: CombProcess) -> Set[str]:
        writes: Set[str] = set()
        if proc.assign is not None:
            target, _ = proc.assign
            scope = proc.target_scope or proc.scope
            from .sym import _target_signals
            _target_signals(target, scope, writes)
        else:
            collect_writes(proc.body, proc.scope, writes)
        return writes

    def _analyze_drivers(self) -> None:
        state: Set[str] = set()
        for proc in self.edge_procs:
            collect_writes(proc.body, proc.scope, state)
        clock_name = self.clock[1] if self.clock else None
        if clock_name in state:
            raise FormalUnsupported("clock driven inside the design")
        self.state_names = sorted(state)

        self._comb_writes: List[Set[str]] = []
        claimed: Dict[str, int] = {}  # signal -> claiming proc index
        for index, proc in enumerate(self.comb_procs):
            writes = self._proc_write_set(proc)
            self._comb_writes.append(writes)
            for name in writes:
                if name in state:
                    raise FormalUnsupported(
                        "signal driven by both clocked and "
                        "combinational logic")
                if name == clock_name:
                    raise FormalUnsupported("clock driven inside the design")
                prev = claimed.get(name)
                if prev is not None and prev != index:
                    signal = self.design.signals.get(name)
                    if not self._disjoint_assign_bits(name):
                        raise FormalUnsupported(
                            f"multiple combinational drivers of "
                            f"{(signal.name if signal else name)!r}")
                claimed[name] = index

    def _disjoint_assign_bits(self, name: str) -> bool:
        """True when every continuous assign driving ``name`` touches a
        statically distinct bit range (legal split-bus drivers)."""
        covered: Set[int] = set()
        from ..sim.eval import ConstStore, EvalError, Evaluator
        from ..sim.interp import SimulationError, resolve_lvalue
        const_eval = Evaluator(ConstStore())
        for proc in self.comb_procs:
            if proc.assign is None:
                # A body-form process writes with last-write-wins var
                # semantics; sharing bits with anything is a conflict.
                if name in self._proc_write_set(proc):
                    return False
                continue
            target, _ = proc.assign
            scope = proc.target_scope or proc.scope
            if name not in self._proc_write_set(proc):
                continue
            try:
                ops = resolve_lvalue(target, scope, const_eval)
            except (EvalError, SimulationError):
                return False
            for op in ops:
                if op.signal.name != name:
                    continue
                if op.oob or op.mem_index is not None:
                    return False
                for bit in range(op.lo, op.hi + 1):
                    if bit in covered:
                        return False
                    covered.add(bit)
        return True

    def _proc_read_set(self, proc: CombProcess) -> Set[str]:
        reads: Set[str] = set()
        if proc.assign is not None:
            target, value = proc.assign
            collect_reads(value, proc.scope, reads)
            collect_lvalue_index_reads(
                target, proc.target_scope or proc.scope, reads, set())
        else:
            collect_reads(proc.body, proc.scope, reads)
        return reads

    def _order_comb(self) -> None:
        """Topologically order combinational processes writer→reader;
        a cycle in the over-approximated dependency graph is rejected
        (the simulator would settle it iteratively, possibly x)."""
        n = len(self.comb_procs)
        reads = [self._proc_read_set(p) for p in self.comb_procs]
        writer_of: Dict[str, List[int]] = {}
        for index, writes in enumerate(self._comb_writes):
            for name in writes:
                writer_of.setdefault(name, []).append(index)
        successors: List[Set[int]] = [set() for _ in range(n)]
        indegree = [0] * n
        for index in range(n):
            for name in reads[index]:
                for writer in writer_of.get(name, ()):
                    if writer != index and index not in successors[writer]:
                        successors[writer].add(index)
                        indegree[index] += 1
        ready = sorted(i for i in range(n) if indegree[i] == 0)
        order: List[int] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            for succ in sorted(successors[node]):
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
        if len(order) != n:
            raise FormalUnsupported("combinational loop")
        self._comb_order = order
        clock_name = self.clock[1] if self.clock else None
        if clock_name is not None:
            used: Set[str] = set()
            for read_set in reads:
                used |= read_set
            for proc in self.edge_procs:
                collect_reads(proc.body, proc.scope, used)
            if clock_name in used:
                raise FormalUnsupported("clock used as data")

    # -- evaluation -----------------------------------------------------

    def _make_context(self, inputs: Dict[str, List[int]],
                      state: _State) -> SymbolicContext:
        ctx = SymbolicContext(self.design, self.mgr)
        for signal in self.design.signals.values():
            if signal.is_memory:
                continue
            ctx.init_signal(signal)
        for name, bits in inputs.items():
            signal = self.design.signals[name]
            ctx.init_signal(signal, bits, defined=True)
        if self.clock is not None:
            ctx.init_signal(self.design.signals[self.clock[1]],
                            [FALSE], defined=True)
        for name, (bits, guards) in state.items():
            ctx.env[name] = list(bits)
            ctx.undef[name] = list(guards)
        return ctx

    def _run_comb(self, ctx: SymbolicContext) -> None:
        for index in self._comb_order:
            proc = self.comb_procs[index]
            if proc.assign is not None:
                ctx.run_comb_assign(proc)
            else:
                ctx.exec_stmt(proc.body, proc.scope)

    def _run_initials(self) -> _State:
        """Execute initial blocks (constants only) for seed values."""
        ctx = SymbolicContext(self.design, self.mgr)
        for signal in self.design.signals.values():
            if signal.is_memory:
                continue
            ctx.init_signal(signal)
        for proc in self.initial_procs:
            ctx.exec_stmt(proc.body, proc.scope)
        ctx.apply_nba()
        state: _State = {}
        comb_written: Set[str] = set()
        for writes in getattr(self, "_comb_writes", []):
            comb_written |= writes
        for name, guards in ctx.undef.items():
            if all(g == TRUE for g in guards):
                continue  # never written
            if name in comb_written:
                continue  # settle overwrites the seed at t=0
            if name not in self.design.signals:
                continue  # block-local temp
            state[name] = (ctx.env[name], guards)
        return state

    @property
    def is_sequential(self) -> bool:
        return bool(self.edge_procs)

    def data_inputs(self) -> List[Signal]:
        clock_name = self.clock[1] if self.clock else None
        return [signal for name, signal in sorted(self.design.inputs.items())
                if name != clock_name]

    def outputs(self) -> List[Signal]:
        return [signal for _, signal in sorted(self.design.outputs.items())]

    def initial_full_state(self, free_state: bool) -> _State:
        """The cycle-0 state; undefined bits become fresh variables when
        ``free_state`` (checks then cover *all* initial states)."""
        state: _State = dict(self.initial_state)
        for name in self.state_names:
            signal = self.design.signals[name]
            if signal.is_memory:
                raise FormalUnsupported(f"memory {name!r}")
            bits, guards = state.get(
                name, ([FALSE] * signal.width, [TRUE] * signal.width))
            if any(g != FALSE for g in guards):
                if not free_state:
                    raise FormalUnsupported("uninitialized sequential state")
                bits = list(bits)
                for i, guard in enumerate(guards):
                    if guard != FALSE:
                        bits[i] = self.pool.var(f"{name}@init", i, 0)
                state[name] = (bits, [FALSE] * signal.width)
        return state

    def settle(self, inputs: Dict[str, List[int]],
               state: _State) -> SymbolicContext:
        ctx = self._make_context(inputs, state)
        self._run_comb(ctx)
        return ctx

    def step(self, inputs: Dict[str, List[int]],
             state: _State) -> Tuple[_State, SymbolicContext]:
        """One clock cycle: pre-edge settle, edge processes in design
        order (mirroring the kernel's FIFO), NBA commit, post-edge
        settle with the same inputs."""
        ctx = self._make_context(inputs, state)
        self._run_comb(ctx)
        for proc in self.edge_procs:
            ctx.exec_stmt(proc.body, proc.scope)
        ctx.apply_nba()
        persistent = set(self.state_names) | set(self.initial_state)
        new_state: _State = {
            name: (ctx.env[name], ctx.undef[name])
            for name in sorted(persistent)
            if name in ctx.env
        }
        out_ctx = self.settle(inputs, new_state)
        return new_state, out_ctx

    def cycle_inputs(self, cycle: int) -> Dict[str, List[int]]:
        return {signal.name: self.pool.input_bits(signal, cycle)
                for signal in self.data_inputs()}

    def read_output(self, ctx: SymbolicContext, signal: Signal) -> SymVec:
        try:
            return ctx.read_signal(signal)
        except FormalUnsupported:
            raise FormalUnsupported(
                f"output {signal.name!r} not fully driven")


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def _as_design(source: DesignLike, top: Optional[str] = None) -> Design:
    if isinstance(source, Design):
        return source
    library = build_library(source)
    if not library:
        raise ElaborationError("no modules in source")
    name = top if top is not None else list(library)[-1]
    return elaborate(library, name)


def _error_report(mode: str, exc: Exception, bound: int = 0) -> FormalReport:
    return FormalReport(mode=mode, status="error",
                        detail=f"{type(exc).__name__}: {exc}", bound=bound)


def _unsupported_report(mode: str, reason: str,
                        bound: int = 0) -> FormalReport:
    return FormalReport(mode=mode, status="unsupported", detail=reason,
                        bound=bound)


def _ports_match(a: DesignModel, b: DesignModel) -> Optional[str]:
    def port_map(signals: Sequence[Signal]) -> Dict[str, int]:
        return {s.name: s.width for s in signals}

    in_a, in_b = port_map(a.data_inputs()), port_map(b.data_inputs())
    if in_a != in_b:
        return "input ports differ"
    out_a, out_b = port_map(a.outputs()), port_map(b.outputs())
    if out_a != out_b:
        return "output ports differ"
    return None


def _assignment_inputs(assignment: Dict[int, bool], pool: _VarPool,
                       n_cycles: int,
                       inputs: Sequence[Signal]) -> List[Dict[str, int]]:
    """Decode a BDD model into per-cycle input integers (don't-care
    variables read as 0, making replays deterministic)."""
    cycles: List[Dict[str, int]] = []
    values: Dict[Tuple[str, int, int], bool] = {}
    for var, bit in assignment.items():
        origin = pool.origin.get(var)
        if origin is not None:
            values[origin] = bit
    for cycle in range(n_cycles):
        row = {}
        for signal in inputs:
            acc = 0
            for i in range(signal.width):
                if values.get((signal.name, i, cycle), False):
                    acc |= 1 << i
            row[signal.name] = acc
        cycles.append(row)
    return cycles


def _sym_int(mgr: BDDManager, value: SymVec,
             assignment: Dict[int, bool]) -> int:
    acc = 0
    for i, bit in enumerate(value.bits):
        if mgr.eval_node(bit, assignment):
            acc |= 1 << i
    return acc


def check_equivalence(design_a: DesignLike, design_b: DesignLike,
                      bound: int = DEFAULT_BOUND,
                      node_budget: int = DEFAULT_NODE_BUDGET,
                      top_a: Optional[str] = None,
                      top_b: Optional[str] = None) -> FormalReport:
    """Exact (combinational) or bounded (sequential) equivalence.

    Two sequential designs compare over ``bound`` cycles from their
    declared initial states; a ``counterexample`` in the report gives
    per-cycle input values replayable against the simulator.
    """
    mode = "equivalence"
    try:
        elaborated_a = _as_design(design_a, top_a)
        elaborated_b = _as_design(design_b, top_b)
    except (ParseError, ElaborationError) as exc:
        return _error_report(mode, exc, bound)
    mgr = BDDManager(node_budget=node_budget)
    pool = _VarPool(mgr)
    try:
        model_a = DesignModel(elaborated_a, mgr, pool)
        model_b = DesignModel(elaborated_b, mgr, pool)
        mismatch = _ports_match(model_a, model_b)
        if mismatch is not None:
            return _unsupported_report(mode, mismatch, bound)
        sequential = model_a.is_sequential or model_b.is_sequential
        n_cycles = bound if sequential else 1
        if sequential and bound < 1:
            return _unsupported_report(mode, "bound must be >= 1", bound)
        state_a = model_a.initial_full_state(free_state=False)
        state_b = model_b.initial_full_state(free_state=False)
        inputs = model_a.data_inputs()
        outputs = model_a.outputs()
        report = FormalReport(
            mode=mode, status="equivalent", bound=n_cycles,
            n_inputs=sum(s.width for s in inputs),
            n_outputs=sum(s.width for s in outputs),
            n_state_bits=sum(
                model.design.signals[n].width
                for model in (model_a, model_b)
                for n in model.state_names),
        )
        for cycle in range(n_cycles):
            stimulus = {s.name: pool.input_bits(s, cycle) for s in inputs}
            if sequential:
                state_a, ctx_a = model_a.step(stimulus, state_a)
                state_b, ctx_b = model_b.step(stimulus, state_b)
            else:
                ctx_a = model_a.settle(stimulus, state_a)
                ctx_b = model_b.settle(stimulus, state_b)
            for signal in outputs:
                value_a = model_a.read_output(
                    ctx_a, model_a.design.outputs[signal.name])
                value_b = model_b.read_output(
                    ctx_b, model_b.design.outputs[signal.name])
                miscompare = mgr.not_(mgr.and_all(
                    mgr.xnor_(x, y)
                    for x, y in zip(value_a.bits, value_b.bits)))
                if miscompare == FALSE:
                    continue
                assignment = mgr.sat_one(miscompare)
                assert assignment is not None
                report.status = "inequivalent"
                report.detail = (
                    f"output {signal.name!r} differs at cycle {cycle}")
                report.counterexample = {
                    "cycles": _assignment_inputs(
                        assignment, pool, cycle + 1, inputs),
                    "output": signal.name,
                    "cycle": cycle,
                    "value_a": _sym_int(mgr, value_a, assignment),
                    "value_b": _sym_int(mgr, value_b, assignment),
                }
                report.n_bdd_nodes = len(mgr)
                return report
        report.n_bdd_nodes = len(mgr)
        return report
    except BDDBudgetError:
        return _unsupported_report(mode, "BDD node budget exceeded", bound)
    except FormalUnsupported as exc:
        return _unsupported_report(mode, exc.reason, bound)


def _parse_assertion(text: str) -> ast.Expr:
    """Parse a boolean expression by wrapping it in a throwaway module."""
    wrapper = (f"module __assertion__;\n"
               f"wire __p__;\n"
               f"assign __p__ = ({text});\n"
               f"endmodule\n")
    source = parse(wrapper)
    if not source.modules:
        raise ParseError("assertion did not parse")
    for item in source.modules[-1].items:
        if isinstance(item, ast.ContinuousAssign):
            return item.value
    raise ParseError("assertion did not parse")


def check_properties(design: DesignLike,
                     assertions: Sequence[str],
                     bound: int = DEFAULT_BOUND,
                     node_budget: int = DEFAULT_NODE_BUDGET,
                     top: Optional[str] = None) -> FormalReport:
    """Check boolean assertions over top-level nets for all inputs.

    Sequential designs are checked at the end of each of ``bound``
    cycles; a design without initial state is checked from *every*
    possible initial state (stronger than reachable-state checking, so
    ``holds`` is sound and a ``fails`` counterexample may start from an
    unreachable state — the report says which).
    """
    mode = "properties"
    try:
        elaborated = _as_design(design, top)
    except (ParseError, ElaborationError) as exc:
        return _error_report(mode, exc, bound)
    mgr = BDDManager(node_budget=node_budget)
    pool = _VarPool(mgr)
    try:
        model = DesignModel(elaborated, mgr, pool)
        free_state = False
        try:
            state = model.initial_full_state(free_state=False)
        except FormalUnsupported:
            state = model.initial_full_state(free_state=True)
            free_state = True
        n_cycles = bound if model.is_sequential else 1
        scope = model.design.top_scope
        if scope is None:
            scope = Scope("")
        contexts: List[Tuple[int, SymbolicContext]] = []
        for cycle in range(n_cycles):
            stimulus = model.cycle_inputs(cycle)
            if model.is_sequential:
                state, ctx = model.step(stimulus, state)
            else:
                ctx = model.settle(stimulus, state)
            contexts.append((cycle, ctx))
        inputs = model.data_inputs()
        results: List[Dict[str, Any]] = []
        for text in assertions:
            entry: Dict[str, Any] = {"assertion": text, "status": "holds",
                                     "detail": "", "counterexample": None}
            try:
                expr = _parse_assertion(text)
                for cycle, ctx in contexts:
                    value = ctx.eval_sym(expr, scope)
                    violated = mgr.not_(value.truthy())
                    if violated == FALSE:
                        continue
                    assignment = mgr.sat_one(violated)
                    assert assignment is not None
                    entry["status"] = "fails"
                    entry["detail"] = (
                        f"violated at cycle {cycle}"
                        + (" (from an arbitrary initial state)"
                           if free_state else ""))
                    entry["counterexample"] = {
                        "cycles": _assignment_inputs(
                            assignment, pool, cycle + 1, inputs),
                        "cycle": cycle,
                    }
                    break
            except ParseError as exc:
                entry["status"] = "error"
                entry["detail"] = f"ParseError: {exc}"
            except FormalUnsupported as exc:
                entry["status"] = "unsupported"
                entry["detail"] = exc.reason
            results.append(entry)
        statuses = {entry["status"] for entry in results}
        if "fails" in statuses:
            overall = "fails"
        elif statuses - {"holds"}:
            overall = "unsupported"
        else:
            overall = "holds"
        return FormalReport(
            mode=mode, status=overall, bound=n_cycles,
            detail="free initial state" if free_state else "",
            properties=results,
            n_inputs=sum(s.width for s in inputs),
            n_outputs=sum(s.width for s in model.outputs()),
            n_state_bits=sum(model.design.signals[n].width
                             for n in model.state_names),
            n_bdd_nodes=len(mgr),
        )
    except BDDBudgetError:
        return _unsupported_report(mode, "BDD node budget exceeded", bound)
    except FormalUnsupported as exc:
        return _unsupported_report(mode, exc.reason, bound)


def verify_design(design: DesignLike, bound: int = 2,
                  node_budget: int = DEFAULT_NODE_BUDGET,
                  top: Optional[str] = None) -> FormalReport:
    """The curation-tier well-formedness verdict.

    ``verified`` means: the design elaborates into the modelled
    synchronous subset, has no combinational loops, no conflicting or
    missing drivers, and every output bit is a defined two-valued
    function of inputs and state on **all** paths — checked for all
    input vectors and (when state is uninitialized) all initial states.
    """
    mode = "verify"
    try:
        elaborated = _as_design(design, top)
    except (ParseError, ElaborationError) as exc:
        return _error_report(mode, exc, bound)
    mgr = BDDManager(node_budget=node_budget)
    pool = _VarPool(mgr)
    try:
        model = DesignModel(elaborated, mgr, pool)
        state = model.initial_full_state(free_state=True)
        n_cycles = bound if model.is_sequential else 1
        for cycle in range(n_cycles):
            stimulus = model.cycle_inputs(cycle)
            if model.is_sequential:
                state, ctx = model.step(stimulus, state)
            else:
                ctx = model.settle(stimulus, state)
            for signal in model.outputs():
                model.read_output(ctx, signal)
        kind = "sequential" if model.is_sequential else "combinational"
        return FormalReport(
            mode=mode, status="verified", bound=n_cycles,
            detail=f"{kind} design, all outputs defined",
            n_inputs=sum(s.width for s in model.data_inputs()),
            n_outputs=sum(s.width for s in model.outputs()),
            n_state_bits=sum(model.design.signals[n].width
                             for n in model.state_names),
            n_bdd_nodes=len(mgr),
        )
    except BDDBudgetError:
        return _unsupported_report(mode, "BDD node budget exceeded", bound)
    except FormalUnsupported as exc:
        return _unsupported_report(mode, exc.reason, bound)


def verify_code(code: str, bound: int = 2,
                node_budget: int = DEFAULT_NODE_BUDGET) -> Tuple[bool, str]:
    """Curation convenience: ``(verified, detail)`` for raw source.

    Never raises — any parse/elaboration/unsupported outcome is a
    ``(False, reason)`` verdict.
    """
    try:
        report = verify_design(code, bound=bound, node_budget=node_budget)
    except Exception as exc:  # pragma: no cover - defensive
        return False, f"{type(exc).__name__}: {exc}"
    if report.status == "verified":
        return True, report.detail
    return False, f"{report.status}: {report.detail}"


__all__ = [
    "DEFAULT_BOUND",
    "FORMAL_REPORT_SCHEMA",
    "DesignModel",
    "FormalReport",
    "check_equivalence",
    "check_properties",
    "verify_code",
    "verify_design",
]
