"""Event-driven simulation kernel.

The kernel owns the elaborated design's runtime state (signal values,
memories, net driver contributions) and implements the stratified event
queue of IEEE 1364: an *active* region of runnable processes, an *NBA*
region of pending non-blocking updates, and a time wheel of suspended
threads.  One call to :meth:`settle` drains the current simulation time
(active → NBA → active …); :meth:`advance` moves time forward to the
next scheduled thread event.

Process kinds:

* ``CombProcess`` — continuous assigns and level-sensitive always
  blocks; re-run whenever a signal in their sensitivity set changes.
  Continuous assigns drive *nets* through per-driver contributions that
  are resolved (z = released, conflicting known values = x).
* ``EdgeProcess`` — edge-triggered always blocks; run atomically when a
  matching edge occurs; their non-blocking assignments land in the NBA
  region.
* ``InitialProcess`` / ``TimedAlwaysProcess`` — generator-based threads
  that may suspend on ``#`` delays, ``@`` events, and ``wait``.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Deque, Dict, Generator, List, Optional, Sequence, Set, Tuple

from .. import ast_nodes as ast
from .design import (
    CombProcess,
    Design,
    EdgeProcess,
    InitialProcess,
    Scope,
    Signal,
    SignalBinding,
    TimedAlwaysProcess,
)
from .eval import Evaluator
from .interp import (
    FunctionMachine,
    Interpreter,
    SimulationError,
    StopSimulation,
    WriteOp,
    declare_frame_local,
    resolve_lvalue,
    run_function,
    split_value_for_ops,
)
from .values import Vec4

#: Cap on process activations within one simulation time before the
#: kernel declares a combinational oscillation.
MAX_ACTIVATIONS_PER_SLOT = 20_000

#: Default cap on simulated time.
MAX_SIM_TIME = 10_000_000


def _is_posedge(old: str, new: str) -> bool:
    return old != new and (old == "0" or new == "1")


def _is_negedge(old: str, new: str) -> bool:
    return old != new and (old == "1" or new == "0")


class _Thread:
    """A suspended initial/timed-always process."""

    __slots__ = ("gen", "proc_index", "done", "restart_body")

    def __init__(self, gen: Generator, proc_index: int,
                 restart_body: bool = False) -> None:
        self.gen = gen
        self.proc_index = proc_index
        self.done = False
        self.restart_body = restart_body


class Kernel:
    """Runtime state and event loop for one elaborated design."""

    def __init__(self, design: Design, seed: int = 0) -> None:
        self.design = design
        self.signals = design.signals  # used by Evaluator hierarchical probes
        self.time = 0
        self.finished = False
        self.display_output: List[str] = []
        self._rng_state = (seed * 6364136223846793005 + 1442695040888963407) & (
            (1 << 64) - 1
        )

        self._values: Dict[str, Vec4] = {}
        self._memories: Dict[str, List[Vec4]] = {}
        self._driver_contribs: Dict[str, Dict[int, Vec4]] = {}
        self._local_signals: Dict[str, Signal] = {}
        self._local_memories: Dict[str, List[Vec4]] = {}

        self._comb_sens: Dict[str, List[int]] = {}
        self._edge_sens: Dict[str, List[Tuple[int, str]]] = {}
        self._active: Deque = deque()
        self._in_active: Set[int] = set()
        self._nba: List[Tuple[Sequence[WriteOp], Vec4]] = []
        #: heap of (time, seq, thread)
        self._timewheel: List[Tuple[int, int, _Thread]] = []
        self._heap_seq = 0
        #: threads blocked on @(...) or wait(): thread -> (sens, scope) kind
        self._event_waiters: List[Tuple[_Thread, object, Scope, str]] = []

        self.evaluator = Evaluator(self, self._call_function)
        self._interp = Interpreter(self)
        self._activation_budget = MAX_ACTIVATIONS_PER_SLOT
        self._charge_budget = 10_000_000
        #: Index of the always-block comb process currently executing.
        #: Its own blocking writes must not retrigger it (the @* control
        #: re-arms only after the body completes — LRM 9.7.5).
        self._running_always: Optional[int] = None

        self._init_state()
        self._index_processes()

    # -- store interface (used by Evaluator) ---------------------------------

    def read(self, signal: Signal) -> Vec4:
        value = self._values.get(signal.name)
        if value is None:
            return Vec4.all_x(signal.width, signal.signed)
        return value

    def read_mem(self, signal: Signal, index: int) -> Vec4:
        mem = self._memories.get(signal.name)
        if mem is None or index < 0 or index >= len(mem):
            return Vec4.all_x(signal.width)
        return mem[index]

    def now(self) -> int:
        return self.time

    def random(self) -> int:
        self._rng_state = (
            self._rng_state * 6364136223846793005 + 1442695040888963407
        ) & ((1 << 64) - 1)
        return (self._rng_state >> 24) & 0xFFFFFFFF

    # -- machine interface (used by Interpreter) ---------------------------

    def charge(self, amount: int) -> None:
        self._charge_budget -= amount
        if self._charge_budget <= 0:
            raise SimulationError("simulation execution budget exceeded")

    def eval(self, expr: ast.Expr, scope: Scope,
             ctx_width: Optional[int] = None) -> Vec4:
        return self.evaluator.eval(expr, scope, ctx_width)

    def write(self, ops: Sequence[WriteOp], value: Vec4,
              blocking: bool) -> None:
        if not blocking:
            self._nba.append((ops, value))
            return
        pieces = split_value_for_ops(value, ops)
        for op, piece in zip(ops, pieces):
            self._apply_write(op, piece)

    def declare_local(self, decl: ast.Decl, scope: Scope) -> None:
        """Create a persistent block-local variable on first entry."""
        key = scope.flat_name(decl.name)
        existing = self._local_signals.get(key)
        if existing is not None:
            scope.bind(decl.name, SignalBinding(signal=existing))
            return
        msb = lsb = 0
        width = 1
        signed = decl.signed
        if decl.kind == "integer":
            width, msb, lsb, signed = 32, 31, 0, True
        elif decl.range is not None:
            msb = self.evaluator.eval_const_int(decl.range.msb, scope)
            lsb = self.evaluator.eval_const_int(decl.range.lsb, scope)
            width = abs(msb - lsb) + 1
        signal = Signal(name=key, width=width, signed=signed, kind="var",
                        msb=msb, lsb=lsb)
        self._local_signals[key] = signal
        self._values[key] = Vec4.all_x(width, signed)
        scope.bind(decl.name, SignalBinding(signal=signal))

    def system_task(self, stmt: ast.SystemTaskCall, scope: Scope) -> None:
        name = stmt.name
        if name in ("$display", "$write", "$strobe", "$monitor",
                    "$displayb", "$displayh", "$error", "$warning",
                    "$info", "$fatal"):
            text = self._format_display(stmt.args, scope)
            self.display_output.append(text)
            if name == "$fatal":
                raise StopSimulation("$fatal")
            return
        if name in ("$finish", "$stop"):
            raise StopSimulation(name)
        if name in ("$readmemh", "$readmemb", "$dumpfile", "$dumpvars",
                    "$dumpon", "$dumpoff", "$timeformat", "$monitoron",
                    "$monitoroff", "$random", "$srandom"):
            return  # accepted and ignored
        raise SimulationError(f"unsupported system task {name!r}")

    def _call_function(self, binding, args: List[Vec4]) -> Vec4:
        return run_function(binding, args, self, self)

    # -- initialisation ------------------------------------------------------

    def _init_state(self) -> None:
        for signal in self.design.signals.values():
            if signal.is_memory:
                self._memories[signal.name] = [
                    Vec4.all_x(signal.width, signal.signed)
                    for _ in range(signal.array_size)
                ]
                continue
            if signal.kind == "net" and signal.name not in self.design.inputs:
                self._values[signal.name] = Vec4.all_z(signal.width,
                                                       signal.signed)
                self._driver_contribs[signal.name] = {}
            else:
                self._values[signal.name] = Vec4.all_x(signal.width,
                                                       signal.signed)

    def _index_processes(self) -> None:
        for index, proc in enumerate(self.design.processes):
            if isinstance(proc, CombProcess):
                for name in proc.sensitivity:
                    self._comb_sens.setdefault(name, []).append(index)
            elif isinstance(proc, EdgeProcess):
                for edge, name in proc.triggers:
                    self._edge_sens.setdefault(name, []).append((index, edge))

    def initialize(self) -> None:
        """Time-zero start-up: run every comb process once, launch
        threads, then settle."""
        for index, proc in enumerate(self.design.processes):
            if isinstance(proc, CombProcess):
                self._schedule_proc(index)
        for index, proc in enumerate(self.design.processes):
            if isinstance(proc, InitialProcess):
                thread = _Thread(
                    self._interp.exec_stmt(proc.body, proc.scope), index
                )
                self._run_thread(thread)
            elif isinstance(proc, TimedAlwaysProcess):
                thread = _Thread(
                    self._interp.exec_stmt(proc.body, proc.scope), index,
                    restart_body=True,
                )
                self._run_thread(thread)
        self.settle()

    # -- scheduling primitives -------------------------------------------------

    def _schedule_proc(self, index: int) -> None:
        if index in self._in_active or index == self._running_always:
            return
        self._in_active.add(index)
        self._active.append(index)

    def _notify_change(self, name: str, old: Vec4, new: Vec4) -> None:
        for index in self._comb_sens.get(name, ()):
            self._schedule_proc(index)
        edge_list = self._edge_sens.get(name)
        if edge_list:
            old_bit = old.bit(0)
            new_bit = new.bit(0)
            pos = _is_posedge(old_bit, new_bit)
            neg = _is_negedge(old_bit, new_bit)
            for index, edge in edge_list:
                if (edge == "posedge" and pos) or (edge == "negedge" and neg):
                    self._schedule_proc(index)
        if self._event_waiters:
            self._wake_event_waiters(name, old, new)

    def _notify_memory_change(self, name: str) -> None:
        for index in self._comb_sens.get(name, ()):
            self._schedule_proc(index)

    def _wake_event_waiters(self, name: str, old: Vec4, new: Vec4) -> None:
        still_waiting: List[Tuple[_Thread, object, Scope, str]] = []
        to_wake: List[_Thread] = []
        for entry in self._event_waiters:
            thread, payload, scope, kind = entry
            woke = False
            if kind == "event":
                sens = payload
                if sens.star:
                    woke = True
                else:
                    for item in sens.items:
                        sig = self._sens_signal(item.expr, scope)
                        if sig is None or sig.name != name:
                            continue
                        old_bit, new_bit = old.bit(0), new.bit(0)
                        if item.edge == "posedge":
                            woke = _is_posedge(old_bit, new_bit)
                        elif item.edge == "negedge":
                            woke = _is_negedge(old_bit, new_bit)
                        else:
                            woke = True
                        if woke:
                            break
            else:  # wait: recheck on any change of a read signal
                woke = True
            if woke:
                to_wake.append(thread)
            else:
                still_waiting.append(entry)
        if to_wake:
            self._event_waiters = still_waiting
            for thread in to_wake:
                self._active.append(thread)

    def _sens_signal(self, expr: ast.Expr, scope: Scope) -> Optional[Signal]:
        if isinstance(expr, ast.Identifier):
            binding = scope.lookup(expr.name)
            if isinstance(binding, SignalBinding):
                return binding.signal
        return None

    # -- writes ------------------------------------------------------------

    def _apply_write(self, op: WriteOp, value: Vec4) -> None:
        if op.oob:
            return
        signal = op.signal
        if signal.kind == "net" and signal.name not in self.design.inputs:
            raise SimulationError(
                f"procedural assignment to net {signal.name!r}"
            )
        if op.mem_index is not None:
            mem = self._memories[signal.name]
            current = mem[op.mem_index]
            if op.hi == signal.width - 1 and op.lo == 0:
                new = value.resize(signal.width, signal.signed)
            else:
                new = current.set_slice(op.hi, op.lo, value)
            if new != current:
                mem[op.mem_index] = new
                self._notify_memory_change(signal.name)
            return
        current = self._values[signal.name]
        if op.hi == signal.width - 1 and op.lo == 0:
            new = value.resize(signal.width, signal.signed)
            new = Vec4(signal.width, new.val, new.xz, new.z, signal.signed)
        else:
            new = current.set_slice(op.hi, op.lo, value)
        if new != current:
            self._values[signal.name] = new
            self._notify_change(signal.name, current, new)

    def poke(self, signal: Signal, value: Vec4) -> None:
        """External (testbench) write to a top-level input or variable."""
        current = self._values[signal.name]
        new = value.resize(signal.width, signal.signed)
        new = Vec4(signal.width, new.val, new.xz, new.z, signal.signed)
        if new != current:
            self._values[signal.name] = new
            self._notify_change(signal.name, current, new)

    # -- net driver resolution ---------------------------------------------

    def _set_driver(self, signal: Signal, driver_id: int,
                    contribution: Vec4) -> None:
        contribs = self._driver_contribs.setdefault(signal.name, {})
        previous = contribs.get(driver_id)
        if previous is not None and previous == contribution:
            return
        contribs[driver_id] = contribution
        resolved = self._resolve_net(signal, contribs)
        current = self._values[signal.name]
        if resolved != current:
            self._values[signal.name] = resolved
            self._notify_change(signal.name, current, resolved)

    @staticmethod
    def _resolve_net(signal: Signal, contribs: Dict[int, Vec4]) -> Vec4:
        full = (1 << signal.width) - 1
        res_val, res_x, res_z = 0, 0, full
        for contrib in contribs.values():
            c_drive = full & ~contrib.z
            c_x = contrib.xz & c_drive
            both = c_drive & ~res_z
            only_c = c_drive & res_z
            conflict = both & ((res_val ^ contrib.val) | res_x | c_x)
            new_val = (res_val & ~res_z & ~conflict) | (contrib.val & only_c)
            new_x = (res_x & ~res_z) | (c_x & only_c) | conflict
            res_z &= ~c_drive
            res_val = new_val & ~new_x
            res_x = new_x
        return Vec4(signal.width, res_val, res_x | res_z, res_z,
                    signal.signed)

    # -- process execution -----------------------------------------------------

    def _run_comb(self, proc: CombProcess) -> None:
        if proc.assign is not None:
            target, value_expr = proc.assign
            target_scope = proc.target_scope or proc.scope
            ops = resolve_lvalue(target, target_scope, self.evaluator)
            total = sum(op.width for op in ops)
            value = self.eval(value_expr, proc.scope, ctx_width=total)
            if value.width < total:
                value = value.resize(total, value.signed)
            pieces = split_value_for_ops(value, ops)
            for op, piece in zip(ops, pieces):
                if op.oob:
                    continue
                if op.signal.kind == "net" and (
                    op.signal.name not in self.design.inputs
                ):
                    contribution = self._contribution_for(op, piece)
                    self._set_driver(op.signal, proc.driver_id, contribution)
                else:
                    self._apply_write(op, piece)
            return
        self._interp.run_atomic(proc.body, proc.scope)

    @staticmethod
    def _contribution_for(op: WriteOp, piece: Vec4) -> Vec4:
        """Full-width driver contribution: z outside the driven slice."""
        signal = op.signal
        base = Vec4.all_z(signal.width)
        if op.hi == signal.width - 1 and op.lo == 0:
            resized = piece.resize(signal.width)
            return Vec4(signal.width, resized.val, resized.xz, resized.z)
        return base.set_slice(op.hi, op.lo, piece)

    def _run_edge(self, proc: EdgeProcess) -> None:
        self._interp.run_atomic(proc.body, proc.scope)

    def _run_thread(self, thread: _Thread) -> None:
        if thread.done or self.finished:
            return
        try:
            suspension = next(thread.gen)
        except StopIteration:
            if thread.restart_body:
                proc = self.design.processes[thread.proc_index]
                has_timing = _body_has_timing(proc.body)
                if not has_timing:
                    raise SimulationError(
                        "always block without sensitivity or timing "
                        f"controls (line {proc.line})"
                    )
                thread.gen = self._interp.exec_stmt(proc.body, proc.scope)
                self._active.append(thread)
            else:
                thread.done = True
            return
        except StopSimulation:
            self.finished = True
            thread.done = True
            return
        kind = suspension[0]
        if kind == "delay":
            ticks = max(int(suspension[1]), 0)
            if ticks == 0:
                self._active.append(thread)
            else:
                self._heap_seq += 1
                heapq.heappush(
                    self._timewheel,
                    (self.time + ticks, self._heap_seq, thread),
                )
            return
        if kind == "event":
            self._event_waiters.append(
                (thread, suspension[1], suspension[2], "event")
            )
            return
        if kind == "wait":
            self._event_waiters.append(
                (thread, suspension[1], suspension[2], "wait")
            )
            return
        raise SimulationError(f"unknown suspension {kind!r}")

    # -- event loop ------------------------------------------------------------

    def settle(self) -> None:
        """Drain the current time slot: active region, then NBA, repeat."""
        activations = 0
        while True:
            while self._active:
                if self.finished:
                    self._active.clear()
                    self._in_active.clear()
                    self._nba.clear()
                    return
                entry = self._active.popleft()
                activations += 1
                if activations > MAX_ACTIVATIONS_PER_SLOT:
                    raise SimulationError(
                        "combinational loop: too many activations in one "
                        "time slot"
                    )
                if isinstance(entry, _Thread):
                    self._run_thread(entry)
                    continue
                self._in_active.discard(entry)
                proc = self.design.processes[entry]
                try:
                    if isinstance(proc, CombProcess):
                        if proc.body is not None:
                            self._running_always = entry
                        try:
                            self._run_comb(proc)
                        finally:
                            self._running_always = None
                    elif isinstance(proc, EdgeProcess):
                        self._run_edge(proc)
                except StopSimulation:
                    self.finished = True
                    return
            if not self._nba:
                return
            batch, self._nba = self._nba, []
            for ops, value in batch:
                pieces = split_value_for_ops(value, ops)
                for op, piece in zip(ops, pieces):
                    self._apply_write(op, piece)

    def advance(self) -> bool:
        """Advance time to the next scheduled thread event.

        Returns False when nothing remains scheduled."""
        self.settle()
        if self.finished or not self._timewheel:
            return False
        next_time, _, _ = self._timewheel[0]
        if next_time > MAX_SIM_TIME:
            return False
        self.time = next_time
        while self._timewheel and self._timewheel[0][0] == self.time:
            _, _, thread = heapq.heappop(self._timewheel)
            self._active.append(thread)
        self.settle()
        return True

    def run(self, max_time: Optional[int] = None) -> None:
        """Run until the time wheel drains or ``max_time`` is reached."""
        limit = MAX_SIM_TIME if max_time is None else max_time
        self.settle()
        while not self.finished and self._timewheel:
            if self._timewheel[0][0] > limit:
                return
            self.advance()

    # -- $display formatting ---------------------------------------------------

    def _format_display(self, args: List[ast.Expr], scope: Scope) -> str:
        if not args:
            return ""
        first = args[0]
        values = [self.eval(a, scope) if not isinstance(a, ast.StringLiteral)
                  else a.value
                  for a in args]
        if isinstance(first, ast.StringLiteral):
            return _format_verilog(first.value, values[1:], self.time)
        parts = []
        for value in values:
            if isinstance(value, str):
                parts.append(value)
            elif value.has_unknown:
                parts.append(value.to_bit_string())
            else:
                parts.append(str(value.signed_value()))
        return " ".join(parts)


def _format_verilog(fmt: str, values: List, time: int) -> str:
    """Subset of $display format handling: %d %b %h %o %c %s %t %m %%."""
    out: List[str] = []
    value_iter = iter(values)
    index = 0
    while index < len(fmt):
        ch = fmt[index]
        if ch != "%":
            out.append(ch)
            index += 1
            continue
        index += 1
        # Optional width / zero flags.
        width_txt = ""
        while index < len(fmt) and (fmt[index].isdigit()):
            width_txt += fmt[index]
            index += 1
        if index >= len(fmt):
            out.append("%")
            break
        spec = fmt[index].lower()
        index += 1
        if spec == "%":
            out.append("%")
            continue
        if spec == "m":
            out.append("top")
            continue
        if spec == "t":
            out.append(str(time))
            continue
        try:
            value = next(value_iter)
        except StopIteration:
            out.append("%" + spec)
            continue
        if isinstance(value, str):
            out.append(value)
            continue
        if spec == "d":
            if value.has_unknown:
                text = "x"
            else:
                text = str(value.signed_value())
        elif spec == "b":
            text = value.to_bit_string()
        elif spec in ("h", "x"):
            text = _radix_text(value, 4)
        elif spec == "o":
            text = _radix_text(value, 3)
        elif spec == "c":
            text = chr(value.val & 0xFF) if not value.has_unknown else "x"
        elif spec == "s":
            raw = value.val
            chars = []
            while raw:
                chars.append(chr(raw & 0xFF))
                raw >>= 8
            text = "".join(reversed(chars))
        else:
            text = value.to_bit_string()
        if width_txt and width_txt != "0":
            text = text.rjust(int(width_txt))
        out.append(text)
    return "".join(out)


def _radix_text(value: Vec4, bits_per_digit: int) -> str:
    digits: List[str] = []
    width = value.width
    pos = 0
    while pos < width:
        hi = min(pos + bits_per_digit - 1, width - 1)
        chunk = value.slice(hi, pos)
        if chunk.xz:
            if chunk.z == chunk.xz and chunk.val == 0:
                digits.append("z")
            else:
                digits.append("x")
        else:
            digits.append(format(chunk.val, "x"))
        pos += bits_per_digit
    return "".join(reversed(digits))


def _body_has_timing(stmt: Optional[ast.Stmt]) -> bool:
    """Does a statement tree contain #, @, or wait controls?"""
    if stmt is None:
        return False
    if isinstance(stmt, (ast.Delay, ast.EventControl, ast.Wait)):
        return True
    children: List[Optional[ast.Stmt]] = []
    if isinstance(stmt, ast.Block):
        children = list(stmt.stmts)
    elif isinstance(stmt, ast.If):
        children = [stmt.then_stmt, stmt.else_stmt]
    elif isinstance(stmt, ast.Case):
        children = [item.body for item in stmt.items]
    elif isinstance(stmt, (ast.For, ast.While, ast.Repeat, ast.Forever)):
        children = [stmt.body]
    return any(_body_has_timing(child) for child in children)
