"""Procedural-statement interpreter.

Statements execute against a *machine* — the simulation kernel or a
function-call frame — through a narrow interface:

* ``eval(expr, scope, ctx_width)`` — expression evaluation;
* ``write(target, scope, value, blocking)`` — lvalue assignment;
* ``system_task(stmt, scope)`` — ``$display`` and friends;
* ``charge(n)`` — consume execution budget (runaway-loop guard).

Execution is generator-based: timing controls (``#``, ``@``, ``wait``)
``yield`` suspension requests that the kernel turns into scheduler
events.  Combinational and edge-triggered processes must run without
suspending; the kernel enforces that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Sequence, Tuple

from .. import ast_nodes as ast
from .design import (
    ConstBinding,
    FuncBinding,
    Scope,
    Signal,
    SignalBinding,
    TaskBinding,
)
from .eval import ConstStore, EvalError, Evaluator
from .values import Vec4, concat_all


class SimulationError(Exception):
    """Raised for runtime semantic errors (x index writes aside) and
    exceeded execution budgets."""


class StopSimulation(Exception):
    """Raised by ``$finish`` / ``$stop``."""


#: A suspension request produced by a timing control.
#: kinds: ("delay", ticks) | ("event", SensitivityList, scope)
#:        | ("wait", cond_expr, scope)
Suspension = Tuple


@dataclass
class WriteOp:
    """One resolved slice of an lvalue.

    ``mem_index`` is the zero-based element offset for memories.  ``hi``
    and ``lo`` are physical bit positions within the element/signal; a
    full write has ``hi == width-1, lo == 0``.  ``oob`` marks writes
    whose index fell outside the target (silently dropped, per LRM).
    """

    signal: Signal
    mem_index: Optional[int]
    hi: int
    lo: int
    oob: bool = False

    @property
    def width(self) -> int:
        return self.hi - self.lo + 1


def resolve_lvalue(
    expr: ast.Expr, scope: Scope, evaluator: Evaluator
) -> List[WriteOp]:
    """Flatten an lvalue into MSB-first :class:`WriteOp` slices."""
    if isinstance(expr, ast.Concat):
        ops: List[WriteOp] = []
        for part in expr.parts:
            ops.extend(resolve_lvalue(part, scope, evaluator))
        return ops
    if isinstance(expr, (ast.Identifier, ast.HierarchicalId)):
        signal = _lookup_signal(expr, scope, evaluator)
        if signal.is_memory:
            raise SimulationError(
                f"memory {signal.name!r} assigned without an index"
            )
        return [WriteOp(signal, None, signal.width - 1, 0)]
    if isinstance(expr, ast.Select):
        return _resolve_select_lvalue(expr, scope, evaluator)
    raise SimulationError(
        f"invalid assignment target {type(expr).__name__}"
    )


def _lookup_signal(
    expr: ast.Expr, scope: Scope, evaluator: Evaluator
) -> Signal:
    if isinstance(expr, ast.Identifier):
        binding = scope.lookup(expr.name)
        if isinstance(binding, SignalBinding):
            return binding.signal
        raise SimulationError(f"cannot assign to {expr.name!r}")
    if isinstance(expr, ast.HierarchicalId):
        return evaluator._resolve_hierarchical(expr, scope)
    raise SimulationError("invalid assignment target")


def _resolve_select_lvalue(
    expr: ast.Select, scope: Scope, evaluator: Evaluator
) -> List[WriteOp]:
    # Memory element target: mem[idx] or mem[idx][hi:lo].
    base = expr.base
    mem_index: Optional[int] = None
    if isinstance(base, ast.Select) and isinstance(base.base, ast.Identifier):
        inner_sig = _binding_signal(base.base, scope)
        if inner_sig is not None and inner_sig.is_memory and base.kind == "bit":
            index_val = evaluator.eval(base.left, scope)
            if index_val.has_unknown:
                return [WriteOp(inner_sig, None, inner_sig.width - 1, 0,
                                oob=True)]
            mem_index = (index_val.to_int() - inner_sig.array_min)
            if mem_index < 0 or mem_index >= inner_sig.array_size:
                return [WriteOp(inner_sig, None, inner_sig.width - 1, 0,
                                oob=True)]
            signal = inner_sig
            return _select_bits(expr, signal, mem_index, scope, evaluator)
    if isinstance(base, ast.Identifier):
        signal = _binding_signal(base, scope)
        if signal is None:
            raise SimulationError(f"cannot assign to {base.name!r}")
        if signal.is_memory:
            if expr.kind != "bit":
                raise SimulationError(
                    f"memory {signal.name!r} needs an element index"
                )
            index_val = evaluator.eval(expr.left, scope)
            if index_val.has_unknown:
                return [WriteOp(signal, None, signal.width - 1, 0, oob=True)]
            mem_index = index_val.to_int() - signal.array_min
            if mem_index < 0 or mem_index >= signal.array_size:
                return [WriteOp(signal, None, signal.width - 1, 0, oob=True)]
            return [WriteOp(signal, mem_index, signal.width - 1, 0)]
        return _select_bits(expr, signal, None, scope, evaluator)
    raise SimulationError("unsupported nested lvalue select")


def _binding_signal(ident: ast.Identifier, scope: Scope) -> Optional[Signal]:
    binding = scope.lookup(ident.name)
    if isinstance(binding, SignalBinding):
        return binding.signal
    return None


def _select_bits(
    expr: ast.Select,
    signal: Signal,
    mem_index: Optional[int],
    scope: Scope,
    evaluator: Evaluator,
) -> List[WriteOp]:
    if expr.kind == "bit":
        index_val = evaluator.eval(expr.left, scope)
        if index_val.has_unknown:
            return [WriteOp(signal, mem_index, signal.width - 1, 0, oob=True)]
        raw = (index_val.to_signed_int() if index_val.signed
               else index_val.to_int())
        pos = signal.bit_position(raw)
        if pos < 0 or pos >= signal.width:
            return [WriteOp(signal, mem_index, 0, 0, oob=True)]
        return [WriteOp(signal, mem_index, pos, pos)]
    if expr.kind == "part":
        msb_i = evaluator.eval_const_int(expr.left, scope)
        lsb_i = evaluator.eval_const_int(expr.right, scope)
        hi = signal.bit_position(msb_i)
        lo = signal.bit_position(lsb_i)
        if hi < lo:
            hi, lo = lo, hi
        if lo < 0 or hi >= signal.width:
            return [WriteOp(signal, mem_index, max(hi, 0),
                            max(lo, 0), oob=True)]
        return [WriteOp(signal, mem_index, hi, lo)]
    # Indexed part select.
    width = evaluator.eval_const_int(expr.right, scope)
    start = evaluator.eval(expr.left, scope)
    if start.has_unknown:
        return [WriteOp(signal, mem_index, signal.width - 1, 0, oob=True)]
    start_i = start.to_int()
    ascending = signal.msb < signal.lsb
    if expr.kind == "plus":
        lo_idx, hi_idx = start_i, start_i + width - 1
        if ascending:
            lo_idx, hi_idx = start_i + width - 1, start_i
    else:
        lo_idx, hi_idx = start_i - width + 1, start_i
        if ascending:
            lo_idx, hi_idx = start_i, start_i - width + 1
    hi = signal.bit_position(hi_idx)
    lo = signal.bit_position(lo_idx)
    if hi < lo:
        hi, lo = lo, hi
    if lo < 0 or hi >= signal.width:
        return [WriteOp(signal, mem_index, max(hi, 0), max(lo, 0), oob=True)]
    return [WriteOp(signal, mem_index, hi, lo)]


def split_value_for_ops(value: Vec4, ops: Sequence[WriteOp]) -> List[Vec4]:
    """Distribute ``value`` across MSB-first write slices."""
    total = sum(op.width for op in ops)
    value = value.resize(total) if value.width < total else value
    pieces: List[Vec4] = []
    offset = total
    for op in ops:
        offset -= op.width
        pieces.append(value.slice(offset + op.width - 1, offset))
    return pieces


# ---------------------------------------------------------------------------
# Statement execution
# ---------------------------------------------------------------------------

#: Iteration cap for procedural loops.
MAX_LOOP_ITERATIONS = 1_000_000


class Interpreter:
    """Executes statements against a machine object."""

    def __init__(self, machine) -> None:
        self._machine = machine

    def run_atomic(self, stmt: Optional[ast.Stmt], scope: Scope) -> None:
        """Execute a statement that must not suspend (comb/edge body)."""
        gen = self.exec_stmt(stmt, scope)
        for suspension in gen:
            raise SimulationError(
                "timing control inside a combinational or edge-triggered "
                f"process (suspension {suspension[0]!r})"
            )

    def exec_stmt(
        self, stmt: Optional[ast.Stmt], scope: Scope
    ) -> Generator[Suspension, None, None]:
        """Execute one statement, yielding timing-control suspensions."""
        if stmt is None:
            return
        machine = self._machine
        machine.charge(1)
        if isinstance(stmt, ast.Block):
            block_scope = scope
            if stmt.decls:
                block_scope = scope.child(stmt.name or "__blk")
                for decl in stmt.decls:
                    machine.declare_local(decl, block_scope)
            for inner in stmt.stmts:
                yield from self.exec_stmt(inner, block_scope)
            return
        if isinstance(stmt, ast.Assign):
            self._exec_assign(stmt, scope)
            return
        if isinstance(stmt, ast.If):
            cond = machine.eval(stmt.cond, scope)
            if cond.is_true():
                yield from self.exec_stmt(stmt.then_stmt, scope)
            else:
                yield from self.exec_stmt(stmt.else_stmt, scope)
            return
        if isinstance(stmt, ast.Case):
            yield from self._exec_case(stmt, scope)
            return
        if isinstance(stmt, ast.For):
            yield from self._exec_for(stmt, scope)
            return
        if isinstance(stmt, ast.While):
            iterations = 0
            while True:
                cond = machine.eval(stmt.cond, scope)
                if not cond.is_true():
                    return
                yield from self.exec_stmt(stmt.body, scope)
                iterations += 1
                machine.charge(1)
                if iterations > MAX_LOOP_ITERATIONS:
                    raise SimulationError("while loop exceeded iteration cap")
            return
        if isinstance(stmt, ast.Repeat):
            count = machine.eval(stmt.count, scope)
            if count.has_unknown:
                return
            for _ in range(min(count.to_int(), MAX_LOOP_ITERATIONS)):
                yield from self.exec_stmt(stmt.body, scope)
                machine.charge(1)
            return
        if isinstance(stmt, ast.Forever):
            iterations = 0
            while True:
                yield from self.exec_stmt(stmt.body, scope)
                iterations += 1
                machine.charge(1)
                if iterations > MAX_LOOP_ITERATIONS:
                    raise SimulationError(
                        "forever loop exceeded iteration cap"
                    )
            return
        if isinstance(stmt, ast.Delay):
            amount = machine.eval(stmt.amount, scope)
            ticks = 0 if amount.has_unknown else amount.to_int()
            yield ("delay", ticks)
            yield from self.exec_stmt(stmt.stmt, scope)
            return
        if isinstance(stmt, ast.EventControl):
            yield ("event", stmt.sensitivity, scope)
            yield from self.exec_stmt(stmt.stmt, scope)
            return
        if isinstance(stmt, ast.Wait):
            cond = machine.eval(stmt.cond, scope)
            while not cond.is_true():
                yield ("wait", stmt.cond, scope)
                cond = machine.eval(stmt.cond, scope)
            yield from self.exec_stmt(stmt.stmt, scope)
            return
        if isinstance(stmt, ast.SystemTaskCall):
            machine.system_task(stmt, scope)
            return
        if isinstance(stmt, ast.TaskCall):
            yield from self._exec_task_call(stmt, scope)
            return
        if isinstance(stmt, (ast.NullStmt, ast.Disable)):
            return
        raise SimulationError(
            f"unsupported statement {type(stmt).__name__}"
        )

    # -- pieces ------------------------------------------------------------

    def _exec_assign(self, stmt: ast.Assign, scope: Scope) -> None:
        machine = self._machine
        ops = resolve_lvalue(stmt.target, scope, machine.evaluator)
        total = sum(op.width for op in ops)
        signed_target = len(ops) == 1 and ops[0].signal.signed
        value = machine.eval(stmt.value, scope, ctx_width=total)
        value = value.resize(total, value.signed) if value.width < total else value
        if signed_target:
            value = value.as_signed(True)
        machine.write(ops, value, blocking=stmt.blocking)

    def _exec_case(
        self, stmt: ast.Case, scope: Scope
    ) -> Generator[Suspension, None, None]:
        machine = self._machine
        subject = machine.eval(stmt.subject, scope)
        default_item: Optional[ast.CaseItem] = None
        for item in stmt.items:
            if not item.exprs:
                default_item = item
                continue
            for expr in item.exprs:
                label = machine.eval(expr, scope)
                if _case_match(stmt.kind, subject, label):
                    yield from self.exec_stmt(item.body, scope)
                    return
        if default_item is not None:
            yield from self.exec_stmt(default_item.body, scope)

    def _exec_for(
        self, stmt: ast.For, scope: Scope
    ) -> Generator[Suspension, None, None]:
        machine = self._machine
        if stmt.init is not None:
            self._exec_assign(stmt.init, scope)
        iterations = 0
        while True:
            if stmt.cond is not None:
                cond = machine.eval(stmt.cond, scope)
                if not cond.is_true():
                    return
            yield from self.exec_stmt(stmt.body, scope)
            if stmt.step is not None:
                self._exec_assign(stmt.step, scope)
            iterations += 1
            machine.charge(1)
            if iterations > MAX_LOOP_ITERATIONS:
                raise SimulationError("for loop exceeded iteration cap")

    def _exec_task_call(
        self, stmt: ast.TaskCall, scope: Scope
    ) -> Generator[Suspension, None, None]:
        machine = self._machine
        binding = scope.lookup(stmt.name)
        if not isinstance(binding, TaskBinding):
            raise SimulationError(f"unknown task {stmt.name!r}")
        decl = binding.decl
        formals = decl.inputs + decl.outputs
        if len(stmt.args) != len(formals):
            raise SimulationError(
                f"task {stmt.name!r} expects {len(formals)} args, "
                f"got {len(stmt.args)}"
            )
        task_scope = binding.scope.child(f"__task_{stmt.name}")
        for decl_item in decl.inputs + decl.outputs + decl.locals:
            machine.declare_local(decl_item, task_scope)
        for formal, actual in zip(decl.inputs, stmt.args):
            value = machine.eval(actual, scope)
            machine.write(
                resolve_lvalue(
                    ast.Identifier(name=formal.name), task_scope,
                    machine.evaluator,
                ),
                value,
                blocking=True,
            )
        yield from self.exec_stmt(decl.body, task_scope)
        for formal, actual in zip(
            decl.outputs, stmt.args[len(decl.inputs):]
        ):
            value = machine.eval(
                ast.Identifier(name=formal.name), task_scope
            )
            machine.write(
                resolve_lvalue(actual, scope, machine.evaluator),
                value,
                blocking=True,
            )


def _case_match(kind: str, subject: Vec4, label: Vec4) -> bool:
    """Case-item matching for case/casez/casex."""
    width = max(subject.width, label.width)
    a = subject.resize(width)
    b = label.resize(width)
    mask = (1 << width) - 1
    care = mask
    if kind == "casez":
        care &= ~a.z & ~b.z
    elif kind == "casex":
        care &= ~a.xz & ~b.xz
    if kind == "case":
        return a.val == b.val and a.xz == b.xz and a.z == b.z
    return (
        (a.val & care) == (b.val & care)
        and (a.xz & care) == (b.xz & care)
    )


# ---------------------------------------------------------------------------
# Function evaluation (shared by kernel and constant folding)
# ---------------------------------------------------------------------------


class _FrameStore:
    """Store overlay holding function/task local variables."""

    def __init__(self, base) -> None:
        self._base = base
        self.locals: Dict[int, Vec4] = {}
        self.local_mems: Dict[int, List[Vec4]] = {}
        self.signals = getattr(base, "signals", {})

    def is_local(self, signal: Signal) -> bool:
        return id(signal) in self.locals or id(signal) in self.local_mems

    def add_local(self, signal: Signal) -> None:
        if signal.is_memory:
            self.local_mems[id(signal)] = [
                Vec4.all_x(signal.width) for _ in range(signal.array_size)
            ]
        else:
            self.locals[id(signal)] = Vec4.all_x(signal.width, signal.signed)

    def read(self, signal: Signal) -> Vec4:
        if id(signal) in self.locals:
            return self.locals[id(signal)]
        return self._base.read(signal)

    def read_mem(self, signal: Signal, index: int) -> Vec4:
        mem = self.local_mems.get(id(signal))
        if mem is not None:
            if 0 <= index < len(mem):
                return mem[index]
            return Vec4.all_x(signal.width)
        return self._base.read_mem(signal, index)

    def write_local(self, op: WriteOp, value: Vec4) -> None:
        if op.oob:
            return
        if op.mem_index is not None:
            mem = self.local_mems[id(op.signal)]
            current = mem[op.mem_index]
            mem[op.mem_index] = current.set_slice(op.hi, op.lo, value)
            return
        current = self.locals[id(op.signal)]
        if op.hi == op.signal.width - 1 and op.lo == 0:
            self.locals[id(op.signal)] = value.resize(
                op.signal.width, op.signal.signed
            )
        else:
            self.locals[id(op.signal)] = current.set_slice(op.hi, op.lo, value)

    def now(self) -> int:
        return self._base.now()

    def random(self) -> int:
        return self._base.random()


class FunctionMachine:
    """Machine used while evaluating a user-defined function."""

    #: Shared budget pool so deep function recursion terminates.
    MAX_DEPTH = 64

    def __init__(self, base_store, base_machine=None, depth: int = 0) -> None:
        if depth > self.MAX_DEPTH:
            raise SimulationError("function recursion too deep")
        self._store = _FrameStore(base_store)
        self._base_machine = base_machine
        self._depth = depth
        self.evaluator = Evaluator(self._store, self._call_function)
        self._budget = 1_000_000

    # machine interface -----------------------------------------------------

    def charge(self, amount: int) -> None:
        self._budget -= amount
        if self._budget <= 0:
            raise SimulationError("function execution budget exceeded")
        if self._base_machine is not None:
            self._base_machine.charge(amount)

    def eval(self, expr: ast.Expr, scope: Scope,
             ctx_width: Optional[int] = None) -> Vec4:
        return self.evaluator.eval(expr, scope, ctx_width)

    def write(self, ops: Sequence[WriteOp], value: Vec4,
              blocking: bool) -> None:
        if not blocking:
            raise SimulationError("non-blocking assignment inside function")
        pieces = split_value_for_ops(value, ops)
        for op, piece in zip(ops, pieces):
            if not self._store.is_local(op.signal):
                raise SimulationError(
                    f"function writes non-local {op.signal.name!r}"
                )
            self._store.write_local(op, piece)

    def declare_local(self, decl: ast.Decl, scope: Scope) -> None:
        declare_frame_local(decl, scope, self._store, self.evaluator)

    def system_task(self, stmt: ast.SystemTaskCall, scope: Scope) -> None:
        if self._base_machine is not None:
            self._base_machine.system_task(stmt, scope)
        # Silently ignore $display inside constant functions.

    def _call_function(self, binding: FuncBinding, args: List[Vec4]) -> Vec4:
        return run_function(binding, args, self._store._base, self,
                            self._depth + 1)

    # function body execution ----------------------------------------------

    def execute(self, binding: FuncBinding, args: List[Vec4]) -> Vec4:
        decl = binding.decl
        if len(args) != len(decl.inputs):
            raise SimulationError(
                f"function {decl.name!r} expects {len(decl.inputs)} args, "
                f"got {len(args)}"
            )
        func_scope = binding.scope.child(f"__fn_{decl.name}")
        const_eval = self.evaluator
        # Return variable.
        if decl.range is not None:
            msb = const_eval.eval_const_int(decl.range.msb, binding.scope)
            lsb = const_eval.eval_const_int(decl.range.lsb, binding.scope)
            width = abs(msb - lsb) + 1
        else:
            msb = lsb = 0
            width = 1
        ret_signal = Signal(
            name=f"__ret_{decl.name}", width=width, signed=decl.signed,
            msb=msb, lsb=lsb,
        )
        self._store.add_local(ret_signal)
        func_scope.bind(decl.name, SignalBinding(signal=ret_signal))
        for formal, actual in zip(decl.inputs, args):
            declare_frame_local(formal, func_scope, self._store, const_eval)
            binding_f = func_scope.lookup(formal.name)
            assert isinstance(binding_f, SignalBinding)
            self._store.write_local(
                WriteOp(binding_f.signal, None,
                        binding_f.signal.width - 1, 0),
                actual.resize(binding_f.signal.width),
            )
        for local in decl.locals:
            declare_frame_local(local, func_scope, self._store, const_eval)
        interpreter = Interpreter(self)
        interpreter.run_atomic(decl.body, func_scope)
        return self._store.read(ret_signal)


def declare_frame_local(
    decl: ast.Decl, scope: Scope, store: _FrameStore, evaluator: Evaluator
) -> None:
    """Create a frame-local variable for ``decl`` and bind it."""
    msb = lsb = 0
    width = 1
    signed = decl.signed
    if decl.kind == "integer":
        width, msb, lsb, signed = 32, 31, 0, True
    elif decl.range is not None:
        msb = evaluator.eval_const_int(decl.range.msb, scope)
        lsb = evaluator.eval_const_int(decl.range.lsb, scope)
        width = abs(msb - lsb) + 1
    array_size = 0
    array_min = 0
    if decl.array_dims:
        lo = evaluator.eval_const_int(decl.array_dims[0].msb, scope)
        hi = evaluator.eval_const_int(decl.array_dims[0].lsb, scope)
        if lo > hi:
            lo, hi = hi, lo
        array_size = hi - lo + 1
        array_min = lo
    signal = Signal(
        name=f"__local_{decl.name}", width=width, signed=signed,
        msb=msb, lsb=lsb, array_size=array_size, array_min=array_min,
    )
    store.add_local(signal)
    scope.bind(decl.name, SignalBinding(signal=signal))


def run_function(
    binding: FuncBinding,
    args: List[Vec4],
    base_store,
    base_machine=None,
    depth: int = 0,
) -> Vec4:
    """Evaluate a user function call.

    Recursion beyond the depth cap returns all-x instead of failing:
    unknown inputs can drive unbounded recursion (``fact(x)``), and in
    real Verilog non-automatic functions produce garbage there rather
    than aborting the simulation.
    """
    if depth > FunctionMachine.MAX_DEPTH:
        return Vec4.all_x(64, binding.decl.signed)
    machine = FunctionMachine(base_store, base_machine, depth)
    return machine.execute(binding, args)


def const_function_caller(binding: FuncBinding, args: List[Vec4]) -> Vec4:
    """Function caller for constant contexts (parameter folding)."""
    return run_function(binding, args, ConstStore())
