"""Expression evaluation over an elaborated design.

The evaluator resolves identifiers through :class:`~.design.Scope`
bindings and reads signal state through a *store* — any object with::

    read(signal: Signal) -> Vec4
    read_mem(signal: Signal, index: int) -> Vec4
    now() -> int            # current simulation time
    random() -> int         # deterministic $random source

Width and signedness follow a pragmatic subset of the IEEE 1364
self-determined/context-determined rules: arithmetic and bitwise
operators evaluate at the maximum operand width (extended to an outer
context width when one is supplied, e.g. the LHS width of an
assignment), comparisons and logical operators are self-determined,
concatenations are unsigned, and the result of any operator mixing an
unsigned operand is unsigned.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from .. import ast_nodes as ast
from .design import (
    ConstBinding,
    ElaborationError,
    FuncBinding,
    Scope,
    Signal,
    SignalBinding,
)
from .values import Vec4, concat_all


class EvalError(Exception):
    """Raised when an expression cannot be evaluated."""


class ConstStore:
    """A store for constant folding: any signal read is an error."""

    def read(self, signal: Signal) -> Vec4:
        raise EvalError(
            f"signal {signal.name!r} referenced in constant expression"
        )

    def read_mem(self, signal: Signal, index: int) -> Vec4:
        raise EvalError(
            f"memory {signal.name!r} referenced in constant expression"
        )

    def now(self) -> int:
        return 0

    def random(self) -> int:
        raise EvalError("$random in constant expression")


#: Signature of the callback used to evaluate user-function calls.
FuncCaller = Callable[[FuncBinding, List[Vec4]], Vec4]


class Evaluator:
    """Evaluates expressions against a store and scope."""

    def __init__(self, store, func_caller: Optional[FuncCaller] = None) -> None:
        self._store = store
        self._func_caller = func_caller

    # -- width/sign analysis ---------------------------------------------------

    def width_of(self, expr: ast.Expr, scope: Scope) -> Tuple[int, bool]:
        """Self-determined (width, signed) of ``expr``."""
        if isinstance(expr, ast.Number):
            if expr.width is not None:
                return expr.width, expr.signed
            return 32, expr.signed or expr.text.isdigit() or not expr.text
        if isinstance(expr, ast.RealNumber):
            return 64, True
        if isinstance(expr, ast.StringLiteral):
            return max(8 * len(expr.value), 8), False
        if isinstance(expr, ast.Identifier):
            binding = scope.lookup(expr.name)
            if binding is None:
                raise EvalError(f"unknown identifier {expr.name!r}")
            if isinstance(binding, ConstBinding):
                return binding.value.width, binding.value.signed
            if isinstance(binding, SignalBinding):
                return binding.signal.width, binding.signal.signed
            raise EvalError(f"{expr.name!r} is not a value")
        if isinstance(expr, ast.HierarchicalId):
            signal = self._resolve_hierarchical(expr, scope)
            return signal.width, signal.signed
        if isinstance(expr, ast.Select):
            if expr.kind == "bit":
                base_sig = self._memory_signal(expr.base, scope)
                if base_sig is not None:
                    return base_sig.width, base_sig.signed
                return 1, False
            if expr.kind == "part":
                left = self.eval_const_int(expr.left, scope)
                right = self.eval_const_int(expr.right, scope)
                return abs(left - right) + 1, False
            width = self.eval_const_int(expr.right, scope)
            return width, False
        if isinstance(expr, ast.Concat):
            total = 0
            for part in expr.parts:
                w, _ = self.width_of(part, scope)
                total += w
            return total, False
        if isinstance(expr, ast.Replicate):
            count = self.eval_const_int(expr.count, scope)
            w, _ = self.width_of(expr.value, scope)
            return max(count, 0) * w or 1, False
        if isinstance(expr, ast.Unary):
            if expr.op in ("!", "&", "|", "^", "~&", "~|", "~^", "^~"):
                return 1, False
            return self.width_of(expr.operand, scope)
        if isinstance(expr, ast.Binary):
            op = expr.op
            if op in ("==", "!=", "===", "!==", "<", "<=", ">", ">=",
                      "&&", "||"):
                return 1, False
            if op in ("<<", ">>", "<<<", ">>>", "**"):
                return self.width_of(expr.left, scope)
            lw, ls = self.width_of(expr.left, scope)
            rw, rs = self.width_of(expr.right, scope)
            return max(lw, rw), ls and rs
        if isinstance(expr, ast.Ternary):
            lw, ls = self.width_of(expr.if_true, scope)
            rw, rs = self.width_of(expr.if_false, scope)
            return max(lw, rw), ls and rs
        if isinstance(expr, ast.FunctionCall):
            binding = scope.lookup_function(expr.name)
            if binding is None:
                raise EvalError(f"unknown function {expr.name!r}")
            rng = binding.decl.range
            if rng is None:
                return 1, binding.decl.signed
            msb = self.eval_const_int(rng.msb, binding.scope)
            lsb = self.eval_const_int(rng.lsb, binding.scope)
            return abs(msb - lsb) + 1, binding.decl.signed
        if isinstance(expr, ast.SystemCall):
            if expr.name in ("$signed", "$unsigned") and expr.args:
                w, _ = self.width_of(expr.args[0], scope)
                return w, expr.name == "$signed"
            if expr.name == "$time":
                return 64, False
            return 32, expr.name == "$random"
        raise EvalError(f"cannot size expression {type(expr).__name__}")

    # -- main evaluation ---------------------------------------------------------

    def eval(
        self,
        expr: ast.Expr,
        scope: Scope,
        ctx_width: Optional[int] = None,
        ctx_signed: Optional[bool] = None,
    ) -> Vec4:
        """Evaluate ``expr``; when ``ctx_width`` is given, the expression
        is computed at ``max(self_width, ctx_width)`` bits so carries are
        not lost (assignment-context widening)."""
        value = self._eval_inner(expr, scope, ctx_width, ctx_signed)
        return value

    def _ctx(self, expr: ast.Expr, scope: Scope, ctx_width: Optional[int]) -> int:
        width, _ = self.width_of(expr, scope)
        if ctx_width is None:
            return width
        return max(width, ctx_width)

    def _eval_inner(
        self,
        expr: ast.Expr,
        scope: Scope,
        ctx_width: Optional[int],
        ctx_signed: Optional[bool],
    ) -> Vec4:
        if isinstance(expr, ast.Number):
            width = expr.width if expr.width is not None else 32
            value = Vec4(width, expr.value, expr.xz_mask, expr.z_mask,
                         expr.signed or (expr.width is None))
            if ctx_width is not None and ctx_width > width:
                value = value.resize(ctx_width)
            return value
        if isinstance(expr, ast.RealNumber):
            return Vec4.from_int(int(expr.value), 64, signed=True)
        if isinstance(expr, ast.StringLiteral):
            width = max(8 * len(expr.value), 8)
            acc = 0
            for ch in expr.value:
                acc = (acc << 8) | ord(ch)
            return Vec4.from_int(acc, width)
        if isinstance(expr, ast.Identifier):
            return self._eval_identifier(expr, scope, ctx_width)
        if isinstance(expr, ast.HierarchicalId):
            signal = self._resolve_hierarchical(expr, scope)
            value = self._store.read(signal)
            if ctx_width is not None and ctx_width > value.width:
                value = value.resize(ctx_width)
            return value
        if isinstance(expr, ast.Select):
            return self._eval_select(expr, scope, ctx_width)
        if isinstance(expr, ast.Concat):
            parts = [self._eval_inner(p, scope, None, None) for p in expr.parts]
            return concat_all(parts)
        if isinstance(expr, ast.Replicate):
            count = self.eval_const_int(expr.count, scope)
            if count <= 0:
                raise EvalError(f"replication count {count} must be positive")
            value = self._eval_inner(expr.value, scope, None, None)
            return value.replicate(count)
        if isinstance(expr, ast.Unary):
            return self._eval_unary(expr, scope, ctx_width)
        if isinstance(expr, ast.Binary):
            return self._eval_binary(expr, scope, ctx_width)
        if isinstance(expr, ast.Ternary):
            return self._eval_ternary(expr, scope, ctx_width, ctx_signed)
        if isinstance(expr, ast.FunctionCall):
            return self._eval_function_call(expr, scope)
        if isinstance(expr, ast.SystemCall):
            return self._eval_system_call(expr, scope, ctx_width)
        raise EvalError(f"cannot evaluate {type(expr).__name__}")

    def _eval_identifier(
        self, expr: ast.Identifier, scope: Scope, ctx_width: Optional[int]
    ) -> Vec4:
        binding = scope.lookup(expr.name)
        if binding is None:
            raise EvalError(f"unknown identifier {expr.name!r}")
        if isinstance(binding, ConstBinding):
            value = binding.value
        elif isinstance(binding, SignalBinding):
            if binding.signal.is_memory:
                raise EvalError(
                    f"memory {expr.name!r} used without an index"
                )
            value = self._store.read(binding.signal)
        else:
            raise EvalError(f"{expr.name!r} is not a value")
        if ctx_width is not None and ctx_width > value.width:
            value = value.resize(ctx_width)
        return value

    def _resolve_hierarchical(
        self, expr: ast.HierarchicalId, scope: Scope
    ) -> Signal:
        """Resolve ``a.b.c`` by joining onto the scope path.

        Used by testbench-style probes; tries progressively shorter
        prefixes of the current path.
        """
        suffix = ".".join(expr.parts)
        candidates = []
        path = scope.path
        while True:
            candidates.append(f"{path}.{suffix}" if path else suffix)
            if not path:
                break
            path = path.rpartition(".")[0]
        store_signals = getattr(self._store, "signals", None)
        if store_signals is not None:
            for name in candidates:
                if name in store_signals:
                    return store_signals[name]
        raise EvalError(f"cannot resolve hierarchical name {suffix!r}")

    def _memory_signal(self, expr: ast.Expr, scope: Scope) -> Optional[Signal]:
        """Return the memory Signal when ``expr`` names one, else None."""
        if isinstance(expr, ast.Identifier):
            binding = scope.lookup(expr.name)
            if isinstance(binding, SignalBinding) and binding.signal.is_memory:
                return binding.signal
        return None

    def _eval_select(
        self, expr: ast.Select, scope: Scope, ctx_width: Optional[int]
    ) -> Vec4:
        mem = self._memory_signal(expr.base, scope)
        if mem is not None and expr.kind == "bit":
            index = self._eval_inner(expr.left, scope, None, None)
            if index.has_unknown:
                return Vec4.all_x(mem.width)
            return self._store.read_mem(mem, index.to_int() - mem.array_min)
        base_signal = self._signal_of(expr.base, scope)
        base = self._eval_inner(expr.base, scope, None, None)
        if expr.kind == "bit":
            index = self._eval_inner(expr.left, scope, None, None)
            if index.has_unknown:
                return Vec4.all_x(1)
            pos = self._to_position(base_signal, index.to_signed_int()
                                    if index.signed else index.to_int())
            return base.slice(pos, pos)
        if expr.kind == "part":
            msb_i = self.eval_const_int(expr.left, scope)
            lsb_i = self.eval_const_int(expr.right, scope)
            hi = self._to_position(base_signal, msb_i)
            lo = self._to_position(base_signal, lsb_i)
            if hi < lo:
                hi, lo = lo, hi
            return base.slice(hi, lo)
        # Indexed part selects: base[b +: w] / base[b -: w].
        width = self.eval_const_int(expr.right, scope)
        start = self._eval_inner(expr.left, scope, None, None)
        if start.has_unknown:
            return Vec4.all_x(width)
        start_i = start.to_int()
        ascending = base_signal is not None and base_signal.msb < base_signal.lsb
        if expr.kind == "plus":
            lo_idx, hi_idx = (start_i, start_i + width - 1)
            if ascending:
                lo_idx, hi_idx = start_i + width - 1, start_i
        else:
            lo_idx, hi_idx = (start_i - width + 1, start_i)
            if ascending:
                lo_idx, hi_idx = start_i, start_i - width + 1
        hi = self._to_position(base_signal, hi_idx)
        lo = self._to_position(base_signal, lo_idx)
        if hi < lo:
            hi, lo = lo, hi
        return base.slice(hi, lo)

    def _signal_of(self, expr: ast.Expr, scope: Scope) -> Optional[Signal]:
        if isinstance(expr, ast.Identifier):
            binding = scope.lookup(expr.name)
            if isinstance(binding, SignalBinding):
                return binding.signal
        return None

    @staticmethod
    def _to_position(signal: Optional[Signal], index: int) -> int:
        if signal is None:
            return index
        return signal.bit_position(index)

    def _eval_unary(
        self, expr: ast.Unary, scope: Scope, ctx_width: Optional[int]
    ) -> Vec4:
        op = expr.op
        if op == "!":
            return self._eval_inner(expr.operand, scope, None, None).logical_not()
        if op in ("&", "~&", "|", "~|", "^", "~^", "^~"):
            operand = self._eval_inner(expr.operand, scope, None, None)
            return {
                "&": operand.reduce_and,
                "~&": operand.reduce_nand,
                "|": operand.reduce_or,
                "~|": operand.reduce_nor,
                "^": operand.reduce_xor,
                "~^": operand.reduce_xnor,
                "^~": operand.reduce_xnor,
            }[op]()
        operand = self._eval_inner(expr.operand, scope, ctx_width, None)
        if ctx_width is not None and ctx_width > operand.width:
            operand = operand.resize(ctx_width)
        if op == "~":
            return operand.bit_not()
        if op == "-":
            return operand.neg()
        if op == "+":
            return operand
        raise EvalError(f"unsupported unary operator {op!r}")

    def _eval_binary(
        self, expr: ast.Binary, scope: Scope, ctx_width: Optional[int]
    ) -> Vec4:
        op = expr.op
        if op in ("&&", "||"):
            left = self._eval_inner(expr.left, scope, None, None)
            # Short-circuit when decidable.
            if op == "&&" and left.truthiness() is False:
                return Vec4.from_int(0, 1)
            if op == "||" and left.truthiness() is True:
                return Vec4.from_int(1, 1)
            right = self._eval_inner(expr.right, scope, None, None)
            return left.logical_and(right) if op == "&&" else left.logical_or(right)
        if op in ("==", "!=", "===", "!==", "<", "<=", ">", ">="):
            # Comparison operands size to each other, not the context.
            lw, ls = self.width_of(expr.left, scope)
            rw, rs = self.width_of(expr.right, scope)
            width = max(lw, rw)
            left = self._eval_inner(expr.left, scope, width, None)
            right = self._eval_inner(expr.right, scope, width, None)
            signed = ls and rs
            left = left.resize(width, left.signed and signed)
            right = right.resize(width, right.signed and signed)
            return {
                "==": left.eq, "!=": left.ne,
                "===": left.case_eq, "!==": left.case_ne,
                "<": left.lt, "<=": left.le, ">": left.gt, ">=": left.ge,
            }[op](right)
        if op in ("<<", ">>", "<<<", ">>>"):
            width = self._ctx(expr.left, scope, ctx_width)
            left = self._eval_inner(expr.left, scope, width, None)
            left = left.resize(width, left.signed)
            amount = self._eval_inner(expr.right, scope, None, None)
            if op == "<<" or op == "<<<":
                return left.shl(amount)
            if op == ">>>":
                return left.ashr(amount)
            return left.shr(amount)
        if op == "**":
            width = self._ctx(expr.left, scope, ctx_width)
            left = self._eval_inner(expr.left, scope, width, None)
            right = self._eval_inner(expr.right, scope, None, None)
            return left.resize(width, left.signed).power(right)
        # Arithmetic / bitwise: context-determined width.
        width = self._ctx(expr, scope, ctx_width)
        left = self._eval_inner(expr.left, scope, width, None)
        right = self._eval_inner(expr.right, scope, width, None)
        signed = left.signed and right.signed
        left = left.resize(width, left.signed)
        right = right.resize(width, right.signed)
        if not signed:
            left = left.as_signed(False)
            right = right.as_signed(False)
        methods = {
            "+": left.add, "-": left.sub, "*": left.mul,
            "/": left.div, "%": left.mod,
            "&": left.bit_and, "|": left.bit_or,
            "^": left.bit_xor, "~^": left.bit_xnor, "^~": left.bit_xnor,
        }
        method = methods.get(op)
        if method is None:
            raise EvalError(f"unsupported binary operator {op!r}")
        return method(right)

    def _eval_ternary(
        self,
        expr: ast.Ternary,
        scope: Scope,
        ctx_width: Optional[int],
        ctx_signed: Optional[bool],
    ) -> Vec4:
        cond = self._eval_inner(expr.cond, scope, None, None)
        width = self._ctx(expr, scope, ctx_width)
        truth = cond.truthiness()
        if truth is True:
            return self._eval_inner(expr.if_true, scope, width, ctx_signed)
        if truth is False:
            return self._eval_inner(expr.if_false, scope, width, ctx_signed)
        # Unknown condition: bitwise-merge the two arms (LRM 5.1.13).
        a = self._eval_inner(expr.if_true, scope, width, ctx_signed).resize(width)
        b = self._eval_inner(expr.if_false, scope, width, ctx_signed).resize(width)
        same = ~(a.val ^ b.val) & ~a.xz & ~b.xz & ((1 << width) - 1)
        return Vec4(width, a.val & same, ~same & ((1 << width) - 1), 0)

    def _eval_function_call(self, expr: ast.FunctionCall, scope: Scope) -> Vec4:
        binding = scope.lookup_function(expr.name)
        if binding is None:
            raise EvalError(f"unknown function {expr.name!r}")
        if self._func_caller is None:
            raise EvalError(
                f"function call {expr.name!r} not allowed in this context"
            )
        args = [self._eval_inner(a, scope, None, None) for a in expr.args]
        return self._func_caller(binding, args)

    def _eval_system_call(
        self, expr: ast.SystemCall, scope: Scope, ctx_width: Optional[int]
    ) -> Vec4:
        name = expr.name
        if name == "$clog2":
            arg = self._eval_inner(expr.args[0], scope, None, None)
            if arg.has_unknown:
                return Vec4.all_x(32)
            value = arg.to_int()
            result = max(value - 1, 0).bit_length()
            return Vec4.from_int(result, 32)
        if name == "$signed":
            arg = self._eval_inner(expr.args[0], scope, None, None)
            return arg.as_signed(True)
        if name == "$unsigned":
            arg = self._eval_inner(expr.args[0], scope, None, None)
            return arg.as_signed(False)
        if name in ("$time", "$stime", "$realtime"):
            return Vec4.from_int(self._store.now(), 64)
        if name == "$random":
            return Vec4.from_int(self._store.random() & 0xFFFFFFFF, 32,
                                 signed=True)
        if name == "$bits":
            width, _ = self.width_of(expr.args[0], scope)
            return Vec4.from_int(width, 32)
        raise EvalError(f"unsupported system function {name!r}")

    # -- constants ------------------------------------------------------------

    def eval_const_int(self, expr: ast.Expr, scope: Scope) -> int:
        """Evaluate a constant expression to a Python int (signed)."""
        value = self._eval_inner(expr, scope, None, None)
        if value.has_unknown:
            raise EvalError("constant expression evaluates to x/z")
        return value.to_signed_int() if value.signed else value.to_int()


def const_evaluator(func_caller: Optional[FuncCaller] = None) -> Evaluator:
    """An evaluator that rejects signal reads (for parameter folding)."""
    return Evaluator(ConstStore(), func_caller)
