"""Design elaboration: parameters, generates, hierarchy flattening.

The elaborator turns a parsed module library into a flat
:class:`~.design.Design`:

* parameters and localparams are constant-folded (with overrides);
* generate for/if constructs are unrolled/resolved;
* every instance of every module contributes flat signals and
  processes, with port connections lowered to continuous assignments
  (inout ports are lowered to signal aliases);
* primitive gates are lowered to equivalent continuous assignments.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from .. import ast_nodes as ast
from .design import (
    CombProcess,
    ConstBinding,
    Design,
    EdgeProcess,
    ElaborationError,
    FuncBinding,
    InitialProcess,
    Scope,
    Signal,
    SignalBinding,
    TaskBinding,
    TimedAlwaysProcess,
)
from .eval import EvalError, Evaluator, const_evaluator
from .values import Vec4

#: Maximum generate-loop iterations before declaring a runaway loop.
MAX_GENERATE_ITERATIONS = 4096

#: Declaration kinds that produce variables rather than nets.
_VAR_KINDS = frozenset(["reg", "integer", "real", "time"])

#: Gate kinds lowered to binary-operator folds.
_GATE_BINOPS = {
    "and": "&", "or": "|", "xor": "^",
    "nand": "&", "nor": "|", "xnor": "^",
}
_GATE_INVERTED = frozenset(["nand", "nor", "xnor"])


class Elaborator:
    """Elaborates a module library into a flat design."""

    def __init__(self, library: Dict[str, ast.Module]) -> None:
        self._library = dict(library)
        self._design = Design()
        self._instance_stack: List[str] = []

    # -- public ------------------------------------------------------------

    def elaborate(
        self,
        top: str,
        param_overrides: Optional[Dict[str, int]] = None,
    ) -> Design:
        """Elaborate module ``top`` as the root of the design."""
        module = self._library.get(top)
        if module is None:
            raise ElaborationError(f"top module {top!r} not found")
        self._design = Design(top_name=top)
        scope = Scope("")
        overrides = {
            name: Vec4.from_int(value, 32, signed=True)
            for name, value in (param_overrides or {}).items()
        }
        self._design.top_scope = scope
        self._elaborate_module(module, scope, overrides, is_top=True)
        return self._design

    # -- module-level ----------------------------------------------------------

    def _elaborate_module(
        self,
        module: ast.Module,
        scope: Scope,
        param_overrides: Dict[str, Vec4],
        is_top: bool = False,
        port_aliases: Optional[Dict[str, Signal]] = None,
    ) -> Dict[str, Signal]:
        """Elaborate one instance; returns port name → flat Signal."""
        if module.name in self._instance_stack:
            cycle = " -> ".join(self._instance_stack + [module.name])
            raise ElaborationError(f"recursive instantiation: {cycle}")
        self._instance_stack.append(module.name)
        try:
            return self._elaborate_module_inner(
                module, scope, param_overrides, is_top, port_aliases or {}
            )
        finally:
            self._instance_stack.pop()

    def _elaborate_module_inner(
        self,
        module: ast.Module,
        scope: Scope,
        param_overrides: Dict[str, Vec4],
        is_top: bool,
        port_aliases: Dict[str, Signal],
    ) -> Dict[str, Signal]:
        # Functions and tasks first so parameters may call them.
        self._bind_functions(module.items, scope)
        self._bind_parameters(module, scope, param_overrides)

        # Gather body-level declarations so ports pick up reg-ness/ranges.
        decl_by_name: Dict[str, ast.Decl] = {}
        for item in module.items:
            if isinstance(item, ast.Decl) and item.name not in decl_by_name:
                decl_by_name[item.name] = item

        port_signals: Dict[str, Signal] = {}
        for port in module.ports:
            if port.direction is None:
                raise ElaborationError(
                    f"port {port.name!r} of {module.name!r} has no direction"
                )
            signal = self._create_port_signal(
                module, port, scope, decl_by_name.get(port.name), port_aliases
            )
            port_signals[port.name] = signal
            if is_top:
                bucket = {
                    "input": self._design.inputs,
                    "output": self._design.outputs,
                    "inout": self._design.inouts,
                }[port.direction]
                bucket[signal.name] = signal

        self._elaborate_items(module.items, scope, module, port_signals)
        return port_signals

    def _bind_functions(
        self, items: Sequence[ast.ModuleItem], scope: Scope
    ) -> None:
        for item in items:
            if isinstance(item, ast.FunctionDecl):
                scope.bind(item.name, FuncBinding(decl=item, scope=scope))
            elif isinstance(item, ast.TaskDecl):
                scope.bind(item.name, TaskBinding(decl=item, scope=scope))

    def _bind_parameters(
        self,
        module: ast.Module,
        scope: Scope,
        overrides: Dict[str, Vec4],
    ) -> None:
        from .interp import const_function_caller  # local: avoids cycle

        evaluator = const_evaluator(const_function_caller)
        for param in module.parameters:
            if not param.local and param.name in overrides:
                value = overrides[param.name]
            else:
                try:
                    value = evaluator.eval(param.value, scope)
                except EvalError as exc:
                    raise ElaborationError(
                        f"parameter {param.name!r} of {module.name!r} is "
                        f"not constant: {exc}"
                    ) from exc
            if param.range is not None:
                width = self._range_width(param.range, scope, evaluator)
                value = value.resize(width) if width > value.width else Vec4(
                    width, value.val, value.xz, value.z, param.signed
                )
            scope.bind(param.name, ConstBinding(value=value))
        unknown = set(overrides) - {p.name for p in module.parameters}
        if unknown:
            raise ElaborationError(
                f"unknown parameter override(s) for {module.name!r}: "
                f"{sorted(unknown)}"
            )

    # -- signals ------------------------------------------------------------

    def _range_bounds(
        self, rng: ast.Range, scope: Scope, evaluator: Evaluator
    ) -> Tuple[int, int]:
        msb = evaluator.eval_const_int(rng.msb, scope)
        lsb = evaluator.eval_const_int(rng.lsb, scope)
        return msb, lsb

    def _range_width(
        self, rng: ast.Range, scope: Scope, evaluator: Evaluator
    ) -> int:
        msb, lsb = self._range_bounds(rng, scope, evaluator)
        return abs(msb - lsb) + 1

    def _evaluator(self) -> Evaluator:
        from .interp import const_function_caller

        return const_evaluator(const_function_caller)

    def _create_port_signal(
        self,
        module: ast.Module,
        port: ast.Port,
        scope: Scope,
        body_decl: Optional[ast.Decl],
        port_aliases: Dict[str, Signal],
    ) -> Signal:
        if port.name in port_aliases:
            signal = port_aliases[port.name]
            scope.bind(port.name, SignalBinding(signal=signal))
            return signal
        evaluator = self._evaluator()
        rng = port.range
        signed = port.signed
        kind = "var" if port.net_kind in _VAR_KINDS else "net"
        if body_decl is not None:
            if body_decl.kind in _VAR_KINDS:
                kind = "var"
            if rng is None and body_decl.range is not None:
                rng = body_decl.range
            signed = signed or body_decl.signed
        msb = lsb = 0
        width = 1
        if port.net_kind == "integer" or (
            body_decl is not None and body_decl.kind == "integer"
        ):
            width, msb, lsb, signed = 32, 31, 0, True
        elif rng is not None:
            msb, lsb = self._range_bounds(rng, scope, evaluator)
            width = abs(msb - lsb) + 1
        signal = Signal(
            name=scope.flat_name(port.name), width=width, signed=signed,
            kind=kind, msb=msb, lsb=lsb,
        )
        self._design.add_signal(signal)
        scope.bind(port.name, SignalBinding(signal=signal))
        return signal

    def _create_decl_signal(self, decl: ast.Decl, scope: Scope) -> Signal:
        evaluator = self._evaluator()
        msb = lsb = 0
        width = 1
        signed = decl.signed
        if decl.kind == "integer" or decl.kind == "time":
            width, msb, lsb = 32, 31, 0
            signed = decl.kind == "integer"
        elif decl.kind == "real":
            width, msb, lsb, signed = 64, 63, 0, True
        elif decl.range is not None:
            msb, lsb = self._range_bounds(decl.range, scope, evaluator)
            width = abs(msb - lsb) + 1
        array_size = 0
        array_min = 0
        if decl.array_dims:
            if len(decl.array_dims) > 1:
                raise ElaborationError(
                    f"multi-dimensional memory {decl.name!r} not supported"
                )
            lo, hi = self._range_bounds(decl.array_dims[0], scope, evaluator)
            if lo > hi:
                lo, hi = hi, lo
            array_size = hi - lo + 1
            array_min = lo
        kind = "var" if decl.kind in _VAR_KINDS else "net"
        signal = Signal(
            name=scope.flat_name(decl.name), width=width, signed=signed,
            kind=kind, array_size=array_size, msb=msb, lsb=lsb,
            array_min=array_min,
        )
        self._design.add_signal(signal)
        scope.bind(decl.name, SignalBinding(signal=signal))
        return signal

    # -- items ------------------------------------------------------------

    def _elaborate_items(
        self,
        items: Sequence[ast.ModuleItem],
        scope: Scope,
        module: ast.Module,
        port_signals: Dict[str, Signal],
    ) -> None:
        # Pass 1: declarations (so later items can reference them).
        for item in items:
            if isinstance(item, ast.Decl):
                if item.name in port_signals:
                    # Re-declaration of a port (non-ANSI style): keep the
                    # port signal; reject a conflicting memory decl.
                    if item.array_dims:
                        raise ElaborationError(
                            f"port {item.name!r} redeclared as memory"
                        )
                    continue
                existing = scope.lookup(item.name)
                if isinstance(existing, SignalBinding) and not isinstance(
                    existing, ConstBinding
                ):
                    # Duplicate wire/reg declaration pairs are tolerated
                    # only when introduced by port completion above.
                    binding_path = existing.signal.name
                    if binding_path == scope.flat_name(item.name):
                        continue
                self._create_decl_signal(item, scope)
        # Pass 2: behaviour.
        for item in items:
            self._elaborate_item(item, scope, module, port_signals)

    def _elaborate_item(
        self,
        item: ast.ModuleItem,
        scope: Scope,
        module: ast.Module,
        port_signals: Dict[str, Signal],
    ) -> None:
        if isinstance(item, (ast.FunctionDecl, ast.TaskDecl, ast.Parameter)):
            return
        if isinstance(item, ast.Port):
            return
        if isinstance(item, ast.Decl):
            if item.init is not None:
                self._lower_decl_init(item, scope)
            return
        if isinstance(item, ast.ContinuousAssign):
            self._add_continuous_assign(item.target, item.value, scope,
                                        scope, item.line)
            return
        if isinstance(item, ast.Always):
            self._elaborate_always(item, scope)
            return
        if isinstance(item, ast.Initial):
            self._design.processes.append(
                InitialProcess(scope=scope, body=item.body, line=item.line)
            )
            return
        if isinstance(item, ast.Instance):
            self._elaborate_instance(item, scope)
            return
        if isinstance(item, ast.GateInstance):
            self._elaborate_gate(item, scope)
            return
        if isinstance(item, ast.GenerateFor):
            self._elaborate_generate_for(item, scope, module, port_signals)
            return
        if isinstance(item, ast.GenerateIf):
            self._elaborate_generate_if(item, scope, module, port_signals)
            return
        raise ElaborationError(
            f"unsupported module item {type(item).__name__}"
        )

    def _lower_decl_init(self, decl: ast.Decl, scope: Scope) -> None:
        target = ast.Identifier(name=decl.name, line=decl.line)
        if decl.kind in _VAR_KINDS:
            stmt = ast.Assign(target=target, value=decl.init, blocking=True,
                              line=decl.line)
            self._design.processes.append(
                InitialProcess(scope=scope, body=stmt, line=decl.line)
            )
        else:
            self._add_continuous_assign(target, decl.init, scope, scope,
                                        decl.line)

    def _add_continuous_assign(
        self,
        target: ast.Expr,
        value: ast.Expr,
        target_scope: Scope,
        value_scope: Scope,
        line: int,
    ) -> None:
        sensitivity = collect_read_signals_expr(value, value_scope)
        # Index expressions inside the target are also reads.
        sensitivity |= collect_lvalue_index_reads(target, target_scope)
        self._design.processes.append(
            CombProcess(
                scope=value_scope,
                assign=(target, value),
                sensitivity=tuple(sorted(sensitivity)),
                driver_id=self._design.new_driver_id(),
                line=line,
            )
        )
        # Remember the target scope when it differs (port connections).
        self._design.processes[-1].target_scope = target_scope  # type: ignore[attr-defined]

    def _elaborate_always(self, item: ast.Always, scope: Scope) -> None:
        sens = item.sensitivity
        if sens is None:
            self._design.processes.append(
                TimedAlwaysProcess(scope=scope, body=item.body, line=item.line)
            )
            return
        if sens.star:
            reads = collect_read_signals_stmt(item.body, scope)
            self._design.processes.append(
                CombProcess(
                    scope=scope, body=item.body,
                    sensitivity=tuple(sorted(reads)), line=item.line,
                )
            )
            return
        edges = [s for s in sens.items if s.edge != "level"]
        levels = [s for s in sens.items if s.edge == "level"]
        if edges and levels:
            raise ElaborationError(
                "mixed edge and level sensitivity is not supported "
                f"(line {item.line})"
            )
        if edges:
            triggers: List[Tuple[str, str]] = []
            for entry in edges:
                if not isinstance(entry.expr, ast.Identifier):
                    raise ElaborationError(
                        "edge sensitivity must name a signal "
                        f"(line {item.line})"
                    )
                binding = scope.lookup(entry.expr.name)
                if not isinstance(binding, SignalBinding):
                    raise ElaborationError(
                        f"unknown edge signal {entry.expr.name!r} "
                        f"(line {item.line})"
                    )
                triggers.append((entry.edge, binding.signal.name))
            self._design.processes.append(
                EdgeProcess(
                    scope=scope, triggers=tuple(triggers), body=item.body,
                    line=item.line,
                )
            )
            return
        names: Set[str] = set()
        for entry in levels:
            names |= collect_read_signals_expr(entry.expr, scope)
        self._design.processes.append(
            CombProcess(
                scope=scope, body=item.body,
                sensitivity=tuple(sorted(names)), line=item.line,
            )
        )

    # -- instances -----------------------------------------------------------

    def _elaborate_instance(self, inst: ast.Instance, scope: Scope) -> None:
        child_module = self._library.get(inst.module_name)
        if child_module is None:
            raise ElaborationError(
                f"module {inst.module_name!r} not found "
                f"(instance {inst.instance_name!r})"
            )
        evaluator = self._evaluator()
        overrides: Dict[str, Vec4] = {}
        public_params = [p for p in child_module.parameters if not p.local]
        for index, conn in enumerate(inst.param_overrides):
            if conn.expr is None:
                continue
            try:
                value = Evaluator(ConstScopeStore(scope, self._design)).eval(
                    conn.expr, scope
                )
            except EvalError:
                value = evaluator.eval(conn.expr, scope)
            if conn.name is not None:
                overrides[conn.name] = value
            else:
                if index >= len(public_params):
                    raise ElaborationError(
                        f"too many parameter overrides for "
                        f"{inst.module_name!r}"
                    )
                overrides[public_params[index].name] = value

        child_scope = scope.child(inst.instance_name)
        # Map connections to port names.
        conn_by_port: Dict[str, Optional[ast.Expr]] = {}
        if inst.connections and inst.connections[0].name is None:
            if len(inst.connections) > len(child_module.ports):
                raise ElaborationError(
                    f"instance {inst.instance_name!r} has more connections "
                    f"than {inst.module_name!r} has ports"
                )
            for port, conn in zip(child_module.ports, inst.connections):
                conn_by_port[port.name] = conn.expr
        else:
            port_names = set(child_module.port_names())
            for conn in inst.connections:
                if conn.name is None:
                    raise ElaborationError(
                        "cannot mix positional and named connections "
                        f"(instance {inst.instance_name!r})"
                    )
                if conn.name not in port_names:
                    raise ElaborationError(
                        f"{inst.module_name!r} has no port {conn.name!r}"
                    )
                conn_by_port[conn.name] = conn.expr

        # Inout ports become aliases onto the parent signal.
        port_aliases: Dict[str, Signal] = {}
        for port in child_module.ports:
            if port.direction == "inout":
                expr = conn_by_port.get(port.name)
                if expr is None:
                    continue
                if not isinstance(expr, ast.Identifier):
                    raise ElaborationError(
                        f"inout port {port.name!r} must connect to a plain "
                        f"signal (instance {inst.instance_name!r})"
                    )
                binding = scope.lookup(expr.name)
                if not isinstance(binding, SignalBinding):
                    raise ElaborationError(
                        f"unknown signal {expr.name!r} in inout connection"
                    )
                port_aliases[port.name] = binding.signal

        port_signals = self._elaborate_module(
            child_module, child_scope, overrides, port_aliases=port_aliases
        )

        for port in child_module.ports:
            if port.direction == "inout":
                continue
            expr = conn_by_port.get(port.name)
            if expr is None:
                continue  # unconnected port
            child_ref = ast.Identifier(name=port.name, line=inst.line)
            if port.direction == "input":
                self._add_continuous_assign(
                    child_ref, expr, child_scope, scope, inst.line
                )
            else:
                if not _is_lvalue(expr):
                    raise ElaborationError(
                        f"output port {port.name!r} connected to a "
                        f"non-lvalue (instance {inst.instance_name!r})"
                    )
                # Value is the child port, read in the child scope.
                sensitivity = {port_signals[port.name].name}
                sensitivity |= collect_lvalue_index_reads(expr, scope)
                self._design.processes.append(
                    CombProcess(
                        scope=child_scope,
                        assign=(expr, child_ref),
                        sensitivity=tuple(sorted(sensitivity)),
                        driver_id=self._design.new_driver_id(),
                        line=inst.line,
                    )
                )
                self._design.processes[-1].target_scope = scope  # type: ignore[attr-defined]

    def _elaborate_gate(self, gate: ast.GateInstance, scope: Scope) -> None:
        kind = gate.gate_kind
        conns = gate.connections
        if len(conns) < 2:
            raise ElaborationError(
                f"gate {kind!r} needs at least 2 connections"
            )
        target, inputs = conns[0], conns[1:]
        line = gate.line
        value: ast.Expr
        if kind in _GATE_BINOPS:
            if len(inputs) < 2:
                raise ElaborationError(f"gate {kind!r} needs >= 2 inputs")
            value = inputs[0]
            for operand in inputs[1:]:
                value = ast.Binary(op=_GATE_BINOPS[kind], left=value,
                                   right=operand, line=line)
            if kind in _GATE_INVERTED:
                value = ast.Unary(op="~", operand=value, line=line)
        elif kind == "not":
            value = ast.Unary(op="~", operand=inputs[0], line=line)
        elif kind == "buf":
            value = inputs[0]
        elif kind in ("bufif0", "bufif1", "notif0", "notif1"):
            if len(inputs) != 2:
                raise ElaborationError(f"gate {kind!r} needs data and enable")
            data, enable = inputs
            if kind.startswith("notif"):
                data = ast.Unary(op="~", operand=data, line=line)
            if kind.endswith("0"):
                enable = ast.Unary(op="!", operand=enable, line=line)
            hi_z = ast.Number(width=1, value=0, xz_mask=1, z_mask=1,
                              text="1'bz", line=line)
            value = ast.Ternary(cond=enable, if_true=data, if_false=hi_z,
                                line=line)
        else:
            raise ElaborationError(f"unsupported gate {kind!r}")
        self._add_continuous_assign(target, value, scope, scope, line)

    # -- generate -----------------------------------------------------------

    def _elaborate_generate_for(
        self,
        gen: ast.GenerateFor,
        scope: Scope,
        module: ast.Module,
        port_signals: Dict[str, Signal],
    ) -> None:
        evaluator = self._evaluator()
        # The genvar must already be declared; we rebind per iteration.
        value = evaluator.eval_const_int(gen.init, _genvar_scope(scope, gen.genvar, 0))
        iterations = 0
        while True:
            iter_scope_probe = _genvar_scope(scope, gen.genvar, value)
            cond = evaluator.eval(gen.cond, iter_scope_probe)
            if not cond.is_true():
                break
            label = gen.label or "genblk"
            child = scope.child(f"{label}[{value}]")
            child.bind(gen.genvar, ConstBinding(Vec4.from_int(value, 32,
                                                              signed=True)))
            self._elaborate_items(gen.items, child, module, {})
            value = evaluator.eval_const_int(
                gen.step, _genvar_scope(scope, gen.genvar, value)
            )
            iterations += 1
            if iterations > MAX_GENERATE_ITERATIONS:
                raise ElaborationError(
                    f"generate loop over {gen.genvar!r} exceeds "
                    f"{MAX_GENERATE_ITERATIONS} iterations"
                )

    def _elaborate_generate_if(
        self,
        gen: ast.GenerateIf,
        scope: Scope,
        module: ast.Module,
        port_signals: Dict[str, Signal],
    ) -> None:
        evaluator = self._evaluator()
        cond = evaluator.eval(gen.cond, scope)
        items = gen.then_items if cond.is_true() else gen.else_items
        self._elaborate_items(items, scope, module, {})


class ConstScopeStore:
    """Store that resolves parameter identifiers but rejects signals.

    Used when evaluating instance parameter overrides, which may refer
    to the parent's parameters (already folded into the scope)."""

    def __init__(self, scope: Scope, design: Design) -> None:
        self.signals = design.signals
        self._scope = scope

    def read(self, signal: Signal) -> Vec4:
        raise EvalError(
            f"signal {signal.name!r} used in constant context"
        )

    def read_mem(self, signal: Signal, index: int) -> Vec4:
        raise EvalError(
            f"memory {signal.name!r} used in constant context"
        )

    def now(self) -> int:
        return 0

    def random(self) -> int:
        raise EvalError("$random in constant context")


def _genvar_scope(scope: Scope, genvar: str, value: int) -> Scope:
    child = scope.child("__genprobe")
    child.bind(genvar, ConstBinding(Vec4.from_int(value, 32, signed=True)))
    return child


def _is_lvalue(expr: ast.Expr) -> bool:
    if isinstance(expr, (ast.Identifier, ast.HierarchicalId)):
        return True
    if isinstance(expr, ast.Select):
        return _is_lvalue(expr.base)
    if isinstance(expr, ast.Concat):
        return all(_is_lvalue(p) for p in expr.parts)
    return False


# ---------------------------------------------------------------------------
# Static read-set analysis (sensitivity computation)
# ---------------------------------------------------------------------------


def collect_read_signals_expr(
    expr: Optional[ast.Expr], scope: Scope, _depth: int = 0
) -> Set[str]:
    """Flat names of every signal read by ``expr``."""
    reads: Set[str] = set()
    if expr is None or _depth > 64:
        return reads
    if isinstance(expr, ast.Identifier):
        binding = scope.lookup(expr.name)
        if isinstance(binding, SignalBinding):
            reads.add(binding.signal.name)
        return reads
    if isinstance(expr, ast.Select):
        reads |= collect_read_signals_expr(expr.base, scope, _depth + 1)
        reads |= collect_read_signals_expr(expr.left, scope, _depth + 1)
        reads |= collect_read_signals_expr(expr.right, scope, _depth + 1)
        return reads
    if isinstance(expr, ast.Concat):
        for part in expr.parts:
            reads |= collect_read_signals_expr(part, scope, _depth + 1)
        return reads
    if isinstance(expr, ast.Replicate):
        reads |= collect_read_signals_expr(expr.count, scope, _depth + 1)
        reads |= collect_read_signals_expr(expr.value, scope, _depth + 1)
        return reads
    if isinstance(expr, ast.Unary):
        return collect_read_signals_expr(expr.operand, scope, _depth + 1)
    if isinstance(expr, ast.Binary):
        reads |= collect_read_signals_expr(expr.left, scope, _depth + 1)
        reads |= collect_read_signals_expr(expr.right, scope, _depth + 1)
        return reads
    if isinstance(expr, ast.Ternary):
        reads |= collect_read_signals_expr(expr.cond, scope, _depth + 1)
        reads |= collect_read_signals_expr(expr.if_true, scope, _depth + 1)
        reads |= collect_read_signals_expr(expr.if_false, scope, _depth + 1)
        return reads
    if isinstance(expr, ast.FunctionCall):
        for arg in expr.args:
            reads |= collect_read_signals_expr(arg, scope, _depth + 1)
        binding = scope.lookup(expr.name)
        if isinstance(binding, FuncBinding) and _depth < 8:
            reads |= collect_read_signals_stmt(
                binding.decl.body, binding.scope, _depth + 1
            )
        return reads
    if isinstance(expr, ast.SystemCall):
        for arg in expr.args:
            reads |= collect_read_signals_expr(arg, scope, _depth + 1)
        return reads
    return reads


def collect_lvalue_index_reads(expr: Optional[ast.Expr], scope: Scope) -> Set[str]:
    """Signals read by index expressions inside an lvalue."""
    reads: Set[str] = set()
    if expr is None:
        return reads
    if isinstance(expr, ast.Select):
        reads |= collect_lvalue_index_reads(expr.base, scope)
        reads |= collect_read_signals_expr(expr.left, scope)
        reads |= collect_read_signals_expr(expr.right, scope)
        return reads
    if isinstance(expr, ast.Concat):
        for part in expr.parts:
            reads |= collect_lvalue_index_reads(part, scope)
        return reads
    return reads


def collect_read_signals_stmt(
    stmt: Optional[ast.Stmt], scope: Scope, _depth: int = 0
) -> Set[str]:
    """Flat names of every signal read by ``stmt`` (for @* sensitivity)."""
    reads: Set[str] = set()
    if stmt is None or _depth > 64:
        return reads
    if isinstance(stmt, ast.Block):
        for inner in stmt.stmts:
            reads |= collect_read_signals_stmt(inner, scope, _depth + 1)
        return reads
    if isinstance(stmt, ast.Assign):
        reads |= collect_read_signals_expr(stmt.value, scope, _depth)
        reads |= collect_lvalue_index_reads(stmt.target, scope)
        return reads
    if isinstance(stmt, ast.If):
        reads |= collect_read_signals_expr(stmt.cond, scope, _depth)
        reads |= collect_read_signals_stmt(stmt.then_stmt, scope, _depth + 1)
        reads |= collect_read_signals_stmt(stmt.else_stmt, scope, _depth + 1)
        return reads
    if isinstance(stmt, ast.Case):
        reads |= collect_read_signals_expr(stmt.subject, scope, _depth)
        for item in stmt.items:
            for expr in item.exprs:
                reads |= collect_read_signals_expr(expr, scope, _depth)
            reads |= collect_read_signals_stmt(item.body, scope, _depth + 1)
        return reads
    if isinstance(stmt, ast.For):
        reads |= collect_read_signals_stmt(stmt.init, scope, _depth + 1)
        reads |= collect_read_signals_expr(stmt.cond, scope, _depth)
        reads |= collect_read_signals_stmt(stmt.step, scope, _depth + 1)
        reads |= collect_read_signals_stmt(stmt.body, scope, _depth + 1)
        return reads
    if isinstance(stmt, ast.While):
        reads |= collect_read_signals_expr(stmt.cond, scope, _depth)
        reads |= collect_read_signals_stmt(stmt.body, scope, _depth + 1)
        return reads
    if isinstance(stmt, ast.Repeat):
        reads |= collect_read_signals_expr(stmt.count, scope, _depth)
        reads |= collect_read_signals_stmt(stmt.body, scope, _depth + 1)
        return reads
    if isinstance(stmt, (ast.Forever,)):
        return collect_read_signals_stmt(stmt.body, scope, _depth + 1)
    if isinstance(stmt, ast.Delay):
        reads |= collect_read_signals_stmt(stmt.stmt, scope, _depth + 1)
        return reads
    if isinstance(stmt, ast.EventControl):
        reads |= collect_read_signals_stmt(stmt.stmt, scope, _depth + 1)
        return reads
    if isinstance(stmt, ast.Wait):
        reads |= collect_read_signals_expr(stmt.cond, scope, _depth)
        reads |= collect_read_signals_stmt(stmt.stmt, scope, _depth + 1)
        return reads
    if isinstance(stmt, (ast.SystemTaskCall, ast.TaskCall)):
        for arg in stmt.args:
            reads |= collect_read_signals_expr(arg, scope, _depth)
        return reads
    return reads


def elaborate(
    library: Dict[str, ast.Module],
    top: str,
    param_overrides: Optional[Dict[str, int]] = None,
) -> Design:
    """Elaborate ``top`` from ``library`` into a flat design."""
    return Elaborator(library).elaborate(top, param_overrides)
