"""High-level simulation API.

:class:`Simulator` wraps parse → elaborate → kernel and exposes a
Python-driven testbench interface::

    sim = Simulator(source, top="counter")
    sim.poke("rst_n", 0)
    sim.clock("clk")          # one rising edge (+ falling)
    sim.poke("rst_n", 1)
    sim.poke("en", 1)
    sim.clock("clk", cycles=10)
    assert sim.peek_int("count") == 10

Values move as :class:`~.values.Vec4` or plain ints.  ``peek`` works on
any signal in the flattened design (hierarchical names joined with
dots), ``poke`` on top-level inputs and variables.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Union

from .. import ast_nodes as ast
from ..parser import ParseError, parse
from .design import Design, ElaborationError, Signal
from .elaborate import elaborate
from .interp import SimulationError, StopSimulation
from .scheduler import Kernel
from .values import Vec4

SourceLike = Union[str, Iterable[str]]


def build_library(sources: SourceLike) -> Dict[str, ast.Module]:
    """Parse one or more source strings into a module library.

    Compiler directives are preprocessed first.  An unresolved include
    is fatal (as in Icarus Verilog): the missing file is a dependency
    this compilation unit cannot satisfy.
    """
    from ..preprocessor import preprocess

    if isinstance(sources, str):
        sources = [sources]
    library: Dict[str, ast.Module] = {}
    for text in sources:
        if "`" in text:
            result = preprocess(text)
            if result.missing_includes:
                raise ElaborationError(
                    "cannot resolve `include "
                    f"\"{result.missing_includes[0]}\""
                )
            text = result.text
        for module in parse(text).modules:
            if module.name in library:
                raise ElaborationError(
                    f"module {module.name!r} defined more than once"
                )
            library[module.name] = module
    return library


class Simulator:
    """A ready-to-run simulation of one top-level module.

    Args:
        sources: Verilog source text(s) containing the design.
        top: name of the top module; defaults to the last module parsed.
        params: parameter overrides for the top module.
        seed: seed for ``$random``.
    """

    def __init__(
        self,
        sources: SourceLike,
        top: Optional[str] = None,
        params: Optional[Dict[str, int]] = None,
        seed: int = 0,
    ) -> None:
        library = build_library(sources)
        if not library:
            raise ElaborationError("no modules in source")
        if top is None:
            top = next(reversed(library))
        self.design: Design = elaborate(library, top, params)
        self.kernel = Kernel(self.design, seed=seed)
        self.kernel.initialize()

    # -- signal access -----------------------------------------------------

    def _find_signal(self, name: str) -> Signal:
        signal = self.design.signals.get(name)
        if signal is None:
            available = ", ".join(sorted(self.design.signals)[:12])
            raise KeyError(
                f"no signal named {name!r} (known: {available}, ...)"
            )
        return signal

    def poke(self, name: str, value: Union[int, Vec4]) -> None:
        """Set a top-level input (or any variable) and propagate."""
        signal = self._find_signal(name)
        if isinstance(value, int):
            value = Vec4.from_int(value, signal.width, signal.signed)
        self.kernel.poke(signal, value)
        self.kernel.settle()

    def peek(self, name: str) -> Vec4:
        """Read the current value of any signal."""
        return self.kernel.read(self._find_signal(name))

    def peek_int(self, name: str) -> int:
        """Read a signal as an unsigned int; raises if it holds x/z."""
        return self.peek(name).to_int()

    def peek_signed(self, name: str) -> int:
        """Read a signal as a signed int; raises if it holds x/z."""
        return self.peek(name).to_signed_int()

    def peek_mem(self, name: str, index: int) -> Vec4:
        """Read one element of a memory."""
        signal = self._find_signal(name)
        return self.kernel.read_mem(signal, index - signal.array_min)

    def settle(self) -> None:
        """Drain delta cycles at the current time."""
        self.kernel.settle()

    # -- clocking ------------------------------------------------------------

    def clock(self, name: str = "clk", cycles: int = 1) -> None:
        """Drive ``cycles`` full clock periods (rising edge first)."""
        signal = self._find_signal(name)
        for _ in range(cycles):
            self.kernel.poke(signal, Vec4.from_int(1, signal.width))
            self.kernel.settle()
            self.kernel.poke(signal, Vec4.from_int(0, signal.width))
            self.kernel.settle()
            if self.kernel.finished:
                return

    def posedge(self, name: str = "clk") -> None:
        """Drive one rising edge (leaves the clock high)."""
        signal = self._find_signal(name)
        self.kernel.poke(signal, Vec4.from_int(0, signal.width))
        self.kernel.settle()
        self.kernel.poke(signal, Vec4.from_int(1, signal.width))
        self.kernel.settle()

    # -- time-based execution (for testbench-style sources) -------------------

    def run(self, max_time: Optional[int] = None) -> None:
        """Run scheduled threads (initial blocks with delays etc.)."""
        self.kernel.run(max_time)

    @property
    def time(self) -> int:
        return self.kernel.time

    @property
    def finished(self) -> bool:
        return self.kernel.finished

    @property
    def output(self) -> List[str]:
        """Lines produced by $display and friends."""
        return self.kernel.display_output

    # -- convenience -----------------------------------------------------------

    @property
    def input_names(self) -> List[str]:
        return sorted(self.design.inputs)

    @property
    def output_names(self) -> List[str]:
        return sorted(self.design.outputs)


__all__ = [
    "Simulator",
    "build_library",
    "SimulationError",
    "StopSimulation",
    "ElaborationError",
    "ParseError",
]
