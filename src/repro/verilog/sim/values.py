"""Four-state bit-vector values (0, 1, x, z) and their operators.

:class:`Vec4` is the value type flowing through the simulator.  A
vector of width *w* is stored as three integers:

* ``val``  — the known bit values (bits inside ``xz`` are forced to 0);
* ``xz``   — mask of bits whose state is x or z;
* ``z``    — mask of bits that are specifically z (subset of ``xz``).

This mirrors the aval/bval encoding used by the VPI and keeps all bit
operations O(1) Python integer ops regardless of width.

Operator semantics follow IEEE 1364-2005: x-propagation through
bitwise operators uses the standard truth tables (``0 & x == 0``,
``1 | x == 1``), arithmetic with any unknown bit yields an all-x
result, ``==``/``!=`` return x when the comparison is undecidable, and
``===``/``!==`` compare the four-state patterns exactly.  For every
operator, z operands behave as x.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple, Union


def _mask(width: int) -> int:
    return (1 << width) - 1


class Vec4:
    """An immutable four-state logic vector.

    Construct with :meth:`from_int`, :meth:`all_x`, :meth:`all_z`, or
    directly with the raw fields.  All operators return new vectors.
    """

    __slots__ = ("width", "val", "xz", "z", "signed")

    def __init__(
        self,
        width: int,
        val: int = 0,
        xz: int = 0,
        z: int = 0,
        signed: bool = False,
    ) -> None:
        if width <= 0:
            raise ValueError(f"vector width must be positive, got {width}")
        m = _mask(width)
        self.width = width
        self.xz = xz & m
        self.z = z & self.xz
        self.val = val & m & ~self.xz
        self.signed = signed

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_int(cls, value: int, width: int, signed: bool = False) -> "Vec4":
        """Build a fully-known vector from a Python int (two's complement)."""
        return cls(width, value & _mask(width), 0, 0, signed)

    @classmethod
    def all_x(cls, width: int, signed: bool = False) -> "Vec4":
        """A vector with every bit x."""
        m = _mask(width)
        return cls(width, 0, m, 0, signed)

    @classmethod
    def all_z(cls, width: int, signed: bool = False) -> "Vec4":
        """A vector with every bit z."""
        m = _mask(width)
        return cls(width, 0, m, m, signed)

    @classmethod
    def from_string(cls, text: str, signed: bool = False) -> "Vec4":
        """Build from a binary string like ``"10xz"`` (MSB first)."""
        width = len(text)
        if width == 0:
            raise ValueError("empty vector string")
        val = xz = z = 0
        for ch in text:
            val <<= 1
            xz <<= 1
            z <<= 1
            if ch == "1":
                val |= 1
            elif ch == "0":
                pass
            elif ch in "xX":
                xz |= 1
            elif ch in "zZ?":
                xz |= 1
                z |= 1
            else:
                raise ValueError(f"invalid bit character {ch!r}")
        return cls(width, val, xz, z, signed)

    # -- inspection ------------------------------------------------------------

    @property
    def has_unknown(self) -> bool:
        """True when any bit is x or z."""
        return self.xz != 0

    @property
    def is_fully_known(self) -> bool:
        return self.xz == 0

    def to_int(self) -> int:
        """Unsigned integer value; raises if any bit is unknown."""
        if self.xz:
            raise ValueError(f"vector {self} contains x/z bits")
        return self.val

    def to_signed_int(self) -> int:
        """Two's-complement signed integer value; raises on unknowns."""
        raw = self.to_int()
        sign_bit = 1 << (self.width - 1)
        if raw & sign_bit:
            return raw - (1 << self.width)
        return raw

    def to_int_or_none(self) -> Optional[int]:
        """Unsigned value, or None when any bit is unknown."""
        return None if self.xz else self.val

    def signed_value(self) -> Optional[int]:
        """Interpreted value honouring the signed flag, None if unknown."""
        if self.xz:
            return None
        return self.to_signed_int() if self.signed else self.val

    def bit(self, index: int) -> str:
        """Return the state of bit ``index`` as '0', '1', 'x', or 'z'."""
        if index < 0 or index >= self.width:
            return "x"
        b = 1 << index
        if self.xz & b:
            return "z" if self.z & b else "x"
        return "1" if self.val & b else "0"

    def to_bit_string(self) -> str:
        """MSB-first string of 0/1/x/z characters."""
        return "".join(self.bit(i) for i in range(self.width - 1, -1, -1))

    def __repr__(self) -> str:
        return f"Vec4({self.width}'b{self.to_bit_string()})"

    def __eq__(self, other: object) -> bool:
        """Structural equality (exact four-state pattern match)."""
        if not isinstance(other, Vec4):
            return NotImplemented
        return (
            self.width == other.width
            and self.val == other.val
            and self.xz == other.xz
            and self.z == other.z
        )

    def __hash__(self) -> int:
        return hash((self.width, self.val, self.xz, self.z))

    # -- resizing ------------------------------------------------------------

    def resize(self, width: int, signed: Optional[bool] = None) -> "Vec4":
        """Zero/sign/x-extend or truncate to ``width`` bits.

        Extension uses the sign bit when the vector is signed, and
        propagates an x/z sign bit into the extension (LRM semantics).
        """
        use_signed = self.signed if signed is None else signed
        if width == self.width:
            return Vec4(width, self.val, self.xz, self.z, use_signed)
        if width < self.width:
            return Vec4(width, self.val, self.xz, self.z, use_signed)
        ext = _mask(width) & ~_mask(self.width)
        val, xz, z = self.val, self.xz, self.z
        top = 1 << (self.width - 1)
        if use_signed:
            if xz & top:
                xz |= ext
                if z & top:
                    z |= ext
            elif val & top:
                val |= ext
        return Vec4(width, val, xz, z, use_signed)

    def as_signed(self, signed: bool = True) -> "Vec4":
        """Return a copy with the signed flag set to ``signed``."""
        return Vec4(self.width, self.val, self.xz, self.z, signed)

    # -- bitwise operators -------------------------------------------------

    def _binary_prep(self, other: "Vec4") -> Tuple["Vec4", "Vec4", int, bool]:
        """Widen both operands to the common width with proper extension."""
        width = max(self.width, other.width)
        signed = self.signed and other.signed
        return (
            self.resize(width, self.signed),
            other.resize(width, other.signed),
            width,
            signed,
        )

    def bit_and(self, other: "Vec4") -> "Vec4":
        a, b, width, signed = self._binary_prep(other)
        m = _mask(width)
        known0 = (~a.val & ~a.xz & m) | (~b.val & ~b.xz & m)
        known1 = a.val & b.val
        xz = m & ~known0 & ~known1
        return Vec4(width, known1, xz, 0, signed)

    def bit_or(self, other: "Vec4") -> "Vec4":
        a, b, width, signed = self._binary_prep(other)
        m = _mask(width)
        known1 = a.val | b.val
        known0 = (~a.val & ~a.xz & m) & (~b.val & ~b.xz & m)
        xz = m & ~known0 & ~known1
        return Vec4(width, known1 & ~xz, xz, 0, signed)

    def bit_xor(self, other: "Vec4") -> "Vec4":
        a, b, width, signed = self._binary_prep(other)
        xz = a.xz | b.xz
        return Vec4(width, (a.val ^ b.val) & ~xz, xz, 0, signed)

    def bit_xnor(self, other: "Vec4") -> "Vec4":
        return self.bit_xor(other).bit_not()

    def bit_not(self) -> "Vec4":
        m = _mask(self.width)
        return Vec4(self.width, ~self.val & ~self.xz & m, self.xz, 0, self.signed)

    # -- reductions ------------------------------------------------------------

    def reduce_and(self) -> "Vec4":
        m = _mask(self.width)
        if (~self.val & ~self.xz & m) != 0:
            return Vec4.from_int(0, 1)
        if self.xz:
            return Vec4.all_x(1)
        return Vec4.from_int(1, 1)

    def reduce_or(self) -> "Vec4":
        if self.val:
            return Vec4.from_int(1, 1)
        if self.xz:
            return Vec4.all_x(1)
        return Vec4.from_int(0, 1)

    def reduce_xor(self) -> "Vec4":
        if self.xz:
            return Vec4.all_x(1)
        return Vec4.from_int(bin(self.val).count("1") & 1, 1)

    def reduce_nand(self) -> "Vec4":
        return self.reduce_and().bit_not()

    def reduce_nor(self) -> "Vec4":
        return self.reduce_or().bit_not()

    def reduce_xnor(self) -> "Vec4":
        return self.reduce_xor().bit_not()

    # -- arithmetic ------------------------------------------------------------

    def _arith(self, other: "Vec4", result_width: Optional[int] = None):
        """Common prologue for arithmetic; returns ints or None if x."""
        a, b, width, signed = self._binary_prep(other)
        if result_width is not None:
            width = result_width
            a = a.resize(width, self.signed)
            b = b.resize(width, other.signed)
        if a.xz or b.xz:
            return None, None, width, signed
        av = a.to_signed_int() if signed else a.val
        bv = b.to_signed_int() if signed else b.val
        return av, bv, width, signed

    def add(self, other: "Vec4") -> "Vec4":
        av, bv, width, signed = self._arith(other)
        if av is None:
            return Vec4.all_x(width, signed)
        return Vec4.from_int(av + bv, width, signed)

    def sub(self, other: "Vec4") -> "Vec4":
        av, bv, width, signed = self._arith(other)
        if av is None:
            return Vec4.all_x(width, signed)
        return Vec4.from_int(av - bv, width, signed)

    def mul(self, other: "Vec4") -> "Vec4":
        av, bv, width, signed = self._arith(other)
        if av is None:
            return Vec4.all_x(width, signed)
        return Vec4.from_int(av * bv, width, signed)

    def div(self, other: "Vec4") -> "Vec4":
        av, bv, width, signed = self._arith(other)
        if av is None or bv == 0:
            return Vec4.all_x(width, signed)
        quotient = abs(av) // abs(bv)
        if (av < 0) != (bv < 0):
            quotient = -quotient
        return Vec4.from_int(quotient, width, signed)

    def mod(self, other: "Vec4") -> "Vec4":
        av, bv, width, signed = self._arith(other)
        if av is None or bv == 0:
            return Vec4.all_x(width, signed)
        remainder = abs(av) % abs(bv)
        if av < 0:
            remainder = -remainder
        return Vec4.from_int(remainder, width, signed)

    def power(self, other: "Vec4") -> "Vec4":
        av, bv, width, signed = self._arith(other)
        if av is None:
            return Vec4.all_x(width, signed)
        if bv < 0:
            if av in (1, -1):
                return Vec4.from_int(av if bv % 2 else av * av, width, signed)
            return Vec4.from_int(0, width, signed)
        try:
            return Vec4.from_int(pow(av, bv, 1 << width), width, signed)
        except ValueError:
            return Vec4.all_x(width, signed)

    def neg(self) -> "Vec4":
        if self.xz:
            return Vec4.all_x(self.width, self.signed)
        return Vec4.from_int(-self.val, self.width, self.signed)

    # -- shifts ------------------------------------------------------------

    def shl(self, amount: "Vec4") -> "Vec4":
        if amount.xz:
            return Vec4.all_x(self.width, self.signed)
        n = amount.val
        if n >= self.width:
            return Vec4.from_int(0, self.width, self.signed)
        return Vec4(
            self.width, self.val << n, self.xz << n, self.z << n, self.signed
        )

    def shr(self, amount: "Vec4") -> "Vec4":
        if amount.xz:
            return Vec4.all_x(self.width, self.signed)
        n = amount.val
        if n >= self.width:
            return Vec4.from_int(0, self.width, self.signed)
        return Vec4(
            self.width, self.val >> n, self.xz >> n, self.z >> n, self.signed
        )

    def ashr(self, amount: "Vec4") -> "Vec4":
        """Arithmetic right shift; sign-fills only when signed."""
        if not self.signed:
            return self.shr(amount)
        if amount.xz:
            return Vec4.all_x(self.width, self.signed)
        n = min(amount.val, self.width)
        m = _mask(self.width)
        top = 1 << (self.width - 1)
        fill = m & ~_mask(max(self.width - n, 0))
        val, xz, z = self.val >> n, self.xz >> n, self.z >> n
        if self.xz & top:
            xz |= fill
            if self.z & top:
                z |= fill
        elif self.val & top:
            val |= fill
        return Vec4(self.width, val, xz, z, self.signed)

    # -- comparisons -----------------------------------------------------------

    def _compare_values(self, other: "Vec4"):
        a, b, _, signed = self._binary_prep(other)
        if a.xz or b.xz:
            return None, None
        if signed:
            return a.to_signed_int(), b.to_signed_int()
        return a.val, b.val

    def eq(self, other: "Vec4") -> "Vec4":
        """Logical equality ``==``; x when undecidable."""
        a, b, width, _ = self._binary_prep(other)
        known = _mask(width) & ~a.xz & ~b.xz
        if (a.val ^ b.val) & known:
            return Vec4.from_int(0, 1)
        if a.xz or b.xz:
            return Vec4.all_x(1)
        return Vec4.from_int(1, 1)

    def ne(self, other: "Vec4") -> "Vec4":
        return self.eq(other).logical_not()

    def case_eq(self, other: "Vec4") -> "Vec4":
        """Case equality ``===``: exact four-state pattern match."""
        a, b, _, _ = self._binary_prep(other)
        same = a.val == b.val and a.xz == b.xz and a.z == b.z
        return Vec4.from_int(1 if same else 0, 1)

    def case_ne(self, other: "Vec4") -> "Vec4":
        inverted = self.case_eq(other)
        return Vec4.from_int(1 - inverted.val, 1)

    def lt(self, other: "Vec4") -> "Vec4":
        av, bv = self._compare_values(other)
        if av is None:
            return Vec4.all_x(1)
        return Vec4.from_int(1 if av < bv else 0, 1)

    def le(self, other: "Vec4") -> "Vec4":
        av, bv = self._compare_values(other)
        if av is None:
            return Vec4.all_x(1)
        return Vec4.from_int(1 if av <= bv else 0, 1)

    def gt(self, other: "Vec4") -> "Vec4":
        av, bv = self._compare_values(other)
        if av is None:
            return Vec4.all_x(1)
        return Vec4.from_int(1 if av > bv else 0, 1)

    def ge(self, other: "Vec4") -> "Vec4":
        av, bv = self._compare_values(other)
        if av is None:
            return Vec4.all_x(1)
        return Vec4.from_int(1 if av >= bv else 0, 1)

    # -- logical (truthiness) ----------------------------------------------

    def truthiness(self) -> Optional[bool]:
        """Verilog truth value: True, False, or None for unknown.

        A value is true when any bit is known-1, false when all bits are
        known-0, and unknown otherwise.
        """
        if self.val:
            return True
        if self.xz:
            return None
        return False

    def is_true(self) -> bool:
        """Strict truth: treats unknown as false (like ``if`` does)."""
        return self.truthiness() is True

    def logical_not(self) -> "Vec4":
        truth = self.truthiness()
        if truth is None:
            return Vec4.all_x(1)
        return Vec4.from_int(0 if truth else 1, 1)

    def logical_and(self, other: "Vec4") -> "Vec4":
        a, b = self.truthiness(), other.truthiness()
        if a is False or b is False:
            return Vec4.from_int(0, 1)
        if a is None or b is None:
            return Vec4.all_x(1)
        return Vec4.from_int(1, 1)

    def logical_or(self, other: "Vec4") -> "Vec4":
        a, b = self.truthiness(), other.truthiness()
        if a is True or b is True:
            return Vec4.from_int(1, 1)
        if a is None or b is None:
            return Vec4.all_x(1)
        return Vec4.from_int(0, 1)

    # -- structure ------------------------------------------------------------

    def concat(self, other: "Vec4") -> "Vec4":
        """Concatenate with ``other`` on the right (LSB side)."""
        width = self.width + other.width
        shift = other.width
        return Vec4(
            width,
            (self.val << shift) | other.val,
            (self.xz << shift) | other.xz,
            (self.z << shift) | other.z,
            False,
        )

    def replicate(self, count: int) -> "Vec4":
        if count <= 0:
            raise ValueError(f"replication count must be positive: {count}")
        result = self
        for _ in range(count - 1):
            result = result.concat(self)
        return result

    def slice(self, high: int, low: int) -> "Vec4":
        """Extract bits ``[high:low]`` (bit positions, not declared idx).

        Out-of-range bits read as x, matching out-of-bounds select
        semantics.
        """
        if high < low:
            raise ValueError(f"invalid slice [{high}:{low}]")
        width = high - low + 1
        if low >= self.width or high < 0:
            return Vec4.all_x(width)
        val = xz = z = 0
        extra_x = 0
        for offset in range(width):
            pos = low + offset
            bit = 1 << offset
            if pos < 0 or pos >= self.width:
                extra_x |= bit
                continue
            src = 1 << pos
            if self.val & src:
                val |= bit
            if self.xz & src:
                xz |= bit
            if self.z & src:
                z |= bit
        return Vec4(width, val, xz | extra_x, z, False)

    def set_slice(self, high: int, low: int, value: "Vec4") -> "Vec4":
        """Return a copy with bits ``[high:low]`` replaced by ``value``."""
        if high < low:
            raise ValueError(f"invalid slice [{high}:{low}]")
        width = high - low + 1
        value = value.resize(width, False)
        val, xz, z = self.val, self.xz, self.z
        for offset in range(width):
            pos = low + offset
            if pos < 0 or pos >= self.width:
                continue
            dst = 1 << pos
            src = 1 << offset
            val &= ~dst
            xz &= ~dst
            z &= ~dst
            if value.val & src:
                val |= dst
            if value.xz & src:
                xz |= dst
            if value.z & src:
                z |= dst
        return Vec4(self.width, val, xz, z, self.signed)


def concat_all(parts: Iterable[Vec4]) -> Vec4:
    """Concatenate vectors left-to-right (first part becomes the MSBs)."""
    items: List[Vec4] = list(parts)
    if not items:
        raise ValueError("cannot concatenate zero vectors")
    result = items[0]
    for part in items[1:]:
        result = result.concat(part)
    return result


#: Convenient single-bit constants.
ZERO = Vec4.from_int(0, 1)
ONE = Vec4.from_int(1, 1)
X = Vec4.all_x(1)
Z = Vec4.all_z(1)


def vec_from_verilog_int(value: Union[int, Vec4], width: int) -> Vec4:
    """Coerce a Python int or Vec4 to a ``width``-bit Vec4."""
    if isinstance(value, Vec4):
        return value.resize(width, value.signed)
    return Vec4.from_int(value, width)
