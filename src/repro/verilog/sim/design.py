"""Elaborated-design data structures shared by the simulator stages.

Elaboration flattens the module hierarchy into a :class:`Design`:
a set of flat :class:`Signal` objects, a list of processes, and per-
instance :class:`Scope` objects that map source-level identifiers to
flat signals, constants, and functions.  Keeping the original AST and
resolving names through scopes (instead of rewriting the AST) lets one
parsed module serve many instances and generate iterations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from .. import ast_nodes as ast
from .values import Vec4


class ElaborationError(Exception):
    """Raised when a design cannot be elaborated (unknown module,
    non-constant parameter, unsupported construct, width mismatch…)."""


@dataclass
class Signal:
    """A flat signal in the elaborated design.

    Attributes:
        name: hierarchical flat name, e.g. ``"u_alu.result"``.
        width: bit width of one element.
        signed: declared signedness.
        kind: ``"net"`` (resolved, multi-driver) or ``"var"`` (reg-like).
        array_size: number of elements for memories; 0 for plain signals.
    """

    name: str
    width: int
    signed: bool = False
    kind: str = "var"
    array_size: int = 0
    #: Declared packed-range bounds, e.g. ``[7:0]`` → msb=7, lsb=0.
    msb: int = 0
    lsb: int = 0
    #: Lowest declared memory address (for ``reg [7:0] m [16:31]``).
    array_min: int = 0

    @property
    def is_memory(self) -> bool:
        return self.array_size > 0

    def bit_position(self, index: int) -> int:
        """Map a declared bit index to a physical bit position.

        Descending ranges (``[7:0]``) map index→index-lsb; ascending
        ranges (``[0:7]``) reverse so the leftmost declared bit is the
        MSB of the stored vector.
        """
        if self.msb >= self.lsb:
            return index - self.lsb
        return self.lsb - index


@dataclass
class ConstBinding:
    """A compile-time constant (parameter, localparam, genvar value)."""

    value: Vec4


@dataclass
class SignalBinding:
    """A reference from a local identifier to a flat signal."""

    signal: Signal


@dataclass
class FuncBinding:
    """A user function visible in a scope."""

    decl: ast.FunctionDecl
    scope: "Scope"


@dataclass
class TaskBinding:
    """A user task visible in a scope."""

    decl: ast.TaskDecl
    scope: "Scope"


Binding = Union[ConstBinding, SignalBinding, FuncBinding, TaskBinding]


class Scope:
    """Identifier-resolution environment for one elaborated instance.

    Scopes chain through ``parent`` only for *constants and functions*
    (used by generate blocks); signals do not leak across instance
    boundaries.
    """

    def __init__(self, path: str, parent: Optional["Scope"] = None) -> None:
        self.path = path
        self.parent = parent
        self._bindings: Dict[str, Binding] = {}

    def bind(self, name: str, binding: Binding) -> None:
        self._bindings[name] = binding

    def lookup(self, name: str) -> Optional[Binding]:
        scope: Optional[Scope] = self
        while scope is not None:
            binding = scope._bindings.get(name)
            if binding is not None:
                return binding
            scope = scope.parent
        return None

    def lookup_function(self, name: str) -> Optional["FuncBinding"]:
        """Find a function binding, skipping shadows.

        Inside a function body the function's own name is rebound to
        its return variable; recursive calls must still resolve the
        function itself from an enclosing scope.
        """
        scope: Optional[Scope] = self
        while scope is not None:
            binding = scope._bindings.get(name)
            if isinstance(binding, FuncBinding):
                return binding
            scope = scope.parent
        return None

    def child(self, suffix: str) -> "Scope":
        """A nested scope (generate iteration) sharing this scope's
        bindings through the parent chain."""
        path = f"{self.path}.{suffix}" if self.path else suffix
        return Scope(path, parent=self)

    def flat_name(self, local: str) -> str:
        return f"{self.path}.{local}" if self.path else local


# ---------------------------------------------------------------------------
# Processes
# ---------------------------------------------------------------------------


@dataclass
class CombProcess:
    """A combinational process: continuous assign or level-sensitive
    always block.  Re-executed whenever any signal it reads changes.

    ``driver_id`` identifies this process among a net's drivers for
    multi-driver resolution (continuous assigns only; always blocks
    write variables, which are last-write-wins).
    """

    scope: Scope
    #: For a continuous assign: (target lvalue expr, value expr).
    assign: Optional[Tuple[ast.Expr, ast.Expr]] = None
    #: For an always block: the statement body.
    body: Optional[ast.Stmt] = None
    sensitivity: Tuple[str, ...] = ()
    driver_id: int = -1
    line: int = 0
    #: Scope for resolving the assign target when it differs from
    #: ``scope`` (port-connection processes cross instance boundaries).
    target_scope: Optional[Scope] = None


@dataclass
class EdgeProcess:
    """An edge-triggered always block."""

    scope: Scope
    #: (edge, flat signal name) pairs, edge in {"posedge", "negedge"}.
    triggers: Tuple[Tuple[str, str], ...] = ()
    body: Optional[ast.Stmt] = None
    line: int = 0


@dataclass
class InitialProcess:
    """An ``initial`` block (may contain timing controls)."""

    scope: Scope
    body: Optional[ast.Stmt] = None
    line: int = 0


@dataclass
class TimedAlwaysProcess:
    """An always block with no sensitivity list (``always #5 clk=~clk``
    or ``always begin ... end`` with internal timing controls)."""

    scope: Scope
    body: Optional[ast.Stmt] = None
    line: int = 0


Process = Union[CombProcess, EdgeProcess, InitialProcess, TimedAlwaysProcess]


@dataclass
class Design:
    """A fully elaborated, flattened design ready for simulation."""

    top_name: str = ""
    signals: Dict[str, Signal] = field(default_factory=dict)
    processes: List[Process] = field(default_factory=list)
    #: Flat names of top-level ports by direction.
    inputs: Dict[str, Signal] = field(default_factory=dict)
    outputs: Dict[str, Signal] = field(default_factory=dict)
    inouts: Dict[str, Signal] = field(default_factory=dict)
    #: Total driver count (for net resolution bookkeeping).
    n_drivers: int = 0
    #: The top instance scope (for hierarchical probes).
    top_scope: Optional[Scope] = None

    def add_signal(self, signal: Signal) -> Signal:
        if signal.name in self.signals:
            raise ElaborationError(f"duplicate signal {signal.name!r}")
        self.signals[signal.name] = signal
        return signal

    def new_driver_id(self) -> int:
        self.n_drivers += 1
        return self.n_drivers - 1
